//! Property-based tests of the core invariants the READ reproduction relies
//! on: order-independence of the arithmetic, optimality of the reorder for a
//! single output channel, balance of the clustering, monotonicity of the
//! error models, and round-tripping of the hardware LUT.
//!
//! `proptest` is not available offline, so this uses a small deterministic
//! case generator over the workspace's seeded RNG (the `rand` shim) —
//! every case set is fixed across runs, which also makes failures
//! trivially reproducible.

use accel_sim::{
    bitplane, carry_chain_length, ArrayConfig, Dataflow, DepthWord, GemmProblem, MacUnit, Matrix,
    NullObserver, SimOptions, ACC_BITS,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use read_core::{
    count_sign_flips, packed_count_sign_flips, sign_flips_for_order, sign_flips_for_order_packed,
    sign_flips_for_order_scalar, sign_flips_for_order_with, sort_input_channels, AddressLut,
    BalancedKMeans, ClusteringMode, DistanceMetric, ReadConfig, ReadOptimizer, SignFlipScratch,
    SortCriterion,
};
use read_pipeline::{SweepPlan, SweepReport};
use timing::{
    ber_from_ter, ter_for_target_ber, DelayModel, DepthHistogram, MonteCarloAnalysis,
    OperatingCondition, OperatingCorner, TerEstimate, TimingAnalysis,
};

/// Deterministic case generator: convenience draws over the shared shim RNG.
struct Gen(StdRng);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(StdRng::seed_from_u64(seed))
    }

    fn next_u64(&mut self) -> u64 {
        self.0.gen()
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        self.0.gen_range(lo..hi)
    }

    fn i8(&mut self) -> i8 {
        self.next_u64() as i8
    }

    fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        self.0.gen_range(lo..hi)
    }

    fn weight_matrix(&mut self, max_rows: usize, max_cols: usize) -> Matrix<i8> {
        let rows = self.range(1, max_rows + 1);
        let cols = self.range(1, max_cols + 1);
        Matrix::from_fn(rows, cols, |_, _| self.i8())
    }
}

const CASES: usize = 64;

/// The MAC unit's 24-bit accumulation matches wide integer arithmetic as
/// long as the true sum stays inside the 24-bit range.
#[test]
fn mac_accumulation_matches_wide_arithmetic() {
    let mut gen = Gen::new(0xA11CE);
    let mut checked = 0;
    while checked < CASES {
        let n = gen.range(1, 64);
        let pairs: Vec<(i8, i8)> = (0..n).map(|_| (gen.i8(), gen.i8())).collect();
        let wide: i64 = pairs
            .iter()
            .map(|(w, a)| i64::from(*w) * i64::from(*a))
            .sum();
        if wide.abs() >= (1 << 23) {
            continue; // outside the accumulator's representable range
        }
        checked += 1;
        let mut mac = MacUnit::new();
        for (w, a) in &pairs {
            mac.mac(*w, *a);
        }
        assert_eq!(i64::from(mac.psum()), wide);
    }
}

/// The carry-chain length never exceeds the accumulator width.
#[test]
fn carry_chain_is_bounded() {
    let mut gen = Gen::new(0xCA44);
    for _ in 0..4096 {
        let a = gen.next_u64() as u32;
        let b = gen.next_u64() as u32;
        assert!(carry_chain_length(a, b) <= ACC_BITS);
    }
}

/// Any reordering produced by any criterion is a permutation, and the
/// simulated outputs are bit-identical to the baseline (compute
/// correctness of Section IV-A).
#[test]
fn reordering_preserves_gemm_results() {
    let pipeline = read_pipeline::ReadPipeline::builder()
        .array(ArrayConfig::new(4, 3))
        .optimizer(ReadConfig {
            criterion: SortCriterion::SignFirst,
            clustering: ClusteringMode::ClusterThenReorder,
            ..ReadConfig::default()
        })
        .condition(OperatingCondition::ideal())
        .build()
        .unwrap();
    let optimizer = ReadOptimizer::new(ReadConfig {
        criterion: SortCriterion::SignFirst,
        clustering: ClusteringMode::ClusterThenReorder,
        ..ReadConfig::default()
    });
    let mut gen = Gen::new(0x6E44);
    for case in 0..CASES {
        let weights = gen.weight_matrix(24, 8);
        let activations = Matrix::from_fn(weights.rows(), 3, |_, _| (gen.range(0, 100)) as i8);
        let workload = read_pipeline::LayerWorkload::from_matrices(
            &format!("case{case}"),
            weights,
            activations,
        )
        .unwrap();
        let reference = workload.problem().reference_output().unwrap();
        let optimized = pipeline.layer_outputs(&workload, &optimizer).unwrap();
        assert_eq!(optimized, reference);
    }
}

/// Both dataflows compute the same result for any operands.
#[test]
fn dataflows_agree() {
    let mut gen = Gen::new(0xDA7A);
    for _ in 0..CASES {
        let weights = gen.weight_matrix(16, 6);
        let activations = Matrix::from_fn(weights.rows(), 4, |r, c| ((r * 7 + c * 3) % 100) as i8);
        let problem = GemmProblem::new(weights, activations).unwrap();
        let array = ArrayConfig::new(4, 2);
        let mut obs = NullObserver;
        let os = problem
            .simulate(
                &array,
                Dataflow::OutputStationary,
                &SimOptions::exhaustive(),
                &mut obs,
            )
            .unwrap();
        let ws = problem
            .simulate(
                &array,
                Dataflow::WeightStationary,
                &SimOptions::exhaustive(),
                &mut obs,
            )
            .unwrap();
        assert_eq!(os.outputs, ws.outputs);
    }
}

/// For a single output channel and non-negative activations the sign_first
/// order achieves the provable minimum number of sign flips (0 for a
/// non-negative result, 1 for a negative result) and never exceeds the
/// natural order.
#[test]
fn sign_first_is_optimal_for_single_channel() {
    let mut gen = Gen::new(0x516F);
    for _ in 0..CASES {
        let len = gen.range(1, 64);
        let column: Vec<i8> = (0..len).map(|_| gen.i8()).collect();
        let weights = Matrix::from_vec(column.len(), 1, column.clone()).unwrap();
        let order = sort_input_channels(&weights, &[0], SortCriterion::SignFirst).unwrap();
        let flips = sign_flips_for_order(&weights, &[0], &order, None).unwrap();
        let total: i64 = column.iter().map(|&w| i64::from(w)).sum();
        assert_eq!(flips, u64::from(total < 0));
        let natural: Vec<usize> = (0..column.len()).collect();
        let baseline = sign_flips_for_order(&weights, &[0], &natural, None).unwrap();
        assert!(flips <= baseline);
    }
}

/// Accumulating the products in any order leaves the final sum unchanged,
/// and the sign-flip counter accepts both orders.
#[test]
fn sign_flip_counter_is_order_sum_invariant() {
    let mut gen = Gen::new(0x0DD5);
    for _ in 0..CASES {
        let len = gen.range(0, 40);
        let addends: Vec<i64> = (0..len).map(|_| gen.range(0, 2000) as i64 - 1000).collect();
        let forward_sum: i64 = addends.iter().sum();
        let mut reversed = addends.clone();
        reversed.reverse();
        let reversed_sum: i64 = reversed.iter().sum();
        assert_eq!(forward_sum, reversed_sum);
        let _ = count_sign_flips(addends.iter().copied());
        let _ = count_sign_flips(reversed);
    }
}

/// The word-parallel sign-flip counter agrees with the scalar fold for
/// arbitrary i64 addends — full-range (wrapping) values included — and
/// arbitrary lane counts, ragged lane lengths included.
#[test]
fn packed_sign_flip_counter_matches_scalar_fold() {
    let mut gen = Gen::new(0xBEEF);
    for case in 0..CASES {
        let lanes_n = gen.range(1, 150);
        let lanes: Vec<Vec<i64>> = (0..lanes_n)
            .map(|_| {
                let len = gen.range(0, 30);
                (0..len)
                    .map(|_| {
                        if case % 4 == 0 {
                            // Every fourth case stresses the full i64 range,
                            // where the running sum wraps.
                            gen.next_u64() as i64
                        } else {
                            gen.range(0, 2_000_000) as i64 - 1_000_000
                        }
                    })
                    .collect()
            })
            .collect();
        let scalar: u64 = lanes
            .iter()
            .map(|l| count_sign_flips(l.iter().copied()) as u64)
            .sum();
        assert_eq!(packed_count_sign_flips(&lanes), scalar, "lanes={lanes_n}");
    }
}

/// The packed ordering scorer is bit-exact with the scalar reference for
/// random matrices, column subsets and activation vectors, including column
/// counts that are not multiples of the 64-lane word width.
#[test]
fn packed_order_scorer_matches_scalar_reference() {
    let mut gen = Gen::new(0x5C04E);
    let mut scratch = SignFlipScratch::new();
    for _ in 0..CASES {
        let w = gen.weight_matrix(48, 100);
        let mut order: Vec<usize> = (0..w.rows()).collect();
        for i in (1..order.len()).rev() {
            let j = gen.range(0, i + 1);
            order.swap(i, j);
        }
        let columns: Vec<usize> = (0..gen.range(1, w.cols() + 1))
            .map(|_| gen.range(0, w.cols()))
            .collect();
        let acts: Vec<i8> = (0..w.rows()).map(|_| gen.i8()).collect();
        for activations in [None, Some(acts.as_slice())] {
            let scalar = sign_flips_for_order_scalar(&w, &columns, &order, activations).unwrap();
            let packed =
                sign_flips_for_order_packed(&mut scratch, &w, &columns, &order, activations)
                    .unwrap();
            let routed =
                sign_flips_for_order_with(&mut scratch, &w, &columns, &order, activations).unwrap();
            assert_eq!(packed, scalar);
            assert_eq!(routed, scalar);
        }
    }
}

/// Packed (word-at-a-time) depth-histogram accumulation is byte-identical
/// to recording every lane scalarly, for arbitrary lane counts including
/// widths not divisible by 64 and depths in the top-bucket clamp region.
#[test]
fn packed_histogram_accumulation_matches_scalar() {
    let mut gen = Gen::new(0x4157);
    for _ in 0..CASES {
        let lanes = gen.range(1, 65);
        let mut packed = DepthHistogram::new();
        let mut scalar = DepthHistogram::new();
        for _ in 0..gen.range(1, 8) {
            let mut depth_planes = [0u64; bitplane::DEPTH_PLANES];
            let mut sign_flips = 0u64;
            let mut depths = vec![0u32; lanes];
            for (l, depth) in depths.iter_mut().enumerate() {
                let d = gen.range(0, 32) as u32; // 5-bit range, clamp region included
                *depth = d;
                for (k, plane) in depth_planes.iter_mut().enumerate() {
                    if d >> k & 1 == 1 {
                        *plane |= 1 << l;
                    }
                }
                if gen.next_u64() & 1 == 1 {
                    sign_flips |= 1 << l;
                }
            }
            let word = DepthWord {
                depth_planes,
                sign_flips,
                lane_mask: bitplane::lane_mask(lanes),
            };
            packed.record_word(&word);
            for (l, &d) in depths.iter().enumerate() {
                scalar.record_depth(d, sign_flips >> l & 1 == 1);
            }
        }
        assert_eq!(packed, scalar, "lanes={lanes}");
    }
}

/// Balanced clustering always partitions the channel set into disjoint
/// clusters no larger than the requested size.
#[test]
fn clustering_is_a_balanced_partition() {
    let mut gen = Gen::new(0xC105);
    for _ in 0..CASES {
        let weights = gen.weight_matrix(16, 24);
        let size = gen.range(1, 6);
        let result = BalancedKMeans::new(size, DistanceMetric::SignManhattan)
            .run(&weights)
            .unwrap();
        let mut seen = vec![false; weights.cols()];
        for cluster in &result.clusters {
            assert!(cluster.len() <= size);
            for &c in cluster {
                assert!(!seen[c]);
                seen[c] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}

/// With one output channel per pass (the provable case of Section IV-A) the
/// READ optimizer never increases the sign-flip objective relative to the
/// baseline schedule; with wider groups the schedule must still be valid and
/// cover every channel.
#[test]
fn optimizer_never_increases_sign_flips() {
    let mut gen = Gen::new(0x0071);
    for _ in 0..CASES {
        let weights = gen.weight_matrix(32, 12);
        let cols = gen.range(1, 5);
        let baseline = read_core::LayerSchedule::baseline(weights.rows(), weights.cols(), cols);
        let optimized = ReadOptimizer::new(ReadConfig {
            clustering: ClusteringMode::Direct,
            ..ReadConfig::default()
        })
        .optimize(&weights, cols)
        .unwrap();
        assert!(optimized
            .to_compute_schedule()
            .validate(weights.rows(), weights.cols())
            .is_ok());
        if cols == 1 {
            let base = baseline.total_sign_flips(&weights, None).unwrap();
            let opt = optimized.total_sign_flips(&weights, None).unwrap();
            assert!(opt <= base);
        }
    }
}

/// Eq. (1) is monotone in both arguments and inverts cleanly.
#[test]
fn ber_is_monotone_and_invertible() {
    let mut gen = Gen::new(0xBE12);
    for _ in 0..CASES {
        // Log-uniform TER in [1e-9, 1e-2).
        let ter = 10f64.powf(gen.f64_range(-9.0, -2.0));
        let n = gen.range(1, 10_000);
        let ber = ber_from_ter(ter, n);
        assert!(ber >= ter * 0.99);
        assert!(ber <= 1.0);
        assert!(ber_from_ter(ter * 2.0, n) >= ber);
        assert!(ber_from_ter(ter, n + 1) >= ber);
        // The inversion loses precision once the BER saturates toward 1, so
        // only check the round trip away from saturation.
        if ber < 0.99 {
            let back = ter_for_target_ber(ber, n);
            assert!((back - ter).abs() <= ter * 1e-6 + 1e-15);
        }
    }
}

/// The timing model's error probability is monotone in triggered depth and
/// in PVTA stress, and is a probability.
#[test]
fn error_probability_is_a_monotone_probability() {
    let mut gen = Gen::new(0xE4A0);
    for _ in 0..CASES {
        let depth = gen.range(1, 25) as u32;
        let vt = gen.f64_range(0.0, 0.08);
        let delay = DelayModel::nangate15_like();
        let condition = OperatingCondition::vt(vt);
        let p = delay.error_probability_for_depth(depth, &condition, 0.0);
        assert!((0.0..=1.0).contains(&p));
        if depth < 24 {
            assert!(delay.error_probability_for_depth(depth + 1, &condition, 0.0) >= p);
        }
        let harsher = OperatingCondition::vt(vt + 0.01);
        assert!(delay.error_probability_for_depth(depth, &harsher, 0.0) >= p);
    }
}

/// The address LUT reproduces every cluster order exactly.
#[test]
fn lut_round_trips_orders() {
    let mut gen = Gen::new(0x1007);
    for _ in 0..CASES {
        let weights = gen.weight_matrix(24, 16);
        let cols = gen.range(1, 5);
        let schedule = ReadOptimizer::new(ReadConfig::default())
            .optimize(&weights, cols)
            .unwrap();
        let lut = AddressLut::from_orders(
            schedule
                .clusters()
                .iter()
                .map(|c| c.order.clone())
                .collect(),
        )
        .unwrap();
        for (ci, cluster) in schedule.clusters().iter().enumerate() {
            let got: Vec<usize> = (0..cluster.order.len())
                .map(|i| lut.lookup(ci, i).unwrap())
                .collect();
            assert_eq!(&got, &cluster.order);
        }
        assert!(lut.size_bytes() > 0);
    }
}

/// Sharded Monte-Carlo aggregation equals the unsharded estimate for any
/// partition of the trial range: trial streams depend on the global trial
/// index alone, and concatenating the per-shard samples in index order
/// reproduces the full sample vector (and hence the estimate) exactly.
#[test]
fn sharded_mc_aggregation_equals_unsharded_for_arbitrary_splits() {
    let mut hist = DepthHistogram::new();
    {
        let weights = Matrix::from_fn(48, 4, |r, c| (((r * 11 + c * 3) % 15) as i8) - 7);
        let activations = Matrix::from_fn(48, 4, |r, c| ((r + 2 * c) % 5) as i8);
        GemmProblem::new(weights, activations)
            .unwrap()
            .simulate(
                &ArrayConfig::paper_default(),
                Dataflow::OutputStationary,
                &SimOptions::exhaustive(),
                &mut hist,
            )
            .unwrap();
    }
    let corner = OperatingCorner::nominal(OperatingCondition::aging_vt(10.0, 0.05));
    let mut gen = Gen::new(0x5AAD);
    for _ in 0..24 {
        let trials = gen.range(1, 48) as u32;
        let engine = MonteCarloAnalysis::new(DelayModel::nangate15_like(), trials, gen.next_u64());
        let full = engine.trial_ters(&hist, &corner, 0..trials);

        // An arbitrary partition: random cut points over the trial range.
        let mut sharded = Vec::new();
        let mut lo = 0u32;
        while lo < trials {
            let hi = gen
                .range(lo as usize + 1, trials as usize + 2)
                .min(trials as usize) as u32;
            sharded.extend(engine.trial_ters(&hist, &corner, lo..hi));
            lo = hi;
        }
        assert_eq!(full, sharded, "trials={trials}");
        assert_eq!(
            engine.estimate(&hist, &corner),
            TerEstimate::from_trials(&sharded)
        );
    }
}

/// Tiny sweep fixture shared by the sweep property tests: one layer, one
/// source, serial execution.
fn run_tiny_sweep(plan: SweepPlan) -> SweepReport {
    let config = read_pipeline::WorkloadConfig {
        pixels_per_layer: 1,
        ..Default::default()
    };
    let workloads: Vec<_> = read_pipeline::vgg16_workloads(&config)
        .into_iter()
        .take(1)
        .collect();
    read_pipeline::ReadPipeline::builder()
        .baseline()
        .sweep(plan)
        .build()
        .unwrap()
        .run_sweep("prop", &workloads)
        .unwrap()
}

/// A sweep's per-cell rows do not depend on the shard layout: any
/// `trials_per_shard` yields the same rows as the unsharded run.
#[test]
fn sweep_rows_are_invariant_under_arbitrary_shard_sizes() {
    let mut gen = Gen::new(0x57A2);
    let base = SweepPlan::new()
        .condition(OperatingCondition::aging_vt(10.0, 0.05))
        .monte_carlo(30, 0xFEED);
    let unsharded = run_tiny_sweep(base.clone());
    for _ in 0..6 {
        let per_shard = gen.range(1, 40) as u32;
        let sharded = run_tiny_sweep(base.clone().trials_per_shard(per_shard));
        assert_eq!(
            unsharded.cells[0].rows, sharded.cells[0].rows,
            "trials_per_shard={per_shard}"
        );
        assert_eq!(unsharded.worst, sharded.worst);
    }
}

/// Reordering the plan's conditions and dies permutes the sweep's cells but
/// never changes any cell's content: cells are keyed by (die, condition)
/// and each is derived independently of its grid position.
#[test]
fn sweep_cells_are_permutation_invariant_under_plan_reordering() {
    let mut gen = Gen::new(0xD1CE);
    let conditions = [
        OperatingCondition::ideal(),
        OperatingCondition::vt(0.05),
        OperatingCondition::aging_vt(10.0, 0.05),
    ];
    let die_seeds = [1u64, 2];
    let reference = run_tiny_sweep(
        SweepPlan::new()
            .conditions(conditions)
            .typical()
            .dies(die_seeds)
            .monte_carlo(12, 5),
    );
    for _ in 0..4 {
        // A random permutation of both axes (Fisher-Yates over the shim RNG).
        let mut cond_order: Vec<usize> = (0..conditions.len()).collect();
        let mut die_order: Vec<usize> = (0..3).collect(); // typical + 2 dies
        for i in (1..cond_order.len()).rev() {
            cond_order.swap(i, gen.range(0, i + 1));
        }
        for i in (1..die_order.len()).rev() {
            die_order.swap(i, gen.range(0, i + 1));
        }
        let mut plan = SweepPlan::new().monte_carlo(12, 5);
        for &ci in &cond_order {
            plan = plan.condition(conditions[ci]);
        }
        for &di in &die_order {
            plan = match di {
                0 => plan.typical(),
                di => plan.die(die_seeds[di - 1]),
            };
        }
        let permuted = run_tiny_sweep(plan);
        assert_eq!(permuted.cells.len(), reference.cells.len());
        for cell in &reference.cells {
            let twin = permuted
                .cell(&cell.die, &cell.condition)
                .unwrap_or_else(|| panic!("cell ({}, {}) missing", cell.die, cell.condition));
            assert_eq!(cell, twin, "({}, {})", cell.die, cell.condition);
        }
        // The cross-corner worst case is position-independent too.
        assert_eq!(reference.worst, permuted.worst);
    }
}

/// Simulated sign-flip statistics match the analytic per-column count when
/// the activations are all ones (the optimizer's surrogate).
#[test]
fn simulator_and_analytic_sign_flips_agree_on_unit_activations() {
    let mut gen = Gen::new(0x51F1);
    for _ in 0..32 {
        let weights = gen.weight_matrix(20, 6);
        let activations = Matrix::from_fn(weights.rows(), 1, |_, _| 1i8);
        let problem = GemmProblem::new(weights.clone(), activations).unwrap();
        let mut stats = accel_sim::SignFlipStats::new();
        let all_cols: Vec<usize> = (0..weights.cols()).collect();
        problem
            .simulate(
                &ArrayConfig::new(2, weights.cols().max(1)),
                Dataflow::OutputStationary,
                &SimOptions::exhaustive(),
                &mut stats,
            )
            .unwrap();
        let natural: Vec<usize> = (0..weights.rows()).collect();
        let analytic = sign_flips_for_order(&weights, &all_cols, &natural, None).unwrap();
        assert_eq!(stats.sign_flips, analytic);
    }
}
