//! Property-based tests of the core invariants the READ reproduction relies
//! on: order-independence of the arithmetic, optimality of the reorder for a
//! single output channel, balance of the clustering, monotonicity of the
//! error models, and round-tripping of the hardware LUT.

use proptest::prelude::*;

use accel_sim::{carry_chain_length, ArrayConfig, Dataflow, GemmProblem, Matrix, MacUnit, NullObserver, SimOptions, ACC_BITS};
use read_core::{
    count_sign_flips, sign_flips_for_order, sort_input_channels, AddressLut, BalancedKMeans,
    ClusteringMode, DistanceMetric, ReadConfig, ReadOptimizer, SortCriterion,
};
use timing::{ber_from_ter, ter_for_target_ber, DelayModel, OperatingCondition};

/// Strategy: a small weight matrix with the given maximum dimensions,
/// returned as (rows, cols, data).
fn weight_matrix(max_rows: usize, max_cols: usize) -> impl Strategy<Value = Matrix<i8>> {
    (1..=max_rows, 1..=max_cols).prop_flat_map(|(r, c)| {
        proptest::collection::vec(any::<i8>(), r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).expect("sized correctly"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The MAC unit's 24-bit accumulation matches wide integer arithmetic as
    /// long as the true sum stays inside the 24-bit range.
    #[test]
    fn mac_accumulation_matches_wide_arithmetic(
        pairs in proptest::collection::vec((any::<i8>(), any::<i8>()), 1..64)
    ) {
        let wide: i64 = pairs.iter().map(|(w, a)| i64::from(*w) * i64::from(*a)).sum();
        prop_assume!(wide.abs() < (1 << 23));
        let mut mac = MacUnit::new();
        for (w, a) in &pairs {
            mac.mac(*w, *a);
        }
        prop_assert_eq!(i64::from(mac.psum()), wide);
    }

    /// The carry-chain length never exceeds the accumulator width.
    #[test]
    fn carry_chain_is_bounded(a in any::<u32>(), b in any::<u32>()) {
        prop_assert!(carry_chain_length(a, b) <= ACC_BITS);
    }

    /// Any reordering produced by any criterion is a permutation, and the
    /// simulated outputs are bit-identical to the baseline (compute
    /// correctness of Section IV-A).
    #[test]
    fn reordering_preserves_gemm_results(
        weights in weight_matrix(24, 8),
        seed in 0u64..1000,
    ) {
        let acts_rows = weights.rows();
        let mut next = seed;
        let activations = Matrix::from_fn(acts_rows, 3, |_, _| {
            next = next.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((next >> 33) % 100) as i8
        });
        let problem = GemmProblem::new(weights.clone(), activations).unwrap();
        let schedule = ReadOptimizer::new(ReadConfig {
            criterion: SortCriterion::SignFirst,
            clustering: ClusteringMode::ClusterThenReorder,
            ..ReadConfig::default()
        })
        .optimize(&weights, 3)
        .unwrap();
        let mut obs = NullObserver;
        let array = ArrayConfig::new(4, 3);
        let reference = problem.reference_output().unwrap();
        let optimized = problem
            .simulate_with_schedule(
                &array,
                Dataflow::OutputStationary,
                &schedule.to_compute_schedule(),
                &SimOptions::exhaustive(),
                &mut obs,
            )
            .unwrap();
        prop_assert_eq!(optimized.outputs, reference);
    }

    /// Both dataflows compute the same result for any operands.
    #[test]
    fn dataflows_agree(
        weights in weight_matrix(16, 6),
    ) {
        let activations = Matrix::from_fn(weights.rows(), 4, |r, c| ((r * 7 + c * 3) % 100) as i8);
        let problem = GemmProblem::new(weights, activations).unwrap();
        let array = ArrayConfig::new(4, 2);
        let mut obs = NullObserver;
        let os = problem
            .simulate(&array, Dataflow::OutputStationary, &SimOptions::exhaustive(), &mut obs)
            .unwrap();
        let ws = problem
            .simulate(&array, Dataflow::WeightStationary, &SimOptions::exhaustive(), &mut obs)
            .unwrap();
        prop_assert_eq!(os.outputs, ws.outputs);
    }

    /// For a single output channel and non-negative activations the
    /// sign_first order achieves the provable minimum number of sign flips
    /// (0 for a non-negative result, 1 for a negative result) and never
    /// exceeds the natural order.
    #[test]
    fn sign_first_is_optimal_for_single_channel(
        column in proptest::collection::vec(any::<i8>(), 1..64),
    ) {
        let weights = Matrix::from_vec(column.len(), 1, column.clone()).unwrap();
        let order = sort_input_channels(&weights, &[0], SortCriterion::SignFirst).unwrap();
        let flips = sign_flips_for_order(&weights, &[0], &order, None).unwrap();
        let total: i64 = column.iter().map(|&w| i64::from(w)).sum();
        prop_assert_eq!(flips, u64::from(total < 0));
        let natural: Vec<usize> = (0..column.len()).collect();
        let baseline = sign_flips_for_order(&weights, &[0], &natural, None).unwrap();
        prop_assert!(flips <= baseline);
    }

    /// Accumulating the products in any order leaves the final sum
    /// unchanged, and the sign-flip count is never negative in either order.
    #[test]
    fn sign_flip_counter_is_order_sum_invariant(
        addends in proptest::collection::vec(-1000i64..1000, 0..40),
    ) {
        let forward_sum: i64 = addends.iter().sum();
        let mut reversed = addends.clone();
        reversed.reverse();
        let reversed_sum: i64 = reversed.iter().sum();
        prop_assert_eq!(forward_sum, reversed_sum);
        let _ = count_sign_flips(addends.iter().copied());
        let _ = count_sign_flips(reversed.into_iter());
    }

    /// Balanced clustering always partitions the channel set into disjoint
    /// clusters no larger than the requested size.
    #[test]
    fn clustering_is_a_balanced_partition(
        weights in weight_matrix(16, 24),
        size in 1usize..6,
    ) {
        let result = BalancedKMeans::new(size, DistanceMetric::SignManhattan)
            .run(&weights)
            .unwrap();
        let mut seen = vec![false; weights.cols()];
        for cluster in &result.clusters {
            prop_assert!(cluster.len() <= size);
            for &c in cluster {
                prop_assert!(!seen[c]);
                seen[c] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// With one output channel per pass (the provable case of Section IV-A)
    /// the READ optimizer never increases the sign-flip objective relative
    /// to the baseline schedule; with wider groups the schedule must still
    /// be valid and cover every channel.
    #[test]
    fn optimizer_never_increases_sign_flips(
        weights in weight_matrix(32, 12),
        cols in 1usize..5,
    ) {
        let baseline = read_core::LayerSchedule::baseline(weights.rows(), weights.cols(), cols);
        let optimized = ReadOptimizer::new(ReadConfig {
            clustering: ClusteringMode::Direct,
            ..ReadConfig::default()
        })
        .optimize(&weights, cols)
        .unwrap();
        prop_assert!(optimized
            .to_compute_schedule()
            .validate(weights.rows(), weights.cols())
            .is_ok());
        if cols == 1 {
            let base = baseline.total_sign_flips(&weights, None).unwrap();
            let opt = optimized.total_sign_flips(&weights, None).unwrap();
            prop_assert!(opt <= base);
        }
    }

    /// Eq. (1) is monotone in both arguments and inverts cleanly.
    #[test]
    fn ber_is_monotone_and_invertible(
        ter in 1e-9f64..1e-2,
        n in 1usize..10_000,
    ) {
        let ber = ber_from_ter(ter, n);
        prop_assert!(ber >= ter * 0.99);
        prop_assert!(ber <= 1.0);
        prop_assert!(ber_from_ter(ter * 2.0, n) >= ber);
        prop_assert!(ber_from_ter(ter, n + 1) >= ber);
        // The inversion loses precision once the BER saturates toward 1, so
        // only check the round trip away from saturation.
        if ber < 0.99 {
            let back = ter_for_target_ber(ber, n);
            prop_assert!((back - ter).abs() <= ter * 1e-6 + 1e-15);
        }
    }

    /// The timing model's error probability is monotone in triggered depth
    /// and in PVTA stress, and is a probability.
    #[test]
    fn error_probability_is_a_monotone_probability(
        depth in 1u32..=24,
        vt in 0.0f64..0.08,
    ) {
        let delay = DelayModel::nangate15_like();
        let condition = OperatingCondition::vt(vt);
        let p = delay.error_probability_for_depth(depth, &condition, 0.0);
        prop_assert!((0.0..=1.0).contains(&p));
        if depth < 24 {
            prop_assert!(delay.error_probability_for_depth(depth + 1, &condition, 0.0) >= p);
        }
        let harsher = OperatingCondition::vt(vt + 0.01);
        prop_assert!(delay.error_probability_for_depth(depth, &harsher, 0.0) >= p);
    }

    /// The address LUT reproduces every cluster order exactly.
    #[test]
    fn lut_round_trips_orders(
        weights in weight_matrix(24, 16),
        cols in 1usize..5,
    ) {
        let schedule = ReadOptimizer::new(ReadConfig::default())
            .optimize(&weights, cols)
            .unwrap();
        let lut = AddressLut::from_orders(
            schedule.clusters().iter().map(|c| c.order.clone()).collect(),
        )
        .unwrap();
        for (ci, cluster) in schedule.clusters().iter().enumerate() {
            let got: Vec<usize> = (0..cluster.order.len())
                .map(|i| lut.lookup(ci, i).unwrap())
                .collect();
            prop_assert_eq!(&got, &cluster.order);
        }
        prop_assert!(lut.size_bytes() > 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Simulated sign-flip statistics match the analytic per-column count
    /// when the activations are all ones (the optimizer's surrogate).
    #[test]
    fn simulator_and_analytic_sign_flips_agree_on_unit_activations(
        weights in weight_matrix(20, 6),
    ) {
        let activations = Matrix::from_fn(weights.rows(), 1, |_, _| 1i8);
        let problem = GemmProblem::new(weights.clone(), activations).unwrap();
        let mut stats = accel_sim::SignFlipStats::new();
        let all_cols: Vec<usize> = (0..weights.cols()).collect();
        problem
            .simulate(
                &ArrayConfig::new(2, weights.cols().max(1)),
                Dataflow::OutputStationary,
                &SimOptions::exhaustive(),
                &mut stats,
            )
            .unwrap();
        let natural: Vec<usize> = (0..weights.rows()).collect();
        let analytic = sign_flips_for_order(&weights, &all_cols, &natural, None).unwrap();
        prop_assert_eq!(stats.sign_flips, analytic);
    }
}
