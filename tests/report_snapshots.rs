//! Golden-snapshot tests of every report `to_json()` layout.
//!
//! The field order and rendering of `LayerReport`, `NetworkReport`,
//! `AccuracyReport` and `SweepReport` are a documented, stable contract
//! (consumers parse these strings, and the parallel-equals-serial and
//! sweep-equals-single-run guarantees compare them byte for byte).  Each
//! test renders a hand-constructed report and compares it against a fixture
//! string committed under `tests/fixtures/`, so any field move, rename or
//! formatting change fails CI instead of silently shifting the layout.
//!
//! If a layout change is *intentional*, regenerate the fixture from the
//! mismatch message printed on failure and record the change in the README.

use read_repro::prelude::*;

/// Compares rendered JSON against a committed fixture (trailing newline
/// ignored), printing the actual string on mismatch for regeneration.
fn assert_matches_fixture(actual: &str, fixture: &str, name: &str) {
    let expected = fixture.trim_end_matches('\n');
    assert_eq!(
        actual, expected,
        "\n--- {name} fixture mismatch; actual rendering: ---\n{actual}\n---"
    );
}

/// One `LayerReport` row with every optional field present, in a
/// single-row report: the full row layout.
fn full_layer_row() -> LayerReport {
    LayerReport {
        layer: "conv3_6".into(),
        algorithm: "cluster-then-reorder[sign_first]".into(),
        condition: "Aging&VT-5%".into(),
        corner: Some("pe-var[16x4,seed=3]".into()),
        ter: 1.25e-7,
        ter_stddev: Some(2.5e-8),
        ber: 0.000128,
        sign_flip_rate: 0.0625,
        macs_per_output: 1024,
        total_cycles: 65536,
        sign_flips: 4096,
    }
}

/// A plain row: every optional field absent.
fn plain_layer_row() -> LayerReport {
    LayerReport {
        layer: "conv1_1".into(),
        algorithm: "baseline".into(),
        condition: "Ideal".into(),
        corner: None,
        ter: 0.0,
        ter_stddev: None,
        ber: 0.0,
        sign_flip_rate: 0.25,
        macs_per_output: 27,
        total_cycles: 1728,
        sign_flips: 432,
    }
}

#[test]
fn layer_report_full_row_layout_is_stable() {
    let report = NetworkReport {
        network: "layer-row".into(),
        rows: vec![full_layer_row()],
    };
    assert_matches_fixture(
        &report.to_json(),
        include_str!("fixtures/layer_report_full.json"),
        "layer_report_full",
    );
}

#[test]
fn network_report_layout_is_stable() {
    let report = NetworkReport {
        network: "vgg\"16\"".into(),
        rows: vec![plain_layer_row(), full_layer_row()],
    };
    assert_matches_fixture(
        &report.to_json(),
        include_str!("fixtures/network_report.json"),
        "network_report",
    );
}

#[test]
fn accuracy_report_layout_is_stable() {
    let report = AccuracyReport {
        network: "resnet18".into(),
        points: vec![
            AccuracyPoint {
                condition: "Ideal".into(),
                algorithm: "baseline".into(),
                top1: 0.75,
                topk: 0.9375,
                k: 3,
                mean_ber: 0.0,
                seeds: 3,
            },
            AccuracyPoint {
                condition: "Aging&VT-5%".into(),
                algorithm: "reorder[sign_first]".into(),
                top1: 0.734375,
                topk: 0.921875,
                k: 3,
                mean_ber: 3.2e-5,
                seeds: 3,
            },
        ],
    };
    assert_matches_fixture(
        &report.to_json(),
        include_str!("fixtures/accuracy_report.json"),
        "accuracy_report",
    );
}

#[test]
fn sweep_report_layout_is_stable() {
    let report = SweepReport {
        network: "vgg16-sweep".into(),
        cells: vec![
            SweepCell {
                die: "typical".into(),
                condition: "Ideal".into(),
                error_model: "monte-carlo[trials=48,seed=7]".into(),
                shards: 4,
                rows: vec![plain_layer_row()],
            },
            SweepCell {
                die: "pe-var[16x4,seed=3]".into(),
                condition: "Aging&VT-5%".into(),
                error_model: "pe-var[16x4,seed=3]".into(),
                shards: 1,
                rows: vec![full_layer_row()],
            },
        ],
        worst: vec![WorstCase {
            algorithm: "baseline".into(),
            ter: 9.155e-5,
            layer: "conv1_2".into(),
            condition: "Aging&VT-5%".into(),
            die: "typical".into(),
        }],
    };
    assert_matches_fixture(
        &report.to_json(),
        include_str!("fixtures/sweep_report.json"),
        "sweep_report",
    );
}

/// A hand-constructed dynamic-timing report with every list populated: the
/// full `DataflowReport::to_json()` layout, including the derived
/// utilization fields.
fn full_dataflow_report() -> DataflowReport {
    DataflowReport {
        dataflow: "weight-stationary".into(),
        cycles: 320,
        macs: 240,
        outputs: 16,
        stalled: 41,
        peak_psum_buffer: 8,
        contexts: vec![
            read_repro::dataflow_sim::ContextReport {
                name: "pe".into(),
                busy: 240,
                stall: 41,
                finish: 320,
            },
            read_repro::dataflow_sim::ContextReport {
                name: "psum-buffer".into(),
                busy: 32,
                stall: 0,
                finish: 318,
            },
        ],
        channels: vec![
            read_repro::dataflow_sim::ChannelReport {
                name: "weights".into(),
                capacity: 4,
                peak: 4,
                sends: 240,
            },
            read_repro::dataflow_sim::ChannelReport {
                name: "spill".into(),
                capacity: 4,
                peak: 2,
                sends: 16,
            },
        ],
    }
}

#[test]
fn dataflow_report_layout_is_stable() {
    let json = full_dataflow_report().to_json();
    read_repro::dataflow_sim::json::validate(&json).expect("snapshot is valid JSON");
    assert_matches_fixture(
        &json,
        include_str!("fixtures/dataflow_report.json"),
        "dataflow_report",
    );
}

/// The Chrome-trace rendering of a deterministic engine run is stable byte
/// for byte: the engine has no hidden nondeterminism (no wall clock, no
/// unseeded randomness), so the committed trace doubles as a regression
/// fixture for event timing.
#[test]
fn dataflow_trace_layout_is_stable() {
    let problem = GemmProblem::new(
        Matrix::from_fn(6, 2, |r, c| (r * 2 + c) as i8 - 5),
        Matrix::from_fn(6, 2, |r, c| (r + c) as i8 - 3),
    )
    .unwrap();
    let schedule = ComputeSchedule::baseline(6, 2, 2);
    let mut trace = TraceRecorder::new();
    let run = run_dataflow(
        &problem,
        &ArrayConfig::new(4, 2),
        Dataflow::WeightStationary,
        &schedule,
        &SimOptions::exhaustive(),
        &EngineConfig::default(),
        &mut NullObserver,
        Some(&mut trace),
    )
    .unwrap();
    assert_eq!(run.outputs, problem.reference_output().unwrap());
    let json = trace.to_chrome_json();
    read_repro::dataflow_sim::json::validate(&json).expect("trace is valid JSON");
    assert_matches_fixture(
        json.trim_end_matches('\n'),
        include_str!("fixtures/dataflow_trace.json"),
        "dataflow_trace",
    );
}

/// The sweep cell row layout IS the network report row layout: rendering a
/// cell's rows through either path yields the same bytes (the guarantee
/// the sweep-equals-single-run acceptance test builds on).
#[test]
fn sweep_cell_rows_share_the_network_row_layout() {
    let cell = SweepCell {
        die: "typical".into(),
        condition: "Ideal".into(),
        error_model: "delay-model".into(),
        shards: 1,
        rows: vec![plain_layer_row(), full_layer_row()],
    };
    let via_cell = cell.as_network_report("n").to_json();
    let via_network = NetworkReport {
        network: "n".into(),
        rows: cell.rows.clone(),
    }
    .to_json();
    assert_eq!(via_cell.as_bytes(), via_network.as_bytes());
    // And the sweep rendering embeds exactly those row bytes.
    let sweep = SweepReport {
        network: "n".into(),
        cells: vec![cell],
        worst: vec![],
    };
    let json = sweep.to_json();
    let row_body = via_network
        .strip_prefix("{\"network\":\"n\",\"rows\":[")
        .and_then(|s| s.strip_suffix("]}"))
        .unwrap();
    assert!(json.contains(row_body));
}
