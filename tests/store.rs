//! Integration tests of the content-addressed artifact store: the on-disk
//! entry format is pinned by a golden fixture, version-bumped and corrupt
//! entries read as counted misses, every experiment class (TER, sweep,
//! accuracy) reruns for free against a warm `DiskStore`, racing writers —
//! threads and processes — always leave a decodable store, and — the
//! acceptance criterion — a 2-worker `SubprocessExecutor` sweep over a
//! shared store performs each schedule optimization and each histogram
//! simulation exactly once across ALL processes, with byte-identical
//! reports throughout.
//!
//! The worker/racer side of the subprocess tests is this very test binary,
//! re-invoked with `--exact <entry test>` and an environment variable
//! carrying the store directory (the `tests/workplan.rs` self-exec
//! pattern).

use std::io::BufReader;
use std::path::PathBuf;
use std::process::{Command, Stdio};

use read_repro::prelude::*;

// ---- shared fixture -----------------------------------------------------

fn tiny_workloads(n: usize) -> Vec<LayerWorkload> {
    let config = WorkloadConfig {
        pixels_per_layer: 1,
        ..WorkloadConfig::default()
    };
    vgg16_workloads(&config).into_iter().take(n).collect()
}

/// A unique, empty scratch directory for one test.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("read-store-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The sweep experiment the acceptance tests (and their worker processes)
/// all reconstruct: identical configuration ⇒ identical plans ⇒ identical
/// store keys.
fn sweep_plan() -> SweepPlan {
    SweepPlan::new()
        .conditions([
            OperatingCondition::vt(0.05),
            OperatingCondition::aging_vt(10.0, 0.05),
        ])
        .typical()
        .die(5)
        .monte_carlo(16, 11)
        .trials_per_shard(8)
}

fn sweep_builder() -> ReadPipelineBuilder {
    ReadPipeline::builder()
        .source(Algorithm::Baseline)
        .source(Algorithm::ClusterThenReorder(SortCriterion::SignFirst))
        .sweep(sweep_plan())
}

const NETWORK: &str = "store-sweep";
const WORKER_DIR_ENV: &str = "READ_STORE_WORKER_DIR";
const WORKER_EXPECT_WARM_ENV: &str = "READ_STORE_EXPECT_WARM";
const RACE_DIR_ENV: &str = "READ_STORE_RACE_DIR";

// ---- golden on-disk entry format ----------------------------------------

/// The on-disk entry layout (versioned header + check + payload) is a
/// stable contract: a `DiskStore` write must match
/// `tests/fixtures/artifact_entry.txt` byte for byte, at the documented
/// path.
#[test]
fn disk_entry_format_matches_the_golden_fixture() {
    let dir = scratch_dir("golden");
    let store = DiskStore::new(&dir).unwrap();
    store.put(
        "histogram",
        0xFF,
        "source=baseline workload=conv1_1 rows=64 cols=64 pixels=1",
        "total=15 flips=4 counts=0:10,2:3,4:2",
    );
    let path = store.entry_path("histogram", 0xFF);
    assert!(
        path.ends_with("histogram/00000000000000ff.entry"),
        "entry path layout is part of the contract: {}",
        path.display()
    );
    let written = std::fs::read_to_string(&path).unwrap();
    assert_eq!(
        written,
        include_str!("fixtures/artifact_entry.txt"),
        "on-disk entry format drifted from the golden fixture"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// A version-bumped entry is a counted miss, not an error — and the next
/// computation replaces it with a current-version entry.
#[test]
fn bumped_entry_version_reads_as_a_miss_not_an_error() {
    let dir = scratch_dir("version-bump");
    let store = DiskStore::new(&dir).unwrap();
    let check = "source=baseline workload=conv1_1 rows=64 cols=64 pixels=1";
    let payload = "total=15 flips=4 counts=0:10,2:3,4:2";
    let path = store.entry_path("histogram", 0xFF);
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    let bumped = include_str!("fixtures/artifact_entry.txt").replace("v1", "v9");
    std::fs::write(&path, bumped).unwrap();

    assert_eq!(store.load("histogram", 0xFF, check), None);
    let stats = store.stats();
    assert_eq!((stats.hits, stats.misses, stats.corrupt), (0, 1, 1));

    // The recomputed artifact overwrites the stale entry; it then serves.
    store.put("histogram", 0xFF, check, payload);
    assert_eq!(
        store.load("histogram", 0xFF, check).as_deref(),
        Some(payload)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- warm reruns per experiment class ------------------------------------

/// A TER experiment against a warm `DiskStore` performs zero optimizations
/// and zero simulations, with byte-identical JSON — and stores no redundant
/// unit entries (histogram units persist through the histogram artifact
/// class alone).
#[test]
fn ter_rerun_from_disk_is_free_and_byte_identical() {
    let dir = scratch_dir("ter");
    let workloads = tiny_workloads(2);
    let build = || {
        ReadPipeline::builder()
            .source(Algorithm::Baseline)
            .source(Algorithm::ClusterThenReorder(SortCriterion::SignFirst))
            .conditions([
                OperatingCondition::ideal(),
                OperatingCondition::aging_vt(10.0, 0.05),
            ])
            .store(DiskStore::new(&dir).unwrap())
            .build()
            .unwrap()
    };
    let cold_pipeline = build();
    let cold = cold_pipeline.run_ter("ter-store", &workloads).unwrap();
    let cold_stats = cold_pipeline.cache_stats();
    assert_eq!(cold_stats.misses, 4);
    assert_eq!(cold_stats.hist_misses, 4);
    assert_eq!(cold_stats.store_writes, 8, "4 schedules + 4 histograms");
    assert!(
        !dir.join("unit").exists(),
        "histogram units must not be double-stored as unit results"
    );

    let warm_pipeline = build();
    let warm = warm_pipeline.run_ter("ter-store", &workloads).unwrap();
    let warm_stats = warm_pipeline.cache_stats();
    assert_eq!(warm_stats.misses, 0, "schedules all came from the store");
    assert_eq!(
        warm_stats.hist_misses, 0,
        "histograms all came from the store"
    );
    assert_eq!(warm_stats.corrupt_entries, 0);
    assert_eq!(warm_stats.store_writes, 0);
    assert_eq!(
        cold.to_json().into_bytes(),
        warm.to_json().into_bytes(),
        "reports must be byte-identical whether artifacts come from disk or fresh computation"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// An accuracy experiment reruns for free too: the memoized accuracy units
/// skip the whole error-injection evaluation.
#[test]
fn accuracy_rerun_from_disk_executes_zero_units_fresh() {
    let dir = scratch_dir("accuracy");
    let mut model = qnn::models::vgg11_cifar_scaled(8, 4, 3).unwrap();
    let dataset = SyntheticDatasetBuilder::new(4, [3, 16, 16])
        .samples_per_class(1)
        .seed(11)
        .build()
        .unwrap();
    qnn::fit::fit_classifier_head(&mut model, &dataset).unwrap();
    let workloads = tiny_workloads(1);
    let build = || {
        ReadPipeline::builder()
            .source(Algorithm::Baseline)
            .condition(OperatingCondition::aging_vt(10.0, 0.05))
            .model(model.clone())
            .store(DiskStore::new(&dir).unwrap())
            .build()
            .unwrap()
    };
    let cold_pipeline = build();
    let cold = cold_pipeline
        .run_accuracy("acc-store", &dataset, &workloads, 2)
        .unwrap();
    let cold_stats = cold_pipeline.cache_stats();
    assert_eq!(cold_stats.unit_misses, 1, "one accuracy cell evaluated");

    let warm_pipeline = build();
    let warm = warm_pipeline
        .run_accuracy("acc-store", &dataset, &workloads, 2)
        .unwrap();
    let warm_stats = warm_pipeline.cache_stats();
    assert_eq!(warm_stats.misses, 0);
    assert_eq!(warm_stats.hist_misses, 0);
    assert_eq!(warm_stats.unit_misses, 0, "the evaluator never ran again");
    assert_eq!(cold.to_json().into_bytes(), warm.to_json().into_bytes());
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- concurrency: racing writers -----------------------------------------

/// Two threads racing the same keys through independent `DiskStore`
/// instances over one directory always leave a fully decodable store and
/// identical downstream reports.
#[test]
fn racing_thread_writers_leave_a_decodable_store() {
    let dir = scratch_dir("thread-race");
    std::fs::create_dir_all(&dir).unwrap();
    let workloads = tiny_workloads(2);
    let build = |dir: &PathBuf| {
        ReadPipeline::builder()
            .source(Algorithm::Baseline)
            .source(Algorithm::ClusterThenReorder(SortCriterion::SignFirst))
            .condition(OperatingCondition::aging_vt(10.0, 0.05))
            .store(DiskStore::new(dir).unwrap())
            .build()
            .unwrap()
    };
    let reference = build(&dir).run_ter("race", &workloads).unwrap().to_json();

    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let reports: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let dir = dir.clone();
                let workloads = &workloads;
                scope.spawn(move || build(&dir).run_ter("race", workloads).unwrap().to_json())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for report in &reports {
        assert_eq!(report, &reference, "racing writers never change a report");
    }

    // Whatever interleaving happened, the store is complete and decodable:
    // a fresh pipeline serves everything from it.
    let warm = build(&dir);
    assert_eq!(
        warm.run_ter("race", &workloads).unwrap().to_json(),
        reference
    );
    let stats = warm.cache_stats();
    assert_eq!(stats.misses, 0);
    assert_eq!(stats.hist_misses, 0);
    assert_eq!(stats.corrupt_entries, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Racer entry point: a no-op under a normal `cargo test` run; a full
/// store-backed sweep when re-invoked with `READ_STORE_RACE_DIR` set.
#[test]
fn store_race_worker_entry() {
    let Ok(dir) = std::env::var(RACE_DIR_ENV) else {
        return;
    };
    let pipeline = sweep_builder()
        .store(DiskStore::new(dir).unwrap())
        .build()
        .expect("racer pipeline");
    let workloads = tiny_workloads(2);
    let report = pipeline
        .run_sweep(NETWORK, &workloads)
        .expect("racer sweep");
    assert!(!report.cells.is_empty());
}

/// Two whole *processes* racing the same store directory (the
/// `tests/workplan.rs` self-exec pattern) always leave a decodable store
/// and identical downstream reports.
#[test]
fn racing_process_writers_leave_a_decodable_store() {
    let dir = scratch_dir("process-race");
    std::fs::create_dir_all(&dir).unwrap();
    let workloads = tiny_workloads(2);
    let reference = sweep_builder()
        .build()
        .unwrap()
        .run_sweep(NETWORK, &workloads)
        .unwrap()
        .to_json();

    let exe = std::env::current_exe().expect("test binary path");
    let spawn = || {
        Command::new(&exe)
            .args(["store_race_worker_entry", "--exact", "--quiet"])
            .env(RACE_DIR_ENV, &dir)
            .stdout(Stdio::null())
            .spawn()
            .expect("spawn racer process")
    };
    let mut racers = [spawn(), spawn()];
    for racer in &mut racers {
        let status = racer.wait().expect("racer wait");
        assert!(status.success(), "racer process failed: {status}");
    }

    // The raced store serves a fresh pipeline completely: every entry the
    // two processes left behind is decodable.
    let warm = sweep_builder()
        .store(DiskStore::new(&dir).unwrap())
        .build()
        .unwrap();
    assert_eq!(
        warm.run_sweep(NETWORK, &workloads).unwrap().to_json(),
        reference
    );
    let stats = warm.cache_stats();
    assert_eq!(stats.misses, 0);
    assert_eq!(stats.hist_misses, 0);
    assert_eq!(stats.unit_misses, 0);
    assert_eq!(stats.corrupt_entries, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- the acceptance criterion -------------------------------------------

/// Worker entry point for the acceptance test: serves the wire protocol
/// with a shared `DiskStore` attached, then — when the driver marked the
/// store as warm — asserts via `CacheStats` that this process computed
/// *nothing* fresh: zero schedule optimizations, zero histogram
/// simulations, zero fresh unit executions.
#[test]
fn store_shard_worker_entry() {
    let Ok(dir) = std::env::var(WORKER_DIR_ENV) else {
        return;
    };
    let pipeline = sweep_builder()
        .store(DiskStore::new(dir).unwrap())
        .build()
        .expect("worker pipeline");
    let workloads = tiny_workloads(2);
    let plan = pipeline
        .plan_sweep(NETWORK, &workloads)
        .expect("worker plan");
    let mut stdout = std::io::stdout().lock();
    use std::io::Write as _;
    writeln!(stdout).expect("stdout newline");
    plan.serve(BufReader::new(std::io::stdin()), &mut stdout)
        .expect("serve stdio");
    if std::env::var(WORKER_EXPECT_WARM_ENV).is_ok() {
        let stats = pipeline.cache_stats();
        assert_eq!(stats.misses, 0, "warm worker must optimize no schedule");
        assert_eq!(
            stats.hist_misses, 0,
            "warm worker must simulate no histogram"
        );
        assert_eq!(
            stats.unit_misses, 0,
            "warm worker must execute no unit fresh"
        );
        assert_eq!(stats.corrupt_entries, 0);
    }
}

/// The acceptance criterion: a 2-worker `SubprocessExecutor` sweep with a
/// shared `DiskStore` performs each schedule optimization and each
/// (workload, source) histogram simulation exactly once across ALL
/// processes — once in the store-warming run, zero times in either worker
/// (each worker asserts that itself via `CacheStats`) — and a full rerun
/// of the same plan executes zero work units fresh, all runs producing
/// `SweepReport` JSON byte-identical to a cold serial run.
#[test]
fn acceptance_two_worker_sweep_over_a_shared_disk_store() {
    let dir = scratch_dir("acceptance");
    let workloads = tiny_workloads(2);
    let pairs = (workloads.len() * 2) as u64;

    // Cold serial reference, no store involved at all.
    let reference = sweep_builder()
        .build()
        .unwrap()
        .run_sweep(NETWORK, &workloads)
        .unwrap()
        .to_json();

    // Phase 1 — cold store-backed run: each schedule optimization and each
    // histogram simulation happens exactly once, and everything lands in
    // the store.
    let cold_pipeline = sweep_builder()
        .store(DiskStore::new(&dir).unwrap())
        .build()
        .unwrap();
    let cold = cold_pipeline.run_sweep(NETWORK, &workloads).unwrap();
    assert_eq!(cold.to_json(), reference);
    let cold_stats = cold_pipeline.cache_stats();
    assert_eq!(
        cold_stats.misses, pairs,
        "one optimization per (source, layer)"
    );
    assert_eq!(
        cold_stats.hist_misses, pairs,
        "one simulation per (workload, source)"
    );
    assert!(cold_stats.store_writes >= 2 * pairs);

    // Phase 2 — the same sweep across two worker *processes* sharing the
    // store.  Every worker reconstructs the pipeline over the same
    // directory and (asserted inside the worker via CacheStats) computes
    // nothing fresh: across ALL processes, each optimization and each
    // simulation has now happened exactly once.
    let exe = std::env::current_exe().expect("test binary path");
    let subprocess = SubprocessExecutor::new(exe)
        .args(["store_shard_worker_entry", "--exact", "--quiet"])
        .env(WORKER_DIR_ENV, dir.display().to_string())
        .env(WORKER_EXPECT_WARM_ENV, "1")
        .workers(2);
    let distributed_pipeline = sweep_builder()
        .store(DiskStore::new(&dir).unwrap())
        .executor(subprocess)
        .build()
        .unwrap();
    let distributed = distributed_pipeline.run_sweep(NETWORK, &workloads).unwrap();
    assert_eq!(
        distributed.to_json().into_bytes(),
        reference.clone().into_bytes(),
        "two store-sharing worker processes must re-aggregate to the serial bytes"
    );

    // Phase 3 — a full rerun of the same plan in a fresh pipeline executes
    // zero work units fresh: schedules, histograms and memoized unit
    // results all come from the store.
    let rerun_pipeline = sweep_builder()
        .store(DiskStore::new(&dir).unwrap())
        .build()
        .unwrap();
    let rerun = rerun_pipeline.run_sweep(NETWORK, &workloads).unwrap();
    assert_eq!(rerun.to_json(), reference);
    let rerun_stats = rerun_pipeline.cache_stats();
    assert_eq!(rerun_stats.misses, 0);
    assert_eq!(rerun_stats.hist_misses, 0);
    assert_eq!(rerun_stats.unit_misses, 0, "zero work units executed fresh");
    assert_eq!(rerun_stats.corrupt_entries, 0);
    assert!(rerun_stats.disk_hits >= pairs);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- CacheStats JSON golden ----------------------------------------------

/// `CacheStats::to_json` is a stable contract, golden-pinned alongside the
/// report fixtures.
#[test]
fn cache_stats_json_matches_the_golden_fixture() {
    let stats = CacheStats {
        hits: 1,
        misses: 2,
        collisions: 3,
        entries: 4,
        hist_hits: 5,
        hist_misses: 6,
        hist_collisions: 7,
        hist_entries: 8,
        unit_hits: 9,
        unit_misses: 10,
        unit_collisions: 11,
        unit_entries: 12,
        inflight_hits: 13,
        disk_hits: 14,
        disk_misses: 15,
        corrupt_entries: 16,
        store_writes: 17,
    };
    let expected = include_str!("fixtures/cache_stats.json")
        .trim_end_matches('\n')
        .to_string();
    assert_eq!(stats.to_json(), expected);
    // Default stats render all-zero in the same field order.
    assert!(CacheStats::default().to_json().starts_with("{\"hits\":0,"));
    // The wire decoder inverts the rendering exactly.
    assert_eq!(CacheStats::from_json(&stats.to_json()), Ok(stats));
    assert_eq!(
        CacheStats::from_json(&CacheStats::default().to_json()),
        Ok(CacheStats::default())
    );
    assert!(CacheStats::from_json("not json").is_err());
}
