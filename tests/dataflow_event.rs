//! Integration tests of the event-driven dataflow engine against the
//! analytic simulator — the tentpole contract: for BOTH dataflows, on ANY
//! schedule and channel configuration, the event engine performs the same
//! MAC multiset in the same per-output order as
//! `GemmProblem::simulate_with_schedule`, so the emitted depth histogram is
//! **byte-identical** and the outputs are bit-exact.  Plus the capacity-1
//! deadlock regression for the weight-stationary spill/reload path.
//!
//! `proptest` is not available offline, so this uses the workspace's
//! deterministic case generator over the seeded RNG shim.

use accel_sim::{ArrayConfig, ComputeSchedule, Dataflow, GemmProblem, Matrix, SimOptions};
use dataflow_sim::{run_dataflow, EngineConfig, EventError, TraceRecorder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use read_core::{ClusteringMode, ReadConfig, ReadOptimizer};
use read_pipeline::ScheduleSource;
use timing::DepthHistogram;

/// Deterministic case generator over the shared shim RNG.
struct Gen(StdRng);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(StdRng::seed_from_u64(seed))
    }

    fn range(&mut self, lo: usize, hi: usize) -> usize {
        self.0.gen_range(lo..hi)
    }

    fn i8(&mut self) -> i8 {
        self.0.gen::<u64>() as i8
    }
}

/// A random (problem, array, schedule, options, engine-config) case.  Row
/// counts run well past 64 and are rarely multiples of it, so the analytic
/// path's packed word-parallel kernels see ragged tail words too.
#[allow(clippy::type_complexity)]
fn random_case(
    gen: &mut Gen,
    case: usize,
) -> (
    GemmProblem,
    ArrayConfig,
    ComputeSchedule,
    SimOptions,
    EngineConfig,
) {
    let rows = gen.range(1, 100);
    let cols = gen.range(1, 10);
    let pixels = gen.range(1, 8);
    let weights = Matrix::from_fn(rows, cols, |_, _| gen.i8());
    let activations = Matrix::from_fn(rows, pixels, |_, _| gen.i8());
    let problem = GemmProblem::new(weights.clone(), activations).expect("consistent matrices");
    let array = ArrayConfig::new(gen.range(1, 7), gen.range(1, 5));
    // Alternate baseline grouping with READ-optimized schedules so the
    // engine is exercised on non-trivial row orders and column clusters.
    let schedule = if case.is_multiple_of(2) {
        ComputeSchedule::baseline(rows, cols, array.cols())
    } else {
        ReadOptimizer::new(ReadConfig {
            clustering: ClusteringMode::ClusterThenReorder,
            ..ReadConfig::default()
        })
        .schedule(&weights, array.cols())
        .expect("optimizer schedule")
    };
    let options = if case.is_multiple_of(3) {
        SimOptions::sampled(gen.range(1, pixels + 1), case as u64)
    } else {
        SimOptions::exhaustive()
    };
    let config = EngineConfig {
        channel_capacity: gen.range(1, 6),
        hop_latency: gen.range(0, 3) as u64,
    };
    (problem, array, schedule, options, config)
}

const CASES: usize = 48;

/// THE acceptance property: across random shapes (including reduction
/// depths that are not multiples of 64), schedules, pixel sampling and
/// channel configurations, the event engine's depth histogram renders to
/// the exact bytes of the analytic engine's, for both dataflows — and the
/// outputs are bit-identical.
#[test]
fn event_histograms_are_byte_identical_to_the_analytic_engine() {
    let mut gen = Gen::new(0xDF10);
    for case in 0..CASES {
        let (problem, array, schedule, options, config) = random_case(&mut gen, case);
        for dataflow in Dataflow::ALL {
            let mut analytic = DepthHistogram::new();
            let reference = problem
                .simulate_with_schedule(&array, dataflow, &schedule, &options, &mut analytic)
                .expect("analytic run");
            let mut event = DepthHistogram::new();
            let run = run_dataflow(
                &problem, &array, dataflow, &schedule, &options, &config, &mut event, None,
            )
            .expect("event run");
            assert_eq!(
                event.to_wire().into_bytes(),
                analytic.to_wire().into_bytes(),
                "case {case} {dataflow:?} {config:?}: histogram bytes diverged"
            );
            assert_eq!(
                run.outputs, reference.outputs,
                "case {case} {dataflow:?}: outputs diverged"
            );
            assert_eq!(run.simulated_pixels, reference.simulated_pixels);
            assert_eq!(run.report.dataflow, dataflow.name());
        }
    }
}

/// Deadlock regression: capacity-1 channels with the weight-stationary
/// spill/reload round trip through the psum-buffer context must terminate
/// (the PE's per-segment recv/send sequence is exactly paired with the
/// buffer's program), and still match the analytic engine — with or
/// without a trace attached.
#[test]
fn capacity_one_weight_stationary_spill_reload_terminates() {
    let mut gen = Gen::new(0xDEAD10C5);
    for case in 0..12 {
        // Force multiple row tiles so every case spills and reloads.
        let rows = gen.range(20, 80);
        let cols = gen.range(1, 6);
        let pixels = gen.range(1, 5);
        let weights = Matrix::from_fn(rows, cols, |_, _| gen.i8());
        let activations = Matrix::from_fn(rows, pixels, |_, _| gen.i8());
        let problem = GemmProblem::new(weights, activations).unwrap();
        let array = ArrayConfig::new(gen.range(1, 5), gen.range(1, 4));
        let schedule = ComputeSchedule::baseline(rows, cols, array.cols());
        let config = EngineConfig {
            channel_capacity: 1,
            hop_latency: gen.range(0, 4) as u64,
        };
        let mut trace = TraceRecorder::new();
        let run = run_dataflow(
            &problem,
            &array,
            Dataflow::WeightStationary,
            &schedule,
            &SimOptions::exhaustive(),
            &config,
            &mut accel_sim::NullObserver,
            Some(&mut trace),
        )
        .unwrap_or_else(|e| panic!("case {case}: capacity-1 WS run failed: {e}"));
        assert_eq!(run.outputs, problem.reference_output().unwrap());
        assert!(
            run.report.peak_psum_buffer > 0,
            "case {case}: multi-tile WS must spill"
        );
        dataflow_sim::json::validate(&trace.to_chrome_json())
            .unwrap_or_else(|e| panic!("case {case}: trace is not valid JSON: {e}"));
    }
}

/// The engine rejects a zero-capacity configuration up front instead of
/// deadlocking on the first send.
#[test]
fn zero_capacity_is_rejected_up_front() {
    let problem = GemmProblem::new(
        Matrix::from_fn(4, 2, |r, c| (r + c) as i8),
        Matrix::from_fn(4, 1, |r, _| r as i8),
    )
    .unwrap();
    let schedule = ComputeSchedule::baseline(4, 2, 2);
    let err = run_dataflow(
        &problem,
        &ArrayConfig::new(4, 2),
        Dataflow::OutputStationary,
        &schedule,
        &SimOptions::exhaustive(),
        &EngineConfig {
            channel_capacity: 0,
            hop_latency: 1,
        },
        &mut accel_sim::NullObserver,
        None,
    )
    .unwrap_err();
    assert!(matches!(err, EventError::ZeroCapacity), "{err}");
}
