//! Integration tests of the unified error-analysis layer: every TER/BER
//! derivation flows through the `ErrorModel` stage, covering the analytic,
//! Monte-Carlo and per-PE-variation models — convergence, permutation
//! stability, and byte-identical seed-stable reports.
//!
//! Executor-invariance is asserted against the modern `Executor`
//! strategies; the deprecated `ExecMode` shim is confined to
//! `read_pipeline::exec` with its own pinning tests.

use read_repro::prelude::*;

fn tiny_workloads(n: usize) -> Vec<LayerWorkload> {
    let config = WorkloadConfig {
        pixels_per_layer: 1,
        ..WorkloadConfig::default()
    };
    vgg16_workloads(&config).into_iter().take(n).collect()
}

fn worst_corner() -> OperatingCondition {
    OperatingCondition::aging_vt(10.0, 0.05)
}

fn baseline_histogram(workload: &LayerWorkload) -> DepthHistogram {
    ReadPipeline::builder()
        .source(Algorithm::Baseline)
        .condition(worst_corner())
        .build()
        .unwrap()
        .layer_histogram(workload, &Algorithm::Baseline)
        .unwrap()
}

// ---- Monte-Carlo convergence --------------------------------------------

#[test]
fn monte_carlo_ter_converges_to_the_analytic_ter_as_trials_grow() {
    let workload = &tiny_workloads(1)[0];
    let hist = baseline_histogram(workload);
    let condition = worst_corner();
    let analytic = DelayErrorModel::default().ter(&hist, &condition);
    assert!(analytic > 0.0);

    // Seeded, hence deterministic: each estimate's distance from the
    // analytic expectation stays within a few standard errors, and the
    // standard-error bound itself tightens as trials grow.
    let mut previous_bound = f64::INFINITY;
    for trials in [8u32, 64, 512] {
        let estimate = MonteCarloErrorModel::new(trials, 0xC0FFEE).estimate(&hist, &condition);
        let stddev = estimate.stddev.expect("Monte-Carlo estimates carry spread");
        let bound = 5.0 * stddev / f64::from(trials).sqrt() + analytic * 0.05;
        assert!(
            (estimate.ter - analytic).abs() <= bound,
            "trials={trials}: |{} - {analytic}| > {bound}",
            estimate.ter
        );
        assert!(
            bound <= previous_bound,
            "the error bound must tighten with more trials"
        );
        previous_bound = bound;
    }

    // At 512 trials the relative error is small outright.
    let tight = MonteCarloErrorModel::new(512, 0xC0FFEE).estimate(&hist, &condition);
    assert!(
        (tight.ter - analytic).abs() <= analytic * 0.25,
        "512-trial mean {} strays from analytic {analytic}",
        tight.ter
    );
}

/// `ter_stddev` is the **sample** standard deviation of the trial TERs
/// (Bessel's `n - 1` correction), as `TerEstimate::from_trials` documents —
/// asserted numerically against a hand-computed three-trial case.
#[test]
fn monte_carlo_ter_stddev_is_the_sample_stddev_of_the_trials() {
    // Hand-computed: trials [0.1, 0.4, 0.4] have mean 0.3, squared
    // deviations 0.04 + 0.01 + 0.01 = 0.06, sample variance 0.06/2 = 0.03.
    // The population divisor (n = 3) would give 0.02.
    let hand = TerEstimate::from_trials(&[0.1, 0.4, 0.4]);
    assert!((hand.ter - 0.3).abs() < 1e-15);
    assert!((hand.stddev.unwrap() - 0.03f64.sqrt()).abs() < 1e-15);
    assert!(
        (hand.stddev.unwrap() - 0.02f64.sqrt()).abs() > 1e-3,
        "the spread must not be the population stddev"
    );

    // The pipeline's Monte-Carlo model aggregates its own trials the same
    // way: a 3-trial estimate equals the hand aggregation of its 3 trial
    // samples, bit for bit.
    let hist = baseline_histogram(&tiny_workloads(1)[0]);
    let condition = worst_corner();
    let model = MonteCarloErrorModel::new(3, 0xABCD);
    let trials = model.trial_ters(&hist, &condition, 0..3);
    assert_eq!(trials.len(), 3);
    let estimate = model.estimate(&hist, &condition);
    assert_eq!(estimate, TerEstimate::from_trials(&trials));
    // Recompute the sample stddev by hand from the raw trials.
    let mean = trials.iter().sum::<f64>() / 3.0;
    let sample_var = trials.iter().map(|t| (t - mean).powi(2)).sum::<f64>() / 2.0;
    assert!((estimate.ter - mean).abs() < 1e-18);
    assert!((estimate.stddev.unwrap() - sample_var.sqrt()).abs() < 1e-18);
}

// ---- per-PE variation stability -----------------------------------------

#[test]
fn per_pe_bers_are_permutation_stable_and_seed_deterministic() {
    let workloads = tiny_workloads(2);
    let pipeline = ReadPipeline::builder()
        .source(Algorithm::Baseline)
        .condition(worst_corner())
        .build()
        .unwrap();
    // Two histograms merged in either order describe the same cycles.
    let hist_a = pipeline
        .layer_histogram(&workloads[0], &Algorithm::Baseline)
        .unwrap();
    let hist_b = pipeline
        .layer_histogram(&workloads[1], &Algorithm::Baseline)
        .unwrap();
    let mut ab = hist_a.clone();
    ab.merge(&hist_b);
    let mut ba = hist_b.clone();
    ba.merge(&hist_a);

    let model = VariationErrorModel::new(pipeline.array(), 3);
    let condition = worst_corner();
    let bers_ab = model.per_pe_bers(&ab, &condition, 1000);
    let bers_ba = model.per_pe_bers(&ba, &condition, 1000);
    assert_eq!(
        bers_ab, bers_ba,
        "per-PE BERs must not depend on histogram accumulation order"
    );
    assert_eq!(bers_ab.len(), pipeline.array().pe_count());
    // A die's PEs genuinely differ, but all BERs stay physical.
    let min = bers_ab.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = bers_ab.iter().cloned().fold(0.0, f64::max);
    assert!(max > min);
    assert!(min >= 0.0 && max <= 1.0);

    // Same seed -> same die; different seed -> different die.
    assert_eq!(
        bers_ab,
        VariationErrorModel::new(pipeline.array(), 3).per_pe_bers(&ab, &condition, 1000)
    );
    assert_ne!(
        bers_ab,
        VariationErrorModel::new(pipeline.array(), 4).per_pe_bers(&ab, &condition, 1000)
    );
}

// ---- deterministic, seed-stable reports (acceptance criterion) ----------

#[test]
fn monte_carlo_pipeline_reports_are_byte_identical_across_runs() {
    let workloads = tiny_workloads(2);
    let run = |executor: ThreadExecutor| {
        ReadPipeline::builder()
            .source(Algorithm::Baseline)
            .source(Algorithm::ClusterThenReorder(SortCriterion::SignFirst))
            .conditions(paper_conditions())
            .monte_carlo(24, 11)
            .executor(executor)
            .build()
            .unwrap()
            .run_ter("mc-determinism", &workloads)
            .unwrap()
    };
    let first = run(ThreadExecutor::new(1));
    let second = run(ThreadExecutor::new(1));
    let parallel = run(ThreadExecutor::machine());
    assert_eq!(first, second);
    assert_eq!(first.to_json().into_bytes(), second.to_json().into_bytes());
    assert_eq!(
        first.to_json().into_bytes(),
        parallel.to_json().into_bytes()
    );
    assert!(first.to_json().contains("\"ter_stddev\":"));
}

#[test]
fn variation_pipeline_reports_are_byte_identical_and_carry_the_corner() {
    let workloads = tiny_workloads(2);
    let run = || {
        ReadPipeline::builder()
            .source(Algorithm::Baseline)
            .source(Algorithm::ClusterThenReorder(SortCriterion::SignFirst))
            .condition(worst_corner())
            .pe_variation(3)
            .parallel()
            .build()
            .unwrap()
            .run_ter("pe-var-determinism", &workloads)
            .unwrap()
    };
    let first = run();
    let second = run();
    assert_eq!(first, second);
    assert_eq!(first.to_json().into_bytes(), second.to_json().into_bytes());
    assert!(first
        .rows
        .iter()
        .all(|r| r.corner.as_deref() == Some("pe-var[16x4,seed=3]")));
    assert!(first
        .to_json()
        .contains("\"corner\":\"pe-var[16x4,seed=3]\""));
}

// ---- the error-model stage is the seam --------------------------------

#[test]
fn all_three_error_models_agree_on_the_physics() {
    // The three models describe the same datapath: at a stressed corner
    // their point estimates for the same histogram agree within an order of
    // magnitude, and READ's schedule reduces all three.
    let workload = &tiny_workloads(1)[0];
    let condition = worst_corner();
    let read = Algorithm::ClusterThenReorder(SortCriterion::SignFirst);

    let models: [Box<dyn ErrorModel>; 3] = [
        Box::new(DelayErrorModel::default()),
        Box::new(MonteCarloErrorModel::new(64, 1)),
        Box::new(VariationErrorModel::new(&ArrayConfig::paper_default(), 1)),
    ];
    let pipeline = ReadPipeline::builder()
        .source(Algorithm::Baseline)
        .source(read)
        .condition(condition)
        .build()
        .unwrap();
    let base_hist = pipeline
        .layer_histogram(workload, &Algorithm::Baseline)
        .unwrap();
    let read_hist = pipeline.layer_histogram(workload, &read).unwrap();

    let analytic_base = models[0].ter(&base_hist, &condition);
    for model in &models {
        let base = model.ter(&base_hist, &condition);
        let optimized = model.ter(&read_hist, &condition);
        assert!(base > 0.0, "{}", model.name());
        assert!(
            base < analytic_base * 10.0 && base > analytic_base / 10.0,
            "{}: {base} vs analytic {analytic_base}",
            model.name()
        );
        assert!(
            optimized < base,
            "{}: READ must reduce the TER ({optimized} vs {base})",
            model.name()
        );
    }
}
