//! Integration tests of the corner/die sweep subsystem: the sharded sweep
//! is byte-identical to the equivalent sequence of single-corner unsharded
//! pipeline runs, the schedule cache is reused across cells, and sweeps are
//! deterministic across execution modes.
//!
//! Executor-invariance is asserted against the modern `Executor` strategies
//! (`SerialExecutor` / `ThreadExecutor`); the deprecated `ExecMode` shim is
//! confined to `read_pipeline::exec` with its own pinning tests.

use read_repro::prelude::*;

fn tiny_workloads(n: usize) -> Vec<LayerWorkload> {
    let config = WorkloadConfig {
        pixels_per_layer: 1,
        ..WorkloadConfig::default()
    };
    vgg16_workloads(&config).into_iter().take(n).collect()
}

fn sweep_sources() -> [Algorithm; 2] {
    [
        Algorithm::Baseline,
        Algorithm::ClusterThenReorder(SortCriterion::SignFirst),
    ]
}

fn sweep_pipeline(plan: SweepPlan, executor: impl Executor + 'static) -> ReadPipeline {
    ReadPipeline::builder()
        .source(sweep_sources()[0])
        .source(sweep_sources()[1])
        .sweep(plan)
        .executor(executor)
        .build()
        .unwrap()
}

// ---- the acceptance criterion -------------------------------------------

/// A sharded Monte-Carlo sweep must reproduce, cell for cell and byte for
/// byte, what a sequence of standalone single-condition unsharded pipeline
/// runs produces: same `LayerReport` values, same `to_json()` bytes.
#[test]
fn sharded_sweep_is_byte_identical_to_single_corner_unsharded_runs() {
    let workloads = tiny_workloads(2);
    let conditions = [
        OperatingCondition::vt(0.05),
        OperatingCondition::aging_vt(10.0, 0.05),
    ];
    let dies = [2u64, 5];
    let (trials, seed) = (24u32, 11u64);

    // The sweep: 2 conditions x (typical + 2 dies) = 6 cells, the typical
    // cells' 24 trials split into 7-trial shards (4 shards, uneven tail).
    let plan = SweepPlan::new()
        .conditions(conditions)
        .typical()
        .dies(dies)
        .monte_carlo(trials, seed)
        .trials_per_shard(7);
    let sweep = sweep_pipeline(plan, SerialExecutor)
        .run_sweep("sweep", &workloads)
        .unwrap();
    assert_eq!(sweep.cells.len(), 6);

    // The equivalent sequence of single-corner unsharded runs, in the same
    // die-major cell order.
    for (ci, cell) in sweep.cells.iter().enumerate() {
        let condition = conditions[ci % conditions.len()];
        let mut builder = ReadPipeline::builder()
            .source(sweep_sources()[0])
            .source(sweep_sources()[1])
            .condition(condition);
        builder = match ci / conditions.len() {
            0 => builder.monte_carlo(trials, seed), // unsharded
            die => builder.pe_variation(dies[die - 1]),
        };
        let single = builder
            .build()
            .unwrap()
            .run_ter("sweep", &workloads)
            .unwrap();
        assert_eq!(
            cell.rows, single.rows,
            "cell {ci} ({}/{})",
            cell.die, cell.condition
        );
        assert_eq!(
            cell.as_network_report("sweep").to_json().into_bytes(),
            single.to_json().into_bytes(),
            "cell {ci} must render byte-identically to the standalone run"
        );
    }

    // Monte-Carlo cells really were sharded; per-PE cells were not.
    assert!(sweep.cells[..2].iter().all(|c| c.shards == 4));
    assert!(sweep.cells[2..].iter().all(|c| c.shards == 1));
}

/// Changing only the shard layout never changes the report bytes.
#[test]
fn shard_layout_does_not_change_the_report() {
    let workloads = tiny_workloads(1);
    let base = SweepPlan::new()
        .condition(OperatingCondition::aging_vt(10.0, 0.05))
        .monte_carlo(20, 3);
    let unsharded = sweep_pipeline(base.clone(), SerialExecutor)
        .run_sweep("shards", &workloads)
        .unwrap();
    for per_shard in [1u32, 3, 7, 20, 64] {
        let sharded = sweep_pipeline(base.clone().trials_per_shard(per_shard), SerialExecutor)
            .run_sweep("shards", &workloads)
            .unwrap();
        // Rows and their rendering are identical; only the recorded shard
        // count differs.
        for (a, b) in unsharded.cells.iter().zip(&sharded.cells) {
            assert_eq!(a.rows, b.rows, "trials_per_shard={per_shard}");
        }
        assert_eq!(
            unsharded.worst, sharded.worst,
            "trials_per_shard={per_shard}"
        );
    }
}

/// Serial and parallel sweeps produce byte-identical reports.
#[test]
fn parallel_sweep_equals_serial_sweep() {
    let workloads = tiny_workloads(2);
    let plan = SweepPlan::new()
        .conditions([
            OperatingCondition::ideal(),
            OperatingCondition::aging_vt(10.0, 0.05),
        ])
        .typical()
        .die(9)
        .monte_carlo(16, 2)
        .trials_per_shard(5);
    let serial = sweep_pipeline(plan.clone(), SerialExecutor)
        .run_sweep("exec", &workloads)
        .unwrap();
    let parallel = sweep_pipeline(plan, ThreadExecutor::machine())
        .run_sweep("exec", &workloads)
        .unwrap();
    assert_eq!(serial, parallel);
    assert_eq!(
        serial.to_json().into_bytes(),
        parallel.to_json().into_bytes()
    );
}

// ---- schedule/histogram-cache reuse across cells -------------------------

/// A sweep optimizes *and simulates* each (source, layer) pair exactly once
/// — histograms are corner-independent, so the whole grid reuses one
/// simulation pass per pair — and distinct-dimension workloads never
/// collide.
#[test]
fn sweep_reuses_the_schedule_and_histogram_caches_across_cells() {
    // Two workloads with distinct dimensions (64->64 vs 128->128 channels).
    let all = vgg16_workloads(&WorkloadConfig {
        pixels_per_layer: 1,
        ..WorkloadConfig::default()
    });
    let workloads: Vec<LayerWorkload> = all
        .into_iter()
        .filter(|w| ["conv1_2", "conv2_3"].contains(&w.name.as_str()))
        .collect();
    assert_eq!(workloads.len(), 2);
    assert_ne!(
        (workloads[0].weights.rows(), workloads[0].weights.cols()),
        (workloads[1].weights.rows(), workloads[1].weights.cols()),
        "the two layers must have distinct dimensions"
    );

    let plan = SweepPlan::new()
        .conditions([
            OperatingCondition::ideal(),
            OperatingCondition::vt(0.05),
            OperatingCondition::aging_vt(10.0, 0.05),
        ])
        .typical()
        .die(1)
        .monte_carlo(8, 0);
    let pipeline = sweep_pipeline(plan, SerialExecutor);
    let pairs = 2 * 2; // workloads x sources
    let mc_cells = 3; // typical-die cells carry the Monte-Carlo budget

    pipeline.run_sweep("cache", &workloads).unwrap();
    let stats = pipeline.cache_stats();
    // One optimization and one simulation pass per (source, layer) group —
    // regardless of the 6-cell grid — with zero collisions and exactly one
    // entry per group in each cache.
    assert_eq!(stats.misses, pairs as u64);
    assert_eq!(stats.collisions, 0);
    assert_eq!(stats.entries, pairs);
    assert_eq!(stats.hist_misses, pairs as u64);
    assert_eq!(stats.hist_collisions, 0);
    assert_eq!(stats.hist_entries, pairs);
    // Monte-Carlo shard units re-read every pair's histogram from the cache.
    assert_eq!(stats.hist_hits, (mc_cells * pairs) as u64);
    // Each Monte-Carlo cell's single shard was executed fresh and memoized.
    assert_eq!(stats.unit_misses, mc_cells as u64);
    assert_eq!(stats.unit_hits, 0);
    assert_eq!(stats.unit_entries, mc_cells);

    // A second sweep on the same pipeline computes nothing fresh: histogram
    // units hit the histogram cache, and the Monte-Carlo shards are served
    // whole from the unit cache (so they no longer even re-read the
    // per-pair histograms).
    pipeline.run_sweep("cache", &workloads).unwrap();
    let again = pipeline.cache_stats();
    assert_eq!(again.misses, stats.misses);
    assert_eq!(again.hist_misses, stats.hist_misses);
    assert_eq!(again.unit_misses, stats.unit_misses);
    assert_eq!(again.hist_hits, stats.hist_hits + pairs as u64);
    assert_eq!(again.unit_hits, mc_cells as u64);
    assert_eq!(again.collisions, 0);
    assert_eq!(again.hist_collisions, 0);
    assert_eq!(again.unit_collisions, 0);
}

// ---- plan plumbing ------------------------------------------------------

#[test]
fn run_sweep_requires_a_configured_plan() {
    let pipeline = ReadPipeline::builder()
        .baseline()
        .condition(OperatingCondition::ideal())
        .build()
        .unwrap();
    let err = pipeline.run_sweep("none", &tiny_workloads(1)).unwrap_err();
    assert!(
        matches!(err, PipelineError::Missing { what: "sweep plan" }),
        "{err}"
    );
    // run_sweep_with works without a configured plan.
    let plan = SweepPlan::new().condition(OperatingCondition::ideal());
    let report = pipeline
        .run_sweep_with("adhoc", &tiny_workloads(1), &plan)
        .unwrap();
    assert_eq!(report.cells.len(), 1);
    assert_eq!(report.cells[0].error_model, "delay-model");
}

#[test]
fn sweep_only_pipelines_build_without_conditions() {
    let plan = SweepPlan::new().conditions(paper_conditions()).dies([1]);
    let pipeline = ReadPipeline::builder()
        .baseline()
        .sweep(plan)
        .build()
        .unwrap();
    let report = pipeline
        .run_sweep("no-conditions", &tiny_workloads(1))
        .unwrap();
    assert_eq!(report.cells.len(), 6);
    assert!(report
        .cells
        .iter()
        .all(|c| c.die == "pe-var[16x4,seed=1]" && c.error_model == "pe-var[16x4,seed=1]"));
    // An invalid plan is rejected at build time.
    let err = ReadPipeline::builder()
        .baseline()
        .sweep(SweepPlan::new())
        .build()
        .unwrap_err();
    assert!(err.to_string().contains("sweep plan"), "{err}");
}

/// A sweep-only pipeline has no conditions of its own: the single-condition
/// experiments must refuse to run rather than return an empty report.
#[test]
fn sweep_only_pipelines_reject_condition_experiments() {
    let plan = SweepPlan::new().condition(OperatingCondition::ideal());
    let pipeline = ReadPipeline::builder()
        .baseline()
        .sweep(plan)
        .build()
        .unwrap();
    let workloads = tiny_workloads(1);
    let err = pipeline.run_ter("no-conditions", &workloads).unwrap_err();
    assert!(
        matches!(
            err,
            PipelineError::Missing {
                what: "operating conditions"
            }
        ),
        "{err}"
    );
    let dataset = read_repro::qnn::SyntheticDatasetBuilder::new(2, [3, 8, 8])
        .samples_per_class(1)
        .build()
        .unwrap();
    let model = read_repro::qnn::models::vgg11_cifar_scaled(8, 2, 1).unwrap();
    let err = pipeline
        .run_accuracy_for(&model, "no-conditions", &dataset, &workloads, 1)
        .unwrap_err();
    assert!(
        matches!(
            err,
            PipelineError::Missing {
                what: "operating conditions"
            }
        ),
        "{err}"
    );
    // The sweep itself still runs.
    assert_eq!(pipeline.run_sweep("ok", &workloads).unwrap().cells.len(), 1);
}

#[test]
fn sweep_summary_and_curves_read_off_the_grid() {
    let workloads = tiny_workloads(1);
    let plan = SweepPlan::new().conditions(paper_conditions());
    let sweep = sweep_pipeline(plan, SerialExecutor)
        .run_sweep("summary", &workloads)
        .unwrap();

    // Worst case per algorithm, in source order: the stressed corner wins.
    assert_eq!(sweep.worst.len(), 2);
    assert_eq!(sweep.worst[0].algorithm, "baseline");
    assert_eq!(sweep.worst[0].condition, "Aging&VT-5%");
    assert!(sweep.worst[0].ter >= sweep.worst[1].ter);
    assert_eq!(
        sweep.worst_case("baseline").unwrap().ter,
        sweep.worst[0].ter
    );

    // The TER-vs-corner curve is monotone from Ideal to the worst corner
    // for the monotone paper conditions.
    let curve: Vec<f64> = sweep
        .ter_curve(&workloads[0].name, "baseline")
        .map(|(_, ter)| ter)
        .collect();
    assert_eq!(curve.len(), 6);
    assert!(curve[5] >= curve[0]);
    assert_eq!(curve[5], sweep.worst[0].ter);

    // Cell lookup is (die, condition)-keyed.
    let cell = sweep.cell("typical", "Aging&VT-5%").unwrap();
    assert_eq!(cell.rows.len(), 2);
    assert!(sweep.cell("typical", "nope").is_none());
}
