//! Cross-crate integration tests: the full READ pipeline from a network
//! layer, through the optimizer, onto the simulated array, into the timing
//! model and the error-injection accuracy evaluation.

use accel_sim::{ArrayConfig, Dataflow, GemmProblem, Matrix, NullObserver, SimOptions};
use qnn::init::{synthetic_activations, WeightInit};
use qnn::models;
use read_core::{ClusteringMode, LayerSchedule, ReadConfig, ReadOptimizer, SortCriterion};
use timing::{ber_from_ter, paper_conditions, OperatingCondition, TerEstimator};

fn synthetic_layer(reduction: usize, channels: usize, pixels: usize, seed: u64) -> GemmProblem {
    let mut init = WeightInit::new(seed);
    let weights = Matrix::from_fn(reduction, channels, |_, _| init.weight(reduction));
    let acts = synthetic_activations(reduction * pixels, 0.45, seed + 1);
    let activations = Matrix::from_fn(reduction, pixels, |r, p| acts[r * pixels + p]);
    GemmProblem::new(weights, activations).expect("consistent matrices")
}

fn read_schedule(problem: &GemmProblem, cols: usize) -> read_core::LayerSchedule {
    ReadOptimizer::new(ReadConfig {
        criterion: SortCriterion::SignFirst,
        clustering: ClusteringMode::ClusterThenReorder,
        ..ReadConfig::default()
    })
    .optimize(problem.weights(), cols)
    .expect("optimizable")
}

#[test]
fn read_schedule_preserves_layer_outputs_bit_exactly() {
    let problem = synthetic_layer(288, 32, 6, 1);
    let array = ArrayConfig::paper_default();
    let schedule = read_schedule(&problem, array.cols());
    let mut obs = NullObserver;
    let baseline = problem
        .simulate(&array, Dataflow::OutputStationary, &SimOptions::exhaustive(), &mut obs)
        .unwrap();
    let optimized = problem
        .simulate_with_schedule(
            &array,
            Dataflow::OutputStationary,
            &schedule.to_compute_schedule(),
            &SimOptions::exhaustive(),
            &mut obs,
        )
        .unwrap();
    assert_eq!(baseline.outputs, optimized.outputs);
    assert_eq!(baseline.outputs, problem.reference_output().unwrap());
}

#[test]
fn read_reduces_ter_under_stress_and_never_hurts_at_nominal() {
    let problem = synthetic_layer(576, 16, 4, 3);
    let array = ArrayConfig::paper_default();
    let schedule = read_schedule(&problem, array.cols()).to_compute_schedule();
    let estimator = TerEstimator::new().with_array(array);

    let stressed = OperatingCondition::aging_vt(10.0, 0.05);
    let base = estimator.analyze(&problem, &stressed).unwrap();
    let read = estimator
        .analyze_with_schedule(&problem, &schedule, &stressed)
        .unwrap();
    assert!(base.ter > 0.0);
    assert!(
        read.ter < base.ter / 2.0,
        "READ should reduce TER by well over 2x, got {} vs {}",
        read.ter,
        base.ter
    );
    assert!(read.sign_flip_rate < base.sign_flip_rate);

    let ideal = OperatingCondition::ideal();
    let base_ideal = estimator.analyze(&problem, &ideal).unwrap();
    let read_ideal = estimator
        .analyze_with_schedule(&problem, &schedule, &ideal)
        .unwrap();
    assert!(read_ideal.ter <= base_ideal.ter * 1.01 + 1e-12);
}

#[test]
fn ter_ordering_follows_pvta_stress_for_both_schedules() {
    let problem = synthetic_layer(288, 8, 3, 9);
    let array = ArrayConfig::paper_default();
    let schedule = read_schedule(&problem, array.cols()).to_compute_schedule();
    let estimator = TerEstimator::new().with_array(array);
    for schedule in [None, Some(&schedule)] {
        let ters: Vec<f64> = paper_conditions()
            .iter()
            .map(|c| match schedule {
                None => estimator.analyze(&problem, c).unwrap().ter,
                Some(s) => estimator.analyze_with_schedule(&problem, s, c).unwrap().ter,
            })
            .collect();
        // Ideal is the most benign corner; the combined aging + 5% corner is
        // the worst.
        assert!(ters[0] <= ters.iter().cloned().fold(f64::INFINITY, f64::min) + 1e-18);
        assert!((ters[5] - ters.iter().cloned().fold(0.0, f64::max)).abs() < 1e-18);
    }
}

#[test]
fn vgg_layer_matrices_flow_through_the_whole_stack() {
    // Take the real VGG-16 layer shapes, build the weight matrix from the
    // executable model's conv layer, optimize, and verify the LUT describes
    // exactly the schedule the simulator executes.
    let model = models::vgg16_cifar_scaled(16, 10, 5).unwrap();
    let conv = model.conv_layers()[4];
    let weights = conv.weight_matrix();
    let schedule = ReadOptimizer::new(ReadConfig::default())
        .optimize(&weights, 4)
        .unwrap();
    let lut = schedule.lut().unwrap();
    assert_eq!(lut.num_clusters(), schedule.clusters().len());
    for (ci, cluster) in schedule.clusters().iter().enumerate() {
        for (pos, &row) in cluster.order.iter().enumerate() {
            assert_eq!(lut.lookup(ci, pos), Some(row));
        }
    }
    // The schedule is valid for the layer's GEMM dimensions.
    assert!(schedule
        .to_compute_schedule()
        .validate(weights.rows(), weights.cols())
        .is_ok());
}

#[test]
fn ber_formula_connects_layer_ter_to_activation_error_rate() {
    let problem = synthetic_layer(1152, 8, 2, 21);
    let estimator = TerEstimator::new();
    let report = estimator
        .analyze(&problem, &OperatingCondition::aging_vt(10.0, 0.05))
        .unwrap();
    let ber = ber_from_ter(report.ter, 1152);
    assert!(ber >= report.ter);
    assert!(ber <= 1.0);
    assert!((report.ber(1152) - ber).abs() < 1e-15);
}

#[test]
fn baseline_layer_schedule_matches_compute_schedule_baseline() {
    let schedule = LayerSchedule::baseline(32, 12, 4);
    let compute = schedule.to_compute_schedule();
    let direct = accel_sim::ComputeSchedule::baseline(32, 12, 4);
    assert_eq!(compute.output_channel_order(), direct.output_channel_order());
    assert_eq!(compute.groups().len(), direct.groups().len());
}
