//! Cross-crate integration tests: the full READ pipeline from a network
//! layer, through the optimizer, onto the simulated array, into the timing
//! model and the error-injection accuracy evaluation — all driven through
//! the unified `ReadPipeline` API.

use qnn::init::{synthetic_activations, WeightInit};
use qnn::models;
use read_repro::prelude::*;

fn synthetic_layer(reduction: usize, channels: usize, pixels: usize, seed: u64) -> LayerWorkload {
    let mut init = WeightInit::new(seed);
    let weights = Matrix::from_fn(reduction, channels, |_, _| init.weight(reduction));
    let acts = synthetic_activations(reduction * pixels, 0.45, seed + 1);
    let activations = Matrix::from_fn(reduction, pixels, |r, p| acts[r * pixels + p]);
    LayerWorkload::from_matrices("synthetic", weights, activations).expect("consistent matrices")
}

fn read_algorithm() -> Algorithm {
    Algorithm::ClusterThenReorder(SortCriterion::SignFirst)
}

fn paper_pipeline() -> ReadPipeline {
    ReadPipeline::builder()
        .source(Algorithm::Baseline)
        .source(read_algorithm())
        .conditions(paper_conditions())
        .build()
        .expect("valid pipeline")
}

#[test]
fn read_schedule_preserves_layer_outputs_bit_exactly() {
    let workload = synthetic_layer(288, 32, 6, 1);
    let pipeline = paper_pipeline();
    let baseline = pipeline
        .layer_outputs(&workload, &Algorithm::Baseline)
        .unwrap();
    let optimized = pipeline
        .layer_outputs(&workload, &read_algorithm())
        .unwrap();
    assert_eq!(baseline, optimized);
    assert_eq!(baseline, workload.problem().reference_output().unwrap());
}

#[test]
fn read_reduces_ter_under_stress_and_never_hurts_at_nominal() {
    let workload = synthetic_layer(576, 16, 4, 3);
    let pipeline = paper_pipeline();

    let stressed = OperatingCondition::aging_vt(10.0, 0.05);
    let base = pipeline
        .layer_ter(&workload, &Algorithm::Baseline, &stressed)
        .unwrap();
    let read = pipeline
        .layer_ter(&workload, &read_algorithm(), &stressed)
        .unwrap();
    assert!(base > 0.0);
    assert!(
        read < base / 2.0,
        "READ should reduce TER by well over 2x, got {read} vs {base}"
    );

    // The sign-flip rate (schedule property) drops too.
    let base_hist = pipeline
        .layer_histogram(&workload, &Algorithm::Baseline)
        .unwrap();
    let read_hist = pipeline
        .layer_histogram(&workload, &read_algorithm())
        .unwrap();
    assert!(read_hist.sign_flip_rate() < base_hist.sign_flip_rate());

    let ideal = OperatingCondition::ideal();
    let base_ideal = pipeline
        .layer_ter(&workload, &Algorithm::Baseline, &ideal)
        .unwrap();
    let read_ideal = pipeline
        .layer_ter(&workload, &read_algorithm(), &ideal)
        .unwrap();
    assert!(read_ideal <= base_ideal * 1.01 + 1e-12);
}

#[test]
fn ter_ordering_follows_pvta_stress_for_both_schedules() {
    let workload = synthetic_layer(288, 8, 3, 9);
    let pipeline = paper_pipeline();
    let report = pipeline
        .run_ter("pvta-ordering", std::slice::from_ref(&workload))
        .unwrap();
    for algorithm in ["baseline", &read_algorithm().name()] {
        let ters: Vec<f64> = report
            .rows
            .iter()
            .filter(|r| r.algorithm == algorithm)
            .map(|r| r.ter)
            .collect();
        assert_eq!(ters.len(), 6, "one row per paper corner");
        // Ideal is the most benign corner; the combined aging + 5% corner is
        // the worst.
        assert!(ters[0] <= ters.iter().cloned().fold(f64::INFINITY, f64::min) + 1e-18);
        assert!((ters[5] - ters.iter().cloned().fold(0.0, f64::max)).abs() < 1e-18);
    }
}

#[test]
fn vgg_layer_matrices_flow_through_the_whole_stack() {
    // Take the real VGG-16 layer shapes, build the weight matrix from the
    // executable model's conv layer, optimize, and verify the LUT describes
    // exactly the schedule the simulator executes.
    let model = models::vgg16_cifar_scaled(16, 10, 5).unwrap();
    let conv = model.conv_layers()[4];
    let weights = conv.weight_matrix();
    let schedule = ReadOptimizer::new(ReadConfig::default())
        .optimize(&weights, 4)
        .unwrap();
    let lut = schedule.lut().unwrap();
    assert_eq!(lut.num_clusters(), schedule.clusters().len());
    for (ci, cluster) in schedule.clusters().iter().enumerate() {
        for (pos, &row) in cluster.order.iter().enumerate() {
            assert_eq!(lut.lookup(ci, pos), Some(row));
        }
    }
    // The same optimizer used as a pipeline schedule source produces exactly
    // the schedule the LUT describes.
    let optimizer = ReadOptimizer::new(ReadConfig::default());
    let from_source = ScheduleSource::schedule(&optimizer, &weights, 4).unwrap();
    assert_eq!(from_source, schedule.to_compute_schedule());
    assert!(from_source.validate(weights.rows(), weights.cols()).is_ok());
}

#[test]
fn ber_formula_connects_layer_ter_to_activation_error_rate() {
    let workload = synthetic_layer(1152, 8, 2, 21);
    let pipeline = paper_pipeline();
    let report = pipeline
        .run_ter("ber-formula", std::slice::from_ref(&workload))
        .unwrap();
    let row = report
        .rows
        .iter()
        .find(|r| r.algorithm == "baseline" && r.condition == "Aging&VT-5%")
        .expect("worst-corner baseline row");
    assert!(row.ber >= row.ter);
    assert!(row.ber <= 1.0);
    assert!((ber_from_ter(row.ter, row.macs_per_output) - row.ber).abs() < 1e-15);
    assert_eq!(row.macs_per_output, 1152);
}

#[test]
fn baseline_layer_schedule_matches_compute_schedule_baseline() {
    let schedule = LayerSchedule::baseline(32, 12, 4);
    let compute = schedule.to_compute_schedule();
    let direct = ComputeSchedule::baseline(32, 12, 4);
    assert_eq!(
        compute.output_channel_order(),
        direct.output_channel_order()
    );
    assert_eq!(compute.groups().len(), direct.groups().len());
    // The pipeline's Baseline source produces the same schedule.
    let weights = Matrix::from_fn(32, 12, |r, c| ((r * 3 + c) % 7) as i8 - 3);
    let from_source = ScheduleSource::schedule(&Baseline, &weights, 4).unwrap();
    assert_eq!(from_source, direct);
}
