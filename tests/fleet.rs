//! End-to-end tests of the multi-machine execution layer — the PR-8
//! acceptance criteria: a shared artifact-store daemon (`StoreServer`) plus
//! two fleet workers (`WorkerServer`) — one rigged to die mid-stream —
//! driven by a `SocketExecutor` must produce a `SweepReport` byte-identical
//! to `SerialExecutor`, with the lost unit retried on the survivor and the
//! death counted; a warm rerun against the shared `RemoteStore` then
//! executes zero fresh units.  Also covered: `FlakyExecutor` over the
//! socket transport (reorders aggregate byte-identically, losses fail
//! loudly) and bulk-request routing through a `read-serve` daemon with a
//! fleet configured.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use read_repro::prelude::*;

/// A unique, empty scratch directory for one test.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("read-fleet-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The sweep request every fleet test ships to its workers: 2 VGG-16
/// layers, baseline vs READ, ideal + stress corners, typical die + one
/// per-PE die, a sharded Monte-Carlo budget — 12 units.
fn fleet_request(network: &str) -> ServeRequest {
    let mut request = ServeRequest::sweep(network);
    request.pixels = 1;
    request.corners = vec![CornerSpec::ideal(), CornerSpec::aging_vt(10.0, 0.05)];
    request.dies = vec![5];
    request.mc = Some(McSpec {
        trials: 24,
        seed: 11,
        trials_per_shard: 7,
    });
    request
}

/// The driver-side mirror of [`fleet_request`]: the same experiment as a
/// local pipeline.  Must stay in sync with the request — same plan ⇒ same
/// unit encodings on the wire ⇒ same store keys as the workers'.
fn fleet_pipeline(
    request: &ServeRequest,
    store: Arc<dyn ArtifactStore>,
    executor: impl Executor + 'static,
) -> (ReadPipeline, Vec<LayerWorkload>) {
    let config = WorkloadConfig {
        pixels_per_layer: request.pixels,
        seed: request.workload_seed,
        ..WorkloadConfig::default()
    };
    let workloads = vgg16_workloads_prefix(&config, request.layers);
    let mut plan = SweepPlan::new().conditions(request.corners.iter().map(CornerSpec::resolve));
    if request.typical {
        plan = plan.typical();
    }
    plan = plan.dies(request.dies.iter().copied());
    if let Some(mc) = &request.mc {
        plan = plan.monte_carlo(mc.trials, mc.seed);
        if mc.trials_per_shard > 0 {
            plan = plan.trials_per_shard(mc.trials_per_shard);
        }
    }
    let pipeline = ReadPipeline::builder()
        .source(Algorithm::Baseline)
        .source(Algorithm::ClusterThenReorder(SortCriterion::SignFirst))
        .sweep(plan)
        .store_arc(store)
        .executor(executor)
        .build()
        .unwrap();
    (pipeline, workloads)
}

// ---- the acceptance criterion -------------------------------------------

/// A fleet run with an injected mid-stream worker death produces a
/// `SweepReport` byte-identical to `SerialExecutor` — the lost unit is
/// retried on the survivor, the death and retry are observable in
/// `FleetStats`, and a warm rerun against the fleet's shared store
/// executes zero fresh units.
#[test]
fn fleet_with_mid_stream_worker_death_matches_serial_and_reruns_warm() {
    let dir = scratch_dir("death");
    let request = fleet_request("fleet-death");

    // Serial reference on a private in-memory store.
    let (reference_pipeline, workloads) =
        fleet_pipeline(&request, Arc::new(MemoryStore::new()), SerialExecutor);
    let reference = reference_pipeline
        .run_sweep(&request.network, &workloads)
        .unwrap()
        .to_json();

    // One shared store daemon; two workers attached to its namespace, one
    // rigged to serve a single unit and then drop its connection without
    // replying — a mid-stream crash as the driver sees it.
    let store = StoreServer::spawn("127.0.0.1:0", Arc::new(DiskStore::new(&dir).unwrap())).unwrap();
    let store_addr = store.addr().to_string();
    let worker_store =
        || -> Arc<dyn ArtifactStore> { Arc::new(RemoteStore::connect(&store_addr).unwrap()) };
    let healthy = WorkerServer::spawn(
        "127.0.0.1:0",
        WorkerConfig {
            store: Some(worker_store()),
            die_after_units: None,
        },
    )
    .unwrap();
    let flaky = WorkerServer::spawn(
        "127.0.0.1:0",
        WorkerConfig {
            store: Some(worker_store()),
            die_after_units: Some(1),
        },
    )
    .unwrap();

    // Drive the fleet through the socket executor.
    let executor = SocketExecutor::new(
        request.encode(),
        [healthy.addr().to_string(), flaky.addr().to_string()],
    )
    .liveness_timeout(Duration::from_secs(30));
    let stats = executor.stats();
    let (fleet_pipe, workloads) = fleet_pipeline(&request, worker_store(), executor);
    let distributed = fleet_pipe.run_sweep(&request.network, &workloads).unwrap();
    assert_eq!(
        distributed.to_json().into_bytes(),
        reference.clone().into_bytes(),
        "fleet bytes must match serial despite the mid-stream death"
    );
    assert!(
        stats.worker_deaths() >= 1,
        "the rigged worker must have died mid-stream"
    );
    assert!(
        stats.retried_units() >= 1,
        "the lost unit must have been retried on the survivor"
    );

    // Warm rerun: a fresh serial pipeline on the fleet's shared store is
    // pure aggregation — zero fresh schedules, histograms, or units.
    let (warm_pipeline, workloads) = fleet_pipeline(&request, worker_store(), SerialExecutor);
    let warm = warm_pipeline
        .run_sweep(&request.network, &workloads)
        .unwrap();
    assert_eq!(warm.to_json(), reference);
    let warm_stats = warm_pipeline.cache_stats();
    assert_eq!(warm_stats.misses, 0, "schedules came from the fleet store");
    assert_eq!(
        warm_stats.hist_misses, 0,
        "histograms came from the fleet store"
    );
    assert_eq!(
        warm_stats.unit_misses, 0,
        "no unit ran again after the fleet run"
    );

    // Teardown: the healthy worker drains clean; the rigged worker reports
    // its own death; the store daemon drains clean.
    WorkerServer::shutdown_at(&healthy.addr().to_string()).unwrap();
    healthy.join().unwrap();
    let death = flaky.join().unwrap_err();
    assert!(
        death.to_string().contains("died"),
        "the rigged worker must report its injected death: {death}"
    );
    let remote = RemoteStore::connect(&store_addr).unwrap();
    remote.shutdown_daemon().unwrap();
    store.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---- flaky transport over the socket executor ----------------------------

/// `FlakyExecutor` over the socket transport, swept across dispatch
/// windows (lock-step, shallow, and deep pipelining): reordered results
/// still aggregate byte-identically to serial, while dropped results are
/// refused loudly — never a silently short report.
#[test]
fn flaky_socket_transport_reaggregates_or_fails_loudly() {
    let request = fleet_request("fleet-flaky");
    let worker = WorkerServer::spawn("127.0.0.1:0", WorkerConfig::default()).unwrap();

    let (pipeline, workloads) =
        fleet_pipeline(&request, Arc::new(MemoryStore::new()), SerialExecutor);
    let reference = pipeline
        .run_sweep(&request.network, &workloads)
        .unwrap()
        .to_json();
    let plan = pipeline.plan_sweep(&request.network, &workloads).unwrap();

    for window in [1usize, 2, 8] {
        let shuffled = FlakyExecutor::new(
            SocketExecutor::new(request.encode(), [worker.addr().to_string()]).window(window),
            9,
        )
        .shuffle(true);
        let results = shuffled.execute(&plan, 0..plan.len()).unwrap();
        let report = plan.aggregate(results).unwrap().into_sweep().unwrap();
        assert_eq!(
            report.to_json(),
            reference,
            "window={window}: shuffled fleet results must reaggregate to the serial bytes"
        );

        // Dropping results over the same transport must fail loudly.
        let lossy = FlakyExecutor::new(
            SocketExecutor::new(request.encode(), [worker.addr().to_string()]).window(window),
            9,
        )
        .drop_per_mille(1000);
        let results = lossy.execute(&plan, 0..plan.len()).unwrap();
        assert!(
            lossy.dropped() > 0,
            "window={window}: the injection rate must drop something"
        );
        assert!(
            plan.aggregate(results).is_err(),
            "window={window}: lost results must be refused, not silently omitted"
        );
    }

    WorkerServer::shutdown_at(&worker.addr().to_string()).unwrap();
    worker.join().unwrap();
}

// ---- windowed dispatch ----------------------------------------------------

/// A TCP forwarder that holds each accepted connection for `delay` before
/// dialing `upstream` — it hands the other worker a deterministic head
/// start at claiming units, without touching the bytes.
fn slow_start_proxy(upstream: std::net::SocketAddr, delay: Duration) -> String {
    use std::net::{Shutdown, TcpListener, TcpStream};
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        for conn in listener.incoming() {
            let Ok(client) = conn else { break };
            std::thread::spawn(move || {
                std::thread::sleep(delay);
                let Ok(server) = TcpStream::connect(upstream) else {
                    let _ = client.shutdown(Shutdown::Both);
                    return;
                };
                let mut up_rx = client.try_clone().unwrap();
                let mut up_tx = server.try_clone().unwrap();
                let pump = std::thread::spawn(move || {
                    let _ = std::io::copy(&mut up_rx, &mut up_tx);
                    let _ = up_tx.shutdown(Shutdown::Write);
                });
                let (mut down_rx, mut down_tx) = (server, client);
                let _ = std::io::copy(&mut down_rx, &mut down_tx);
                let _ = down_tx.shutdown(Shutdown::Write);
                let _ = pump.join();
            });
        }
    });
    addr.to_string()
}

/// A worker that dies with a full window of unanswered units: every
/// in-flight unit must be requeued and completed on the survivor, the
/// recovery must be observable in the new `FleetStats` counters, and the
/// report must still be byte-identical to serial.
#[test]
fn worker_death_with_a_full_window_requeues_in_flight_units() {
    let request = fleet_request("fleet-window-death");
    let (reference_pipeline, workloads) =
        fleet_pipeline(&request, Arc::new(MemoryStore::new()), SerialExecutor);
    let reference = reference_pipeline
        .run_sweep(&request.network, &workloads)
        .unwrap()
        .to_json();

    // The rigged worker answers one unit, then drops its connection with
    // the rest of its window still unanswered.  The healthy worker sits
    // behind a slow-start proxy so the rigged one deterministically fills
    // its window before the survivor can drain the queue.
    let healthy = WorkerServer::spawn("127.0.0.1:0", WorkerConfig::default()).unwrap();
    let healthy_proxy = slow_start_proxy(healthy.addr(), Duration::from_secs(1));
    let flaky = WorkerServer::spawn(
        "127.0.0.1:0",
        WorkerConfig {
            store: None,
            die_after_units: Some(1),
        },
    )
    .unwrap();
    let executor = SocketExecutor::new(request.encode(), [healthy_proxy, flaky.addr().to_string()])
        .window(8)
        .liveness_timeout(Duration::from_secs(30));
    let stats = executor.stats();
    let (fleet_pipe, workloads) = fleet_pipeline(&request, Arc::new(MemoryStore::new()), executor);
    let distributed = fleet_pipe.run_sweep(&request.network, &workloads).unwrap();

    assert_eq!(
        distributed.to_json(),
        reference,
        "a full-window death must not change the report bytes"
    );
    assert!(
        stats.worker_deaths() >= 1,
        "the rigged worker must have died mid-stream"
    );
    assert!(
        stats.requeued_inflight() >= 2,
        "a windowed death must requeue the dead worker's whole in-flight \
         set, not just one lock-step unit (requeued: {})",
        stats.requeued_inflight()
    );
    assert!(
        stats.retried_units() >= stats.requeued_inflight(),
        "every requeued unit is a retry"
    );
    assert!(
        stats.inflight_peak() >= 2,
        "pipelined dispatch must have filled a window beyond lock-step \
         depth (peak: {})",
        stats.inflight_peak()
    );

    WorkerServer::shutdown_at(&healthy.addr().to_string()).unwrap();
    healthy.join().unwrap();
    assert!(
        flaky.join().is_err(),
        "the rigged worker must report its injected death"
    );
}

/// The `FleetStats` JSON layout is a pinned contract: keys in declaration
/// order, one per line, golden-pinned so downstream dashboards can parse
/// it without a JSON library.
#[test]
fn fleet_stats_json_layout_is_pinned() {
    assert_eq!(
        FleetStats::default().to_json(),
        include_str!("fixtures/fleet_stats.json"),
        "FleetStats::to_json layout drifted from tests/fixtures/fleet_stats.json"
    );
}

// ---- fleet routing through the serve daemon -------------------------------

/// A `read-serve` daemon with a fleet configured routes bulk requests to
/// its workers and answers byte-identically to a fleet-less daemon running
/// the same request locally.
#[test]
fn serve_daemon_routes_bulk_requests_to_its_fleet() {
    let worker = WorkerServer::spawn("127.0.0.1:0", WorkerConfig::default()).unwrap();
    let fleet_daemon = ServeServer::spawn(
        "127.0.0.1:0",
        ServerConfig {
            fleet: vec![worker.addr().to_string()],
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let local_daemon = ServeServer::spawn("127.0.0.1:0", ServerConfig::default()).unwrap();

    let mut request = fleet_request("fleet-serve");
    request.priority = Some(Priority::Bulk);

    let via_fleet = ServeClient::new(fleet_daemon.addr())
        .request(&request)
        .unwrap();
    let locally = ServeClient::new(local_daemon.addr())
        .request(&request)
        .unwrap();
    assert_eq!(
        via_fleet.report_json, locally.report_json,
        "fleet-routed and locally-run replies must be byte-identical"
    );

    ServeClient::new(fleet_daemon.addr()).shutdown().unwrap();
    ServeClient::new(local_daemon.addr()).shutdown().unwrap();
    fleet_daemon.join().unwrap();
    local_daemon.join().unwrap();
    WorkerServer::shutdown_at(&worker.addr().to_string()).unwrap();
    worker.join().unwrap();
}
