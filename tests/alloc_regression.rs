//! Allocation regression test for the optimizer scoring path.
//!
//! The READ optimizer scores thousands of candidate orderings per layer via
//! `sign_flips_for_order`; a per-call `Vec` allocation in that path showed
//! up as real cost.  The word-parallel kernel takes a reusable
//! [`read_core::SignFlipScratch`], and this test pins the contract: once
//! the scratch is warm, a scoring call performs **zero** heap allocations.
//!
//! A counting allocator wraps the system allocator for this test binary
//! only.  The count is **per-thread** so the libtest harness's own threads
//! (timers, output capture) cannot perturb the measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use accel_sim::Matrix;
use read_core::{sign_flips_for_order_scalar, sign_flips_for_order_with, SignFlipScratch};

struct CountingAlloc;

thread_local! {
    // `const` init so reading the counter never itself allocates.
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.with(Cell::get)
}

#[test]
fn warm_scoring_calls_do_not_allocate() {
    let weights = Matrix::from_fn(256, 96, |r, c| (((r * 23 + c * 7) % 31) as i8) - 15);
    let columns: Vec<usize> = (0..96).collect();
    let order: Vec<usize> = (0..256).rev().collect();
    let acts: Vec<i8> = (0..256).map(|r| ((r * 13) % 17) as i8).collect();

    let mut scratch = SignFlipScratch::new();
    // Warm-up: grows the scratch buffers to the working-set size.
    let unit_expected = sign_flips_for_order_with(&mut scratch, &weights, &columns, &order, None)
        .expect("warm-up scoring call");
    let acts_expected =
        sign_flips_for_order_with(&mut scratch, &weights, &columns, &order, Some(&acts))
            .expect("warm-up scoring call with activations");

    let before = allocations();
    for _ in 0..32 {
        let unit = sign_flips_for_order_with(&mut scratch, &weights, &columns, &order, None)
            .expect("warm scoring call");
        let with_acts =
            sign_flips_for_order_with(&mut scratch, &weights, &columns, &order, Some(&acts))
                .expect("warm scoring call with activations");
        assert_eq!(unit, unit_expected);
        assert_eq!(with_acts, acts_expected);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "warm sign_flips_for_order_with calls must not allocate"
    );

    // Sanity: the packed result the warm loop produced matches the scalar
    // reference (which is free to allocate).
    assert_eq!(
        sign_flips_for_order_scalar(&weights, &columns, &order, Some(&acts)).unwrap(),
        acts_expected
    );
}
