//! Integration tests of the WorkPlan/Executor layer: the wire encoding is
//! pinned by a golden fixture, any partition and permutation of unit
//! results re-aggregates byte-identically, the serve loop answers the wire
//! protocol, and — the acceptance criterion — a sweep executed across
//! worker *processes* renders byte-identically to the serial in-process
//! run.
//!
//! The worker side of the subprocess tests is this very test binary:
//! re-invoked with `--exact shard_worker_entry` and the
//! `READ_WORKPLAN_WORKER` environment variable set, the entry test
//! reconstructs the same pipeline and plan and serves stdin/stdout.  The
//! driver's wire parser skips the libtest harness banner lines, so the
//! protocol runs cleanly inside the harness.

use std::io::{BufReader, Cursor};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use read_repro::prelude::*;

// ---- shared fixture -----------------------------------------------------

fn tiny_workloads(n: usize) -> Vec<LayerWorkload> {
    let config = WorkloadConfig {
        pixels_per_layer: 1,
        ..WorkloadConfig::default()
    };
    vgg16_workloads(&config).into_iter().take(n).collect()
}

/// The experiment the subprocess driver and its workers both reconstruct.
fn worker_sweep_plan() -> SweepPlan {
    SweepPlan::new()
        .conditions([
            OperatingCondition::vt(0.05),
            OperatingCondition::aging_vt(10.0, 0.05),
        ])
        .typical()
        .die(5)
        .monte_carlo(24, 11)
        .trials_per_shard(7)
}

fn worker_builder() -> ReadPipelineBuilder {
    ReadPipeline::builder()
        .source(Algorithm::Baseline)
        .source(Algorithm::ClusterThenReorder(SortCriterion::SignFirst))
        .sweep(worker_sweep_plan())
}

const WORKER_NETWORK: &str = "workplan-subprocess";
const WORKER_ENV: &str = "READ_WORKPLAN_WORKER";

/// Worker entry point: a no-op under a normal `cargo test` run; the wire
/// server when the driver re-invokes this binary with `READ_WORKPLAN_WORKER`
/// set.
#[test]
fn shard_worker_entry() {
    if std::env::var(WORKER_ENV).is_err() {
        return;
    }
    let pipeline = worker_builder().build().expect("worker pipeline");
    let workloads = tiny_workloads(2);
    let plan = pipeline
        .plan_sweep(WORKER_NETWORK, &workloads)
        .expect("worker plan");
    let mut stdout = std::io::stdout().lock();
    // The libtest banner (`test shard_worker_entry ... `) has no trailing
    // newline; emit one so the first protocol line starts a fresh line.
    use std::io::Write as _;
    writeln!(stdout).expect("stdout newline");
    plan.serve(BufReader::new(std::io::stdin()), &mut stdout)
        .expect("serve stdio");
}

// ---- the acceptance criterion -------------------------------------------

/// A sweep executed via `SubprocessExecutor` with two worker processes
/// produces a `SweepReport::to_json()` byte-identical to the same plan run
/// on `SerialExecutor`.
#[test]
fn subprocess_sweep_is_byte_identical_to_serial() {
    let workloads = tiny_workloads(2);
    let serial = worker_builder()
        .executor(SerialExecutor)
        .build()
        .unwrap()
        .run_sweep(WORKER_NETWORK, &workloads)
        .unwrap();

    let exe = std::env::current_exe().expect("test binary path");
    let subprocess = SubprocessExecutor::new(exe)
        .args(["shard_worker_entry", "--exact", "--quiet"])
        .env(WORKER_ENV, "1")
        .workers(2);
    assert_eq!(subprocess.worker_count(), 2);
    let distributed = worker_builder()
        .executor(subprocess)
        .build()
        .unwrap()
        .run_sweep(WORKER_NETWORK, &workloads)
        .unwrap();

    assert_eq!(serial, distributed);
    assert_eq!(
        serial.to_json().into_bytes(),
        distributed.to_json().into_bytes(),
        "two worker processes must re-aggregate to the serial bytes"
    );
}

// ---- golden wire-encoding snapshot --------------------------------------

/// The units and results whose encodings the fixture pins.
fn wire_examples() -> (Vec<WorkUnit>, Vec<UnitResult>) {
    let units = vec![
        WorkUnit::Histogram { cell: 0, pair: 7 },
        WorkUnit::McShard {
            cell: 3,
            trial_range: 8..24,
        },
        WorkUnit::AccuracyPoint { cell: 5 },
        WorkUnit::DataflowProbe { cell: 4 },
    ];
    let results = vec![
        UnitResult::Histogram {
            cell: 0,
            pair: 2,
            hist: DepthHistogram::from_parts(&[10, 0, 3, 0, 2], 4, 15).unwrap(),
        },
        UnitResult::McShard {
            cell: 1,
            trial_range: 4..7,
            ters: vec![
                vec![1.25e-7, 0.0, 3.5e-4],
                vec![2.220446049250313e-16, 1.0, 0.125],
            ],
        },
        UnitResult::Accuracy {
            cell: 9,
            point: AccuracyPoint {
                condition: "Aging&VT-5% margin".into(),
                algorithm: "cluster-then-reorder[sign_first]".into(),
                top1: 0.75,
                topk: 0.9375,
                k: 3,
                mean_ber: 3.2e-5,
                seeds: 4,
            },
        },
        UnitResult::DataflowProbe {
            cell: 4,
            report: DataflowReport {
                dataflow: "weight-stationary".into(),
                cycles: 240,
                macs: 128,
                outputs: 16,
                stalled: 31,
                peak_psum_buffer: 8,
                contexts: vec![dataflow_sim::ContextReport {
                    name: "pe".into(),
                    busy: 128,
                    stall: 31,
                    finish: 240,
                }],
                channels: vec![dataflow_sim::ChannelReport {
                    name: "weights".into(),
                    capacity: 4,
                    peak: 4,
                    sends: 128,
                }],
            },
        },
    ];
    (units, results)
}

/// The unit-id/unit-result wire encoding is a stable contract: every line
/// of `tests/fixtures/work_units.txt` must match the current encoder byte
/// for byte, and decode back to the same value.
#[test]
fn wire_encoding_matches_the_golden_fixture() {
    let (units, results) = wire_examples();
    let rendered: Vec<String> = units
        .iter()
        .map(WorkUnit::encode)
        .chain(results.iter().map(UnitResult::encode))
        .collect();
    let actual = rendered.join("\n");
    let expected = include_str!("fixtures/work_units.txt")
        .trim_end_matches('\n')
        .to_string();
    assert_eq!(
        actual, expected,
        "\n--- wire-encoding fixture mismatch; actual encoding: ---\n{actual}\n---"
    );

    // Every fixture line decodes back to the exact original value.
    let lines: Vec<&str> = expected.lines().collect();
    for (unit, line) in units.iter().zip(&lines[..units.len()]) {
        assert_eq!(&WorkUnit::decode(line).unwrap(), unit, "{line}");
    }
    for (result, line) in results.iter().zip(&lines[units.len()..]) {
        assert_eq!(&UnitResult::decode(line).unwrap(), result, "{line}");
    }
}

// ---- partition/permutation invariance (property test) --------------------

/// Deterministic case generator over the workspace's seeded RNG shim.
struct Gen(StdRng);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(StdRng::seed_from_u64(seed))
    }

    fn range(&mut self, lo: usize, hi: usize) -> usize {
        self.0.gen_range(lo..hi)
    }

    fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            items.swap(i, self.range(0, i + 1));
        }
    }
}

/// Any partition of a plan's unit range across executors, with the combined
/// results arbitrarily permuted before aggregation, re-aggregates to a
/// report byte-identical to the serial full-range run.
#[test]
fn any_partition_and_permutation_reaggregates_byte_identically() {
    let workloads = tiny_workloads(2);
    let pipeline = worker_builder().build().unwrap();
    let plan = pipeline.plan_sweep("partition", &workloads).unwrap();
    // 4 histogram pairs + 2 Monte-Carlo cells x 4 shards.
    assert_eq!(plan.units().len(), 4 + 2 * 4);
    let reference = pipeline
        .run_plan(&plan)
        .unwrap()
        .into_sweep()
        .unwrap()
        .to_json();

    let executors: [&dyn Executor; 2] = [&SerialExecutor, &ThreadExecutor { threads: 2 }];
    let mut gen = Gen::new(0x9A27);
    for case in 0..8 {
        // Random partition of 0..len into contiguous chunks, each executed
        // by a randomly-chosen executor.
        let mut results = Vec::new();
        let mut lo = 0usize;
        while lo < plan.len() {
            let hi = gen.range(lo + 1, plan.len() + 2).min(plan.len());
            let executor = executors[gen.range(0, executors.len())];
            results.extend(executor.execute(&plan, lo..hi).unwrap());
            lo = hi;
        }
        // Arbitrary permutation of all results before aggregation.
        gen.shuffle(&mut results);
        let report = plan.aggregate(results).unwrap().into_sweep().unwrap();
        assert_eq!(report.to_json(), reference, "case {case}");
    }
}

/// TER and accuracy plans run through the thread executor aggregate to the
/// serial bytes too (the sweep case is covered above).
#[test]
fn ter_plan_is_executor_invariant() {
    let workloads = tiny_workloads(2);
    let pipeline = ReadPipeline::builder()
        .source(Algorithm::Baseline)
        .source(Algorithm::ClusterThenReorder(SortCriterion::SignFirst))
        .conditions(paper_conditions())
        .build()
        .unwrap();
    let plan = pipeline.plan_ter("exec-invariant", &workloads).unwrap();
    assert_eq!(plan.units().len(), 4, "one histogram unit per pair");
    let serial = SerialExecutor.execute(&plan, 0..plan.len()).unwrap();
    let threaded = ThreadExecutor::machine()
        .execute(&plan, 0..plan.len())
        .unwrap();
    let a = plan.aggregate(serial).unwrap().into_ter().unwrap();
    let b = plan.aggregate(threaded).unwrap().into_ter().unwrap();
    assert_eq!(a.to_json().into_bytes(), b.to_json().into_bytes());
    // And the pipeline's own run_ter is the same plan-execute-aggregate.
    assert_eq!(
        pipeline
            .run_ter("exec-invariant", &workloads)
            .unwrap()
            .to_json(),
        a.to_json()
    );
}

/// A dataflow-probe plan executes on any executor — including worker
/// subprocesses speaking the wire protocol — and re-aggregates to the
/// serial bytes; with a shared artifact store, a second pipeline aggregates
/// the memoized probe results without running the event engine at all.
#[test]
fn dataflow_plan_is_executor_invariant_and_store_memoized() {
    let workloads = tiny_workloads(2);
    let build = || {
        ReadPipeline::builder()
            .source(Algorithm::Baseline)
            .source(Algorithm::ClusterThenReorder(SortCriterion::SignFirst))
            .sweep(worker_sweep_plan())
    };
    let pipeline = build().build().unwrap();
    let plan = pipeline.plan_dataflow(WORKER_NETWORK, &workloads).unwrap();
    assert_eq!(
        plan.units().len(),
        2 * 4,
        "one probe per (dataflow, workload, source) cell"
    );
    let reference = pipeline
        .run_plan(&plan)
        .unwrap()
        .into_dataflow()
        .unwrap()
        .to_json();

    // Threads and worker subprocesses re-aggregate byte-identically.  The
    // worker entry reconstructs a *sweep* plan, but probe units memoize on
    // the plan signature + unit id, and `serve` answers any decodable unit
    // of its own plan — so drive the workers through an explicitly
    // reconstructed dataflow plan instead.
    let threaded = ThreadExecutor::new(2)
        .execute(&plan, 0..plan.len())
        .unwrap();
    let report = plan.aggregate(threaded).unwrap().into_dataflow().unwrap();
    assert_eq!(report.to_json(), reference);

    // A shared store hands the second pipeline every probe result: zero
    // fresh unit computations, byte-identical report.
    let store: std::sync::Arc<dyn ArtifactStore> = std::sync::Arc::new(MemoryStore::new());
    let first = build()
        .store_arc(std::sync::Arc::clone(&store))
        .build()
        .unwrap();
    let cold = first.run_dataflow("stored", &workloads).unwrap();
    assert!(first.cache_stats().unit_misses >= 8);
    let second = build()
        .store_arc(std::sync::Arc::clone(&store))
        .build()
        .unwrap();
    let warm = second.run_dataflow("stored", &workloads).unwrap();
    let warm_stats = second.cache_stats();
    assert_eq!(
        warm_stats.unit_misses, 0,
        "all probes answered by the store"
    );
    assert!(warm_stats.disk_hits >= 8);
    assert_eq!(cold.to_json(), warm.to_json());
}

/// The serve loop answers dataflow-probe units over the wire like any other
/// unit kind: encoded results decode and aggregate to the serial report.
#[test]
fn serve_answers_dataflow_probe_units() {
    let workloads = tiny_workloads(1);
    let pipeline = worker_builder().build().unwrap();
    let plan = pipeline.plan_dataflow("serve-dflow", &workloads).unwrap();
    let mut request = String::new();
    for unit in plan.units() {
        request.push_str(&unit.encode());
        request.push('\n');
    }
    let mut response = Vec::new();
    plan.serve(Cursor::new(request), &mut response).unwrap();
    let results: Vec<UnitResult> = String::from_utf8(response)
        .unwrap()
        .lines()
        .map(|line| UnitResult::decode(line).unwrap())
        .collect();
    assert_eq!(results.len(), plan.units().len());
    let report = plan.aggregate(results).unwrap().into_dataflow().unwrap();
    let reference = pipeline.run_dataflow("serve-dflow", &workloads).unwrap();
    assert_eq!(report.to_json(), reference.to_json());
}

// ---- the serve loop ------------------------------------------------------

/// `WorkPlan::serve` answers encoded unit ids with encoded results that
/// aggregate to the serial report; unknown ids are answered in-band with a
/// `!` failure line.
#[test]
fn serve_answers_the_wire_protocol_in_memory() {
    let workloads = tiny_workloads(1);
    let pipeline = worker_builder().build().unwrap();
    let plan = pipeline.plan_sweep("serve", &workloads).unwrap();

    // Request every unit, plus junk the server must answer with '!'.
    let mut request = String::new();
    for unit in plan.units() {
        request.push_str(&unit.encode());
        request.push('\n');
    }
    request.push_str("hist cell=0 pair=999\n"); // not part of the plan
    request.push('\n'); // blank lines are skipped

    let mut response = Vec::new();
    plan.serve(Cursor::new(request), &mut response).unwrap();
    let response = String::from_utf8(response).unwrap();

    let mut results = Vec::new();
    let mut failures = 0;
    for line in response.lines() {
        if line.starts_with('!') {
            failures += 1;
            continue;
        }
        results.push(UnitResult::decode(line).unwrap());
    }
    assert_eq!(failures, 1, "the out-of-plan unit is refused in-band");
    assert_eq!(results.len(), plan.units().len());
    let report = plan.aggregate(results).unwrap().into_sweep().unwrap();
    let reference = pipeline.run_sweep("serve", &workloads).unwrap();
    assert_eq!(report.to_json(), reference.to_json());
}

// ---- aggregation strictness ---------------------------------------------

/// Missing, duplicate and gapped results are detected rather than misfolded.
#[test]
fn aggregator_rejects_missing_duplicate_and_gapped_results() {
    let workloads = tiny_workloads(1);
    let pipeline = worker_builder().build().unwrap();
    let plan = pipeline.plan_sweep("strict", &workloads).unwrap();
    let results = SerialExecutor.execute(&plan, 0..plan.len()).unwrap();

    // Missing: drop the last Monte-Carlo shard.
    let missing: Vec<UnitResult> = results[..results.len() - 1].to_vec();
    let err = plan.aggregate(missing).unwrap_err();
    assert!(matches!(err, PipelineError::Exec { .. }), "{err}");

    // Duplicate: push a histogram result twice.
    let mut duplicated = results.clone();
    duplicated.push(results[0].clone());
    let err = plan.aggregate(duplicated).unwrap_err();
    assert!(err.to_string().contains("duplicate"), "{err}");

    // A shard labeled with a non-Monte-Carlo cell (the grid is die-major,
    // so cell 2 is the per-PE die at the first condition) is refused at
    // push, never silently dropped.
    let mut mislabeled = results.clone();
    mislabeled.push(UnitResult::McShard {
        cell: 2,
        trial_range: 0..1,
        ters: vec![vec![0.0]; plan.pairs()],
    });
    let err = plan.aggregate(mislabeled).unwrap_err();
    assert!(err.to_string().contains("not a"), "{err}");

    // An accuracy result has no place in a sweep plan at all.
    let mut foreign = results.clone();
    foreign.push(UnitResult::Accuracy {
        cell: 0,
        point: AccuracyPoint {
            condition: "Ideal".into(),
            algorithm: "baseline".into(),
            top1: 1.0,
            topk: 1.0,
            k: 3,
            mean_ber: 0.0,
            seeds: 1,
        },
    });
    let err = plan.aggregate(foreign).unwrap_err();
    assert!(err.to_string().contains("not part"), "{err}");

    // A wrong-kind output conversion is refused.
    let output = plan.aggregate(results).unwrap();
    assert!(output.into_ter().is_err());
}

// ---- failure paths: worker death and flaky transport ---------------------

const WORKER_DIE_ENV: &str = "READ_WORKPLAN_WORKER_DIE";

/// Worker entry point for the death regression: serves exactly one unit,
/// then writes a diagnostic to stderr and exits 7 mid-stream, as a crashed
/// worker would.  A no-op under a normal `cargo test` run.
#[test]
fn dying_worker_entry() {
    if std::env::var(WORKER_DIE_ENV).is_err() {
        return;
    }
    let pipeline = worker_builder().build().expect("worker pipeline");
    let workloads = tiny_workloads(2);
    let plan = pipeline
        .plan_sweep(WORKER_NETWORK, &workloads)
        .expect("worker plan");
    use std::io::{BufRead as _, Write as _};
    let mut stdout = std::io::stdout().lock();
    writeln!(stdout).expect("stdout newline");
    for line in BufReader::new(std::io::stdin()).lines() {
        let line = line.expect("stdin line");
        let Ok(unit) = WorkUnit::decode(line.trim()) else {
            continue;
        };
        let result = plan.run_unit_spec(&unit).expect("unit result");
        writeln!(stdout, "{}", result.encode()).expect("result line");
        stdout.flush().expect("flush stdout");
        break;
    }
    // Write stderr directly (as `plan.serve` does for stdout): `eprintln!`
    // would be captured by the libtest harness and never reach the driver.
    let mut stderr = std::io::stderr().lock();
    writeln!(stderr, "injected fault: worker abandoning its stream").expect("stderr line");
    stderr.flush().expect("flush stderr");
    std::process::exit(7);
}

/// Regression (failure-path sweep): a worker process that exits mid-stream
/// surfaces as a `PipelineError` carrying its exit status and captured
/// stderr — not a panic, a hang, or a silently short report.
#[test]
fn worker_death_mid_stream_surfaces_status_and_stderr() {
    let workloads = tiny_workloads(2);
    let exe = std::env::current_exe().expect("test binary path");
    let subprocess = SubprocessExecutor::new(exe)
        .args(["dying_worker_entry", "--exact", "--quiet"])
        .env(WORKER_DIE_ENV, "1")
        .workers(1);
    let err = worker_builder()
        .executor(subprocess)
        .build()
        .unwrap()
        .run_sweep(WORKER_NETWORK, &workloads)
        .unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("worker exited with") && msg.contains("7"),
        "error must carry the worker's exit status: {msg}"
    );
    assert!(
        msg.contains("injected fault: worker abandoning its stream"),
        "error must carry the worker's stderr: {msg}"
    );
}

/// `FlakyExecutor` as a transport-fault model: pure reordering still
/// aggregates byte-identically to serial (over threads and over worker
/// processes), while any dropped or duplicated result makes aggregation
/// fail loudly — a perturbed run can never produce a silently wrong
/// report.
#[test]
fn flaky_transport_reaggregates_or_fails_loudly() {
    let workloads = tiny_workloads(2);
    let pipeline = worker_builder().build().unwrap();
    let plan = pipeline.plan_sweep(WORKER_NETWORK, &workloads).unwrap();
    let reference = pipeline
        .run_plan(&plan)
        .unwrap()
        .into_sweep()
        .unwrap()
        .to_json();

    // Reorder-only over an in-process pool and over worker processes.
    let exe = std::env::current_exe().expect("test binary path");
    let subprocess = SubprocessExecutor::new(exe)
        .args(["shard_worker_entry", "--exact", "--quiet"])
        .env(WORKER_ENV, "1")
        .workers(2);
    let shuffled: Vec<Box<dyn Executor>> = vec![
        Box::new(FlakyExecutor::new(ThreadExecutor::new(2), 5).shuffle(true)),
        Box::new(FlakyExecutor::new(subprocess, 6).shuffle(true)),
    ];
    for executor in &shuffled {
        let results = executor.execute(&plan, 0..plan.len()).unwrap();
        let report = plan.aggregate(results).unwrap().into_sweep().unwrap();
        assert_eq!(report.to_json(), reference, "{}", executor.name());
    }

    // Lossy transport: every perturbed run must be *rejected*, and every
    // clean run must still match the reference bytes.
    let mut perturbed = 0;
    for seed in 0..24u64 {
        let flaky = FlakyExecutor::new(SerialExecutor, seed)
            .drop_per_mille(120)
            .duplicate_per_mille(120)
            .shuffle(true);
        let results = flaky.execute(&plan, 0..plan.len()).unwrap();
        let lossy = flaky.dropped() > 0 || flaky.duplicated() > 0;
        match plan.aggregate(results) {
            Ok(output) => {
                assert!(!lossy, "seed {seed}: a lossy result set must not aggregate");
                assert_eq!(output.into_sweep().unwrap().to_json(), reference);
            }
            Err(err) => {
                assert!(lossy, "seed {seed}: a clean result set was rejected: {err}");
                perturbed += 1;
            }
        }
    }
    assert!(perturbed > 0, "injection rates never perturbed a run");
}
