//! Serve-daemon integration tests: request coalescing under concurrency
//! (exactly-once computation of every distinct work unit), byte-identical
//! reports versus serial execution, and interactive-over-bulk preemption.

use std::time::{Duration, Instant};

use read_repro::prelude::*;

/// The soak's bulk request: a corner sweep over the first two VGG-16
/// layers with a small sharded Monte-Carlo budget.
fn sweep_request() -> ServeRequest {
    let mut request = ServeRequest::sweep("soak-sweep");
    request.layers = 2;
    request.pixels = 2;
    request.sources = vec![SourceSpec::Baseline, SourceSpec::Read];
    request.corners = vec![CornerSpec::ideal(), CornerSpec::aging_vt(10.0, 0.05)];
    request.typical = true;
    request.mc = Some(McSpec {
        trials: 8,
        seed: 7,
        trials_per_shard: 4,
    });
    request.priority = Some(Priority::Bulk);
    request
}

/// The soak's overlapping TER request: three layers, so its first two
/// layers' histograms are content-addressed duplicates of the sweep's and
/// only the third layer is new work.
fn ter_request() -> ServeRequest {
    let mut request = ServeRequest::ter("soak-ter");
    request.layers = 3;
    request.pixels = 2;
    request.sources = vec![SourceSpec::Baseline, SourceSpec::Read];
    request.corners = vec![CornerSpec::aging_vt(10.0, 0.05)];
    request.priority = Some(Priority::Bulk);
    request
}

fn fresh_units(stats: &CacheStats) -> (u64, u64) {
    (stats.hist_misses, stats.unit_misses)
}

#[test]
fn concurrent_soak_computes_each_distinct_unit_exactly_once() {
    // Serial reference: one daemon, one client, requests back to back.
    // This pins the expected report bytes and the number of distinct
    // fresh computations (6 histograms: 3 layers x 2 sources, shared
    // between the sweep and the TER request via content-addressed keys).
    let serial = ServeServer::spawn("127.0.0.1:0", ServerConfig::default()).unwrap();
    let client = serial.client();
    let sweep_ref = client.request(&sweep_request()).unwrap();
    let ter_ref = client.request(&ter_request()).unwrap();
    client.shutdown().unwrap();
    serial.join().unwrap();

    let (sweep_hist, sweep_units) = fresh_units(&sweep_ref.stats);
    let (ter_hist, ter_units) = fresh_units(&ter_ref.stats);
    assert_eq!(sweep_hist, 4, "sweep computes 2 layers x 2 sources");
    assert_eq!(
        ter_hist, 2,
        "TER recomputes only its third layer: the first two are served \
         from the store across plan kinds"
    );
    assert!(sweep_units > 0, "sweep has Monte-Carlo shard units");
    assert_eq!(ter_units, 0, "TER has histogram units only");
    let serial_hist = sweep_hist + ter_hist;
    let serial_units = sweep_units + ter_units;

    // Concurrent soak: 6 clients (3 identical sweeps, 3 identical TERs)
    // against one fresh daemon.  Whatever the interleaving — in-flight
    // join, store hit or fresh leader — every distinct unit must be
    // computed exactly once daemon-wide, and every reply must carry the
    // exact serial report bytes.
    let soak = ServeServer::spawn(
        "127.0.0.1:0",
        ServerConfig {
            slots: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = soak.addr();
    let replies: Vec<ServeReply> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|i| {
                scope.spawn(move || {
                    let client = ServeClient::new(addr);
                    let request = if i % 2 == 0 {
                        sweep_request()
                    } else {
                        ter_request()
                    };
                    client.request(&request).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut total_hist = 0;
    let mut total_units = 0;
    for reply in &replies {
        let reference = match reply.kind {
            RequestKind::Sweep => &sweep_ref,
            RequestKind::Ter => &ter_ref,
            RequestKind::Accuracy => unreachable!("soak sends no accuracy requests"),
        };
        assert_eq!(
            reply.report_json, reference.report_json,
            "report bytes must match the serial run"
        );
        let (hist, units) = fresh_units(&reply.stats);
        total_hist += hist;
        total_units += units;
    }
    assert_eq!(
        total_hist, serial_hist,
        "each distinct histogram must be computed exactly once across all \
         6 concurrent requests"
    );
    assert_eq!(
        total_units, serial_units,
        "each distinct Monte-Carlo shard must be computed exactly once \
         across all 6 concurrent requests"
    );

    let daemon = soak.client();
    daemon.shutdown().unwrap();
    soak.join().unwrap();
}

#[test]
fn interactive_request_preempts_an_in_flight_bulk_sweep() {
    // One executor slot, so units strictly serialize: the only way the
    // interactive request can finish first is the gate handing freed slots
    // to interactive units ahead of the bulk queue.
    let handle = ServeServer::spawn(
        "127.0.0.1:0",
        ServerConfig {
            slots: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = handle.addr();

    let (bulk_done, interactive_done, interactive_reply, bulk_reply) =
        std::thread::scope(|scope| {
            let bulk = scope.spawn(move || {
                let mut request = sweep_request();
                request.layers = 4;
                let reply = ServeClient::new(addr).request(&request).unwrap();
                (Instant::now(), reply)
            });
            // Let the bulk sweep get into flight, then ask for a small
            // interactive TER on *disjoint* work (different workload seed,
            // so nothing is served by the bulk run's artifacts).
            std::thread::sleep(Duration::from_millis(300));
            let interactive = scope.spawn(move || {
                let mut request = ServeRequest::ter("interactive-probe");
                request.layers = 1;
                request.pixels = 1;
                request.workload_seed = 0x5EED;
                request.sources = vec![SourceSpec::Baseline];
                request.corners = vec![CornerSpec::ideal()];
                request.priority = Some(Priority::Interactive);
                let reply = ServeClient::new(addr).request(&request).unwrap();
                (Instant::now(), reply)
            });
            let (interactive_done, interactive_reply) = interactive.join().unwrap();
            let (bulk_done, bulk_reply) = bulk.join().unwrap();
            (bulk_done, interactive_done, interactive_reply, bulk_reply)
        });

    assert_eq!(interactive_reply.priority, Priority::Interactive);
    assert_eq!(bulk_reply.priority, Priority::Bulk);
    assert!(
        interactive_done < bulk_done,
        "the single-layer interactive TER must complete while the bulk \
         sweep is still in flight"
    );

    let client = handle.client();
    client.shutdown().unwrap();
    handle.join().unwrap();
}
