//! Integration tests for the cross-layer scheduling path: READ schedules
//! threaded through consecutive layers of a real model from the zoo.

use qnn::models;
use read_core::schedule::LayerDescriptor;
use read_core::{NetworkScheduler, ReadConfig, ReadOptimizer};

#[test]
fn whole_vgg_network_schedules_with_order_propagation() {
    // Build the scaled executable VGG-16 and schedule every conv layer,
    // threading output-channel orders into the next layer's input channels.
    let model = models::vgg16_cifar_scaled(16, 10, 7).unwrap();
    let layers: Vec<LayerDescriptor> = model
        .conv_layers()
        .iter()
        .map(|conv| LayerDescriptor {
            name: conv.name().to_string(),
            weights: conv.weight_matrix(),
            taps_per_channel: conv.kernel() * conv.kernel(),
        })
        .collect();
    let scheduler = NetworkScheduler::new(ReadOptimizer::new(ReadConfig::default()), 4);
    let scheduled = scheduler.schedule_network(&layers).unwrap();
    assert_eq!(scheduled.len(), model.num_conv_layers());

    for (descriptor, scheduled_layer) in layers.iter().zip(&scheduled) {
        // Every layer's schedule covers its own channel set.
        let schedule = &scheduled_layer.schedule;
        assert_eq!(schedule.num_channels(), descriptor.weights.cols());
        assert!(schedule
            .to_compute_schedule()
            .validate(descriptor.weights.rows(), descriptor.weights.cols())
            .is_ok());
        // The permuted weight matrix still contains exactly the same
        // multiset of values as the original (it is a row permutation).
        let mut original: Vec<i8> = descriptor.weights.as_slice().to_vec();
        let mut permuted: Vec<i8> = scheduled_layer.weights.as_slice().to_vec();
        original.sort_unstable();
        permuted.sort_unstable();
        assert_eq!(original, permuted);
    }

    // Consecutive layers are chained: the second layer's weights are the
    // original rows permuted by the first layer's output order whenever the
    // channel counts line up.
    let first_order = scheduled[0].schedule.output_channel_order();
    let taps = layers[1].taps_per_channel;
    if first_order.len() * taps == layers[1].weights.rows() {
        for (block, &src_channel) in first_order.iter().enumerate() {
            for t in 0..taps {
                assert_eq!(
                    scheduled[1].weights.row(block * taps + t),
                    layers[1].weights.row(src_channel * taps + t)
                );
            }
        }
    }
}

#[test]
fn resnet_schedules_every_block_conv() {
    let model = models::resnet18_cifar_scaled(16, 10, 9).unwrap();
    let optimizer = ReadOptimizer::new(ReadConfig::default());
    for conv in model.conv_layers() {
        let weights = conv.weight_matrix();
        let schedule = optimizer.optimize(&weights, 4).unwrap();
        let baseline = read_core::LayerSchedule::baseline(weights.rows(), weights.cols(), 4);
        assert!(
            schedule.total_sign_flips(&weights, None).unwrap()
                <= baseline.total_sign_flips(&weights, None).unwrap(),
            "layer {} regressed",
            conv.name()
        );
    }
}
