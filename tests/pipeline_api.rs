//! Tests of the unified `ReadPipeline` API: builder validation, bit-exact
//! output preservation through every `ScheduleSource`, determinism of
//! `NetworkReport` across runs with the same `ReadConfig::seed`, and
//! byte-identical parallel-vs-serial execution.
//!
//! Executor-invariance is asserted against the modern `Executor`
//! strategies; the deprecated `ExecMode` shim is confined to
//! `read_pipeline::exec` with its own pinning tests.

use read_repro::prelude::*;

fn tiny_workloads(n: usize) -> Vec<LayerWorkload> {
    let config = WorkloadConfig {
        pixels_per_layer: 1,
        ..WorkloadConfig::default()
    };
    vgg16_workloads(&config).into_iter().take(n).collect()
}

fn paper_builder() -> ReadPipelineBuilder {
    ReadPipeline::builder()
        .source(Algorithm::Baseline)
        .source(Algorithm::Reorder(SortCriterion::SignFirst))
        .source(Algorithm::ClusterThenReorder(SortCriterion::SignFirst))
        .condition(OperatingCondition::aging_vt(10.0, 0.05))
}

// ---- builder validation -------------------------------------------------

#[test]
fn builder_requires_a_schedule_source() {
    let err = ReadPipeline::builder()
        .condition(OperatingCondition::ideal())
        .build()
        .unwrap_err();
    assert!(matches!(err, PipelineError::Builder { .. }));
    assert!(err.to_string().contains("schedule source"), "{err}");
}

#[test]
fn builder_requires_an_operating_condition() {
    let err = ReadPipeline::builder().baseline().build().unwrap_err();
    assert!(err.to_string().contains("operating condition"), "{err}");
}

#[test]
fn builder_rejects_two_sources_with_one_name() {
    // Two differently-seeded optimizers still share a display name — the
    // report rows would be ambiguous, so the builder refuses.
    let err = ReadPipeline::builder()
        .optimizer(ReadConfig::default())
        .optimizer(ReadConfig {
            seed: 999,
            ..ReadConfig::default()
        })
        .condition(OperatingCondition::ideal())
        .build()
        .unwrap_err();
    assert!(err.to_string().contains("duplicate"), "{err}");
}

#[test]
fn builder_rejects_conflicting_evaluator_configuration() {
    let err = ReadPipeline::builder()
        .baseline()
        .condition(OperatingCondition::ideal())
        .evaluator(TopKEvaluator::new(5))
        .top_k(3)
        .build()
        .unwrap_err();
    assert!(matches!(err, PipelineError::Builder { .. }), "{err}");
}

#[test]
fn accuracy_without_model_is_a_missing_stage_error() {
    let pipeline = paper_builder().build().unwrap();
    let dataset = SyntheticDatasetBuilder::new(2, [3, 8, 8])
        .samples_per_class(1)
        .build()
        .unwrap();
    let err = pipeline
        .run_accuracy("net", &dataset, &tiny_workloads(1), 1)
        .unwrap_err();
    assert!(matches!(err, PipelineError::Missing { what: "model" }));
}

// ---- bit-exactness through every source ---------------------------------

#[test]
fn every_schedule_source_preserves_outputs_bit_exactly() {
    let pipeline = paper_builder().build().unwrap();
    for workload in &tiny_workloads(3) {
        let reference = workload.problem().reference_output().unwrap();
        for source in [
            Algorithm::Baseline,
            Algorithm::Reorder(SortCriterion::SignFirst),
            Algorithm::ClusterThenReorder(SortCriterion::SignFirst),
        ] {
            let outputs = pipeline.layer_outputs(workload, &source).unwrap();
            assert_eq!(outputs, reference, "source {source} on {}", workload.name);
        }
    }
}

#[test]
fn custom_schedule_sources_plug_in() {
    /// A deliberately bad source: reversed natural order, one group per
    /// channel — still a valid permutation, so outputs must be unchanged.
    struct ReversedOrder;

    impl ScheduleSource for ReversedOrder {
        fn name(&self) -> String {
            "reversed".to_string()
        }

        fn schedule(
            &self,
            weights: &Matrix<i8>,
            array_cols: usize,
        ) -> Result<ComputeSchedule, PipelineError> {
            let mut schedule = Baseline.schedule(weights, array_cols)?;
            let groups = schedule
                .groups()
                .iter()
                .map(|g| {
                    let mut order = g.row_order.clone();
                    order.reverse();
                    ColumnGroup {
                        columns: g.columns.clone(),
                        row_order: order,
                    }
                })
                .collect();
            schedule = ComputeSchedule::new(groups);
            Ok(schedule)
        }
    }

    let pipeline = ReadPipeline::builder()
        .source(ReversedOrder)
        .baseline()
        .condition(OperatingCondition::aging_vt(10.0, 0.05))
        .build()
        .unwrap();
    let workload = &tiny_workloads(1)[0];
    let reference = workload.problem().reference_output().unwrap();
    let outputs = pipeline.layer_outputs(workload, &ReversedOrder).unwrap();
    assert_eq!(outputs, reference);
}

// ---- determinism --------------------------------------------------------

#[test]
fn network_report_is_deterministic_for_a_fixed_seed() {
    let workloads = tiny_workloads(2);
    let make_report = || {
        let pipeline = ReadPipeline::builder()
            .source(Algorithm::Baseline)
            .optimizer(ReadConfig {
                seed: 0xD5EED,
                ..ReadConfig::default()
            })
            .conditions(paper_conditions())
            .build()
            .unwrap();
        pipeline.run_ter("determinism", &workloads).unwrap()
    };
    let a = make_report();
    let b = make_report();
    assert_eq!(a, b);
    assert_eq!(a.to_json(), b.to_json());
}

#[test]
fn changing_the_optimizer_seed_changes_the_cache_key_not_the_outputs() {
    let workload = &tiny_workloads(1)[0];
    let pipeline = ReadPipeline::builder()
        .optimizer(ReadConfig {
            seed: 1,
            criterion: SortCriterion::Random { seed: 1 },
            ..ReadConfig::default()
        })
        .condition(OperatingCondition::ideal())
        .build()
        .unwrap();
    let other = ReadOptimizer::new(ReadConfig {
        seed: 2,
        criterion: SortCriterion::Random { seed: 2 },
        ..ReadConfig::default()
    });
    let first = pipeline
        .layer_outputs(workload, pipeline.sources()[0].clone().as_ref())
        .unwrap();
    let second = pipeline.layer_outputs(workload, &other).unwrap();
    // Different seeds -> separate cache entries...
    assert_eq!(pipeline.cache_stats().entries, 2);
    // ...but schedules never change the arithmetic.
    assert_eq!(first, second);
}

// ---- parallel == serial -------------------------------------------------

#[test]
fn parallel_ter_run_is_byte_identical_to_serial() {
    // The Fig. 8 experiment shape: paper algorithms at the worst corner.
    let workloads = tiny_workloads(3);
    let serial = paper_builder()
        .executor(ThreadExecutor::new(1))
        .build()
        .unwrap()
        .run_ter("fig8", &workloads)
        .unwrap();
    let parallel = paper_builder()
        .executor(ThreadExecutor::machine())
        .build()
        .unwrap()
        .run_ter("fig8", &workloads)
        .unwrap();
    assert_eq!(serial, parallel);
    assert_eq!(serial.to_json(), parallel.to_json());
    assert_eq!(
        serial.to_json().into_bytes(),
        parallel.to_json().into_bytes()
    );
}

#[test]
fn parallel_accuracy_run_matches_serial() {
    let mut model = qnn::models::vgg11_cifar_scaled(8, 4, 3).unwrap();
    let dataset = SyntheticDatasetBuilder::new(4, [3, 16, 16])
        .samples_per_class(2)
        .seed(11)
        .build()
        .unwrap();
    qnn::fit::fit_classifier_head(&mut model, &dataset).unwrap();
    let workloads = tiny_workloads(2);

    let run = |executor: ThreadExecutor| {
        ReadPipeline::builder()
            .source(Algorithm::Baseline)
            .source(Algorithm::ClusterThenReorder(SortCriterion::SignFirst))
            .condition(OperatingCondition::ideal())
            .condition(OperatingCondition::aging_vt(10.0, 0.05))
            .model(model.clone())
            .executor(executor)
            .build()
            .unwrap()
            .run_accuracy("acc", &dataset, &workloads, 2)
            .unwrap()
    };
    let serial = run(ThreadExecutor::new(1));
    let parallel = run(ThreadExecutor::machine());
    assert_eq!(serial, parallel);
    assert_eq!(serial.to_json(), parallel.to_json());
    // Points cover the full (condition x algorithm) grid in order.
    assert_eq!(serial.points.len(), 4);
    assert_eq!(serial.points[0].condition, "Ideal");
    assert_eq!(serial.points[0].algorithm, "baseline");
}

// ---- report ergonomics --------------------------------------------------

#[test]
fn report_reductions_match_manual_computation() {
    let workloads = tiny_workloads(2);
    let report = paper_builder()
        .build()
        .unwrap()
        .run_ter("reduction", &workloads)
        .unwrap();
    let read_name = Algorithm::ClusterThenReorder(SortCriterion::SignFirst).name();
    let (geo, max) = report.ter_reduction(&read_name, "baseline");
    assert!(geo > 1.0, "READ should reduce TER, got {geo}x");
    assert!(max >= geo);

    // Manual recomputation over the rows agrees.
    let mut log_sum = 0.0;
    let mut n = 0;
    for row in report.rows.iter().filter(|r| r.algorithm == read_name) {
        let base = report
            .rows
            .iter()
            .find(|r| r.layer == row.layer && r.algorithm == "baseline")
            .unwrap();
        log_sum += (base.ter / row.ter).ln();
        n += 1;
    }
    let manual = (log_sum / n as f64).exp();
    assert!((geo - manual).abs() < 1e-12);
}

#[test]
fn caches_are_shared_across_experiments() {
    let workloads = tiny_workloads(2);
    let pipeline = paper_builder().build().unwrap();
    pipeline.run_ter("first", &workloads).unwrap();
    let after_first = pipeline.cache_stats();
    // 2 layers x 3 sources: one optimization and one simulation pass each.
    assert_eq!(after_first.entries, 6);
    assert_eq!(after_first.misses, 6);
    assert_eq!(after_first.hist_entries, 6);
    assert_eq!(after_first.hist_misses, 6);
    pipeline.run_ter("second", &workloads).unwrap();
    let after_second = pipeline.cache_stats();
    assert_eq!(after_second.misses, 6, "schedules must not be recomputed");
    assert_eq!(
        after_second.hist_misses, 6,
        "histograms must not be re-simulated"
    );
    assert!(after_second.hist_hits >= after_first.hist_hits + 6);
}
