//! Network accuracy under timing errors: an end-to-end miniature of the
//! paper's Fig. 10 pipeline.
//!
//! 1. Build a (width-scaled) VGG-16 with synthetic weights and fit its
//!    classifier head on a synthetic 10-class dataset.
//! 2. Measure per-layer TERs of the full-size layers on the systolic array
//!    under a stressed PVTA corner, for the baseline and READ schedules.
//! 3. Convert the TERs to activation BERs (Eq. (1)), inject bit flips into
//!    the scaled model, and compare accuracy.
//!
//! Run with: `cargo run --release --example network_accuracy`

use accel_sim::{ArrayConfig, Matrix};
use qnn::fault::{evaluate, FaultConfig};
use qnn::fit::fit_classifier_head;
use qnn::init::{synthetic_activations, WeightInit};
use qnn::{models, SyntheticDatasetBuilder};
use read_core::{ClusteringMode, ReadConfig, ReadOptimizer, SortCriterion};
use timing::{ber_from_ter, OperatingCondition, TerEstimator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Scaled executable model + synthetic dataset.
    let mut model = models::vgg16_cifar_scaled(8, 10, 99)?;
    let dataset = SyntheticDatasetBuilder::new(10, [3, 32, 32])
        .samples_per_class(3)
        .noise(28.0)
        .seed(5)
        .build()?;
    let clean = fit_classifier_head(&mut model, &dataset)?;
    println!("clean accuracy of the fitted model: {:.1}%", clean * 100.0);

    // Per-layer BERs from the full-size layer shapes under a stressed corner.
    let condition = OperatingCondition::aging_vt(10.0, 0.05);
    let array = ArrayConfig::paper_default();
    let estimator = TerEstimator::new().with_array(array);
    let optimizer = ReadOptimizer::new(ReadConfig {
        criterion: SortCriterion::SignFirst,
        clustering: ClusteringMode::ClusterThenReorder,
        ..ReadConfig::default()
    });

    let conv_names: Vec<String> = model.conv_layers().iter().map(|c| c.name().to_string()).collect();
    let mut baseline_bers = vec![0.0; conv_names.len()];
    let mut read_bers = vec![0.0; conv_names.len()];
    for (i, (name, shape)) in models::vgg16_cifar_conv_shapes().into_iter().enumerate() {
        let reduction = shape.reduction_len();
        let mut init = WeightInit::new(1000 + i as u64);
        let weights = Matrix::from_fn(reduction, shape.k, |_, _| init.weight(reduction));
        let pixels = 3;
        let acts = synthetic_activations(reduction * pixels, 0.45, 2000 + i as u64);
        let activations = Matrix::from_fn(reduction, pixels, |r, p| acts[r * pixels + p]);
        let problem = accel_sim::GemmProblem::new(weights.clone(), activations)?;

        let base = estimator.analyze(&problem, &condition)?;
        let schedule = optimizer.optimize(&weights, array.cols())?.to_compute_schedule();
        let read = estimator.analyze_with_schedule(&problem, &schedule, &condition)?;
        if let Some(idx) = conv_names.iter().position(|n| *n == name) {
            baseline_bers[idx] = ber_from_ter(base.ter, shape.macs_per_output());
            read_bers[idx] = ber_from_ter(read.ter, shape.macs_per_output());
        }
        println!(
            "  {name:<10} baseline TER {:.2e} -> BER {:.2e} | READ TER {:.2e} -> BER {:.2e}",
            base.ter,
            ber_from_ter(base.ter, shape.macs_per_output()),
            read.ter,
            ber_from_ter(read.ter, shape.macs_per_output())
        );
    }

    // Error-injection evaluation (paper protocol: random flips at the BER,
    // averaged over seeds).
    let mut base_acc = 0.0;
    let mut read_acc = 0.0;
    let seeds = 3;
    for seed in 0..seeds {
        base_acc += evaluate(&model, &dataset, &FaultConfig::per_layer(baseline_bers.clone(), seed))?.top1;
        read_acc += evaluate(&model, &dataset, &FaultConfig::per_layer(read_bers.clone(), seed))?.top1;
    }
    println!();
    println!("accuracy under {condition} (mean of {seeds} seeds):");
    println!("  baseline dataflow : {:.1}%", base_acc / seeds as f64 * 100.0);
    println!("  READ dataflow     : {:.1}%", read_acc / seeds as f64 * 100.0);
    println!("  (clean reference  : {:.1}%)", clean * 100.0);
    Ok(())
}
