//! Network accuracy under timing errors: an end-to-end miniature of the
//! paper's Fig. 10 pipeline, driven entirely by `ReadPipeline`.
//!
//! 1. Build a (width-scaled) VGG-16 with synthetic weights and fit its
//!    classifier head on a synthetic 10-class dataset.
//! 2. Measure per-layer TERs of the full-size layers on the systolic array
//!    under a stressed PVTA corner, for the baseline and READ schedules.
//! 3. Convert the TERs to activation BERs (Eq. (1)), inject bit flips into
//!    the scaled model, and compare accuracy.
//!
//! Run with: `cargo run --release --example network_accuracy`

use qnn::fit::fit_classifier_head;
use qnn::models;
use read_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Scaled executable model + synthetic dataset.
    let mut model = models::vgg16_cifar_scaled(8, 10, 99)?;
    let dataset = SyntheticDatasetBuilder::new(10, [3, 32, 32])
        .samples_per_class(3)
        .noise(28.0)
        .seed(5)
        .build()?;
    let clean = fit_classifier_head(&mut model, &dataset)?;
    println!("clean accuracy of the fitted model: {:.1}%", clean * 100.0);

    // Full-size layer workloads whose names match the scaled model's conv
    // layers (the pipeline matches BERs to layers by name).
    let config = WorkloadConfig {
        pixels_per_layer: 3,
        ..WorkloadConfig::default()
    };
    let workloads = vgg16_workloads(&config);

    let condition = OperatingCondition::aging_vt(10.0, 0.05);
    let read = Algorithm::ClusterThenReorder(SortCriterion::SignFirst);
    let pipeline = ReadPipeline::builder()
        .source(Algorithm::Baseline)
        .source(read)
        .condition(condition)
        .model(model)
        .top_k(3)
        .parallel()
        .build()?;

    // Per-layer TER/BER table (one simulation pass per schedule).
    let ter_report = pipeline.run_ter("vgg16", &workloads)?;
    for workload in &workloads {
        let rows: Vec<_> = ter_report
            .rows
            .iter()
            .filter(|r| r.layer == workload.name)
            .collect();
        let base = rows.iter().find(|r| r.algorithm == "baseline").unwrap();
        let opt = rows.iter().find(|r| r.algorithm != "baseline").unwrap();
        println!(
            "  {:<10} baseline TER {:.2e} -> BER {:.2e} | READ TER {:.2e} -> BER {:.2e}",
            workload.name, base.ter, base.ber, opt.ter, opt.ber
        );
    }

    // Error-injection evaluation (paper protocol: random flips at the BER,
    // averaged over seeds).
    let accuracy = pipeline.run_accuracy("vgg16", &dataset, &workloads, 3)?;
    let base = accuracy
        .point(condition.name, "baseline")
        .expect("baseline point");
    let opt = accuracy
        .point(condition.name, &read.name())
        .expect("READ point");
    println!();
    println!("accuracy under {condition} (mean of {} seeds):", base.seeds);
    println!("  baseline dataflow : {:.1}%", base.top1 * 100.0);
    println!("  READ dataflow     : {:.1}%", opt.top1 * 100.0);
    println!("  (clean reference  : {:.1}%)", clean * 100.0);
    Ok(())
}
