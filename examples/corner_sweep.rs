//! Corner/die sweep: evaluate baseline vs READ across the full grid of
//! PVTA corners × silicon dies in ONE pipeline run — typical silicon gets
//! a sharded Monte-Carlo trial budget, specific dies get per-PE variation —
//! and read the cross-corner worst case off the typed `SweepReport`.
//!
//! Run with: `cargo run --release --example corner_sweep`
//!
//! Set `READ_STORE_DIR=<dir>` to attach a persistent on-disk artifact
//! store: the first run writes every schedule, histogram and unit result
//! (plus the report JSON for comparison); any further run over the same
//! directory asserts that it performed **zero** optimizer and simulator
//! invocations and produced byte-identical JSON — the CI cold/warm smoke
//! step runs the example twice exactly this way.

use read_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = WorkloadConfig {
        pixels_per_layer: 2,
        ..WorkloadConfig::default()
    };
    let workloads: Vec<_> = vgg16_workloads(&config)
        .into_iter()
        .filter(|w| ["conv1_2", "conv4_8"].contains(&w.name.as_str()))
        .collect();

    // The grid: all six paper corners × (typical silicon + two dies), with
    // 48 Monte-Carlo trials per typical cell, sharded 12 trials per work
    // unit.  Sharding changes the work-unit layout only — the report is
    // byte-identical to an unsharded run.
    let plan = SweepPlan::new()
        .conditions(paper_conditions())
        .typical()
        .dies([3, 4])
        .monte_carlo(48, 7)
        .trials_per_shard(12);

    let read = Algorithm::ClusterThenReorder(SortCriterion::SignFirst);
    let mut builder = ReadPipeline::builder()
        .source(Algorithm::Baseline)
        .source(read)
        .sweep(plan)
        .parallel();

    // Optional persistent artifact store (the cold/warm smoke contract).
    let store_dir = std::env::var_os("READ_STORE_DIR").map(std::path::PathBuf::from);
    let report_path = store_dir.as_ref().map(|dir| dir.join("report.json"));
    let warm = report_path.as_ref().is_some_and(|p| p.exists());
    if let Some(dir) = &store_dir {
        builder = builder.store(DiskStore::new(dir)?);
        println!(
            "artifact store: {} ({})",
            dir.display(),
            if warm { "warm" } else { "cold" }
        );
    }

    let pipeline = builder.build()?;
    let sweep = pipeline.run_sweep("vgg16-sweep", &workloads)?;

    println!(
        "{} cells (3 dies x 6 corners), {} rows total",
        sweep.cells.len(),
        sweep.cells.iter().map(|c| c.rows.len()).sum::<usize>()
    );
    println!();
    println!(
        "{:<22} {:<12} {:>12} {:>12} {:>10}  error model",
        "die", "corner", "base TER", "READ TER", "reduction"
    );
    for cell in &sweep.cells {
        let base = cell
            .rows
            .iter()
            .filter(|r| r.algorithm == "baseline")
            .map(|r| r.ter)
            .fold(0.0f64, f64::max);
        let opt = cell
            .rows
            .iter()
            .filter(|r| r.algorithm != "baseline")
            .map(|r| r.ter)
            .fold(0.0f64, f64::max);
        let reduction = if opt > 0.0 { base / opt } else { f64::INFINITY };
        println!(
            "{:<22} {:<12} {:>12.3e} {:>12.3e} {:>9.1}x  {}",
            cell.die, cell.condition, base, opt, reduction, cell.error_model
        );
    }

    println!();
    println!("cross-corner worst case per algorithm:");
    for w in &sweep.worst {
        println!(
            "  {:<28} TER {:.3e}  ({} @ {} on {})",
            w.algorithm, w.ter, w.layer, w.condition, w.die
        );
    }

    // One optimization per (source, layer); every other cell hit the cache.
    let stats = pipeline.cache_stats();
    println!();
    println!(
        "schedule cache: {} optimizations, {} hits, {} collisions",
        stats.misses, stats.hits, stats.collisions
    );
    println!("cache stats: {}", stats.to_json());

    // The cold/warm smoke contract: against a warm store the whole sweep is
    // pure aggregation — zero optimizer and zero simulator invocations —
    // and the JSON is byte-identical to the cold run's.
    if let Some(path) = &report_path {
        let json = sweep.to_json();
        if warm {
            assert_eq!(
                stats.misses, 0,
                "warm store run must perform zero schedule optimizations"
            );
            assert_eq!(
                stats.hist_misses, 0,
                "warm store run must perform zero histogram simulations"
            );
            assert_eq!(
                stats.unit_misses, 0,
                "warm store run must execute zero work units fresh"
            );
            assert_eq!(stats.corrupt_entries, 0);
            let cold_json = std::fs::read_to_string(path)?;
            assert_eq!(
                json, cold_json,
                "warm-run JSON must be byte-identical to the cold run"
            );
            println!("warm run: zero fresh computations, byte-identical JSON — OK");
        } else {
            std::fs::write(path, &json)?;
            println!("cold run: report JSON recorded at {}", path.display());
        }
    }

    let (geo, max) = sweep.ter_reduction(&read.name(), "baseline");
    println!("READ reduction across the whole grid: geo-mean {geo:.1}x (max {max:.1}x)");
    Ok(())
}
