//! A multi-machine fleet run, end to end, against the real release
//! binaries — with an injected worker crash:
//!
//! 1. spawns a `read-store` daemon (the fleet's shared artifact
//!    namespace) and two `read-worker` processes attached to it, one
//!    rigged with `--die-after-units 1` to drop its connection mid-stream;
//! 2. drives a corner sweep through a `SocketExecutor` and asserts the
//!    `SweepReport` JSON is byte-identical to the serial in-process run —
//!    the crashed worker's lost unit is retried on the survivor;
//! 3. reruns the sweep serially against the shared store and asserts it
//!    executed zero fresh units (pure aggregation);
//! 4. shuts the fleet down and asserts the exit codes: healthy worker and
//!    store daemon drain to 0, the crashed worker reports its death with a
//!    non-zero exit.
//!
//! Run with:
//!
//! ```text
//! cargo build --release --bins
//! cargo run --release --example fleet -- --window 8
//! ```
//!
//! `--window N` sets the per-worker in-flight dispatch window (default 8;
//! 1 reproduces the original lock-step protocol).

use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

use read_repro::prelude::*;

/// The fleet experiment: 3 VGG-16 layers, baseline vs READ, three corners,
/// typical + one per-PE die, a sharded Monte-Carlo budget.
fn fleet_request() -> ServeRequest {
    let mut request = ServeRequest::sweep("fleet-example");
    request.layers = 3;
    request.pixels = 2;
    request.corners = vec![
        CornerSpec::ideal(),
        CornerSpec {
            aging_years: 0.0,
            vt_fluctuation: 0.05,
        },
        CornerSpec::aging_vt(10.0, 0.05),
    ];
    request.typical = true;
    request.dies = vec![3];
    request.mc = Some(McSpec {
        trials: 24,
        seed: 7,
        trials_per_shard: 8,
    });
    request
}

/// The driver-side mirror of [`fleet_request`]: the same experiment as a
/// local pipeline (same plan ⇒ same unit encodings ⇒ same store keys the
/// workers use).
fn fleet_pipeline(
    request: &ServeRequest,
    store: Arc<dyn ArtifactStore>,
    executor: impl Executor + 'static,
) -> Result<(ReadPipeline, Vec<LayerWorkload>), PipelineError> {
    let config = WorkloadConfig {
        pixels_per_layer: request.pixels,
        seed: request.workload_seed,
        ..WorkloadConfig::default()
    };
    let workloads = vgg16_workloads_prefix(&config, request.layers);
    let mut plan = SweepPlan::new().conditions(request.corners.iter().map(CornerSpec::resolve));
    if request.typical {
        plan = plan.typical();
    }
    plan = plan.dies(request.dies.iter().copied());
    if let Some(mc) = &request.mc {
        plan = plan.monte_carlo(mc.trials, mc.seed);
        if mc.trials_per_shard > 0 {
            plan = plan.trials_per_shard(mc.trials_per_shard);
        }
    }
    let pipeline = ReadPipeline::builder()
        .source(Algorithm::Baseline)
        .source(Algorithm::ClusterThenReorder(SortCriterion::SignFirst))
        .sweep(plan)
        .store_arc(store)
        .executor(executor)
        .build()?;
    Ok((pipeline, workloads))
}

/// Locates a sibling release/debug binary: examples run from
/// `target/<profile>/examples/`, the binaries live one level up.
fn binary(name: &str) -> Result<PathBuf, String> {
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    let dir = exe
        .parent()
        .and_then(|examples| examples.parent())
        .ok_or("cannot locate the target directory")?;
    let path = dir.join(name);
    if path.exists() {
        Ok(path)
    } else {
        Err(format!(
            "{} not found — build the fleet binaries first: cargo build --bins",
            path.display()
        ))
    }
}

/// One spawned fleet daemon with its self-reported listen address.
struct Daemon {
    name: String,
    child: Child,
    addr: String,
}

impl Daemon {
    /// Spawns `name` with `args` and reads its `... listening on ADDR`
    /// banner; the rest of its stdout is forwarded by a drain thread (so
    /// the child never blocks — or dies on SIGPIPE — writing to a closed
    /// pipe).
    fn spawn(name: &str, args: &[&str]) -> Result<Daemon, Box<dyn std::error::Error>> {
        let mut child = Command::new(binary(name)?)
            .args(args)
            .stdout(Stdio::piped())
            .spawn()
            .map_err(|e| format!("spawn {name}: {e}"))?;
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        let banner = lines
            .next()
            .ok_or_else(|| format!("{name} exited before its banner"))??;
        let addr = banner
            .split("listening on ")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .ok_or_else(|| format!("{name}: unexpected banner {banner:?}"))?
            .to_string();
        println!("  {banner}");
        let tag = name.to_string();
        std::thread::spawn(move || {
            for line in lines.map_while(Result::ok) {
                println!("  [{tag}] {line}");
            }
        });
        Ok(Daemon {
            name: name.to_string(),
            child,
            addr,
        })
    }

    /// Waits for the daemon and returns whether it exited successfully.
    fn wait(mut self) -> Result<bool, Box<dyn std::error::Error>> {
        let status = self.child.wait()?;
        println!("  {} exited with {status}", self.name);
        Ok(status.success())
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut window = 8usize;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--window" => {
                window = argv
                    .next()
                    .ok_or("--window requires a count")?
                    .parse()
                    .map_err(|e| format!("--window: {e}"))?;
            }
            other => return Err(format!("unknown argument: {other}").into()),
        }
    }

    let root = std::env::temp_dir().join(format!("read-fleet-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let request = fleet_request();

    // The serial reference: same experiment, in-process, private store.
    let (serial, workloads) =
        fleet_pipeline(&request, Arc::new(MemoryStore::new()), SerialExecutor)?;
    let reference = serial.run_sweep(&request.network, &workloads)?.to_json();
    println!(
        "serial reference: {} units -> {} bytes of report JSON\n",
        serial.plan_sweep(&request.network, &workloads)?.len(),
        reference.len()
    );

    // The fleet: one store daemon, two workers — one rigged to crash after
    // a single served unit.
    println!("spawning the fleet:");
    let store = Daemon::spawn(
        "read-store",
        &["--addr", "127.0.0.1:0", "--root", &root.to_string_lossy()],
    )?;
    let worker_args = |extra: &[&str]| -> Vec<String> {
        let mut args = vec![
            "--addr".to_string(),
            "127.0.0.1:0".to_string(),
            "--store-addr".to_string(),
            store.addr.clone(),
        ];
        args.extend(extra.iter().map(|s| s.to_string()));
        args
    };
    let healthy_args = worker_args(&[]);
    let flaky_args = worker_args(&["--die-after-units", "1"]);
    let healthy = Daemon::spawn(
        "read-worker",
        &healthy_args.iter().map(String::as_str).collect::<Vec<_>>(),
    )?;
    let flaky = Daemon::spawn(
        "read-worker",
        &flaky_args.iter().map(String::as_str).collect::<Vec<_>>(),
    )?;

    // Drive the sweep through the fleet.
    let executor =
        SocketExecutor::new(request.encode(), [healthy.addr.clone(), flaky.addr.clone()])
            .window(window)
            .liveness_timeout(Duration::from_secs(60));
    let stats = executor.stats();
    let (fleet, workloads) = fleet_pipeline(
        &request,
        Arc::new(RemoteStore::connect(&store.addr)?),
        executor,
    )?;
    let distributed = fleet.run_sweep(&request.network, &workloads)?.to_json();
    assert_eq!(
        distributed, reference,
        "fleet report must be byte-identical to the serial run"
    );
    assert!(
        stats.worker_deaths() >= 1,
        "the rigged worker must have died mid-stream"
    );
    assert!(
        stats.retried_units() >= 1,
        "the lost unit must have been retried on the survivor"
    );
    println!(
        "\nfleet run (window {window}): byte-identical to serial ({} bytes); \
         worker deaths: {}, units retried: {}, units completed: {}, \
         in-flight peak: {}, in-flight requeued: {}",
        distributed.len(),
        stats.worker_deaths(),
        stats.retried_units(),
        stats.completed_units(),
        stats.inflight_peak(),
        stats.requeued_inflight(),
    );

    // Warm rerun against the fleet's shared store: pure aggregation.
    let (warm, workloads) = fleet_pipeline(
        &request,
        Arc::new(RemoteStore::connect(&store.addr)?),
        SerialExecutor,
    )?;
    let rerun = warm.run_sweep(&request.network, &workloads)?.to_json();
    assert_eq!(rerun, reference, "warm rerun must reproduce the same bytes");
    let cache = warm.cache_stats();
    assert_eq!(cache.misses, 0, "schedules came from the fleet store");
    assert_eq!(cache.hist_misses, 0, "histograms came from the fleet store");
    assert_eq!(cache.unit_misses, 0, "warm rerun executed zero fresh units");
    println!(
        "warm rerun: zero fresh units ({} store hits), byte-identical",
        cache.disk_hits
    );

    // Teardown: drain the healthy worker and the store daemon in-band; the
    // crashed worker must already be reporting a non-zero exit.
    println!("\nshutting the fleet down:");
    WorkerServer::shutdown_at(&healthy.addr)?;
    RemoteStore::connect(&store.addr)?.shutdown_daemon()?;
    assert!(healthy.wait()?, "healthy worker must drain to exit 0");
    assert!(
        !flaky.wait()?,
        "the crashed worker must exit non-zero after its injected death"
    );
    assert!(store.wait()?, "store daemon must drain to exit 0");
    let _ = std::fs::remove_dir_all(&root);
    println!("\nfleet example passed: mid-stream death recovered, bytes identical, rerun warm");
    Ok(())
}
