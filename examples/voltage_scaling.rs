//! Voltage scaling headroom: the Section V-C argument that READ lets a
//! timing-speculation accelerator scale voltage more aggressively.
//!
//! Razor-style timing speculation pays a correction penalty proportional to
//! the timing error rate, so the energy-optimal supply voltage sits where
//! the TER starts to explode.  READ lowers the TER at every derate, which
//! moves that point to a larger derate (lower voltage).  This example sweeps
//! an increasing VT derate and reports, for a fixed TER budget, how much
//! further READ lets the supply droop.
//!
//! Run with: `cargo run --release --example voltage_scaling`

use accel_sim::{ArrayConfig, Matrix};
use qnn::init::{synthetic_activations, WeightInit};
use read_core::{ClusteringMode, ReadConfig, ReadOptimizer, SortCriterion};
use timing::{OperatingCondition, TerEstimator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One representative layer (256 x 3x3 -> 256).
    let reduction = 256 * 9;
    let k = 256;
    let mut init = WeightInit::new(13);
    let weights = Matrix::from_fn(reduction, k, |_, _| init.weight(reduction));
    let pixels = 4;
    let acts = synthetic_activations(reduction * pixels, 0.45, 17);
    let activations = Matrix::from_fn(reduction, pixels, |r, p| acts[r * pixels + p]);
    let problem = accel_sim::GemmProblem::new(weights.clone(), activations)?;

    let array = ArrayConfig::paper_default();
    let estimator = TerEstimator::new().with_array(array);
    let schedule = ReadOptimizer::new(ReadConfig {
        criterion: SortCriterion::SignFirst,
        clustering: ClusteringMode::ClusterThenReorder,
        ..ReadConfig::default()
    })
    .optimize(&weights, array.cols())?
    .to_compute_schedule();

    let budget = 1e-5; // tolerable MAC-level TER for the speculation hardware
    println!("TER vs supply/temperature derate (fresh silicon):");
    println!("{:>10} {:>14} {:>14}", "VT droop", "baseline TER", "READ TER");
    let mut base_limit = 0.0f64;
    let mut read_limit = 0.0f64;
    for step in 0..=12 {
        let droop = step as f64 * 0.01;
        let condition = OperatingCondition::vt(droop);
        let base = estimator.analyze(&problem, &condition)?.ter;
        let read = estimator
            .analyze_with_schedule(&problem, &schedule, &condition)?
            .ter;
        if base <= budget {
            base_limit = droop;
        }
        if read <= budget {
            read_limit = droop;
        }
        println!("{:>9.0}% {:>14.3e} {:>14.3e}", droop * 100.0, base, read);
    }
    println!();
    println!(
        "at a TER budget of {budget:.0e}: baseline tolerates a {:.0}% droop, READ a {:.0}% droop",
        base_limit * 100.0,
        read_limit * 100.0
    );
    println!("the extra headroom translates directly into more aggressive voltage scaling");
    println!("(and lower Razor correction activity) for timing-speculation accelerators.");
    Ok(())
}
