//! Voltage scaling headroom: the Section V-C argument that READ lets a
//! timing-speculation accelerator scale voltage more aggressively.
//!
//! Razor-style timing speculation pays a correction penalty proportional to
//! the timing error rate, so the energy-optimal supply voltage sits where
//! the TER starts to explode.  READ lowers the TER at every derate, which
//! moves that point to a larger derate (lower voltage).  This example sweeps
//! an increasing VT derate — all 13 corners evaluated from a single
//! simulation pass per schedule via the pipeline — and reports, for a fixed
//! TER budget, how much further READ lets the supply droop.
//!
//! Run with: `cargo run --release --example voltage_scaling`

use read_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One representative layer (256 x 3x3 -> 256).
    let config = WorkloadConfig {
        pixels_per_layer: 4,
        ..WorkloadConfig::default()
    };
    let workload = LayerWorkload::generate(
        "repr_conv",
        ConvShape::new(1, 256, 16, 16, 256, 3, 3, 1, 1)?,
        &config,
        13,
    );

    // A custom VT-derate sweep as the pipeline's condition set.  Most of
    // these corners share the generic "VT" name, so the report rows are
    // consumed positionally below — never by name-keyed lookups like
    // `rows_at`, which need distinct condition names.
    let droops: Vec<f64> = (0..=12).map(|step| step as f64 * 0.01).collect();
    let conditions: Vec<OperatingCondition> = droops
        .iter()
        .map(|&droop| OperatingCondition::vt(droop))
        .collect();

    let read = Algorithm::ClusterThenReorder(SortCriterion::SignFirst);
    let pipeline = ReadPipeline::builder()
        .source(Algorithm::Baseline)
        .source(read)
        .conditions(conditions.iter().copied())
        .build()?;
    let report = pipeline.run_ter("voltage-scaling", std::slice::from_ref(&workload))?;

    let budget = 1e-5; // tolerable MAC-level TER for the speculation hardware
    println!("TER vs supply/temperature derate (fresh silicon):");
    println!(
        "{:>10} {:>14} {:>14}",
        "VT droop", "baseline TER", "READ TER"
    );
    let mut base_limit = 0.0f64;
    let mut read_limit = 0.0f64;
    // Row order is (layer-major,) source-major, condition-minor: rows
    // alternate [baseline@c0..cN, read@c0..cN].
    let n = conditions.len();
    for (i, &droop) in droops.iter().enumerate() {
        let base = report.rows[i].ter;
        let opt = report.rows[n + i].ter;
        if base <= budget {
            base_limit = droop;
        }
        if opt <= budget {
            read_limit = droop;
        }
        println!("{:>9.0}% {:>14.3e} {:>14.3e}", droop * 100.0, base, opt);
    }
    println!();
    println!(
        "at a TER budget of {budget:.0e}: baseline tolerates a {:.0}% droop, READ a {:.0}% droop",
        base_limit * 100.0,
        read_limit * 100.0
    );
    println!("the extra headroom translates directly into more aggressive voltage scaling");
    println!("(and lower Razor correction activity) for timing-speculation accelerators.");
    Ok(())
}
