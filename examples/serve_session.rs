//! A live serve-daemon session: two identical bulk corner sweeps race an
//! interactive TER probe through one daemon, demonstrating
//!
//! * **in-flight dedup** — the second sweep joins the first one's
//!   computations instead of redoing them (`inflight` column, and the two
//!   bulk reports are byte-identical);
//! * **priority preemption** — the interactive request, issued while the
//!   bulk sweeps are mid-flight, finishes ahead of them because freed
//!   executor slots go to interactive units first.
//!
//! By default the example spawns an in-process daemon.  Point it at an
//! external `read-serve` with `READ_SERVE_ADDR=host:port` (and set
//! `READ_SERVE_SHUTDOWN=1` to have it shut the daemon down at the end —
//! that is how the CI smoke test drives the release binary).
//!
//! Run with: `cargo run --release --example serve_session`

use std::time::{Duration, Instant};

use read_repro::prelude::*;

fn bulk_sweep() -> ServeRequest {
    let mut request = ServeRequest::sweep("session-sweep");
    request.layers = 5;
    request.pixels = 3;
    request.sources = vec![SourceSpec::Baseline, SourceSpec::Read];
    request.corners = vec![
        CornerSpec::ideal(),
        CornerSpec {
            aging_years: 0.0,
            vt_fluctuation: 0.05,
        },
        CornerSpec::aging_vt(10.0, 0.05),
    ];
    request.typical = true;
    request.dies = vec![3];
    request.mc = Some(McSpec {
        trials: 24,
        seed: 7,
        trials_per_shard: 8,
    });
    request.priority = Some(Priority::Bulk);
    request
}

fn interactive_probe() -> ServeRequest {
    let mut request = ServeRequest::ter("session-probe");
    request.layers = 1;
    request.pixels = 1;
    request.workload_seed = 0x5EED;
    request.sources = vec![SourceSpec::Baseline];
    request.corners = vec![CornerSpec::aging_vt(10.0, 0.05)];
    request.priority = Some(Priority::Interactive);
    request
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let external = std::env::var("READ_SERVE_ADDR").ok();
    let (addr, handle) = match &external {
        Some(addr) => (addr.parse()?, None),
        None => {
            let handle = ServeServer::spawn(
                "127.0.0.1:0",
                ServerConfig {
                    slots: 2,
                    ..ServerConfig::default()
                },
            )?;
            (handle.addr(), Some(handle))
        }
    };
    let client = ServeClient::new(addr);
    client.ping()?;
    println!(
        "daemon at {addr} ({})",
        if handle.is_some() {
            "in-process"
        } else {
            "external"
        }
    );

    // label, wall-clock completion time, reply — for the session table and
    // the ordering assertion.
    let session_start = Instant::now();
    let mut rows: Vec<(&str, Instant, ServeReply)> = std::thread::scope(|scope| {
        // Launch the identical twins together: whichever worker registers a
        // unit first leads it, the other request joins the in-flight
        // computation instead of queueing its own.
        let bulk_a = scope.spawn(move || {
            let reply = ServeClient::new(addr).request(&bulk_sweep())?;
            Ok::<_, PipelineError>(("bulk-sweep-a", Instant::now(), reply))
        });
        let bulk_b = scope.spawn(move || {
            let reply = ServeClient::new(addr).request(&bulk_sweep())?;
            Ok::<_, PipelineError>(("bulk-sweep-b", Instant::now(), reply))
        });
        // And an interactive probe while both sweeps are still running.
        std::thread::sleep(Duration::from_millis(100));
        let probe = scope.spawn(move || {
            let reply = ServeClient::new(addr).request(&interactive_probe())?;
            Ok::<_, PipelineError>(("interactive", Instant::now(), reply))
        });
        [bulk_a, bulk_b, probe]
            .into_iter()
            .map(|h| h.join().expect("client thread panicked"))
            .collect::<Result<Vec<_>, _>>()
    })?;
    rows.sort_by_key(|(_, done, _)| *done);

    println!(
        "\n{:<14} {:>9} {:>12} {:>6} {:>12} {:>9} {:>10} {:>10}",
        "request", "kind", "priority", "units", "latency", "inflight", "hist_miss", "disk_hits"
    );
    for (label, done, reply) in &rows {
        println!(
            "{:<14} {:>9} {:>12} {:>6} {:>9.1}ms {:>9} {:>10} {:>10}  (done +{:.1}ms)",
            label,
            reply.kind.as_str(),
            reply.priority.as_str(),
            reply.units,
            reply.latency.as_secs_f64() * 1e3,
            reply.stats.inflight_hits,
            reply.stats.hist_misses,
            reply.stats.disk_hits,
            done.duration_since(session_start).as_secs_f64() * 1e3,
        );
    }

    let by_label = |label: &str| {
        rows.iter()
            .find(|(l, _, _)| *l == label)
            .expect("row present")
    };
    let (_, done_a, reply_a) = by_label("bulk-sweep-a");
    let (_, done_b, reply_b) = by_label("bulk-sweep-b");
    let (_, done_probe, probe_reply) = by_label("interactive");

    assert_eq!(
        reply_a.report_json, reply_b.report_json,
        "identical sweeps must produce byte-identical reports"
    );
    let joined =
        reply_a.stats.inflight_hits + reply_b.stats.inflight_hits + probe_reply.stats.inflight_hits;
    assert!(
        joined > 0,
        "the staggered twin sweep must join at least one in-flight unit"
    );
    assert!(
        done_probe < done_a.max(done_b),
        "the interactive probe must complete while bulk work is in flight"
    );
    println!(
        "\n{joined} unit(s) served by joining in-flight computations; \
         interactive probe preempted the bulk queue"
    );

    if let Some(handle) = handle {
        client.shutdown()?;
        handle.join()?;
        println!("in-process daemon drained and shut down");
    } else if std::env::var("READ_SERVE_SHUTDOWN").as_deref() == Ok("1") {
        client.shutdown()?;
        println!("external daemon asked to shut down");
    }
    Ok(())
}
