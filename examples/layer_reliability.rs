//! Layer reliability: map one VGG-16 layer onto the paper's 16x4
//! output-stationary systolic array and estimate its timing error rate under
//! every PVTA corner, with and without READ.
//!
//! Run with: `cargo run --release --example layer_reliability`

use accel_sim::{ArrayConfig, Matrix};
use qnn::init::{synthetic_activations, WeightInit};
use qnn::models;
use read_core::{ClusteringMode, ReadConfig, ReadOptimizer, SortCriterion};
use timing::{ber_from_ter, paper_conditions, TerEstimator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Take a middle VGG-16 layer (256 -> 256 channels, 3x3 filters).
    let (name, shape) = models::vgg16_cifar_conv_shapes()
        .into_iter()
        .find(|(n, _)| n == "conv3_6")
        .expect("VGG-16 plan contains conv3_6");
    println!("layer {name}: {shape}");

    // Synthetic trained weights and post-ReLU activations (8 output pixels).
    let reduction = shape.reduction_len();
    let mut init = WeightInit::new(3);
    let weights = Matrix::from_fn(reduction, shape.k, |_, _| init.weight(reduction));
    let pixels = 8;
    let acts = synthetic_activations(reduction * pixels, 0.45, 11);
    let activations = Matrix::from_fn(reduction, pixels, |r, p| acts[r * pixels + p]);
    let problem = accel_sim::GemmProblem::new(weights.clone(), activations)?;

    // READ schedule for a 4-column array.
    let array = ArrayConfig::paper_default();
    let schedule = ReadOptimizer::new(ReadConfig {
        criterion: SortCriterion::SignFirst,
        clustering: ClusteringMode::ClusterThenReorder,
        ..ReadConfig::default()
    })
    .optimize(&weights, array.cols())?
    .to_compute_schedule();

    let estimator = TerEstimator::new().with_array(array);
    println!();
    println!(
        "{:<14} {:>12} {:>12} {:>10}  {:>12} {:>12}",
        "corner", "baseline TER", "READ TER", "reduction", "baseline BER", "READ BER"
    );
    for condition in paper_conditions() {
        let base = estimator.analyze(&problem, &condition)?;
        let read = estimator.analyze_with_schedule(&problem, &schedule, &condition)?;
        let reduction = if read.ter > 0.0 { base.ter / read.ter } else { f64::INFINITY };
        println!(
            "{:<14} {:>12.3e} {:>12.3e} {:>9.1}x  {:>12.3e} {:>12.3e}",
            condition.name,
            base.ter,
            read.ter,
            reduction,
            ber_from_ter(base.ter, shape.macs_per_output()),
            ber_from_ter(read.ter, shape.macs_per_output()),
        );
    }
    println!();
    println!("READ pushes the layer's error rate down by an order of magnitude or more at the");
    println!("stressed corners, which is what keeps the network accuracy alive in Fig. 10.");
    Ok(())
}
