//! Layer reliability: map one VGG-16 layer onto the paper's 16x4
//! output-stationary systolic array and estimate its timing error rate under
//! every PVTA corner, with and without READ — all through the pipeline API.
//!
//! Run with: `cargo run --release --example layer_reliability`

use read_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Take a middle VGG-16 layer (256 -> 256 channels, 3x3 filters) as a
    // synthetic trained workload with 8 output pixels.
    let config = WorkloadConfig {
        pixels_per_layer: 8,
        ..WorkloadConfig::default()
    };
    let workload = vgg16_workloads(&config)
        .into_iter()
        .find(|w| w.name == "conv3_6")
        .expect("VGG-16 plan contains conv3_6");
    println!("layer {}: {}", workload.name, workload.shape);

    // Baseline vs READ over all six paper corners from one simulation pass
    // per schedule.
    let read = Algorithm::ClusterThenReorder(SortCriterion::SignFirst);
    let pipeline = ReadPipeline::builder()
        .source(Algorithm::Baseline)
        .source(read)
        .conditions(paper_conditions())
        .build()?;
    let report = pipeline.run_ter("conv3_6", std::slice::from_ref(&workload))?;

    println!();
    println!(
        "{:<14} {:>12} {:>12} {:>10}  {:>12} {:>12}",
        "corner", "baseline TER", "READ TER", "reduction", "baseline BER", "READ BER"
    );
    for condition in paper_conditions() {
        let base = report
            .rows_at(condition.name)
            .find(|r| r.algorithm == "baseline")
            .expect("baseline row");
        let opt = report
            .rows_at(condition.name)
            .find(|r| r.algorithm != "baseline")
            .expect("READ row");
        let reduction = if opt.ter > 0.0 {
            base.ter / opt.ter
        } else {
            f64::INFINITY
        };
        println!(
            "{:<14} {:>12.3e} {:>12.3e} {:>9.1}x  {:>12.3e} {:>12.3e}",
            condition.name, base.ter, opt.ter, reduction, base.ber, opt.ber,
        );
    }
    println!();
    println!("READ pushes the layer's error rate down by an order of magnitude or more at the");
    println!("stressed corners, which is what keeps the network accuracy alive in Fig. 10.");

    // The same experiment with the other two error-model stages — only the
    // builder line changes, the schedules and simulation passes are shared
    // semantics (and the reports stay deterministic and seed-stable).
    let worst = OperatingCondition::aging_vt(10.0, 0.05);

    // Monte-Carlo: seeded sampling with a trial-to-trial spread.
    let mc = ReadPipeline::builder()
        .source(Algorithm::Baseline)
        .source(read)
        .condition(worst)
        .monte_carlo(32, 7)
        .build()?;
    let mc_report = mc.run_ter("conv3_6-mc", std::slice::from_ref(&workload))?;
    println!();
    println!("Monte-Carlo error model (32 trials, seed 7) at {worst}:");
    for row in &mc_report.rows {
        println!(
            "  {:<28} TER {:.3e} ± {:.1e}",
            row.algorithm,
            row.ter,
            row.ter_stddev.unwrap_or(0.0)
        );
    }

    // Per-PE process variation: one specific die, PE-to-PE spread.
    let die = ReadPipeline::builder()
        .source(Algorithm::Baseline)
        .source(read)
        .condition(worst)
        .pe_variation(3)
        .build()?;
    let die_report = die.run_ter("conv3_6-die", std::slice::from_ref(&workload))?;
    println!();
    println!(
        "per-PE variation model ({}) at {worst}:",
        die_report.rows[0].corner.as_deref().unwrap_or("typical")
    );
    for row in &die_report.rows {
        println!(
            "  {:<28} TER {:.3e} (PE-to-PE spread {:.1e})",
            row.algorithm,
            row.ter,
            row.ter_stddev.unwrap_or(0.0)
        );
    }
    Ok(())
}
