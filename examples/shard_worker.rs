//! Multi-process sweep driver: run a corner/die sweep through
//! `SubprocessExecutor` with two worker processes and assert that the
//! resulting `SweepReport` JSON is byte-identical to the serial in-process
//! run.
//!
//! The binary is its own worker: re-invoked with `--worker` it reconstructs
//! the identical pipeline and plan, then answers the unit-id/unit-result
//! wire protocol on stdin/stdout (`WorkPlan::serve`).  That is the whole
//! pattern a real distribution backend needs — workers only ever see unit
//! ids, and the driver's aggregator folds their self-identifying results
//! back in canonical order.
//!
//! Run with: `cargo run --release --example shard_worker`

use std::io::{self, BufReader};

use read_repro::prelude::*;

/// The experiment both the driver and every worker reconstruct: identical
/// configuration ⇒ identical plans ⇒ interchangeable unit results.
fn workloads() -> Vec<LayerWorkload> {
    let config = WorkloadConfig {
        pixels_per_layer: 1,
        ..WorkloadConfig::default()
    };
    vgg16_workloads(&config)
        .into_iter()
        .filter(|w| ["conv1_2", "conv3_5"].contains(&w.name.as_str()))
        .collect()
}

fn sweep_plan() -> SweepPlan {
    SweepPlan::new()
        .conditions([
            OperatingCondition::vt(0.05),
            OperatingCondition::aging_vt(10.0, 0.05),
        ])
        .typical()
        .die(3)
        .monte_carlo(32, 7)
        .trials_per_shard(8)
}

fn builder() -> ReadPipelineBuilder {
    ReadPipeline::builder()
        .source(Algorithm::Baseline)
        .source(Algorithm::ClusterThenReorder(SortCriterion::SignFirst))
        .sweep(sweep_plan())
}

const NETWORK: &str = "vgg16-sharded";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    if std::env::args().any(|a| a == "--worker") {
        return worker();
    }
    driver()
}

/// Worker mode: serve the wire protocol until the driver closes stdin.
fn worker() -> Result<(), Box<dyn std::error::Error>> {
    let pipeline = builder().build()?;
    let workloads = workloads();
    let plan = pipeline.plan_sweep(NETWORK, &workloads)?;
    plan.serve(BufReader::new(io::stdin()), &mut io::stdout())?;
    Ok(())
}

/// Driver mode: serial run, then the same plan across two worker processes.
fn driver() -> Result<(), Box<dyn std::error::Error>> {
    let workloads = workloads();

    let serial_pipeline = builder().executor(SerialExecutor).build()?;
    let serial = serial_pipeline.run_sweep(NETWORK, &workloads)?;

    let workers = 2;
    let distributed_pipeline = builder()
        .executor(
            SubprocessExecutor::new(std::env::current_exe()?)
                .arg("--worker")
                .workers(workers),
        )
        .build()?;
    let plan = distributed_pipeline.plan_sweep(NETWORK, &workloads)?;
    println!(
        "plan: {} units over {} pairs ({} cells), executor {}",
        plan.units().len(),
        plan.pairs(),
        sweep_plan().cell_count(),
        distributed_pipeline.executor().name(),
    );
    let distributed = distributed_pipeline.run_plan(&plan)?.into_sweep()?;

    let serial_json = serial.to_json();
    let distributed_json = distributed.to_json();
    assert_eq!(
        serial_json, distributed_json,
        "a sweep distributed across {workers} worker processes must render \
         byte-identically to the serial run"
    );

    println!(
        "{} cells x {} rows re-aggregated byte-identically across {workers} worker processes",
        distributed.cells.len(),
        distributed.cells[0].rows.len(),
    );
    for w in &distributed.worst {
        println!(
            "  worst {:<34} TER {:.3e}  ({} @ {} on {})",
            w.algorithm, w.ter, w.layer, w.condition, w.die
        );
    }
    println!("report: {} bytes of identical JSON", distributed_json.len());
    Ok(())
}
