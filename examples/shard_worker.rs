//! Multi-process sweep driver: run a corner/die sweep through
//! `SubprocessExecutor` with two worker processes sharing an on-disk
//! artifact store, and assert that the resulting `SweepReport` JSON is
//! byte-identical to the serial in-process run.
//!
//! The binary is its own worker: re-invoked with `--worker` it reconstructs
//! the identical pipeline and plan, then answers the unit-id/unit-result
//! wire protocol on stdin/stdout (`WorkPlan::serve`).  That is the whole
//! pattern a real distribution backend needs — workers only ever see unit
//! ids, and the driver's aggregator folds their self-identifying results
//! back in canonical order.
//!
//! The shared `DiskStore` closes the cold-worker gap: the driver's serial
//! run warms the store, so neither worker optimizes a single schedule or
//! simulates a single histogram — each worker asserts that itself via
//! `CacheStats` before exiting.
//!
//! Run with: `cargo run --release --example shard_worker`

use std::io::{self, BufReader};
use std::path::PathBuf;

use read_repro::prelude::*;

/// The experiment both the driver and every worker reconstruct: identical
/// configuration ⇒ identical plans ⇒ interchangeable unit results (and
/// identical artifact-store keys).
fn workloads() -> Vec<LayerWorkload> {
    let config = WorkloadConfig {
        pixels_per_layer: 1,
        ..WorkloadConfig::default()
    };
    vgg16_workloads(&config)
        .into_iter()
        .filter(|w| ["conv1_2", "conv3_5"].contains(&w.name.as_str()))
        .collect()
}

fn sweep_plan() -> SweepPlan {
    SweepPlan::new()
        .conditions([
            OperatingCondition::vt(0.05),
            OperatingCondition::aging_vt(10.0, 0.05),
        ])
        .typical()
        .die(3)
        .monte_carlo(32, 7)
        .trials_per_shard(8)
}

fn builder() -> ReadPipelineBuilder {
    ReadPipeline::builder()
        .source(Algorithm::Baseline)
        .source(Algorithm::ClusterThenReorder(SortCriterion::SignFirst))
        .sweep(sweep_plan())
}

const NETWORK: &str = "vgg16-sharded";
/// Environment variable carrying the shared store directory to workers.
const STORE_DIR_ENV: &str = "READ_SHARD_STORE_DIR";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    if std::env::args().any(|a| a == "--worker") {
        return worker();
    }
    driver()
}

/// Worker mode: serve the wire protocol over the shared store until the
/// driver closes stdin, then prove the store made this worker's caches
/// warm from the first unit on.
fn worker() -> Result<(), Box<dyn std::error::Error>> {
    let store_dir = std::env::var(STORE_DIR_ENV)?;
    let pipeline = builder().store(DiskStore::new(store_dir)?).build()?;
    let workloads = workloads();
    let plan = pipeline.plan_sweep(NETWORK, &workloads)?;
    plan.serve(BufReader::new(io::stdin()), &mut io::stdout())?;
    // The driver warmed the store: this worker must have computed nothing
    // fresh — the duplicated-optimization-across-workers gap is closed.
    let stats = pipeline.cache_stats();
    assert_eq!(
        stats.misses, 0,
        "worker optimized a schedule despite the store"
    );
    assert_eq!(
        stats.hist_misses, 0,
        "worker simulated a histogram despite the store"
    );
    assert_eq!(
        stats.unit_misses, 0,
        "worker executed a unit fresh despite the store"
    );
    Ok(())
}

/// Driver mode: serial run warming the shared store, then the same plan
/// across two worker processes pointed at it.
fn driver() -> Result<(), Box<dyn std::error::Error>> {
    let workloads = workloads();
    let store_dir: PathBuf =
        std::env::temp_dir().join(format!("read-shard-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);

    let serial_pipeline = builder()
        .executor(SerialExecutor)
        .store(DiskStore::new(&store_dir)?)
        .build()?;
    let serial = serial_pipeline.run_sweep(NETWORK, &workloads)?;
    let serial_stats = serial_pipeline.cache_stats();
    println!(
        "serial warm-up: {} optimizations, {} simulations, {} store writes -> {}",
        serial_stats.misses,
        serial_stats.hist_misses,
        serial_stats.store_writes,
        store_dir.display(),
    );

    let workers = 2;
    let distributed_pipeline = builder()
        .executor(
            SubprocessExecutor::new(std::env::current_exe()?)
                .arg("--worker")
                .env(STORE_DIR_ENV, store_dir.display().to_string())
                .workers(workers),
        )
        .store(DiskStore::new(&store_dir)?)
        .build()?;
    let plan = distributed_pipeline.plan_sweep(NETWORK, &workloads)?;
    println!(
        "plan: {} units over {} pairs ({} cells), executor {}",
        plan.units().len(),
        plan.pairs(),
        sweep_plan().cell_count(),
        distributed_pipeline.executor().name(),
    );
    let distributed = distributed_pipeline.run_plan(&plan)?.into_sweep()?;

    let serial_json = serial.to_json();
    let distributed_json = distributed.to_json();
    assert_eq!(
        serial_json, distributed_json,
        "a sweep distributed across {workers} worker processes must render \
         byte-identically to the serial run"
    );

    println!(
        "{} cells x {} rows re-aggregated byte-identically across {workers} worker \
         processes, each serving purely from the shared store",
        distributed.cells.len(),
        distributed.cells[0].rows.len(),
    );
    for w in &distributed.worst {
        println!(
            "  worst {:<34} TER {:.3e}  ({} @ {} on {})",
            w.algorithm, w.ter, w.layer, w.condition, w.die
        );
    }
    println!("report: {} bytes of identical JSON", distributed_json.len());
    let _ = std::fs::remove_dir_all(&store_dir);
    Ok(())
}
