//! WS vs OS dynamics on a ResNet layer: run the event-driven dataflow
//! engine over a ResNet-18 convolution under both dataflows, print the
//! typed `DataflowNetworkReport`, and write one Chrome-trace JSON file per
//! dataflow (open in `chrome://tracing` or Perfetto to see the stall and
//! spill structure).
//!
//! Run with: `cargo run --release --example dataflow_trace`
//!
//! Traces land in `target/dataflow-traces/` unless `READ_TRACE_DIR` is
//! set.  The example is also the CI "dataflow trace smoke" step: it
//! *asserts* that every written trace parses as JSON and that the
//! output-stationary event run reproduces the analytic engine's depth
//! histogram byte for byte (and both engines' outputs), so a drift between
//! the two timing paths fails the build rather than skewing a plot.

use read_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = WorkloadConfig {
        pixels_per_layer: 2,
        ..WorkloadConfig::default()
    };
    // conv1 of ResNet-18 on CIFAR: 27 rows of reduction against the
    // default 16-row array, so weight-stationary must spill and reload
    // partial sums through the psum-buffer context.
    let workloads = resnet18_workloads_prefix(&config, 1);
    let layer = &workloads[0];

    let read = Algorithm::ClusterThenReorder(SortCriterion::SignFirst);
    let pipeline = ReadPipeline::builder()
        .source(Algorithm::Baseline)
        .source(read)
        .condition(OperatingCondition::aging_vt(10.0, 0.05))
        .build()?;

    // The pipeline stage: every dataflow x layer x algorithm cell as one
    // memoizable work plan.
    let report = pipeline.run_dataflow("resnet18", &workloads)?;
    println!("{}", report.to_json());
    println!();

    let dir = std::env::var_os("READ_TRACE_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("target/dataflow-traces"));
    std::fs::create_dir_all(&dir)?;

    let problem = layer.problem();
    let array = ArrayConfig::new(16, 4);
    let schedule = read.schedule(&layer.weights, array.cols())?;
    let options = SimOptions::exhaustive();
    let reference = problem.reference_output()?;

    for dataflow in Dataflow::ALL {
        // Analytic path: the closed-form engine's depth histogram.
        let mut analytic = DepthHistogram::new();
        problem.simulate_with_schedule(&array, dataflow, &schedule, &options, &mut analytic)?;

        // Event path: same schedule through contexts and bounded channels,
        // with a Chrome trace attached.
        let mut event = DepthHistogram::new();
        let mut trace = TraceRecorder::new();
        let run = run_dataflow(
            &problem,
            &array,
            dataflow,
            &schedule,
            &options,
            &EngineConfig::default(),
            &mut event,
            Some(&mut trace),
        )?;

        // The CI contract: identical timing statistics and outputs.
        assert_eq!(
            event.to_wire(),
            analytic.to_wire(),
            "{dataflow:?}: event histogram diverged from the analytic path"
        );
        assert_eq!(run.outputs, reference, "{dataflow:?}: outputs diverged");

        let json = trace.to_chrome_json();
        read_repro::dataflow_sim::json::validate(&json)
            .map_err(|e| format!("{dataflow:?} trace is not valid JSON: {e}"))?;
        let path = dir.join(format!("{}_{}.json", layer.name, dataflow.name()));
        std::fs::write(&path, &json)?;

        let r = &run.report;
        println!(
            "{:>17}: {} cycles, {} macs, {:.1}% utilization, {} stalled, peak psum buffer {}",
            dataflow.name(),
            r.cycles,
            r.macs,
            100.0 * r.utilization(),
            r.stalled,
            r.peak_psum_buffer,
        );
        println!("{:>19}{}", "trace: ", path.display());
    }

    // The WS round trip through the psum buffer is what the trace shows.
    let ws = report
        .row("weight-stationary", &layer.name, &read.name())
        .expect("WS row present");
    assert!(ws.report.peak_psum_buffer > 0, "multi-tile WS must spill");

    println!("\ndataflow trace smoke: OK");
    Ok(())
}
