//! Quickstart: optimize the computation order of one convolution layer with
//! READ and inspect what it buys.
//!
//! Run with: `cargo run --release --example quickstart`

use accel_sim::Matrix;
use qnn::init::WeightInit;
use read_core::{
    ClusteringMode, LayerSchedule, ReadConfig, ReadOptimizer, SortCriterion,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A synthetic "trained" weight matrix: 576 reduction rows (64 input
    // channels x 3x3 filter) by 128 output channels.
    let mut init = WeightInit::new(7);
    let weights = Matrix::from_fn(576, 128, |_, _| init.weight(576));

    // The accelerator processes 4 output channels at a time (a 16x4 array).
    let columns_per_pass = 4;

    // Baseline: natural order, consecutive channel tiles.
    let baseline = LayerSchedule::baseline(weights.rows(), weights.cols(), columns_per_pass);
    let baseline_flips = baseline.total_sign_flips(&weights, None)?;

    // READ: cluster output channels by sign similarity, then reorder the
    // input channels of every cluster so non-negative weights come first.
    let optimizer = ReadOptimizer::new(ReadConfig {
        criterion: SortCriterion::SignFirst,
        clustering: ClusteringMode::ClusterThenReorder,
        ..ReadConfig::default()
    });
    let schedule = optimizer.optimize(&weights, columns_per_pass)?;
    let optimized_flips = schedule.total_sign_flips(&weights, None)?;

    println!("partial-sum sign flips (the critical input pattern):");
    println!("  baseline schedule : {baseline_flips}");
    println!("  READ schedule     : {optimized_flips}");
    println!(
        "  reduction         : {:.1}x",
        baseline_flips as f64 / optimized_flips.max(1) as f64
    );

    // The hardware cost is a small address LUT in front of the activation
    // buffer.
    let lut = schedule.lut()?;
    println!();
    println!(
        "hardware support: {} clusters x {} entries x {} bits = {} bytes of LUT SRAM",
        lut.num_clusters(),
        lut.channels(),
        lut.entry_bits(),
        lut.size_bytes()
    );
    println!(
        "  overhead vs a 2 MB activation buffer: {:.4}%",
        lut.overhead_fraction(2 * 1024 * 1024) * 100.0
    );

    // Changing the order never changes the result: the schedule is only a
    // permutation of the reduction.
    let compute = schedule.to_compute_schedule();
    compute.validate(weights.rows(), weights.cols())?;
    println!();
    println!("schedule validated: covers all {} output channels", weights.cols());
    Ok(())
}
