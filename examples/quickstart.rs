//! Quickstart: optimize the computation order of one convolution layer with
//! READ through the unified pipeline API and inspect what it buys.
//!
//! Run with: `cargo run --release --example quickstart`

use read_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A synthetic "trained" 576x128 layer (64 input channels x 3x3 filter by
    // 128 output channels) with a few activation pixels.
    let config = WorkloadConfig {
        pixels_per_layer: 2,
        ..WorkloadConfig::default()
    };
    let workload = LayerWorkload::generate(
        "demo_conv",
        ConvShape::new(1, 64, 16, 16, 128, 3, 3, 1, 1)?,
        &config,
        0,
    );

    // The whole flow as one object: baseline vs READ on the paper's 16x4
    // array, evaluated at the worst PVTA corner.
    let read = Algorithm::ClusterThenReorder(SortCriterion::SignFirst);
    let pipeline = ReadPipeline::builder()
        .source(Algorithm::Baseline)
        .source(read)
        .condition(OperatingCondition::aging_vt(10.0, 0.05))
        .build()?;

    let report = pipeline.run_ter("quickstart", std::slice::from_ref(&workload))?;
    let base = &report.rows[0];
    let opt = &report.rows[1];

    println!("partial-sum sign flips (the critical input pattern):");
    println!(
        "  baseline schedule : {} of {} cycles ({:.1}%)",
        base.sign_flips,
        base.total_cycles,
        base.sign_flip_rate * 100.0
    );
    println!(
        "  READ schedule     : {} of {} cycles ({:.1}%)",
        opt.sign_flips,
        opt.total_cycles,
        opt.sign_flip_rate * 100.0
    );
    println!(
        "  TER at the worst corner: {:.3e} -> {:.3e} ({:.1}x lower)",
        base.ter,
        opt.ter,
        base.ter / opt.ter.max(1e-300)
    );

    // The hardware cost is a small address LUT in front of the activation
    // buffer; the LayerSchedule (the pipeline's schedule source output in
    // schedule form) describes it.
    let schedule = ReadOptimizer::new(ReadConfig {
        criterion: SortCriterion::SignFirst,
        clustering: ClusteringMode::ClusterThenReorder,
        ..ReadConfig::default()
    })
    .optimize(&workload.weights, pipeline.array().cols())?;
    let lut = schedule.lut()?;
    println!();
    println!(
        "hardware support: {} clusters x {} entries x {} bits = {} bytes of LUT SRAM",
        lut.num_clusters(),
        lut.channels(),
        lut.entry_bits(),
        lut.size_bytes()
    );
    println!(
        "  overhead vs a 2 MB activation buffer: {:.4}%",
        lut.overhead_fraction(2 * 1024 * 1024) * 100.0
    );

    // Changing the order never changes the result.
    let baseline_out = pipeline.layer_outputs(&workload, &Algorithm::Baseline)?;
    let read_out = pipeline.layer_outputs(&workload, &read)?;
    assert_eq!(baseline_out, read_out);
    println!();
    println!(
        "outputs verified bit-exact across schedules for all {} output channels",
        workload.weights.cols()
    );
    Ok(())
}
