//! Compute schedules: which output channels are processed together and in
//! which order the reduction (input-channel) dimension is visited.
//!
//! A [`ComputeSchedule`] is the interface between the READ optimizer and the
//! simulator: the optimizer decides the grouping and ordering, the simulator
//! executes it.  The default schedule reproduces the baseline accelerator
//! behaviour (consecutive column tiles, natural reduction order).

use crate::error::SimError;
use crate::matrix::validate_permutation;

/// A group of output channels processed simultaneously on the array columns,
/// together with the reduction order used for the whole group.
///
/// In the paper's terms a `ColumnGroup` is one cluster `T_i` with its
/// per-cluster input-channel sequence `S_i`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnGroup {
    /// Output-channel (column) indices of the weight matrix in this group.
    pub columns: Vec<usize>,
    /// Order in which the reduction rows are visited when computing every
    /// output of this group.  Must be a permutation of `0..reduction_len`.
    pub row_order: Vec<usize>,
}

impl ColumnGroup {
    /// Creates a group with the natural (identity) reduction order.
    pub fn with_identity_order(columns: Vec<usize>, reduction_len: usize) -> Self {
        ColumnGroup {
            columns,
            row_order: (0..reduction_len).collect(),
        }
    }
}

/// Full schedule for one GEMM / layer: a partition of the output channels
/// into groups, each with its own reduction order.
///
/// # Example
///
/// ```
/// use accel_sim::ComputeSchedule;
///
/// // Baseline schedule for a 64-channel layer with reduction length 128 on a
/// // 4-column array: 16 groups of 4 channels, natural order.
/// let schedule = ComputeSchedule::baseline(128, 64, 4);
/// assert_eq!(schedule.groups().len(), 16);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct ComputeSchedule {
    groups: Vec<ColumnGroup>,
}

impl ComputeSchedule {
    /// Creates a schedule from explicit groups.
    pub fn new(groups: Vec<ColumnGroup>) -> Self {
        ComputeSchedule { groups }
    }

    /// The baseline schedule used by an unmodified accelerator: output
    /// channels are taken in consecutive tiles of `cols_per_group` and the
    /// reduction dimension is visited in natural order.
    pub fn baseline(reduction_len: usize, num_channels: usize, cols_per_group: usize) -> Self {
        let cols_per_group = cols_per_group.max(1);
        let mut groups = Vec::new();
        let mut start = 0;
        while start < num_channels {
            let end = (start + cols_per_group).min(num_channels);
            groups.push(ColumnGroup::with_identity_order(
                (start..end).collect(),
                reduction_len,
            ));
            start = end;
        }
        ComputeSchedule { groups }
    }

    /// Borrow the column groups.
    pub fn groups(&self) -> &[ColumnGroup] {
        &self.groups
    }

    /// Total number of output channels covered by the schedule.
    pub fn num_channels(&self) -> usize {
        self.groups.iter().map(|g| g.columns.len()).sum()
    }

    /// The output-channel order induced by the schedule (concatenation of the
    /// group column lists).  This is the order in which output channels are
    /// produced, which the next layer must account for (Section IV-D).
    pub fn output_channel_order(&self) -> Vec<usize> {
        self.groups
            .iter()
            .flat_map(|g| g.columns.iter().copied())
            .collect()
    }

    /// Deterministic single-line text encoding of the schedule, used to
    /// persist cached schedules in content-addressed artifact stores (the
    /// build environment has no serde).  Format:
    /// `groups=<cols>@<order>[;<cols>@<order>...]` where `<cols>` and
    /// `<order>` are comma-separated decimal indices — e.g. a two-channel
    /// group visiting rows `2,0,1` encodes as `0,1@2,0,1`.
    ///
    /// [`ComputeSchedule::from_wire`] is the exact inverse: encoding and
    /// decoding round-trips every schedule byte for byte.
    pub fn to_wire(&self) -> String {
        let mut out = String::from("groups=");
        for (gi, group) in self.groups.iter().enumerate() {
            if gi > 0 {
                out.push(';');
            }
            push_index_list(&mut out, &group.columns);
            out.push('@');
            push_index_list(&mut out, &group.row_order);
        }
        out
    }

    /// Decodes a [`ComputeSchedule::to_wire`] line.  Returns `None` on any
    /// malformed input; structural validity against a concrete problem is
    /// the caller's job ([`ComputeSchedule::validate`]).
    pub fn from_wire(line: &str) -> Option<ComputeSchedule> {
        let rest = line.strip_prefix("groups=")?;
        if rest.is_empty() {
            return Some(ComputeSchedule { groups: Vec::new() });
        }
        let mut groups = Vec::new();
        for part in rest.split(';') {
            let (cols, order) = part.split_once('@')?;
            groups.push(ColumnGroup {
                columns: parse_index_list(cols)?,
                row_order: parse_index_list(order)?,
            });
        }
        Some(ComputeSchedule { groups })
    }

    /// Validates the schedule against a `reduction_len x num_channels`
    /// problem: every group's row order must be a permutation of the
    /// reduction indices, and the groups must partition the channel set.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidSchedule`] describing the first violation.
    pub fn validate(&self, reduction_len: usize, num_channels: usize) -> Result<(), SimError> {
        if self.groups.is_empty() {
            return Err(SimError::InvalidSchedule {
                reason: "schedule has no column groups".into(),
            });
        }
        let mut seen = vec![false; num_channels];
        for (gi, g) in self.groups.iter().enumerate() {
            if g.columns.is_empty() {
                return Err(SimError::InvalidSchedule {
                    reason: format!("group {gi} has no columns"),
                });
            }
            validate_permutation(&g.row_order, reduction_len)?;
            for &c in &g.columns {
                if c >= num_channels {
                    return Err(SimError::InvalidSchedule {
                        reason: format!("group {gi} references channel {c} >= {num_channels}"),
                    });
                }
                if seen[c] {
                    return Err(SimError::InvalidSchedule {
                        reason: format!("channel {c} appears in more than one group"),
                    });
                }
                seen[c] = true;
            }
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(SimError::InvalidSchedule {
                reason: format!("channel {missing} is not covered by any group"),
            });
        }
        Ok(())
    }
}

fn push_index_list(out: &mut String, indices: &[usize]) {
    for (i, index) in indices.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&index.to_string());
    }
}

fn parse_index_list(s: &str) -> Option<Vec<usize>> {
    if s.is_empty() {
        return Some(Vec::new());
    }
    s.split(',').map(|t| t.parse().ok()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_encoding_round_trips_exactly() {
        let schedules = [
            ComputeSchedule::baseline(3, 5, 2),
            ComputeSchedule::new(vec![
                ColumnGroup {
                    columns: vec![4, 0],
                    row_order: vec![2, 0, 1],
                },
                ColumnGroup {
                    columns: vec![1],
                    row_order: vec![0, 1, 2],
                },
            ]),
            ComputeSchedule::default(),
        ];
        for schedule in schedules {
            let wire = schedule.to_wire();
            assert_eq!(ComputeSchedule::from_wire(&wire), Some(schedule), "{wire}");
        }
        assert_eq!(
            ComputeSchedule::new(vec![ColumnGroup {
                columns: vec![4, 0],
                row_order: vec![2, 0, 1],
            }])
            .to_wire(),
            "groups=4,0@2,0,1"
        );
        assert_eq!(ComputeSchedule::default().to_wire(), "groups=");
    }

    #[test]
    fn malformed_wire_schedules_are_rejected() {
        for bad in [
            "",
            "groups",
            "groups=0,1",        // no '@'
            "groups=0,x@0",      // non-numeric column
            "groups=0@1,zap",    // non-numeric row
            "groups=0@0;",       // empty trailing group
            "schedule=groups=0", // wrong prefix
        ] {
            assert!(
                ComputeSchedule::from_wire(bad).is_none(),
                "{bad:?} should not decode"
            );
        }
    }

    #[test]
    fn baseline_covers_all_channels() {
        let s = ComputeSchedule::baseline(10, 9, 4);
        assert_eq!(s.groups().len(), 3);
        assert_eq!(s.num_channels(), 9);
        assert!(s.validate(10, 9).is_ok());
        assert_eq!(s.output_channel_order(), (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn baseline_handles_zero_cols_per_group() {
        let s = ComputeSchedule::baseline(4, 3, 0);
        assert!(s.validate(4, 3).is_ok());
    }

    #[test]
    fn validate_rejects_missing_channel() {
        let s = ComputeSchedule::new(vec![ColumnGroup::with_identity_order(vec![0, 1], 4)]);
        assert!(s.validate(4, 3).is_err());
    }

    #[test]
    fn validate_rejects_duplicate_channel() {
        let s = ComputeSchedule::new(vec![
            ColumnGroup::with_identity_order(vec![0, 1], 4),
            ColumnGroup::with_identity_order(vec![1, 2], 4),
        ]);
        assert!(s.validate(4, 3).is_err());
    }

    #[test]
    fn validate_rejects_bad_row_order() {
        let s = ComputeSchedule::new(vec![ColumnGroup {
            columns: vec![0],
            row_order: vec![0, 0, 1],
        }]);
        assert!(s.validate(3, 1).is_err());
    }

    #[test]
    fn validate_rejects_empty() {
        let s = ComputeSchedule::new(vec![]);
        assert!(s.validate(3, 1).is_err());
        let s = ComputeSchedule::new(vec![ColumnGroup {
            columns: vec![],
            row_order: vec![0, 1, 2],
        }]);
        assert!(s.validate(3, 0).is_err());
    }

    #[test]
    fn output_channel_order_follows_groups() {
        let s = ComputeSchedule::new(vec![
            ColumnGroup::with_identity_order(vec![2, 0], 2),
            ColumnGroup::with_identity_order(vec![1], 2),
        ]);
        assert_eq!(s.output_channel_order(), vec![2, 0, 1]);
        assert!(s.validate(2, 3).is_ok());
    }
}
