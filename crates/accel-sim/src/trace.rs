//! Observers that collect per-cycle statistics and traces from a simulation.

use crate::bitplane::{self, DEPTH_PLANES};
use crate::mac::MacCycle;

/// Identifies where in the layer a MAC cycle occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CycleContext {
    /// Index of the column group (cluster) being processed.
    pub group: usize,
    /// Output-channel index (column of the weight matrix).
    pub channel: usize,
    /// Output-pixel index (column of the activation matrix).
    pub pixel: usize,
    /// Position of this cycle within the output's reduction sequence
    /// (0-based).
    pub step: usize,
    /// The reduction-row index (input channel x filter tap) consumed this
    /// cycle.
    pub reduction_index: usize,
}

/// Up to 64 lanes' worth of per-cycle depth/sign statistics, produced by the
/// word-parallel simulation kernel (one word of output pixels per reduction
/// step).
///
/// Lane `l` of every field is bit `l`.  `depth_planes` is a packed per-lane
/// counter (little-endian bit planes, see [`crate::bitplane`]) holding each
/// lane's triggered depth ([`MacCycle::triggered_depth`], with idle cycles
/// naturally reporting depth 0); `sign_flips` flags the lanes whose
/// partial-sum sign bit flipped.  Only lanes set in `lane_mask` are valid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepthWord {
    /// Packed per-lane triggered depths (bit plane `k` = bit `k` of every
    /// lane's depth).
    pub depth_planes: [u64; DEPTH_PLANES],
    /// Lanes whose partial-sum sign flipped this step (already restricted to
    /// `lane_mask`).
    pub sign_flips: u64,
    /// Mask of the valid (simulated) lanes of this word.
    pub lane_mask: u64,
}

impl DepthWord {
    /// Number of valid lanes in this word.
    pub fn lanes(&self) -> u32 {
        self.lane_mask.count_ones()
    }

    /// Unpacks one lane's triggered depth (scalar reference accessor; the
    /// packed consumers never need per-lane extraction).
    pub fn depth(&self, lane: usize) -> u32 {
        bitplane::lane_value(&self.depth_planes, lane) as u32
    }

    /// Whether the given lane's partial-sum sign flipped this step.
    pub fn sign_flip(&self, lane: usize) -> bool {
        (self.sign_flips >> lane) & 1 == 1
    }
}

/// Consumes packed depth/sign statistics from the word-parallel simulation
/// kernel — the bulk counterpart of [`CycleObserver::on_cycle`] for
/// observers that only need depth and sign-flip counts.
pub trait DepthWordSink {
    /// Called once per reduction step with up to 64 lanes of statistics.
    fn on_depth_word(&mut self, word: &DepthWord);
}

/// Receives every simulated MAC cycle.
///
/// Implementations range from cheap counters ([`SignFlipStats`]) to full
/// partial-sum recorders ([`PsumTraceRecorder`]).  The simulator drives the
/// observer synchronously, so implementations should be O(1) per cycle.
pub trait CycleObserver {
    /// Called once per simulated MAC cycle.
    fn on_cycle(&mut self, ctx: &CycleContext, cycle: &MacCycle);

    /// Called when all cycles of one output activation have been issued.
    /// The default implementation does nothing.
    fn on_output_done(&mut self, _ctx: &CycleContext, _final_psum: i32) {}

    /// Opt-in hook for the word-parallel simulation path: an observer that
    /// only needs depth/sign statistics returns `Some(self)` here and the
    /// simulator feeds it packed [`DepthWord`]s (64 output pixels per
    /// reduction step) instead of scalar cycles.  The aggregate it
    /// accumulates is byte-identical to the scalar path because depth and
    /// sign-flip tallies are integer counts, insensitive to cycle order.
    ///
    /// The default returns `None`, keeping full-trace observers (and any
    /// float-accumulating analyzer, where summation order matters) on the
    /// exact scalar path.
    fn depth_word_sink(&mut self) -> Option<&mut dyn DepthWordSink> {
        None
    }
}

/// A no-op observer for purely functional simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullObserver;

impl CycleObserver for NullObserver {
    fn on_cycle(&mut self, _ctx: &CycleContext, _cycle: &MacCycle) {}
}

/// Aggregate switching statistics over a simulation: total MACs, sign flips,
/// carry-chain activity.
///
/// The *sign-flip rate* (`sign_flips / total_macs`) is the quantity the READ
/// paper correlates with the timing error rate (Fig. 2), and the quantity its
/// optimizer minimizes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SignFlipStats {
    /// Total number of MAC cycles observed.
    pub total_macs: u64,
    /// Cycles in which the partial-sum sign bit flipped.
    pub sign_flips: u64,
    /// Cycles whose carry chain reached at least 3/4 of the accumulator
    /// width (a long-path proxy independent of the timing model).
    pub long_carry_cycles: u64,
    /// Sum of carry-chain lengths (for mean carry length).
    pub carry_len_sum: u64,
    /// Sum of toggled accumulator bits (switching-activity proxy).
    pub toggled_bits_sum: u64,
    /// Number of completed output activations.
    pub outputs: u64,
    /// Number of completed outputs whose final value was negative.
    pub negative_outputs: u64,
}

impl SignFlipStats {
    /// Creates an empty statistics accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fraction of MAC cycles that flipped the partial-sum sign.
    pub fn sign_flip_rate(&self) -> f64 {
        if self.total_macs == 0 {
            0.0
        } else {
            self.sign_flips as f64 / self.total_macs as f64
        }
    }

    /// Mean carry-chain length per MAC cycle.
    pub fn mean_carry_len(&self) -> f64 {
        if self.total_macs == 0 {
            0.0
        } else {
            self.carry_len_sum as f64 / self.total_macs as f64
        }
    }

    /// Mean number of sign flips per output activation.
    pub fn sign_flips_per_output(&self) -> f64 {
        if self.outputs == 0 {
            0.0
        } else {
            self.sign_flips as f64 / self.outputs as f64
        }
    }

    /// Fraction of completed outputs whose final value was negative.  With
    /// the READ ordering this is a lower bound on the achievable sign-flip
    /// count per output (Section III, "sign flip optimality").
    pub fn negative_output_fraction(&self) -> f64 {
        if self.outputs == 0 {
            0.0
        } else {
            self.negative_outputs as f64 / self.outputs as f64
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &SignFlipStats) {
        self.total_macs += other.total_macs;
        self.sign_flips += other.sign_flips;
        self.long_carry_cycles += other.long_carry_cycles;
        self.carry_len_sum += other.carry_len_sum;
        self.toggled_bits_sum += other.toggled_bits_sum;
        self.outputs += other.outputs;
        self.negative_outputs += other.negative_outputs;
    }
}

impl CycleObserver for SignFlipStats {
    fn on_cycle(&mut self, _ctx: &CycleContext, cycle: &MacCycle) {
        self.total_macs += 1;
        if cycle.sign_flip {
            self.sign_flips += 1;
        }
        if cycle.carry_len * 4 >= crate::mac::ACC_BITS * 3 {
            self.long_carry_cycles += 1;
        }
        self.carry_len_sum += u64::from(cycle.carry_len);
        self.toggled_bits_sum += u64::from(cycle.toggled_bits);
    }

    fn on_output_done(&mut self, _ctx: &CycleContext, final_psum: i32) {
        self.outputs += 1;
        if final_psum < 0 {
            self.negative_outputs += 1;
        }
    }
}

/// Records the full partial-sum time series of selected output activations
/// (used to reproduce Fig. 9 of the paper).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PsumTraceRecorder {
    /// Restrict recording to this output channel, if set.
    channel_filter: Option<usize>,
    /// Restrict recording to this output pixel, if set.
    pixel_filter: Option<usize>,
    /// Maximum number of cycles to record (0 = unlimited).
    max_cycles: usize,
    trace: Vec<i32>,
    sign_flip_cycles: Vec<usize>,
}

impl PsumTraceRecorder {
    /// Records every cycle of every output.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records only cycles belonging to the given output channel.
    pub fn for_channel(channel: usize) -> Self {
        PsumTraceRecorder {
            channel_filter: Some(channel),
            ..Self::default()
        }
    }

    /// Records only cycles belonging to the given output channel and pixel.
    pub fn for_output(channel: usize, pixel: usize) -> Self {
        PsumTraceRecorder {
            channel_filter: Some(channel),
            pixel_filter: Some(pixel),
            ..Self::default()
        }
    }

    /// Limits the number of recorded cycles.
    pub fn with_max_cycles(mut self, max_cycles: usize) -> Self {
        self.max_cycles = max_cycles;
        self
    }

    /// The recorded partial-sum sequence (one entry per recorded cycle).
    pub fn trace(&self) -> &[i32] {
        &self.trace
    }

    /// Indices (into [`PsumTraceRecorder::trace`]) of the cycles where the
    /// partial-sum sign flipped.
    pub fn sign_flip_cycles(&self) -> &[usize] {
        &self.sign_flip_cycles
    }

    /// Number of recorded sign flips.
    pub fn sign_flip_count(&self) -> usize {
        self.sign_flip_cycles.len()
    }

    fn matches(&self, ctx: &CycleContext) -> bool {
        self.channel_filter.is_none_or(|c| c == ctx.channel)
            && self.pixel_filter.is_none_or(|p| p == ctx.pixel)
    }
}

impl CycleObserver for PsumTraceRecorder {
    fn on_cycle(&mut self, ctx: &CycleContext, cycle: &MacCycle) {
        if !self.matches(ctx) {
            return;
        }
        if self.max_cycles != 0 && self.trace.len() >= self.max_cycles {
            return;
        }
        if cycle.sign_flip {
            self.sign_flip_cycles.push(self.trace.len());
        }
        self.trace.push(cycle.psum_after);
    }
}

/// Fans one cycle stream out to two observers.
///
/// Useful when an experiment needs both aggregate statistics and a detailed
/// trace from a single simulation pass.
#[derive(Debug, Default)]
pub struct TeeObserver<A, B> {
    /// First observer.
    pub first: A,
    /// Second observer.
    pub second: B,
}

impl<A, B> TeeObserver<A, B> {
    /// Combines two observers.
    pub fn new(first: A, second: B) -> Self {
        TeeObserver { first, second }
    }
}

impl<A: CycleObserver, B: CycleObserver> CycleObserver for TeeObserver<A, B> {
    fn on_cycle(&mut self, ctx: &CycleContext, cycle: &MacCycle) {
        self.first.on_cycle(ctx, cycle);
        self.second.on_cycle(ctx, cycle);
    }

    fn on_output_done(&mut self, ctx: &CycleContext, final_psum: i32) {
        self.first.on_output_done(ctx, final_psum);
        self.second.on_output_done(ctx, final_psum);
    }
}

/// Forces the exact scalar simulation path for an observer that would
/// otherwise opt into the word-parallel kernel: `on_cycle`/`on_output_done`
/// are forwarded, but [`CycleObserver::depth_word_sink`] stays `None`.
///
/// Used by the equivalence tests and benches to compare the packed path
/// against the scalar reference on the *same* observer type.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScalarPath<O>(pub O);

impl<O: CycleObserver> CycleObserver for ScalarPath<O> {
    fn on_cycle(&mut self, ctx: &CycleContext, cycle: &MacCycle) {
        self.0.on_cycle(ctx, cycle);
    }

    fn on_output_done(&mut self, ctx: &CycleContext, final_psum: i32) {
        self.0.on_output_done(ctx, final_psum);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mac::MacUnit;

    fn ctx() -> CycleContext {
        CycleContext {
            group: 0,
            channel: 0,
            pixel: 0,
            step: 0,
            reduction_index: 0,
        }
    }

    #[test]
    fn stats_count_sign_flips() {
        let mut stats = SignFlipStats::new();
        let mut mac = MacUnit::new();
        // +4, -8 (flip), +16 (flip)
        for (w, a) in [(2i8, 2i8), (-2, 4), (4, 4)] {
            let c = mac.mac(w, a);
            stats.on_cycle(&ctx(), &c);
        }
        stats.on_output_done(&ctx(), mac.psum());
        assert_eq!(stats.total_macs, 3);
        assert_eq!(stats.sign_flips, 2);
        assert_eq!(stats.outputs, 1);
        assert_eq!(stats.negative_outputs, 0);
        assert!((stats.sign_flip_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert!((stats.sign_flips_per_output() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn stats_empty_rates_are_zero() {
        let stats = SignFlipStats::new();
        assert_eq!(stats.sign_flip_rate(), 0.0);
        assert_eq!(stats.mean_carry_len(), 0.0);
        assert_eq!(stats.sign_flips_per_output(), 0.0);
        assert_eq!(stats.negative_output_fraction(), 0.0);
    }

    #[test]
    fn stats_merge_adds_fields() {
        let mut a = SignFlipStats {
            total_macs: 10,
            sign_flips: 2,
            outputs: 1,
            ..Default::default()
        };
        let b = SignFlipStats {
            total_macs: 5,
            sign_flips: 1,
            negative_outputs: 1,
            outputs: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.total_macs, 15);
        assert_eq!(a.sign_flips, 3);
        assert_eq!(a.outputs, 2);
        assert_eq!(a.negative_outputs, 1);
    }

    #[test]
    fn trace_recorder_filters_by_output() {
        let mut rec = PsumTraceRecorder::for_output(1, 2);
        let mut mac = MacUnit::new();
        let c = mac.mac(1, 1);
        rec.on_cycle(&ctx(), &c); // wrong channel/pixel: ignored
        let right = CycleContext {
            group: 0,
            channel: 1,
            pixel: 2,
            step: 0,
            reduction_index: 0,
        };
        rec.on_cycle(&right, &c);
        assert_eq!(rec.trace().len(), 1);
    }

    #[test]
    fn trace_recorder_tracks_sign_flips_and_caps_length() {
        let mut rec = PsumTraceRecorder::new().with_max_cycles(2);
        let mut mac = MacUnit::new();
        for (w, a) in [(1i8, 1i8), (-2, 1), (5, 5)] {
            let c = mac.mac(w, a);
            rec.on_cycle(&ctx(), &c);
        }
        assert_eq!(rec.trace().len(), 2);
        assert_eq!(rec.sign_flip_count(), 1);
        assert_eq!(rec.sign_flip_cycles(), &[1]);
    }

    #[test]
    fn tee_observer_forwards_to_both() {
        let mut tee = TeeObserver::new(SignFlipStats::new(), PsumTraceRecorder::new());
        let mut mac = MacUnit::new();
        let c = mac.mac(3, 3);
        tee.on_cycle(&ctx(), &c);
        tee.on_output_done(&ctx(), 9);
        assert_eq!(tee.first.total_macs, 1);
        assert_eq!(tee.second.trace(), &[9]);
    }
}
