//! Error type for the accelerator simulator.

use std::error::Error;
use std::fmt;

/// Errors reported by the accelerator simulator.
///
/// All public fallible operations in this crate return [`SimError`].  The
/// variants carry the offending dimensions so that callers can report
/// actionable diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// Two matrices that must agree on a dimension do not.
    DimensionMismatch {
        /// Human-readable description of the mismatching dimension.
        what: &'static str,
        /// Dimension observed on the left-hand operand.
        left: usize,
        /// Dimension observed on the right-hand operand.
        right: usize,
    },
    /// A matrix or array dimension was zero where a positive size is required.
    EmptyDimension {
        /// Which dimension was empty.
        what: &'static str,
    },
    /// A compute schedule references a row or column outside the problem.
    InvalidSchedule {
        /// Description of the inconsistency.
        reason: String,
    },
    /// A convolution shape is internally inconsistent (e.g. filter larger
    /// than the padded input).
    InvalidShape {
        /// Description of the inconsistency.
        reason: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::DimensionMismatch { what, left, right } => {
                write!(f, "dimension mismatch on {what}: {left} vs {right}")
            }
            SimError::EmptyDimension { what } => write!(f, "dimension {what} must be non-zero"),
            SimError::InvalidSchedule { reason } => write!(f, "invalid compute schedule: {reason}"),
            SimError::InvalidShape { reason } => write!(f, "invalid convolution shape: {reason}"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let e = SimError::DimensionMismatch {
            what: "reduction length",
            left: 3,
            right: 4,
        };
        assert_eq!(
            e.to_string(),
            "dimension mismatch on reduction length: 3 vs 4"
        );
    }

    #[test]
    fn display_other_variants() {
        assert!(SimError::EmptyDimension { what: "rows" }
            .to_string()
            .contains("rows"));
        assert!(SimError::InvalidSchedule {
            reason: "row 9 out of range".into()
        }
        .to_string()
        .contains("row 9"));
        assert!(SimError::InvalidShape {
            reason: "filter larger than input".into()
        }
        .to_string()
        .contains("filter"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }
}
