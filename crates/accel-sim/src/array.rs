//! Geometry of the processing-element array.

use crate::error::SimError;

/// Geometry of the 2-D PE array.
///
/// The READ paper evaluates a 16x4 output-stationary systolic array; other
/// geometries are used by the ablation benches.  `rows` corresponds to the
/// paper's `Ar` (parallel output pixels) and `cols` to `Ac` (parallel output
/// channels).
///
/// # Example
///
/// ```
/// use accel_sim::ArrayConfig;
///
/// let array = ArrayConfig::paper_default();
/// assert_eq!(array.rows(), 16);
/// assert_eq!(array.cols(), 4);
/// assert_eq!(array.pe_count(), 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrayConfig {
    rows: usize,
    cols: usize,
}

impl ArrayConfig {
    /// Creates an array geometry.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero; use [`ArrayConfig::try_new`] for a
    /// fallible constructor.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self::try_new(rows, cols).expect("array dimensions must be non-zero")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EmptyDimension`] if either dimension is zero.
    pub fn try_new(rows: usize, cols: usize) -> Result<Self, SimError> {
        if rows == 0 {
            return Err(SimError::EmptyDimension { what: "array rows" });
        }
        if cols == 0 {
            return Err(SimError::EmptyDimension { what: "array cols" });
        }
        Ok(ArrayConfig { rows, cols })
    }

    /// The 16x4 output-stationary array evaluated in the paper.
    pub fn paper_default() -> Self {
        ArrayConfig { rows: 16, cols: 4 }
    }

    /// Number of array rows (`Ar`, parallel output pixels).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of array columns (`Ac`, parallel output channels).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of processing elements.
    pub fn pe_count(&self) -> usize {
        self.rows * self.cols
    }

    /// Number of column tiles needed to cover `k` output channels.
    pub fn col_tiles(&self, k: usize) -> usize {
        k.div_ceil(self.cols)
    }

    /// Number of row tiles needed to cover `m` output pixels.
    pub fn row_tiles(&self, m: usize) -> usize {
        m.div_ceil(self.rows)
    }
}

impl Default for ArrayConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl std::fmt::Display for ArrayConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{} PE array", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_geometry() {
        let a = ArrayConfig::paper_default();
        assert_eq!((a.rows(), a.cols()), (16, 4));
        assert_eq!(a, ArrayConfig::default());
    }

    #[test]
    fn zero_dimensions_rejected() {
        assert!(ArrayConfig::try_new(0, 4).is_err());
        assert!(ArrayConfig::try_new(4, 0).is_err());
        assert!(ArrayConfig::try_new(1, 1).is_ok());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn new_panics_on_zero() {
        let _ = ArrayConfig::new(0, 1);
    }

    #[test]
    fn tiling_counts() {
        let a = ArrayConfig::new(16, 4);
        assert_eq!(a.col_tiles(4), 1);
        assert_eq!(a.col_tiles(5), 2);
        assert_eq!(a.col_tiles(64), 16);
        assert_eq!(a.row_tiles(16), 1);
        assert_eq!(a.row_tiles(17), 2);
        assert_eq!(a.row_tiles(1), 1);
    }

    #[test]
    fn display_format() {
        assert_eq!(ArrayConfig::new(8, 2).to_string(), "8x2 PE array");
    }
}
