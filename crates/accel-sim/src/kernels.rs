//! The word-parallel GEMM simulation kernel: 64 output pixels per step.
//!
//! When an observer only needs triggered-depth and sign-flip statistics (it
//! returns a [`DepthWordSink`] from
//! [`CycleObserver::depth_word_sink`](crate::trace::CycleObserver::depth_word_sink)),
//! the simulator routes through this kernel instead of the scalar MAC loop.
//! A word of output pixels shares one reduction step: the 64 products are
//! packed into 16 bit planes ([`crate::bitplane`]) and a single bit-sliced
//! pass over the 24 accumulator planes computes, for every lane at once,
//!
//! * the wrapped 24-bit partial sum (ripple-carry addition),
//! * the longest carry-propagation run (the bit-sliced transcription of
//!   [`carry_chain_length`](crate::mac::carry_chain_length)),
//! * the most significant toggled accumulator bit, and
//! * the partial-sum sign flip (sign-plane XOR),
//!
//! so one step costs `O(ACC_BITS)` word operations for 64 simulated MAC
//! cycles, against ~10 operations *per accumulator bit per cycle* in the
//! scalar path.  The per-lane triggered depths (`max(carry_run, msb)`) are
//! handed to the sink as packed [`DepthWord`]s.
//!
//! # Equivalence with the scalar path
//!
//! Both dataflows perform, for every `(channel, pixel)` output, the same
//! additions in the same `row_order` — weight-stationary tiling only
//! interleaves outputs and round-trips partial sums through
//! `MacUnit::load(psum)`, which is idempotent on already-wrapped values — so
//! the multiset of simulated MAC cycles is dataflow-independent, and a
//! single packed routine serves both.  Any observer whose aggregate is a
//! cycle-order-insensitive integer tally therefore accumulates results
//! byte-identical to the scalar path; the in-crate exhaustive tests and the
//! cross-crate property tests pin this for every `(weight, activation)`
//! pair and for random problems at lane-remainder widths.

use crate::bitplane::{self, DEPTH_PLANES};
use crate::mac::{sign_extend, ACC_BITS};
use crate::matrix::Matrix;
use crate::schedule::ComputeSchedule;
use crate::trace::{DepthWord, DepthWordSink};

const ACC_PLANES: usize = ACC_BITS as usize;

/// Runs the full GEMM through the packed depth kernel, filling `outputs`
/// and streaming one [`DepthWord`] per (group, channel, reduction step,
/// pixel-word) to the sink.  `pixels` is the sorted list of simulated output
/// pixels; partial trailing words run with a narrowed lane mask.
pub(crate) fn run_depth_words(
    weights: &Matrix<i8>,
    activations: &Matrix<i8>,
    schedule: &ComputeSchedule,
    pixels: &[usize],
    sink: &mut dyn DepthWordSink,
    outputs: &mut Matrix<i32>,
    total_cycles: &mut u64,
) {
    let mut products = [0i16; 64];
    for chunk in pixels.chunks(64) {
        let mask = bitplane::lane_mask(chunk.len());
        for group in schedule.groups() {
            for &channel in &group.columns {
                let mut acc = [0u64; ACC_PLANES];
                for &r in &group.row_order {
                    let w = i32::from(weights[(r, channel)]);
                    let act_row = activations.row(r);
                    for (l, &pixel) in chunk.iter().enumerate() {
                        // i8 x i8 products fit i16 exactly.
                        products[l] = (w * i32::from(act_row[pixel])) as i16;
                    }
                    let addend = bitplane::planes_from_i16(&products[..chunk.len()]);
                    let word = depth_step(&mut acc, &addend, mask);
                    *total_cycles += chunk.len() as u64;
                    sink.on_depth_word(&word);
                }
                for (l, &pixel) in chunk.iter().enumerate() {
                    outputs[(channel, pixel)] = extract_psum(&acc, l);
                }
            }
        }
    }
}

/// One bit-sliced reduction step: accumulates the packed 16-bit products
/// into the 24-plane accumulator and returns every lane's triggered depth
/// and sign flip.
fn depth_step(acc: &mut [u64; ACC_PLANES], addend: &[u64; 16], lane_mask: u64) -> DepthWord {
    let sign_ext = addend[15];
    let before_sign = acc[ACC_PLANES - 1];
    let mut carry = 0u64;
    // Packed per-lane counters: the current carry run, the best (longest)
    // run so far, and the most significant toggled bit position.
    let mut run = [0u64; DEPTH_PLANES];
    let mut best = [0u64; DEPTH_PLANES];
    let mut msb = [0u64; DEPTH_PLANES];
    for (i, slot) in acc.iter_mut().enumerate() {
        let a = *slot;
        let b = if i < addend.len() {
            addend[i]
        } else {
            sign_ext
        };
        let generate = a & b;
        let propagate = a ^ b;
        let sum = propagate ^ carry;

        // Carry-run tracking, the bit-sliced transcription of
        // `carry_chain_length`: lanes whose incoming carry propagates extend
        // their run by one, lanes that freshly generate restart at 1
        // (generate and extend are disjoint: `generate & propagate == 0`),
        // every other lane resets to 0.
        let extend = carry & propagate;
        let mut inc_carry = !0u64;
        for plane in run.iter_mut() {
            let incremented = *plane ^ inc_carry;
            inc_carry &= *plane;
            *plane = incremented & extend;
        }
        run[0] |= generate;
        let keep_run = bitplane::lanes_ge(&run, &best);
        for (b_plane, r_plane) in best.iter_mut().zip(&run) {
            *b_plane = (r_plane & keep_run) | (*b_plane & !keep_run);
        }

        // Lanes whose accumulator bit `i` toggled have their msb counter
        // overwritten with the constant `i + 1` (one-based, like
        // `MacCycle::msb_toggled`); ascending `i` leaves the highest.
        let toggled = a ^ sum;
        if toggled != 0 {
            let position = (i + 1) as u64;
            for (k, plane) in msb.iter_mut().enumerate() {
                if (position >> k) & 1 == 1 {
                    *plane |= toggled;
                } else {
                    *plane &= !toggled;
                }
            }
        }

        *slot = sum;
        carry = generate | (carry & propagate);
    }

    // depth = max(best carry run, msb toggled), per lane.
    let msb_wins = bitplane::lanes_ge(&msb, &best);
    let mut depth_planes = [0u64; DEPTH_PLANES];
    for (k, plane) in depth_planes.iter_mut().enumerate() {
        *plane = (msb[k] & msb_wins) | (best[k] & !msb_wins);
    }
    DepthWord {
        depth_planes,
        sign_flips: (before_sign ^ acc[ACC_PLANES - 1]) & lane_mask,
        lane_mask,
    }
}

/// Reads back one lane's sign-extended 24-bit partial sum.
fn extract_psum(acc: &[u64; ACC_PLANES], lane: usize) -> i32 {
    sign_extend(bitplane::lane_value(acc, lane) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::ArrayConfig;
    use crate::dataflow::Dataflow;
    use crate::gemm::{GemmProblem, SimOptions};
    use crate::mac::{MacCycle, MacUnit};
    use crate::schedule::ColumnGroup;
    use crate::trace::{CycleContext, CycleObserver, ScalarPath};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Packs 64 arbitrary 24-bit accumulator values into bit planes.
    fn pack_psums(psums: &[i32]) -> [u64; ACC_PLANES] {
        let mut acc = [0u64; ACC_PLANES];
        for (l, &p) in psums.iter().enumerate() {
            let raw = (p as u32) & 0xFF_FFFF;
            for (k, plane) in acc.iter_mut().enumerate() {
                *plane |= u64::from((raw >> k) & 1) << l;
            }
        }
        acc
    }

    /// Order-insensitive depth/flip tally implementing both observer sides,
    /// so the packed and scalar paths can be compared inside this crate
    /// (the real histogram consumer lives in the `timing` crate).
    #[derive(Debug, Default, PartialEq, Eq)]
    struct DepthCounts {
        by_depth: [u64; 32],
        flips: u64,
        total: u64,
    }

    impl CycleObserver for DepthCounts {
        fn on_cycle(&mut self, _ctx: &CycleContext, cycle: &MacCycle) {
            let depth = if cycle.is_idle() {
                0
            } else {
                cycle.triggered_depth()
            };
            self.by_depth[depth as usize] += 1;
            self.flips += u64::from(cycle.sign_flip);
            self.total += 1;
        }

        fn depth_word_sink(&mut self) -> Option<&mut dyn DepthWordSink> {
            Some(self)
        }
    }

    impl DepthWordSink for DepthCounts {
        fn on_depth_word(&mut self, word: &DepthWord) {
            for lane in 0..64 {
                if (word.lane_mask >> lane) & 1 == 1 {
                    self.by_depth[word.depth(lane) as usize] += 1;
                    self.flips += u64::from(word.sign_flip(lane));
                    self.total += 1;
                }
            }
        }
    }

    /// Every (weight, activation) pair, 64 lanes at a time with random
    /// partial sums: the packed step reproduces the scalar MAC's psum,
    /// triggered depth and sign flip exactly.
    #[test]
    fn packed_step_matches_mac_unit_exhaustively() {
        let mut rng = StdRng::seed_from_u64(0x57E9);
        let pairs: Vec<(i8, i8)> = (-128i32..=127)
            .flat_map(|w| (-128i32..=127).map(move |a| (w as i8, a as i8)))
            .collect();
        for block in pairs.chunks(64) {
            let psums: Vec<i32> = block
                .iter()
                .map(|_| super::sign_extend(rng.gen::<u32>()))
                .collect();
            let mut acc = pack_psums(&psums);
            let products: Vec<i16> = block
                .iter()
                .map(|&(w, a)| (i32::from(w) * i32::from(a)) as i16)
                .collect();
            let addend = bitplane::planes_from_i16(&products);
            let mask = bitplane::lane_mask(block.len());
            let word = depth_step(&mut acc, &addend, mask);
            for (l, (&(w, a), &psum)) in block.iter().zip(&psums).enumerate() {
                let mut mac = MacUnit::new();
                mac.load(psum);
                let cycle = mac.mac(w, a);
                let expected_depth = if cycle.is_idle() {
                    0
                } else {
                    cycle.triggered_depth()
                };
                assert_eq!(extract_psum(&acc, l), cycle.psum_after, "psum w={w} a={a}");
                assert_eq!(word.depth(l), expected_depth, "depth w={w} a={a} p={psum}");
                assert_eq!(word.sign_flip(l), cycle.sign_flip, "flip w={w} a={a}");
            }
        }
    }

    /// Full simulations through the public API: the packed path produces the
    /// same outputs, cycle counts and depth/flip tallies as the scalar path,
    /// for both dataflows, reordered schedules, pixel sampling, and pixel
    /// counts that are not multiples of the 64-lane word width.
    #[test]
    fn packed_simulation_matches_scalar_path() {
        let mut rng = StdRng::seed_from_u64(0x90A7);
        let array = ArrayConfig::new(4, 2);
        for case in 0..12 {
            let r = rng.gen_range(1..40);
            let k = rng.gen_range(1..6);
            let m = rng.gen_range(1..150); // covers <64, =64k and remainders
            let weights = Matrix::from_fn(r, k, |_, _| rng.gen::<u64>() as i8);
            let activations = Matrix::from_fn(r, m, |_, _| rng.gen::<u64>() as i8);
            let problem = GemmProblem::new(weights, activations).unwrap();
            let options = if case % 3 == 0 && m > 4 {
                SimOptions::sampled(m / 2, case as u64)
            } else {
                SimOptions::exhaustive()
            };
            // A non-trivial schedule: reversed rows, reversed channels.
            let schedule = ComputeSchedule::new(vec![ColumnGroup {
                columns: (0..k).rev().collect(),
                row_order: (0..r).rev().collect(),
            }]);
            for dataflow in [Dataflow::OutputStationary, Dataflow::WeightStationary] {
                let mut packed = DepthCounts::default();
                let mut scalar = ScalarPath(DepthCounts::default());
                let fast = problem
                    .simulate_with_schedule(&array, dataflow, &schedule, &options, &mut packed)
                    .unwrap();
                let slow = problem
                    .simulate_with_schedule(&array, dataflow, &schedule, &options, &mut scalar)
                    .unwrap();
                assert_eq!(fast.outputs, slow.outputs, "case {case} {dataflow:?}");
                assert_eq!(fast.total_cycles, slow.total_cycles);
                assert_eq!(fast.simulated_pixels, slow.simulated_pixels);
                assert_eq!(packed, scalar.0, "tallies case {case} {dataflow:?}");
            }
        }
    }

    /// The packed path also matches the problem's order-independent
    /// reference output (functional correctness independent of the scalar
    /// simulator).
    #[test]
    fn packed_outputs_match_reference_gemm() {
        let weights = Matrix::from_fn(33, 5, |r, c| (((r * 7 + c * 13) % 19) as i8) - 9);
        let activations = Matrix::from_fn(33, 70, |r, c| (((r * 3 + c) % 11) as i8) - 5);
        let problem = GemmProblem::new(weights, activations).unwrap();
        let mut counts = DepthCounts::default();
        let result = problem
            .simulate(
                &ArrayConfig::new(4, 2),
                Dataflow::OutputStationary,
                &SimOptions::exhaustive(),
                &mut counts,
            )
            .unwrap();
        assert_eq!(result.outputs, problem.reference_output().unwrap());
        assert_eq!(counts.total, 33 * 5 * 70);
    }
}
