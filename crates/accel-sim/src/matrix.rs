//! A minimal dense row-major matrix used for weights, activations and GEMM
//! results throughout the simulator.

use crate::error::SimError;

/// Dense row-major matrix.
///
/// The simulator works on plain integer matrices (`Matrix<i8>` for operands,
/// `Matrix<i32>` for accumulator-precision results).  The type is intentionally
/// small — it is a data carrier, not a linear-algebra library.
///
/// # Example
///
/// ```
/// use accel_sim::Matrix;
///
/// let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as i8);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 3);
/// assert_eq!(m[(1, 2)], 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Matrix<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Copy + Default> Matrix<T> {
    /// Creates a matrix of the given size filled with `T::default()`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![T::default(); rows * cols],
        }
    }

    /// Creates a matrix by evaluating `f(row, col)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DimensionMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Result<Self, SimError> {
        if data.len() != rows * cols {
            return Err(SimError::DimensionMismatch {
                what: "matrix data length",
                left: data.len(),
                right: rows * cols,
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the underlying row-major storage.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutably borrow the underlying row-major storage.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the matrix, returning the row-major storage.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Element accessor returning `None` when out of bounds.
    pub fn get(&self, row: usize, col: usize) -> Option<&T> {
        if row < self.rows && col < self.cols {
            self.data.get(row * self.cols + col)
        } else {
            None
        }
    }

    /// Borrow one row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row >= self.rows()`.
    pub fn row(&self, row: usize) -> &[T] {
        assert!(row < self.rows, "row {row} out of range ({})", self.rows);
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Copy one column into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `col >= self.cols()`.
    pub fn column(&self, col: usize) -> Vec<T> {
        assert!(col < self.cols, "col {col} out of range ({})", self.cols);
        (0..self.rows)
            .map(|r| self.data[r * self.cols + col])
            .collect()
    }

    /// Returns a new matrix whose rows are permuted: row `i` of the result is
    /// row `order[i]` of `self`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidSchedule`] if `order` is not a permutation
    /// of `0..self.rows()`.
    pub fn permute_rows(&self, order: &[usize]) -> Result<Self, SimError> {
        validate_permutation(order, self.rows)?;
        let mut out = Vec::with_capacity(self.data.len());
        for &r in order {
            out.extend_from_slice(self.row(r));
        }
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data: out,
        })
    }

    /// Returns a new matrix whose columns are permuted: column `j` of the
    /// result is column `order[j]` of `self`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidSchedule`] if `order` is not a permutation
    /// of `0..self.cols()`.
    pub fn permute_cols(&self, order: &[usize]) -> Result<Self, SimError> {
        validate_permutation(order, self.cols)?;
        let out = Matrix::from_fn(self.rows, self.cols, |r, c| self[(r, order[c])]);
        Ok(out)
    }

    /// Returns the sub-matrix containing only the listed columns, in order.
    ///
    /// Unlike [`Matrix::permute_cols`], the selection does not need to be a
    /// permutation: it may select a subset, which is how the simulator builds
    /// the per-cluster weight sub-matrices.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidSchedule`] if any index is out of range.
    pub fn select_cols(&self, cols: &[usize]) -> Result<Self, SimError> {
        for &c in cols {
            if c >= self.cols {
                return Err(SimError::InvalidSchedule {
                    reason: format!("column {c} out of range ({})", self.cols),
                });
            }
        }
        Ok(Matrix::from_fn(self.rows, cols.len(), |r, j| {
            self[(r, cols[j])]
        }))
    }

    /// Transposes the matrix.
    pub fn transpose(&self) -> Self {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }
}

/// Checks that `order` is a permutation of `0..len`.
pub(crate) fn validate_permutation(order: &[usize], len: usize) -> Result<(), SimError> {
    if order.len() != len {
        return Err(SimError::InvalidSchedule {
            reason: format!("permutation length {} != {}", order.len(), len),
        });
    }
    let mut seen = vec![false; len];
    for &i in order {
        if i >= len {
            return Err(SimError::InvalidSchedule {
                reason: format!("permutation index {i} out of range ({len})"),
            });
        }
        if seen[i] {
            return Err(SimError::InvalidSchedule {
                reason: format!("permutation index {i} repeated"),
            });
        }
        seen[i] = true;
    }
    Ok(())
}

impl<T: Copy + Default> std::ops::Index<(usize, usize)> for Matrix<T> {
    type Output = T;

    fn index(&self, (row, col): (usize, usize)) -> &T {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row},{col}) out of range ({}x{})",
            self.rows,
            self.cols
        );
        &self.data[row * self.cols + col]
    }
}

impl<T: Copy + Default> std::ops::IndexMut<(usize, usize)> for Matrix<T> {
    fn index_mut(&mut self, (row, col): (usize, usize)) -> &mut T {
        assert!(
            row < self.rows && col < self.cols,
            "index ({row},{col}) out of range ({}x{})",
            self.rows,
            self.cols
        );
        &mut self.data[row * self.cols + col]
    }
}

impl Matrix<i8> {
    /// Exact integer GEMM as a spatial accelerator computes it for a layer:
    /// `out[k][m] = sum_r self[r][k] * rhs[r][m]`, where `self` is the
    /// `R x K` weight matrix and `rhs` the `R x M` activation matrix (both
    /// indexed by the reduction dimension first).
    ///
    /// This is the golden reference the dataflow simulators are checked
    /// against.
    pub fn gemm_reference(&self, rhs: &Matrix<i8>) -> Result<Matrix<i32>, SimError> {
        if self.rows != rhs.rows {
            return Err(SimError::DimensionMismatch {
                what: "reduction length",
                left: self.rows,
                right: rhs.rows,
            });
        }
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let w = i32::from(self[(r, k)]);
                if w == 0 {
                    continue;
                }
                for m in 0..rhs.cols {
                    out[(k, m)] += w * i32::from(rhs[(r, m)]);
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_and_index() {
        let m = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as i8);
        assert_eq!(m[(0, 0)], 0);
        assert_eq!(m[(2, 1)], 5);
        assert_eq!(m.row(1), &[2, 3]);
        assert_eq!(m.column(1), vec![1, 3, 5]);
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![1i8, 2, 3]).is_err());
        assert!(Matrix::from_vec(2, 2, vec![1i8, 2, 3, 4]).is_ok());
    }

    #[test]
    fn get_out_of_bounds() {
        let m = Matrix::<i8>::zeros(2, 2);
        assert!(m.get(2, 0).is_none());
        assert!(m.get(0, 2).is_none());
        assert_eq!(m.get(1, 1), Some(&0));
    }

    #[test]
    fn permute_rows_roundtrip() {
        let m = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as i8);
        let order = vec![3, 1, 0, 2];
        let p = m.permute_rows(&order).unwrap();
        assert_eq!(p.row(0), m.row(3));
        assert_eq!(p.row(1), m.row(1));
        // inverse permutation restores the original
        let mut inv = vec![0; 4];
        for (i, &o) in order.iter().enumerate() {
            inv[o] = i;
        }
        assert_eq!(p.permute_rows(&inv).unwrap(), m);
    }

    #[test]
    fn permute_rejects_bad_permutations() {
        let m = Matrix::<i8>::zeros(3, 3);
        assert!(m.permute_rows(&[0, 1]).is_err());
        assert!(m.permute_rows(&[0, 1, 1]).is_err());
        assert!(m.permute_rows(&[0, 1, 3]).is_err());
        assert!(m.permute_cols(&[2, 2, 0]).is_err());
    }

    #[test]
    fn select_cols_subset() {
        let m = Matrix::from_fn(2, 4, |r, c| (r * 4 + c) as i8);
        let s = m.select_cols(&[3, 1]).unwrap();
        assert_eq!(s.cols(), 2);
        assert_eq!(s[(0, 0)], 3);
        assert_eq!(s[(1, 1)], 5);
        assert!(m.select_cols(&[4]).is_err());
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as i8);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(4, 2)], m[(2, 4)]);
    }

    #[test]
    fn gemm_reference_small() {
        // W: 2x2 (reduction x out-channels), A: 2x1
        let w = Matrix::from_vec(2, 2, vec![1i8, -2, 3, 4]).unwrap();
        let a = Matrix::from_vec(2, 1, vec![5i8, 7]).unwrap();
        let out = w.gemm_reference(&a).unwrap();
        // out[k][m] = sum_r w[r][k] * a[r][m]
        assert_eq!(out[(0, 0)], 5 + 3 * 7);
        assert_eq!(out[(1, 0)], -2 * 5 + 4 * 7);
    }

    #[test]
    fn gemm_reference_dimension_check() {
        let w = Matrix::<i8>::zeros(2, 2);
        let a = Matrix::<i8>::zeros(3, 1);
        assert!(w.gemm_reference(&a).is_err());
    }
}
