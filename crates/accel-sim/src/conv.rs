//! Convolution shapes and the im2col lowering onto a GEMM.

use crate::error::SimError;
use crate::matrix::Matrix;

/// Shape of a 2-D convolution layer (NCHW input, `K` output channels,
/// `Fx x Fy` filters).
///
/// Uses the paper's notation (Table II): `N, H, W, K` for the output batch,
/// height, width and channels; `C, Fx, Fy` for the input channels and filter
/// size.
///
/// # Example
///
/// ```
/// use accel_sim::ConvShape;
///
/// let conv3x3 = ConvShape::new(1, 64, 32, 32, 128, 3, 3, 1, 1)?;
/// assert_eq!(conv3x3.out_h(), 32);
/// assert_eq!(conv3x3.reduction_len(), 64 * 9);
/// assert_eq!(conv3x3.macs_per_output(), 576);
/// # Ok::<(), accel_sim::SimError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvShape {
    /// Batch size.
    pub n: usize,
    /// Input channels (`C`).
    pub c: usize,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Output channels (`K`).
    pub k: usize,
    /// Filter height (`Fx`).
    pub fx: usize,
    /// Filter width (`Fy`).
    pub fy: usize,
    /// Stride (same in both spatial dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub padding: usize,
}

impl ConvShape {
    /// Creates and validates a convolution shape.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidShape`] if any dimension is zero, the
    /// stride is zero, or the filter does not fit in the padded input.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        n: usize,
        c: usize,
        h: usize,
        w: usize,
        k: usize,
        fx: usize,
        fy: usize,
        stride: usize,
        padding: usize,
    ) -> Result<Self, SimError> {
        let shape = ConvShape {
            n,
            c,
            h,
            w,
            k,
            fx,
            fy,
            stride,
            padding,
        };
        shape.validate()?;
        Ok(shape)
    }

    /// Convenience constructor for a 1x1 convolution with stride 1 and no
    /// padding (a plain matrix multiplication), the case used throughout the
    /// paper's formulation section.
    pub fn pointwise(n: usize, c: usize, h: usize, w: usize, k: usize) -> Self {
        ConvShape {
            n,
            c,
            h,
            w,
            k,
            fx: 1,
            fy: 1,
            stride: 1,
            padding: 0,
        }
    }

    fn validate(&self) -> Result<(), SimError> {
        for (name, v) in [
            ("n", self.n),
            ("c", self.c),
            ("h", self.h),
            ("w", self.w),
            ("k", self.k),
            ("fx", self.fx),
            ("fy", self.fy),
            ("stride", self.stride),
        ] {
            if v == 0 {
                return Err(SimError::InvalidShape {
                    reason: format!("dimension {name} must be non-zero"),
                });
            }
        }
        if self.fx > self.h + 2 * self.padding || self.fy > self.w + 2 * self.padding {
            return Err(SimError::InvalidShape {
                reason: format!(
                    "filter {}x{} larger than padded input {}x{}",
                    self.fx,
                    self.fy,
                    self.h + 2 * self.padding,
                    self.w + 2 * self.padding
                ),
            });
        }
        Ok(())
    }

    /// Output height.
    pub fn out_h(&self) -> usize {
        (self.h + 2 * self.padding - self.fx) / self.stride + 1
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        (self.w + 2 * self.padding - self.fy) / self.stride + 1
    }

    /// Number of output pixels per image (`out_h * out_w`).
    pub fn out_pixels(&self) -> usize {
        self.out_h() * self.out_w()
    }

    /// Length of the GEMM reduction dimension (`C * Fx * Fy`).
    pub fn reduction_len(&self) -> usize {
        self.c * self.fx * self.fy
    }

    /// Number of MAC operations needed to compute a single output activation
    /// (the `N` of the paper's Eq. (1)).
    pub fn macs_per_output(&self) -> usize {
        self.reduction_len()
    }

    /// Total MAC operations for the whole layer.
    pub fn total_macs(&self) -> usize {
        self.n * self.k * self.out_pixels() * self.reduction_len()
    }

    /// Shape of the lowered weight matrix: `reduction_len x K`.
    pub fn weight_matrix_dims(&self) -> (usize, usize) {
        (self.reduction_len(), self.k)
    }

    /// Shape of the lowered activation matrix: `reduction_len x (N * out_pixels)`.
    pub fn activation_matrix_dims(&self) -> (usize, usize) {
        (self.reduction_len(), self.n * self.out_pixels())
    }
}

impl std::fmt::Display for ConvShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "conv {}x{}x{}x{} -> {} ch, {}x{} filter, stride {}, pad {}",
            self.n, self.c, self.h, self.w, self.k, self.fx, self.fy, self.stride, self.padding
        )
    }
}

/// Lowers an NCHW activation tensor (given as a flat slice) into the im2col
/// activation matrix of shape `reduction_len x (N * out_pixels)` expected by
/// [`crate::GemmProblem`].
///
/// The reduction dimension is ordered `(c, fx, fy)` — channel-major — so that
/// row `c * Fx * Fy + fx * Fy + fy` of the matrix corresponds to input
/// channel `c` at filter offset `(fx, fy)`.  This matches the weight-matrix
/// layout produced by [`weights_to_matrix`], and means an input-channel
/// reorder is a row permutation on both matrices.
///
/// # Errors
///
/// Returns [`SimError::DimensionMismatch`] if `input.len()` does not equal
/// `n * c * h * w`.
pub fn im2col(shape: &ConvShape, input: &[i8]) -> Result<Matrix<i8>, SimError> {
    let expected = shape.n * shape.c * shape.h * shape.w;
    if input.len() != expected {
        return Err(SimError::DimensionMismatch {
            what: "im2col input length",
            left: input.len(),
            right: expected,
        });
    }
    let out_h = shape.out_h();
    let out_w = shape.out_w();
    let cols = shape.n * out_h * out_w;
    let rows = shape.reduction_len();
    let mut out = Matrix::zeros(rows, cols);
    for n in 0..shape.n {
        for oy in 0..out_h {
            for ox in 0..out_w {
                let col = n * out_h * out_w + oy * out_w + ox;
                for c in 0..shape.c {
                    for fx in 0..shape.fx {
                        for fy in 0..shape.fy {
                            let iy = (oy * shape.stride + fx) as isize - shape.padding as isize;
                            let ix = (ox * shape.stride + fy) as isize - shape.padding as isize;
                            let row = c * shape.fx * shape.fy + fx * shape.fy + fy;
                            let v = if iy < 0
                                || ix < 0
                                || iy >= shape.h as isize
                                || ix >= shape.w as isize
                            {
                                0
                            } else {
                                input[((n * shape.c + c) * shape.h + iy as usize) * shape.w
                                    + ix as usize]
                            };
                            out[(row, col)] = v;
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Lowers a KCHW weight tensor (output-channel major, given as a flat slice)
/// into the `reduction_len x K` weight matrix expected by
/// [`crate::GemmProblem`].
///
/// # Errors
///
/// Returns [`SimError::DimensionMismatch`] if `weights.len()` does not equal
/// `k * c * fx * fy`.
pub fn weights_to_matrix(shape: &ConvShape, weights: &[i8]) -> Result<Matrix<i8>, SimError> {
    let expected = shape.k * shape.c * shape.fx * shape.fy;
    if weights.len() != expected {
        return Err(SimError::DimensionMismatch {
            what: "weight tensor length",
            left: weights.len(),
            right: expected,
        });
    }
    let rows = shape.reduction_len();
    let out = Matrix::from_fn(rows, shape.k, |r, k| {
        // r = c * Fx * Fy + fx * Fy + fy ; the KCHW tensor is indexed
        // [k][c][fx][fy].
        weights[k * rows + r]
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_dims_with_padding() {
        let s = ConvShape::new(1, 3, 32, 32, 64, 3, 3, 1, 1).unwrap();
        assert_eq!(s.out_h(), 32);
        assert_eq!(s.out_w(), 32);
        assert_eq!(s.reduction_len(), 27);
        assert_eq!(s.total_macs(), 64 * 32 * 32 * 27);
    }

    #[test]
    fn output_dims_with_stride() {
        let s = ConvShape::new(1, 16, 8, 8, 32, 3, 3, 2, 1).unwrap();
        assert_eq!(s.out_h(), 4);
        assert_eq!(s.out_w(), 4);
    }

    #[test]
    fn invalid_shapes_rejected() {
        assert!(ConvShape::new(1, 0, 8, 8, 8, 1, 1, 1, 0).is_err());
        assert!(ConvShape::new(1, 3, 2, 2, 8, 5, 5, 1, 0).is_err());
        assert!(ConvShape::new(1, 3, 8, 8, 8, 3, 3, 0, 1).is_err());
    }

    #[test]
    fn pointwise_matches_matrix_dims() {
        let s = ConvShape::pointwise(2, 16, 4, 4, 8);
        assert_eq!(s.weight_matrix_dims(), (16, 8));
        assert_eq!(s.activation_matrix_dims(), (16, 2 * 16));
        assert_eq!(s.macs_per_output(), 16);
    }

    #[test]
    fn im2col_identity_for_pointwise() {
        let s = ConvShape::pointwise(1, 3, 2, 2, 5);
        // input[c][y][x] = c * 10 + y * 2 + x
        let input: Vec<i8> = (0..3)
            .flat_map(|c| (0..4).map(move |i| (c * 10 + i) as i8))
            .collect();
        let m = im2col(&s, &input).unwrap();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        // column = pixel index, row = channel
        assert_eq!(m[(0, 0)], 0);
        assert_eq!(m[(1, 3)], 13);
        assert_eq!(m[(2, 2)], 22);
    }

    #[test]
    fn im2col_padding_inserts_zeros() {
        let s = ConvShape::new(1, 1, 2, 2, 1, 3, 3, 1, 1).unwrap();
        let input: Vec<i8> = vec![1, 2, 3, 4];
        let m = im2col(&s, &input).unwrap();
        assert_eq!(m.rows(), 9);
        assert_eq!(m.cols(), 4);
        // For output (0,0) the filter is centred on input (0,0): the top-left
        // taps fall in the padding and must be zero; the centre tap is 1.
        assert_eq!(m[(0, 0)], 0);
        assert_eq!(m[(4, 0)], 1);
        // For output (1,1) the centre tap is input (1,1) = 4.
        assert_eq!(m[(4, 3)], 4);
    }

    #[test]
    fn im2col_length_check() {
        let s = ConvShape::pointwise(1, 3, 2, 2, 5);
        assert!(im2col(&s, &[0i8; 11]).is_err());
    }

    #[test]
    fn weights_to_matrix_layout() {
        let s = ConvShape::new(1, 2, 4, 4, 3, 1, 1, 1, 0).unwrap();
        // KCHW layout, k-major: w[k][c] = 10*k + c
        let w: Vec<i8> = (0..3)
            .flat_map(|k| (0..2).map(move |c| (10 * k + c) as i8))
            .collect();
        let m = weights_to_matrix(&s, &w).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m[(0, 0)], 0);
        assert_eq!(m[(1, 0)], 1);
        assert_eq!(m[(0, 2)], 20);
        assert!(weights_to_matrix(&s, &[0i8; 5]).is_err());
    }

    #[test]
    fn conv_via_gemm_matches_naive() {
        // Cross-check the im2col + GEMM path against a naive convolution.
        let s = ConvShape::new(1, 2, 4, 4, 3, 3, 3, 1, 1).unwrap();
        let input: Vec<i8> = (0..(2 * 4 * 4)).map(|i| ((i * 7) % 11) as i8 - 5).collect();
        let weights: Vec<i8> = (0..(3 * 2 * 3 * 3))
            .map(|i| ((i * 5) % 7) as i8 - 3)
            .collect();

        let wm = weights_to_matrix(&s, &weights).unwrap();
        let am = im2col(&s, &input).unwrap();
        let gemm = wm.gemm_reference(&am).unwrap();

        // naive conv
        for k in 0..s.k {
            for oy in 0..s.out_h() {
                for ox in 0..s.out_w() {
                    let mut acc = 0i32;
                    for c in 0..s.c {
                        for fx in 0..s.fx {
                            for fy in 0..s.fy {
                                let iy = (oy + fx) as isize - 1;
                                let ix = (ox + fy) as isize - 1;
                                if iy < 0 || ix < 0 || iy >= 4 || ix >= 4 {
                                    continue;
                                }
                                let a = input[(c * 4 + iy as usize) * 4 + ix as usize];
                                let w = weights[((k * s.c + c) * 3 + fx) * 3 + fy];
                                acc += i32::from(a) * i32::from(w);
                            }
                        }
                    }
                    let col = oy * s.out_w() + ox;
                    assert_eq!(gemm[(k, col)], acc, "mismatch at k={k} oy={oy} ox={ox}");
                }
            }
        }
    }
}
