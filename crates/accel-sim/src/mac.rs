//! The multiply-accumulate (MAC) processing element.
//!
//! The modelled unit follows the TPU-style datapath used in the READ paper:
//! an 8-bit signed multiplier feeding a 24-bit signed accumulator.  Besides
//! the exact arithmetic result, every cycle reports the micro-architectural
//! activity that determines which timing paths are exercised:
//!
//! * the **carry-propagation length** of the accumulate (the longest chain of
//!   adder positions through which a carry actually ripples),
//! * the number of **toggled accumulator bits**, and
//! * whether the **partial-sum sign bit flipped** — the "critical input
//!   pattern" the READ paper identifies.

use crate::error::SimError;

/// Width of the accumulator in bits (24-bit partial sums, as in the paper).
pub const ACC_BITS: u32 = 24;

/// Mask selecting the `ACC_BITS` low-order bits.
const ACC_MASK: u32 = (1 << ACC_BITS) - 1;

/// Sign-extends a raw `ACC_BITS`-bit value to `i32`.
#[inline]
pub(crate) fn sign_extend(raw: u32) -> i32 {
    let shift = 32 - ACC_BITS;
    (((raw & ACC_MASK) << shift) as i32) >> shift
}

/// Wraps an `i32` value into the `ACC_BITS`-bit two's-complement range.
#[inline]
fn wrap(value: i32) -> i32 {
    sign_extend(value as u32)
}

/// One cycle of MAC activity.
///
/// Produced by [`MacUnit::mac`] and consumed by the timing model, which maps
/// the structural fields (carry length, toggles, sign flip) onto triggered
/// path delays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MacCycle {
    /// Weight operand of this cycle.
    pub weight: i8,
    /// Activation operand of this cycle.
    pub activation: i8,
    /// Exact 16-bit product (sign-extended to `i32`).
    pub product: i32,
    /// Accumulator value before the accumulate (24-bit, sign-extended).
    pub psum_before: i32,
    /// Accumulator value after the accumulate (24-bit, sign-extended).
    pub psum_after: i32,
    /// Longest carry-propagation chain (in bit positions) exercised by the
    /// accumulate.  This is the structural proxy for the triggered adder
    /// path: a partial-sum sign flip forces the carry to ripple through the
    /// high-order bits and produces a long chain.
    pub carry_len: u32,
    /// Number of accumulator bits that toggled this cycle.
    pub toggled_bits: u32,
    /// One-based position of the most significant accumulator bit that
    /// toggled this cycle (`0` when no bit toggled).  Together with
    /// [`MacCycle::carry_len`] this determines how deep into the adder the
    /// cycle's switching activity reaches.
    pub msb_toggled: u32,
    /// `true` when the sign bit of the partial sum changed this cycle —
    /// the critical input pattern of the READ paper.
    pub sign_flip: bool,
}

impl MacCycle {
    /// Returns `true` if this cycle left the accumulator unchanged
    /// (zero product and therefore no switching activity in the adder).
    pub fn is_idle(&self) -> bool {
        self.product == 0 && self.psum_before == self.psum_after
    }

    /// Structural depth triggered by this cycle: the longest carry chain or,
    /// if higher, the most significant toggled accumulator bit (whose
    /// settling requires the carry network to resolve up to that position).
    /// This is the quantity the timing model maps to a path delay and the
    /// packed kernels compute bit-sliced.
    pub fn triggered_depth(&self) -> u32 {
        self.carry_len.max(self.msb_toggled).min(ACC_BITS)
    }
}

/// A single processing element: an 8x8-bit multiplier and a 24-bit
/// accumulator.
///
/// # Example
///
/// ```
/// use accel_sim::MacUnit;
///
/// let mut mac = MacUnit::new();
/// // 3 * (-2) + 2 = -4: the paper's example of a sign-flipping accumulate.
/// mac.load(2);
/// let cycle = mac.mac(-2, 3);
/// assert_eq!(cycle.psum_after, -4);
/// assert!(cycle.sign_flip);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct MacUnit {
    psum: i32,
}

impl MacUnit {
    /// Creates a MAC unit with the accumulator cleared to zero.
    pub fn new() -> Self {
        MacUnit { psum: 0 }
    }

    /// Current accumulator value (24-bit, sign-extended to `i32`).
    pub fn psum(&self) -> i32 {
        self.psum
    }

    /// Clears the accumulator to zero (start of a new output activation).
    pub fn clear(&mut self) {
        self.psum = 0;
    }

    /// Loads an initial partial sum (e.g. a bias or a partial result flowing
    /// in from a neighbouring PE in a weight-stationary dataflow).
    pub fn load(&mut self, psum: i32) {
        self.psum = wrap(psum);
    }

    /// Performs one multiply-accumulate: `psum += weight * activation`,
    /// returning the full cycle record.
    pub fn mac(&mut self, weight: i8, activation: i8) -> MacCycle {
        let product = i32::from(weight) * i32::from(activation);
        let before = self.psum;
        let after = wrap(before.wrapping_add(product));

        let a = (before as u32) & ACC_MASK;
        let b = (product as u32) & ACC_MASK;
        let carry_len = carry_chain_length(a, b);
        let toggled_mask = (a ^ ((after as u32) & ACC_MASK)) & ACC_MASK;
        let toggled_bits = toggled_mask.count_ones();
        let msb_toggled = if toggled_mask == 0 {
            0
        } else {
            32 - toggled_mask.leading_zeros()
        };
        let sign_flip = (before < 0) != (after < 0);

        self.psum = after;
        MacCycle {
            weight,
            activation,
            product,
            psum_before: before,
            psum_after: after,
            carry_len,
            toggled_bits,
            msb_toggled,
            sign_flip,
        }
    }

    /// Runs a full dot product over paired `(weight, activation)` operands,
    /// invoking `observer` for every cycle, and returns the final partial sum.
    ///
    /// The accumulator is **not** cleared first, so partial results can be
    /// chained across tiles exactly as the hardware does.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DimensionMismatch`] if the operand slices have
    /// different lengths.
    pub fn dot<F>(
        &mut self,
        weights: &[i8],
        activations: &[i8],
        mut observer: F,
    ) -> Result<i32, SimError>
    where
        F: FnMut(&MacCycle),
    {
        if weights.len() != activations.len() {
            return Err(SimError::DimensionMismatch {
                what: "dot product operand length",
                left: weights.len(),
                right: activations.len(),
            });
        }
        for (&w, &a) in weights.iter().zip(activations.iter()) {
            let cycle = self.mac(w, a);
            observer(&cycle);
        }
        Ok(self.psum)
    }
}

/// Computes the longest carry-propagation chain of the `ACC_BITS`-bit ripple
/// addition `a + b`.
///
/// The chain length is the longest run of consecutive bit positions through
/// which a carry generated at the start of the run actually propagates.  It
/// is the canonical structural measure of which adder timing path a given
/// operand pair exercises: adding a small negative product to a small
/// positive partial sum (a sign flip) propagates a borrow through all the
/// high-order bits and yields a chain close to `ACC_BITS`.
pub fn carry_chain_length(a: u32, b: u32) -> u32 {
    let a = a & ACC_MASK;
    let b = b & ACC_MASK;
    let mut carry = 0u32;
    let mut run = 0u32;
    let mut best = 0u32;
    for i in 0..ACC_BITS {
        let ai = (a >> i) & 1;
        let bi = (b >> i) & 1;
        let generate = ai & bi;
        let propagate = ai ^ bi;
        let next_carry = generate | (propagate & carry);
        if next_carry == 1 && (generate == 1 || carry == 1) {
            // The carry chain continues (either freshly generated or
            // propagated from the previous position).
            if carry == 1 && propagate == 1 {
                run += 1;
            } else {
                run = 1;
            }
        } else {
            run = 0;
        }
        best = best.max(run);
        carry = next_carry;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_and_sign_extend() {
        assert_eq!(wrap(0), 0);
        assert_eq!(wrap(-1), -1);
        assert_eq!(wrap((1 << 23) - 1), (1 << 23) - 1);
        // Overflow wraps around to the negative range like 24-bit hardware.
        assert_eq!(wrap(1 << 23), -(1 << 23));
        assert_eq!(wrap(-(1 << 23) - 1), (1 << 23) - 1);
    }

    #[test]
    fn paper_example_sign_flip() {
        // 3 * (-2) + 2 = -4 flips the sign bit and triggers a long carry
        // chain (the paper's Section III example).
        let mut mac = MacUnit::new();
        mac.load(2);
        let c = mac.mac(-2, 3);
        assert_eq!(c.product, -6);
        assert_eq!(c.psum_after, -4);
        assert!(c.sign_flip);
        // A sign flip toggles the accumulator sign bit, so the switching
        // activity reaches the most significant adder position.
        assert_eq!(c.msb_toggled, ACC_BITS);
    }

    #[test]
    fn negative_to_positive_flip_long_carry() {
        // -3 + 10 = 7: the borrow ripples through every high-order one bit,
        // exercising a near-full-width carry chain.
        let mut mac = MacUnit::new();
        mac.load(-3);
        let c = mac.mac(5, 2);
        assert!(c.sign_flip);
        assert!(c.carry_len >= ACC_BITS - 4, "carry chain {}", c.carry_len);
    }

    #[test]
    fn no_sign_flip_short_chain() {
        let mut mac = MacUnit::new();
        mac.load(1000);
        let c = mac.mac(2, 3);
        assert_eq!(c.psum_after, 1006);
        assert!(!c.sign_flip);
        assert!(c.carry_len <= 4);
    }

    #[test]
    fn accumulation_is_exact() {
        let mut mac = MacUnit::new();
        let weights: Vec<i8> = vec![1, -2, 3, -4, 5, -6, 7, -8];
        let acts: Vec<i8> = vec![9, 8, 7, 6, 5, 4, 3, 2];
        let expected: i32 = weights
            .iter()
            .zip(&acts)
            .map(|(&w, &a)| i32::from(w) * i32::from(a))
            .sum();
        let got = mac.dot(&weights, &acts, |_| {}).unwrap();
        assert_eq!(got, expected);
    }

    #[test]
    fn dot_rejects_mismatched_lengths() {
        let mut mac = MacUnit::new();
        assert!(mac.dot(&[1, 2], &[1], |_| {}).is_err());
    }

    #[test]
    fn dot_observer_sees_every_cycle() {
        let mut mac = MacUnit::new();
        let mut n = 0usize;
        mac.dot(&[1, 2, 3], &[4, 5, 6], |_| n += 1).unwrap();
        assert_eq!(n, 3);
    }

    #[test]
    fn idle_cycle_detection() {
        let mut mac = MacUnit::new();
        mac.load(42);
        let c = mac.mac(0, 17);
        assert!(c.is_idle());
        let c = mac.mac(1, 1);
        assert!(!c.is_idle());
    }

    #[test]
    fn carry_chain_simple_cases() {
        // 1 + 1: carry generated at bit 0, does not propagate further.
        assert_eq!(carry_chain_length(1, 1), 1);
        // 0b0111 + 0b0001: carry generated at bit 0 propagates through bits 1,2.
        assert_eq!(carry_chain_length(0b0111, 0b0001), 3);
        // Adding -1 (all ones) to 1: carry ripples through the entire width.
        assert_eq!(carry_chain_length(ACC_MASK, 1), ACC_BITS);
        // Disjoint bits never generate a carry.
        assert_eq!(carry_chain_length(0b1010, 0b0101), 0);
    }

    #[test]
    fn sign_flip_negative_to_positive() {
        let mut mac = MacUnit::new();
        mac.load(-3);
        let c = mac.mac(5, 2); // -3 + 10 = 7
        assert!(c.sign_flip);
        assert_eq!(c.psum_after, 7);
    }

    #[test]
    fn clear_resets_state() {
        let mut mac = MacUnit::new();
        mac.mac(10, 10);
        assert_ne!(mac.psum(), 0);
        mac.clear();
        assert_eq!(mac.psum(), 0);
    }

    #[test]
    fn overflow_wraps_like_hardware() {
        let mut mac = MacUnit::new();
        mac.load((1 << 23) - 1);
        let c = mac.mac(1, 1);
        assert_eq!(c.psum_after, -(1 << 23));
        assert!(c.sign_flip);
    }
}
