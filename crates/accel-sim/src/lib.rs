//! Cycle-level simulator for 2-D spatial (systolic-array) DNN accelerators.
//!
//! This crate provides the hardware substrate used by the READ reproduction:
//! an exact-integer model of the multiply-accumulate (MAC) datapath used by
//! TPU-style accelerators (8-bit operands, 24-bit accumulator), the
//! output-stationary and weight-stationary dataflows that map a convolution
//! onto a rectangular processing-element (PE) array, and the per-cycle traces
//! (partial-sum values, carry-chain activity, sign flips) that the timing
//! model consumes.
//!
//! The simulator is *functional + micro-architectural*: it computes the exact
//! arithmetic result of every MAC operation and, for every cycle, the
//! structural information (carry-propagation length, toggled bits, sign flip
//! of the partial sum) that determines which timing paths are triggered.  It
//! deliberately does not model wiring, clock distribution or memory timing —
//! those are not input-pattern dependent and are irrelevant to the READ
//! mechanism.
//!
//! # Example
//!
//! Map a small 1x1 convolution onto a 4x2 output-stationary array and count
//! partial-sum sign flips:
//!
//! ```
//! use accel_sim::{ArrayConfig, ConvShape, Dataflow, GemmProblem, Matrix, SignFlipStats};
//!
//! # fn main() -> Result<(), accel_sim::SimError> {
//! let shape = ConvShape::pointwise(1, 8, 4, 4, 4); // N=1, C=8, H=W=4, K=4
//! let weights = Matrix::from_fn(8, 4, |r, c| ((r * 3 + c * 7) % 5) as i8 - 2);
//! let acts = Matrix::from_fn(8, 16, |r, c| ((r + c) % 4) as i8);
//! let problem = GemmProblem::new(weights, acts)?;
//! let array = ArrayConfig::new(4, 2);
//! let mut stats = SignFlipStats::default();
//! problem.simulate(&array, Dataflow::OutputStationary, &Default::default(), &mut stats)?;
//! assert_eq!(stats.total_macs, 8 * 16 * 4);
//! # let _ = shape;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod bitplane;
pub mod conv;
pub mod dataflow;
pub mod error;
pub mod gemm;
pub mod kernels;
pub mod mac;
pub mod matrix;
pub mod schedule;
pub mod trace;

pub use array::ArrayConfig;
pub use conv::{im2col, weights_to_matrix, ConvShape};
pub use dataflow::Dataflow;
pub use error::SimError;
pub use gemm::{GemmProblem, SimOptions, SimResult};
pub use mac::{carry_chain_length, MacCycle, MacUnit, ACC_BITS};
pub use matrix::Matrix;
pub use schedule::{ColumnGroup, ComputeSchedule};
pub use trace::{
    CycleContext, CycleObserver, DepthWord, DepthWordSink, NullObserver, PsumTraceRecorder,
    ScalarPath, SignFlipStats, TeeObserver,
};
