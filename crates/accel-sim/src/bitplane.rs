//! Bit-plane (bit-sliced) primitives shared by the word-parallel kernels.
//!
//! A *bit-plane* representation stores up to 64 independent **lanes** (one
//! per bit position of a `u64`) transposed so that plane `k` holds bit `k`
//! of every lane.  All lanes are then processed simultaneously with plain
//! word operations — the ttopt truth-table idiom applied to arithmetic:
//! a ripple-carry addition over `P` planes costs `O(P)` word operations for
//! 64 lanes instead of 64 scalar additions, and per-lane predicates (carry
//! runs, toggled bits, sign flips) fall out as masks that `count_ones` can
//! tally in one instruction.
//!
//! Lane convention: lane `l` of a packed word is bit `l` (`1 << l`).  Packed
//! counters (e.g. triggered depths) use little-endian plane order: plane `k`
//! holds bit `k` of every lane's counter value.

use crate::mac::ACC_BITS;

/// Number of bit planes used for packed per-lane depth counters.  Depths are
/// bounded by the accumulator width, so 5 planes (values `0..32`) suffice.
pub const DEPTH_PLANES: usize = 5;

// The packed counters must be able to represent every triggered depth.
const _: () = assert!(ACC_BITS < (1 << DEPTH_PLANES));

/// Mask selecting the low `lanes` bits (the active lanes of a partially
/// filled word).  `lanes` must be at most 64.
#[inline]
pub fn lane_mask(lanes: usize) -> u64 {
    assert!(lanes <= 64, "at most 64 lanes per word");
    if lanes == 64 {
        !0
    } else {
        (1u64 << lanes) - 1
    }
}

/// Transposes a `u64` viewed as an 8x8 bit matrix: output bit `8*b + i` is
/// input bit `8*i + b` (Hacker's Delight section 7-3).
///
/// Interpreting input byte `i` as lane `i`'s byte, output byte `b` collects
/// bit `b` of all 8 lanes — the 8-lane building block of the plane packers.
#[inline]
pub fn transpose8x8(mut x: u64) -> u64 {
    let mut t = (x ^ (x >> 7)) & 0x00AA_00AA_00AA_00AA;
    x ^= t ^ (t << 7);
    t = (x ^ (x >> 14)) & 0x0000_CCCC_0000_CCCC;
    x ^= t ^ (t << 14);
    t = (x ^ (x >> 28)) & 0x0000_0000_F0F0_F0F0;
    x ^= t ^ (t << 28);
    x
}

/// Scatters one transposed 8-lane byte block into the plane array: byte `b`
/// of `transpose8x8(word)` lands in `planes[plane_base + b]` at bit offset
/// `lane_base`.
#[inline]
fn scatter_block(planes: &mut [u64], plane_base: usize, lane_base: usize, word: u64) {
    let t = transpose8x8(word);
    for (b, plane) in planes[plane_base..plane_base + 8].iter_mut().enumerate() {
        *plane |= ((t >> (8 * b)) & 0xFF) << lane_base;
    }
}

/// Assembles one 8-lane block (at most 8 bytes, zero-padded) into the
/// little-endian `u64` that [`scatter_block`] consumes.
#[inline]
fn block_word(chunk: &[u8]) -> u64 {
    if let Ok(arr) = <[u8; 8]>::try_from(chunk) {
        u64::from_le_bytes(arr)
    } else {
        let mut word = 0u64;
        for (i, &v) in chunk.iter().enumerate() {
            word |= u64::from(v) << (8 * i);
        }
        word
    }
}

/// Packs up to 64 `i8` lane values into 8 bit planes (two's complement;
/// plane 7 is the sign plane).  Lanes beyond `values.len()` are zero.
#[inline]
pub fn planes_from_i8(values: &[i8]) -> [u64; 8] {
    assert!(values.len() <= 64, "at most 64 lanes per word");
    let mut planes = [0u64; 8];
    let mut bytes = [0u8; 8];
    for (block, chunk) in values.chunks(8).enumerate() {
        for (b, &v) in bytes.iter_mut().zip(chunk) {
            *b = v as u8;
        }
        scatter_block(&mut planes, 0, 8 * block, block_word(&bytes[..chunk.len()]));
    }
    planes
}

/// Packs up to 64 `i16` lane values into 16 bit planes (two's complement;
/// plane 15 is the sign plane).  Lanes beyond `values.len()` are zero.
#[inline]
pub fn planes_from_i16(values: &[i16]) -> [u64; 16] {
    assert!(values.len() <= 64, "at most 64 lanes per word");
    let mut planes = [0u64; 16];
    for (block, chunk) in values.chunks(8).enumerate() {
        let mut lo = 0u64;
        let mut hi = 0u64;
        for (i, &v) in chunk.iter().enumerate() {
            let u = v as u16;
            lo |= u64::from(u & 0xFF) << (8 * i);
            hi |= u64::from(u >> 8) << (8 * i);
        }
        scatter_block(&mut planes, 0, 8 * block, lo);
        scatter_block(&mut planes, 8, 8 * block, hi);
    }
    planes
}

/// Packs up to 64 `i64` lane values into 64 bit planes (two's complement;
/// plane 63 is the sign plane).  Lanes beyond `values.len()` are zero.
pub fn planes_from_i64(values: &[i64]) -> [u64; 64] {
    assert!(values.len() <= 64, "at most 64 lanes per word");
    let mut planes = [0u64; 64];
    for (block, chunk) in values.chunks(8).enumerate() {
        for byte in 0..8 {
            let mut word = 0u64;
            for (i, &v) in chunk.iter().enumerate() {
                word |= ((v as u64 >> (8 * byte)) & 0xFF) << (8 * i);
            }
            scatter_block(&mut planes, 8 * byte, 8 * block, word);
        }
    }
    planes
}

/// Reads back one lane's value from a little-endian plane array (the inverse
/// of the packers, for any plane count up to 64).
#[inline]
pub fn lane_value(planes: &[u64], lane: usize) -> u64 {
    let mut value = 0u64;
    for (k, &plane) in planes.iter().enumerate() {
        value |= ((plane >> lane) & 1) << k;
    }
    value
}

/// Bit-sliced ripple-carry addition `acc += addend` across all lanes, with
/// the addend sign-extended to the accumulator width: planes of `acc` above
/// `addend.len()` receive `sign` (the addend's sign plane) as in two's
/// complement sign extension.  The addition wraps at `acc.len()` planes,
/// exactly like `acc.len()`-bit two's-complement hardware.
#[inline]
pub fn add_sign_extended(acc: &mut [u64], addend: &[u64], sign: u64) {
    debug_assert!(addend.len() <= acc.len());
    let split = addend.len().min(acc.len());
    let (low, high) = acc.split_at_mut(split);
    let mut carry = 0u64;
    for (slot, &b) in low.iter_mut().zip(addend) {
        let a = *slot;
        *slot = a ^ b ^ carry;
        carry = (a & b) | (carry & (a | b));
    }
    for slot in high {
        let a = *slot;
        *slot = a ^ sign ^ carry;
        carry = (a & sign) | (carry & (a | sign));
    }
}

/// Per-lane `x >= y` over two packed unsigned counters of equal plane count,
/// via the borrow recurrence of a bit-sliced subtraction: the result mask
/// has bit `l` set when lane `l` of `x` is at least lane `l` of `y`.
#[inline]
pub fn lanes_ge(x: &[u64], y: &[u64]) -> u64 {
    debug_assert_eq!(x.len(), y.len());
    let mut borrow = 0u64;
    for (&xk, &yk) in x.iter().zip(y) {
        borrow = (!xk & yk) | (!(xk ^ yk) & borrow);
    }
    !borrow
}

/// Per-lane `counter == value` over a packed unsigned counter: the result
/// mask has bit `l` set when lane `l`'s packed value equals `value`.
/// `value` must be representable in `planes.len()` bits.
#[inline]
pub fn lanes_eq(planes: &[u64], value: u64) -> u64 {
    debug_assert!(planes.len() >= 64 || value < (1u64 << planes.len()));
    let mut mask = !0u64;
    for (k, &plane) in planes.iter().enumerate() {
        mask &= if (value >> k) & 1 == 1 { plane } else { !plane };
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn naive_transpose8x8(x: u64) -> u64 {
        let mut y = 0u64;
        for i in 0..8 {
            for b in 0..8 {
                if (x >> (8 * i + b)) & 1 == 1 {
                    y |= 1 << (8 * b + i);
                }
            }
        }
        y
    }

    #[test]
    fn transpose_matches_naive_reference() {
        let mut rng = StdRng::seed_from_u64(0x7245);
        for _ in 0..1000 {
            let x: u64 = rng.gen();
            assert_eq!(transpose8x8(x), naive_transpose8x8(x));
            // A transpose is an involution.
            assert_eq!(transpose8x8(transpose8x8(x)), x);
        }
        assert_eq!(transpose8x8(0), 0);
        assert_eq!(transpose8x8(!0), !0);
    }

    #[test]
    fn plane_packers_round_trip_lane_values() {
        let mut rng = StdRng::seed_from_u64(0x9ACC);
        for lanes in [1usize, 7, 8, 9, 33, 63, 64] {
            let v8: Vec<i8> = (0..lanes).map(|_| rng.gen::<u64>() as i8).collect();
            let p8 = planes_from_i8(&v8);
            for (l, &v) in v8.iter().enumerate() {
                assert_eq!(lane_value(&p8, l) as u8, v as u8, "i8 lane {l}");
            }
            let v16: Vec<i16> = (0..lanes).map(|_| rng.gen::<u64>() as i16).collect();
            let p16 = planes_from_i16(&v16);
            for (l, &v) in v16.iter().enumerate() {
                assert_eq!(lane_value(&p16, l) as u16, v as u16, "i16 lane {l}");
            }
            let v64: Vec<i64> = (0..lanes).map(|_| rng.gen::<u64>() as i64).collect();
            let p64 = planes_from_i64(&v64);
            for (l, &v) in v64.iter().enumerate() {
                assert_eq!(lane_value(&p64, l), v as u64, "i64 lane {l}");
            }
            // Unused high lanes stay zero.
            if lanes < 64 {
                assert_eq!(lane_value(&p8, lanes), 0);
                assert_eq!(lane_value(&p16, lanes), 0);
                assert_eq!(lane_value(&p64, lanes), 0);
            }
        }
    }

    #[test]
    fn packed_addition_matches_wrapping_i64() {
        let mut rng = StdRng::seed_from_u64(0xADD5);
        for lanes in [1usize, 5, 64] {
            let mut acc = [0u64; 64];
            let mut reference: Vec<i64> = vec![0; lanes];
            for _ in 0..50 {
                let addends: Vec<i64> = (0..lanes).map(|_| rng.gen::<u64>() as i64).collect();
                let planes = planes_from_i64(&addends);
                add_sign_extended(&mut acc, &planes, planes[63]);
                for (l, r) in reference.iter_mut().enumerate() {
                    *r = r.wrapping_add(addends[l]);
                    assert_eq!(lane_value(&acc, l), *r as u64, "lane {l}");
                }
            }
        }
    }

    #[test]
    fn sign_extension_matches_narrow_addend_arithmetic() {
        let mut rng = StdRng::seed_from_u64(0x51E7);
        // 16-bit addends accumulated into a 24-plane accumulator wrap exactly
        // like 24-bit two's-complement hardware.
        let mut acc = [0u64; 24];
        let mut reference: Vec<i64> = vec![0; 64];
        for _ in 0..200 {
            let addends: Vec<i16> = (0..64).map(|_| rng.gen::<u64>() as i16).collect();
            let planes = planes_from_i16(&addends);
            add_sign_extended(&mut acc, &planes, planes[15]);
            for (l, r) in reference.iter_mut().enumerate() {
                *r += i64::from(addends[l]);
                let wrapped = (*r as u64) & 0xFF_FFFF;
                assert_eq!(lane_value(&acc, l), wrapped, "lane {l}");
            }
        }
    }

    #[test]
    fn lane_comparisons_match_scalar() {
        let mut rng = StdRng::seed_from_u64(0xC09A);
        for _ in 0..200 {
            let xs: Vec<u64> = (0..64).map(|_| rng.gen_range(0..32)).collect();
            let ys: Vec<u64> = (0..64).map(|_| rng.gen_range(0..32)).collect();
            let mut xp = [0u64; DEPTH_PLANES];
            let mut yp = [0u64; DEPTH_PLANES];
            for (l, (&x, &y)) in xs.iter().zip(&ys).enumerate() {
                for (k, (xk, yk)) in xp.iter_mut().zip(yp.iter_mut()).enumerate() {
                    *xk |= ((x >> k) & 1) << l;
                    *yk |= ((y >> k) & 1) << l;
                }
            }
            let ge = lanes_ge(&xp, &yp);
            for (l, (&x, &y)) in xs.iter().zip(&ys).enumerate() {
                assert_eq!((ge >> l) & 1 == 1, x >= y, "ge lane {l}");
            }
            let probe = rng.gen_range(0..32);
            let eq = lanes_eq(&xp, probe);
            for (l, &x) in xs.iter().enumerate() {
                assert_eq!((eq >> l) & 1 == 1, x == probe, "eq lane {l}");
            }
        }
    }

    #[test]
    fn lane_mask_widths() {
        assert_eq!(lane_mask(0), 0);
        assert_eq!(lane_mask(1), 1);
        assert_eq!(lane_mask(63), !0 >> 1);
        assert_eq!(lane_mask(64), !0);
    }
}
