//! Dataflow styles supported by the simulator.

/// The processing dataflow that maps a GEMM onto the PE array.
///
/// The dataflow dictates what data is held stationary in each processing
/// element and therefore in which order the reduction dimension is visited
/// when accumulating a single output value (see Fig. 1 of the READ paper).
///
/// * [`Dataflow::OutputStationary`] — each PE owns one output element and
///   performs its entire reduction locally.  The reduction order is exactly
///   the (possibly re-ordered) input-channel sequence, which is what READ
///   optimizes.
/// * [`Dataflow::WeightStationary`] — weights are pinned to PEs; partial sums
///   flow through the array.  The reduction is split into row-tiles of the
///   array: within a tile the accumulation order follows the physical row
///   order, and partial results are spilled to and reloaded from the buffer
///   between tiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum Dataflow {
    /// Output-stationary systolic dataflow (the paper's primary target).
    #[default]
    OutputStationary,
    /// Weight-stationary systolic dataflow.
    WeightStationary,
}

/// The single variant registry: [`Dataflow::ALL`] and [`Dataflow::name`]
/// are both generated from this one invocation, so adding a dataflow (the
/// enum is `#[non_exhaustive]` precisely to leave room for row-stationary)
/// is a one-site change — add the variant to the enum and one line here.
/// The generated `name()` match is exhaustive with explicit arms: an enum
/// variant missing from the registry fails to compile instead of silently
/// falling out of `ALL`.
macro_rules! dataflow_registry {
    ($(($variant:ident, $name:literal)),+ $(,)?) => {
        impl Dataflow {
            /// All dataflows implemented by the simulator, in declaration
            /// order.
            pub const ALL: [Dataflow; [$(Dataflow::$variant),+].len()] =
                [$(Dataflow::$variant),+];

            /// Short human-readable name used in experiment output.
            pub fn name(&self) -> &'static str {
                match self {
                    $(Dataflow::$variant => $name,)+
                }
            }

            /// The dataflow with the given [`Dataflow::name`], if any —
            /// the inverse used by wire decoders.
            pub fn from_name(name: &str) -> Option<Dataflow> {
                match name {
                    $($name => Some(Dataflow::$variant),)+
                    _ => None,
                }
            }
        }
    };
}

dataflow_registry!(
    (OutputStationary, "output-stationary"),
    (WeightStationary, "weight-stationary"),
);

impl std::fmt::Display for Dataflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_output_stationary() {
        assert_eq!(Dataflow::default(), Dataflow::OutputStationary);
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<_> = Dataflow::ALL.iter().map(|d| d.name()).collect();
        assert_eq!(names.len(), 2);
        assert_ne!(names[0], names[1]);
        assert_eq!(Dataflow::OutputStationary.to_string(), "output-stationary");
    }

    /// Every registered dataflow round-trips through its name — the seam a
    /// future row-stationary variant plugs into with a single registry line.
    #[test]
    fn names_round_trip_through_from_name() {
        for df in Dataflow::ALL {
            assert_eq!(Dataflow::from_name(df.name()), Some(df));
        }
        assert_eq!(Dataflow::from_name("row-stationary"), None);
    }
}
