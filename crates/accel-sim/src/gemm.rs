//! The GEMM problem a layer lowers to, and its execution on the PE array
//! under a chosen dataflow and compute schedule.

use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::array::ArrayConfig;
use crate::dataflow::Dataflow;
use crate::error::SimError;
use crate::mac::MacUnit;
use crate::matrix::Matrix;
use crate::schedule::ComputeSchedule;
use crate::trace::{CycleContext, CycleObserver};

/// Controls how much of a layer is simulated.
///
/// Timing-error rates are *rates*, so for large layers the simulator can
/// Monte-Carlo sample a subset of output pixels instead of simulating every
/// MAC in the layer.  Sampling is deterministic for a given seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SimOptions {
    /// Maximum number of output pixels (columns of the activation matrix) to
    /// simulate.  `None` simulates all of them.
    pub max_pixels: Option<usize>,
    /// Seed for the pixel-sampling RNG.
    pub seed: u64,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            max_pixels: None,
            seed: 0xC0FFEE,
        }
    }
}

impl SimOptions {
    /// Simulate every output pixel.
    pub fn exhaustive() -> Self {
        Self::default()
    }

    /// Simulate at most `max_pixels` output pixels, sampled uniformly with
    /// the given seed.
    pub fn sampled(max_pixels: usize, seed: u64) -> Self {
        SimOptions {
            max_pixels: Some(max_pixels),
            seed,
        }
    }
}

/// Result of executing a GEMM on the array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimResult {
    /// Output matrix (`K x M`).  Only the simulated pixels are filled in;
    /// un-simulated pixels (when sampling) are zero.
    pub outputs: Matrix<i32>,
    /// Indices of the output pixels that were simulated.
    pub simulated_pixels: Vec<usize>,
    /// Total number of MAC cycles issued.
    pub total_cycles: u64,
}

/// A layer lowered to the `out[k][m] = Σ_r W[r][k] * A[r][m]` GEMM form.
///
/// `W` is the `R x K` weight matrix (reduction rows x output channels) and
/// `A` the `R x M` activation matrix (reduction rows x output pixels).
///
/// # Example
///
/// ```
/// use accel_sim::{ArrayConfig, ComputeSchedule, Dataflow, GemmProblem, Matrix, SignFlipStats, SimOptions};
///
/// # fn main() -> Result<(), accel_sim::SimError> {
/// let w = Matrix::from_fn(6, 2, |r, c| (r as i8) - 3 + c as i8);
/// let a = Matrix::from_fn(6, 5, |r, c| ((r + c) % 3) as i8);
/// let problem = GemmProblem::new(w, a)?;
/// let mut stats = SignFlipStats::new();
/// let result = problem.simulate(
///     &ArrayConfig::new(4, 2),
///     Dataflow::OutputStationary,
///     &SimOptions::exhaustive(),
///     &mut stats,
/// )?;
/// assert_eq!(result.outputs, problem.reference_output()?);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GemmProblem {
    weights: Matrix<i8>,
    activations: Matrix<i8>,
}

impl GemmProblem {
    /// Creates a GEMM problem from a weight matrix (`R x K`) and an
    /// activation matrix (`R x M`).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DimensionMismatch`] if the reduction dimensions
    /// differ, or [`SimError::EmptyDimension`] if any dimension is zero.
    pub fn new(weights: Matrix<i8>, activations: Matrix<i8>) -> Result<Self, SimError> {
        if weights.rows() != activations.rows() {
            return Err(SimError::DimensionMismatch {
                what: "reduction length",
                left: weights.rows(),
                right: activations.rows(),
            });
        }
        if weights.rows() == 0 {
            return Err(SimError::EmptyDimension {
                what: "reduction length",
            });
        }
        if weights.cols() == 0 {
            return Err(SimError::EmptyDimension {
                what: "output channels",
            });
        }
        if activations.cols() == 0 {
            return Err(SimError::EmptyDimension {
                what: "output pixels",
            });
        }
        Ok(GemmProblem {
            weights,
            activations,
        })
    }

    /// The weight matrix (`R x K`).
    pub fn weights(&self) -> &Matrix<i8> {
        &self.weights
    }

    /// The activation matrix (`R x M`).
    pub fn activations(&self) -> &Matrix<i8> {
        &self.activations
    }

    /// Length of the reduction dimension `R`.
    pub fn reduction_len(&self) -> usize {
        self.weights.rows()
    }

    /// Number of output channels `K`.
    pub fn num_channels(&self) -> usize {
        self.weights.cols()
    }

    /// Number of output pixels `M`.
    pub fn num_pixels(&self) -> usize {
        self.activations.cols()
    }

    /// The order-independent reference output, computed directly.
    ///
    /// # Errors
    ///
    /// Propagates dimension mismatches from the underlying matrices (cannot
    /// occur for a validated problem).
    pub fn reference_output(&self) -> Result<Matrix<i32>, SimError> {
        self.weights.gemm_reference(&self.activations)
    }

    /// Executes the GEMM with the baseline schedule for the given array.
    ///
    /// # Errors
    ///
    /// See [`GemmProblem::simulate_with_schedule`].
    pub fn simulate<O: CycleObserver + ?Sized>(
        &self,
        array: &ArrayConfig,
        dataflow: Dataflow,
        options: &SimOptions,
        observer: &mut O,
    ) -> Result<SimResult, SimError> {
        let schedule =
            ComputeSchedule::baseline(self.reduction_len(), self.num_channels(), array.cols());
        self.simulate_with_schedule(array, dataflow, &schedule, options, observer)
    }

    /// Executes the GEMM under an explicit compute schedule (e.g. one
    /// produced by the READ optimizer), streaming every MAC cycle to the
    /// observer.
    ///
    /// The functional result is independent of the schedule; only the cycle
    /// statistics change.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidSchedule`] if the schedule does not cover
    /// the problem's channels or reorders a non-existent row.
    pub fn simulate_with_schedule<O: CycleObserver + ?Sized>(
        &self,
        array: &ArrayConfig,
        dataflow: Dataflow,
        schedule: &ComputeSchedule,
        options: &SimOptions,
        observer: &mut O,
    ) -> Result<SimResult, SimError> {
        schedule.validate(self.reduction_len(), self.num_channels())?;
        let pixels = self.select_pixels(options);
        let mut outputs = Matrix::zeros(self.num_channels(), self.num_pixels());
        let mut total_cycles = 0u64;

        // Observers that only need depth/sign statistics opt into the
        // word-parallel kernel (64 pixels per reduction step).  Both
        // dataflows perform the same per-output additions in the same order
        // (weight-stationary tiling only interleaves outputs and round-trips
        // psums through the idempotent `MacUnit::load`), so the cycle
        // multiset — and hence any order-insensitive tally — is identical to
        // the scalar path below, for either dataflow.
        let packed = match observer.depth_word_sink() {
            Some(sink) => {
                crate::kernels::run_depth_words(
                    &self.weights,
                    &self.activations,
                    schedule,
                    &pixels,
                    sink,
                    &mut outputs,
                    &mut total_cycles,
                );
                true
            }
            None => false,
        };
        if packed {
            return Ok(SimResult {
                outputs,
                simulated_pixels: pixels,
                total_cycles,
            });
        }

        match dataflow {
            Dataflow::OutputStationary => {
                self.run_output_stationary(
                    schedule,
                    &pixels,
                    observer,
                    &mut outputs,
                    &mut total_cycles,
                );
            }
            Dataflow::WeightStationary => {
                self.run_weight_stationary(
                    array,
                    schedule,
                    &pixels,
                    observer,
                    &mut outputs,
                    &mut total_cycles,
                );
            }
        }

        Ok(SimResult {
            outputs,
            simulated_pixels: pixels,
            total_cycles,
        })
    }

    /// The output pixels a simulation under `options` covers, in ascending
    /// order — all of them, or a deterministic seeded sample.  Exposed so
    /// alternative execution engines (e.g. the event-driven dataflow
    /// simulator) cover exactly the pixel set
    /// [`GemmProblem::simulate_with_schedule`] would.
    pub fn select_pixels(&self, options: &SimOptions) -> Vec<usize> {
        let m = self.num_pixels();
        match options.max_pixels {
            Some(max) if max < m => {
                let mut rng = rand::rngs::StdRng::seed_from_u64(options.seed);
                let mut all: Vec<usize> = (0..m).collect();
                all.shuffle(&mut rng);
                let mut chosen: Vec<usize> = all.into_iter().take(max).collect();
                chosen.sort_unstable();
                chosen
            }
            _ => (0..m).collect(),
        }
    }

    fn run_output_stationary<O: CycleObserver + ?Sized>(
        &self,
        schedule: &ComputeSchedule,
        pixels: &[usize],
        observer: &mut O,
        outputs: &mut Matrix<i32>,
        total_cycles: &mut u64,
    ) {
        for (gi, group) in schedule.groups().iter().enumerate() {
            for &pixel in pixels {
                for &channel in &group.columns {
                    let mut mac = MacUnit::new();
                    let mut ctx = CycleContext {
                        group: gi,
                        channel,
                        pixel,
                        step: 0,
                        reduction_index: 0,
                    };
                    for (step, &r) in group.row_order.iter().enumerate() {
                        ctx.step = step;
                        ctx.reduction_index = r;
                        let cycle =
                            mac.mac(self.weights[(r, channel)], self.activations[(r, pixel)]);
                        observer.on_cycle(&ctx, &cycle);
                        *total_cycles += 1;
                    }
                    outputs[(channel, pixel)] = mac.psum();
                    observer.on_output_done(&ctx, mac.psum());
                }
            }
        }
    }

    fn run_weight_stationary<O: CycleObserver + ?Sized>(
        &self,
        array: &ArrayConfig,
        schedule: &ComputeSchedule,
        pixels: &[usize],
        observer: &mut O,
        outputs: &mut Matrix<i32>,
        total_cycles: &mut u64,
    ) {
        // Weight-stationary: the reduction dimension is tiled into groups of
        // `array.rows()` weights that are pinned onto the array.  For every
        // tile, all pixels stream through before the next tile is loaded, so
        // one output's accumulation is interleaved with the other outputs
        // and its partial value round-trips through the accumulation buffer.
        for (gi, group) in schedule.groups().iter().enumerate() {
            let mut psums: Vec<Vec<i32>> = vec![vec![0i32; self.num_pixels()]; group.columns.len()];
            for (tile_no, tile) in group.row_order.chunks(array.rows()).enumerate() {
                for &pixel in pixels {
                    for (ci, &channel) in group.columns.iter().enumerate() {
                        let mut mac = MacUnit::new();
                        mac.load(psums[ci][pixel]);
                        let mut ctx = CycleContext {
                            group: gi,
                            channel,
                            pixel,
                            step: 0,
                            reduction_index: 0,
                        };
                        for (i, &r) in tile.iter().enumerate() {
                            ctx.step = tile_no * array.rows() + i;
                            ctx.reduction_index = r;
                            let cycle =
                                mac.mac(self.weights[(r, channel)], self.activations[(r, pixel)]);
                            observer.on_cycle(&ctx, &cycle);
                            *total_cycles += 1;
                        }
                        psums[ci][pixel] = mac.psum();
                        let is_last_tile = (tile_no + 1) * array.rows() >= group.row_order.len();
                        if is_last_tile {
                            outputs[(channel, pixel)] = mac.psum();
                            observer.on_output_done(&ctx, mac.psum());
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::ColumnGroup;
    use crate::trace::{NullObserver, SignFlipStats};

    fn test_problem(r: usize, k: usize, m: usize) -> GemmProblem {
        let w = Matrix::from_fn(r, k, |i, j| (((i * 7 + j * 13) % 15) as i8) - 7);
        let a = Matrix::from_fn(r, m, |i, j| ((i * 5 + j * 3) % 8) as i8);
        GemmProblem::new(w, a).unwrap()
    }

    #[test]
    fn constructor_validates_dimensions() {
        let w = Matrix::<i8>::zeros(4, 2);
        let a = Matrix::<i8>::zeros(5, 3);
        assert!(GemmProblem::new(w, a).is_err());
        let w = Matrix::<i8>::zeros(0, 2);
        let a = Matrix::<i8>::zeros(0, 3);
        assert!(GemmProblem::new(w, a).is_err());
    }

    #[test]
    fn output_stationary_matches_reference() {
        let p = test_problem(20, 6, 9);
        let mut obs = NullObserver;
        let res = p
            .simulate(
                &ArrayConfig::new(4, 2),
                Dataflow::OutputStationary,
                &SimOptions::exhaustive(),
                &mut obs,
            )
            .unwrap();
        assert_eq!(res.outputs, p.reference_output().unwrap());
        assert_eq!(res.total_cycles, 20 * 6 * 9);
    }

    #[test]
    fn weight_stationary_matches_reference() {
        let p = test_problem(20, 6, 9);
        let mut obs = NullObserver;
        let res = p
            .simulate(
                &ArrayConfig::new(4, 2),
                Dataflow::WeightStationary,
                &SimOptions::exhaustive(),
                &mut obs,
            )
            .unwrap();
        assert_eq!(res.outputs, p.reference_output().unwrap());
        assert_eq!(res.total_cycles, 20 * 6 * 9);
    }

    #[test]
    fn reordered_schedule_preserves_outputs() {
        let p = test_problem(16, 4, 5);
        // Reverse reduction order, reversed channel grouping.
        let schedule = ComputeSchedule::new(vec![
            ColumnGroup {
                columns: vec![3, 1],
                row_order: (0..16).rev().collect(),
            },
            ColumnGroup {
                columns: vec![0, 2],
                row_order: (0..16).collect(),
            },
        ]);
        let mut obs = NullObserver;
        let res = p
            .simulate_with_schedule(
                &ArrayConfig::new(4, 2),
                Dataflow::OutputStationary,
                &schedule,
                &SimOptions::exhaustive(),
                &mut obs,
            )
            .unwrap();
        assert_eq!(res.outputs, p.reference_output().unwrap());
    }

    #[test]
    fn invalid_schedule_is_rejected() {
        let p = test_problem(8, 4, 3);
        let schedule = ComputeSchedule::new(vec![ColumnGroup::with_identity_order(vec![0, 1], 8)]);
        let mut obs = NullObserver;
        assert!(p
            .simulate_with_schedule(
                &ArrayConfig::new(4, 2),
                Dataflow::OutputStationary,
                &schedule,
                &SimOptions::exhaustive(),
                &mut obs,
            )
            .is_err());
    }

    #[test]
    fn sampling_reduces_simulated_pixels() {
        let p = test_problem(8, 2, 50);
        let mut obs = SignFlipStats::new();
        let res = p
            .simulate(
                &ArrayConfig::new(4, 2),
                Dataflow::OutputStationary,
                &SimOptions::sampled(10, 7),
                &mut obs,
            )
            .unwrap();
        assert_eq!(res.simulated_pixels.len(), 10);
        assert_eq!(obs.total_macs, 8 * 2 * 10);
        // Sampled pixels must match the reference at the simulated positions.
        let reference = p.reference_output().unwrap();
        for &m in &res.simulated_pixels {
            for k in 0..p.num_channels() {
                assert_eq!(res.outputs[(k, m)], reference[(k, m)]);
            }
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let p = test_problem(8, 2, 40);
        let opts = SimOptions::sampled(5, 99);
        let mut o1 = NullObserver;
        let mut o2 = NullObserver;
        let r1 = p
            .simulate(
                &ArrayConfig::new(4, 2),
                Dataflow::OutputStationary,
                &opts,
                &mut o1,
            )
            .unwrap();
        let r2 = p
            .simulate(
                &ArrayConfig::new(4, 2),
                Dataflow::OutputStationary,
                &opts,
                &mut o2,
            )
            .unwrap();
        assert_eq!(r1.simulated_pixels, r2.simulated_pixels);
    }

    #[test]
    fn observer_sees_output_done_per_output() {
        let p = test_problem(8, 3, 4);
        let mut stats = SignFlipStats::new();
        p.simulate(
            &ArrayConfig::new(2, 2),
            Dataflow::OutputStationary,
            &SimOptions::exhaustive(),
            &mut stats,
        )
        .unwrap();
        assert_eq!(stats.outputs, 3 * 4);
    }

    #[test]
    fn weight_stationary_differs_in_stats_not_results() {
        let p = test_problem(32, 4, 6);
        let mut os_stats = SignFlipStats::new();
        let mut ws_stats = SignFlipStats::new();
        let array = ArrayConfig::new(8, 2);
        let os = p
            .simulate(
                &array,
                Dataflow::OutputStationary,
                &SimOptions::exhaustive(),
                &mut os_stats,
            )
            .unwrap();
        let ws = p
            .simulate(
                &array,
                Dataflow::WeightStationary,
                &SimOptions::exhaustive(),
                &mut ws_stats,
            )
            .unwrap();
        assert_eq!(os.outputs, ws.outputs);
        assert_eq!(os_stats.total_macs, ws_stats.total_macs);
        assert_eq!(os_stats.outputs, ws_stats.outputs);
    }
}
