//! The discrete-event engine: contexts with local clocks exchanging typed
//! tokens over bounded channels.
//!
//! # Model
//!
//! A run instantiates five contexts, each owning a local cycle counter:
//!
//! * `weight-feeder` / `act-feeder` — stream one operand token per MAC, in
//!   program order;
//! * `pe` — the PE array, folded to a single context that executes the
//!   lowered program (recv operands → MAC → emit psum);
//! * `psum-buffer` — weight-stationary only: holds partial sums spilled
//!   between row-tiles and feeds them back on reload;
//! * `accumulator` — drains finished outputs into the result matrix.
//!
//! Contexts communicate exclusively through bounded channels with blocking
//! send/recv: a send to a full channel stalls the sender until the receiver
//! frees a slot, a recv from an empty channel stalls the receiver until a
//! token is ready (tokens arrive `hop_latency` cycles after being sent).
//! Stalls and backpressure therefore *emerge* from channel occupancy; the
//! engine never schedules them explicitly.
//!
//! # Byte-identity with the analytic engine
//!
//! The schedule is lowered **once** into a linear program of [`Segment`]s
//! whose order is exactly the analytic simulator's loop nest (OS:
//! group→pixel→column; WS: group→tile→pixel→column, with psums spilled and
//! reloaded between tiles).  Every context walks that same program, so the
//! observer sees the same MAC cycles with the same [`CycleContext`]s as
//! [`GemmProblem::simulate_with_schedule`] regardless of channel capacities
//! — which is what makes the depth-histogram byte-identity property hold on
//! *every* configuration, not just stall-free ones.

use std::collections::{HashMap, VecDeque};

use accel_sim::{
    ArrayConfig, ComputeSchedule, CycleContext, CycleObserver, Dataflow, GemmProblem, MacUnit,
    Matrix, SimError, SimOptions,
};

use crate::report::{ChannelReport, ContextReport, DataflowReport};
use crate::trace::TraceRecorder;

/// Tuning knobs for the event engine.
///
/// The debug rendering participates in pipeline fingerprints, so adding a
/// field changes probe cache keys — which is correct, since it changes the
/// simulated timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EngineConfig {
    /// Token capacity of every bounded channel.  Must be at least 1; the
    /// smaller the capacity, the more backpressure the run exhibits.
    pub channel_capacity: usize,
    /// Cycles a token spends in flight between sender and receiver.
    pub hop_latency: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            channel_capacity: 4,
            hop_latency: 1,
        }
    }
}

/// Why an event-driven run could not complete.
#[derive(Debug)]
pub enum EventError {
    /// [`EngineConfig::channel_capacity`] was zero — no token could ever be
    /// in flight, so every send would block forever.
    ZeroCapacity,
    /// The schedule failed [`ComputeSchedule::validate`] for this problem.
    Sim(SimError),
    /// The dataflow has no lowering onto the event engine (the enum is
    /// `#[non_exhaustive]`, so a newer variant can outpace this crate).
    UnsupportedDataflow {
        /// [`Dataflow::name`] of the unsupported variant.
        name: &'static str,
    },
    /// No context could make progress before the program drained — a
    /// lowering bug, since the generated channel programs are matched
    /// FIFO pairs that cannot cyclically wait.
    Deadlock {
        /// Largest local clock when the engine seized.
        at: u64,
    },
}

impl std::fmt::Display for EventError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EventError::ZeroCapacity => {
                write!(f, "channel capacity must be at least 1 token")
            }
            EventError::Sim(e) => write!(f, "{e}"),
            EventError::UnsupportedDataflow { name } => {
                write!(f, "dataflow {name} has no event-engine lowering")
            }
            EventError::Deadlock { at } => {
                write!(f, "event engine deadlocked at cycle {at}")
            }
        }
    }
}

impl std::error::Error for EventError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EventError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SimError> for EventError {
    fn from(e: SimError) -> Self {
        EventError::Sim(e)
    }
}

/// What [`run_dataflow`] produced: the functional result plus the timing
/// report.
#[derive(Debug, Clone)]
pub struct DataflowRun {
    /// Output matrix (`K x M`); un-simulated pixels (when sampling) are
    /// zero, exactly as in [`accel_sim::SimResult`].
    pub outputs: Matrix<i32>,
    /// Indices of the output pixels that were simulated (ascending).
    pub simulated_pixels: Vec<usize>,
    /// Cycle/stall/occupancy accounting for the run.
    pub report: DataflowReport,
}

/// Optional trace sink — every recording call is a no-op when absent, so
/// the traced and untraced paths share one code path.
struct Trace<'a>(Option<&'a mut TraceRecorder>);

impl Trace<'_> {
    fn add_track(&mut self, name: &str) -> usize {
        self.0.as_deref_mut().map_or(0, |t| t.add_track(name))
    }
    fn add_counter(&mut self, name: &str) -> usize {
        self.0.as_deref_mut().map_or(0, |t| t.add_counter(name))
    }
    fn compute(&mut self, tid: usize, start: u64, dur: u64) {
        if let Some(t) = self.0.as_deref_mut() {
            t.compute(tid, start, dur);
        }
    }
    fn stall(&mut self, tid: usize, start: u64, dur: u64) {
        if let Some(t) = self.0.as_deref_mut() {
            t.stall(tid, start, dur);
        }
    }
    fn drain(&mut self, tid: usize, start: u64, dur: u64) {
        if let Some(t) = self.0.as_deref_mut() {
            t.drain(tid, start, dur);
        }
    }
    fn counter(&mut self, cid: usize, ts: u64, occupancy: usize) {
        if let Some(t) = self.0.as_deref_mut() {
            t.counter(cid, ts, occupancy);
        }
    }
}

/// A context's local clock plus its busy/stall tally.
struct Clock {
    tid: usize,
    now: u64,
    busy: u64,
    stall: u64,
}

impl Clock {
    fn new(tid: usize) -> Self {
        Clock {
            tid,
            now: 0,
            busy: 0,
            stall: 0,
        }
    }

    /// Spends one productive cycle.
    fn tick(&mut self, trace: &mut Trace<'_>) {
        trace.compute(self.tid, self.now, 1);
        self.busy += 1;
        self.now += 1;
    }

    /// Advances to `to` (if in the future), accounting the gap as stall.
    fn sync(&mut self, to: u64, trace: &mut Trace<'_>) {
        if to > self.now {
            trace.stall(self.tid, self.now, to - self.now);
            self.stall += to - self.now;
            self.now = to;
        }
    }
}

/// A bounded single-producer single-consumer channel of timestamped tokens.
struct Channel<T> {
    cid: usize,
    capacity: usize,
    hop: u64,
    queue: VecDeque<(u64, T)>,
    /// Receiver time of the most recent full→non-full transition: the
    /// moment a blocked sender's slot appeared.
    freed_at: u64,
    peak: usize,
    sends: u64,
}

impl<T> Channel<T> {
    fn new(cid: usize, config: &EngineConfig) -> Self {
        Channel {
            cid,
            capacity: config.channel_capacity,
            hop: config.hop_latency,
            queue: VecDeque::new(),
            freed_at: 0,
            peak: 0,
            sends: 0,
        }
    }

    fn is_full(&self) -> bool {
        self.queue.len() >= self.capacity
    }

    /// When the head token becomes receivable, if any.
    fn ready(&self) -> Option<u64> {
        self.queue.front().map(|&(ready, _)| ready)
    }

    fn push(&mut self, sender_now: u64, token: T, trace: &mut Trace<'_>) {
        debug_assert!(!self.is_full());
        self.queue.push_back((sender_now + self.hop, token));
        self.sends += 1;
        self.peak = self.peak.max(self.queue.len());
        trace.counter(self.cid, sender_now, self.queue.len());
    }

    fn pop(&mut self, receiver_now: u64, trace: &mut Trace<'_>) -> T {
        let was_full = self.is_full();
        let (_, token) = self.queue.pop_front().expect("pop on empty channel");
        if was_full {
            self.freed_at = self.freed_at.max(receiver_now);
        }
        trace.counter(self.cid, receiver_now, self.queue.len());
        token
    }
}

/// Blocking-send protocol shared by every sender: on a full channel the
/// caller parks (its `blocked` flag survives across scheduler passes); once
/// space exists, a previously-blocked sender first syncs to the instant the
/// slot appeared — that wait is the backpressure stall.
fn try_send<T>(
    ch: &mut Channel<T>,
    clock: &mut Clock,
    blocked: &mut bool,
    trace: &mut Trace<'_>,
    make: impl FnOnce() -> T,
) -> bool {
    if ch.is_full() {
        *blocked = true;
        return false;
    }
    if std::mem::take(blocked) {
        clock.sync(ch.freed_at, trace);
    }
    ch.push(clock.now, make(), trace);
    true
}

/// How one PE visit of an output begins: from zero, or from a partial sum
/// reloaded out of the psum buffer.
#[derive(Clone, Copy)]
enum SegInit {
    Zero,
    Reload,
}

/// How it ends: the finished output goes to the accumulator, or the partial
/// sum spills to the buffer to wait for the next row-tile.
#[derive(Clone, Copy)]
enum SegFin {
    Output,
    Spill { slot: usize },
}

/// One PE visit of one output: a run of MACs over a slice of a group's
/// `row_order` (the whole reduction for OS; one row-tile for WS).  The
/// segment list is the *program* every context walks in the same order.
struct Segment {
    group: usize,
    channel: usize,
    pixel: usize,
    /// The analytic engine's `step` for this segment's first MAC.
    base_step: usize,
    row_start: usize,
    row_len: usize,
    init: SegInit,
    fin: SegFin,
}

/// The psum-buffer context's program, derived from the same lowering: for
/// each WS segment in order, a reload send (if the segment resumes a
/// partial sum) and a spill recv (if it suspends one).  PE and buffer
/// traverse these as matched FIFO pairs, so the pair cannot deadlock at
/// any channel capacity ≥ 1.
enum BufOp {
    SendReload { slot: usize },
    RecvSpill,
}

fn lower_output_stationary(schedule: &ComputeSchedule, pixels: &[usize]) -> Vec<Segment> {
    let mut segments = Vec::new();
    for (gi, group) in schedule.groups().iter().enumerate() {
        for &pixel in pixels {
            for &channel in &group.columns {
                segments.push(Segment {
                    group: gi,
                    channel,
                    pixel,
                    base_step: 0,
                    row_start: 0,
                    row_len: group.row_order.len(),
                    init: SegInit::Zero,
                    fin: SegFin::Output,
                });
            }
        }
    }
    segments
}

fn lower_weight_stationary(
    schedule: &ComputeSchedule,
    pixels: &[usize],
    array: &ArrayConfig,
    num_pixels: usize,
) -> (Vec<Segment>, Vec<BufOp>) {
    let mut segments = Vec::new();
    let mut buf_ops = Vec::new();
    for (gi, group) in schedule.groups().iter().enumerate() {
        let tile_rows = array.rows();
        for (tile_no, tile) in group.row_order.chunks(tile_rows).enumerate() {
            let is_last = (tile_no + 1) * tile_rows >= group.row_order.len();
            for &pixel in pixels {
                for &channel in &group.columns {
                    // One live partial sum per (channel, pixel); channels
                    // belong to exactly one group, so the slot is unique.
                    let slot = channel * num_pixels + pixel;
                    let init = if tile_no == 0 {
                        SegInit::Zero
                    } else {
                        buf_ops.push(BufOp::SendReload { slot });
                        SegInit::Reload
                    };
                    let fin = if is_last {
                        SegFin::Output
                    } else {
                        buf_ops.push(BufOp::RecvSpill);
                        SegFin::Spill { slot }
                    };
                    segments.push(Segment {
                        group: gi,
                        channel,
                        pixel,
                        base_step: tile_no * tile_rows,
                        row_start: tile_no * tile_rows,
                        row_len: tile.len(),
                        init,
                        fin,
                    });
                }
            }
        }
    }
    (segments, buf_ops)
}

/// A finished output en route to the accumulator.  Carries the observer
/// context of its final MAC so `on_output_done` fires with exactly the
/// [`CycleContext`] the analytic engine would use.
struct FinalToken {
    channel: usize,
    pixel: usize,
    value: i32,
    ctx: CycleContext,
}

/// A partial sum spilled to the psum buffer between WS row-tiles.
struct PsumToken {
    slot: usize,
    value: i32,
}

struct Feeder {
    seg: usize,
    row: usize,
    pending: Option<i8>,
    blocked: bool,
    clock: Clock,
}

impl Feeder {
    fn new(tid: usize) -> Self {
        Feeder {
            seg: 0,
            row: 0,
            pending: None,
            blocked: false,
            clock: Clock::new(tid),
        }
    }

    fn done(&self, segments: &[Segment]) -> bool {
        self.seg == segments.len()
    }

    /// Streams one operand token per MAC: reading the operand costs one
    /// cycle, the send is instantaneous (plus hop latency in flight).  The
    /// `pending` slot makes the read cycle happen exactly once even when
    /// the send blocks across scheduler passes.
    fn run(
        &mut self,
        segments: &[Segment],
        schedule: &ComputeSchedule,
        operand: impl Fn(usize, &Segment) -> i8,
        ch: &mut Channel<i8>,
        trace: &mut Trace<'_>,
    ) -> bool {
        let mut progressed = false;
        while self.seg < segments.len() {
            let s = &segments[self.seg];
            if self.pending.is_none() {
                let r = schedule.groups()[s.group].row_order[s.row_start + self.row];
                self.pending = Some(operand(r, s));
                self.clock.tick(trace);
                progressed = true;
            }
            if ch.is_full() {
                self.blocked = true;
                return progressed;
            }
            if std::mem::take(&mut self.blocked) {
                self.clock.sync(ch.freed_at, trace);
            }
            let token = self.pending.take().expect("pending operand");
            ch.push(self.clock.now, token, trace);
            progressed = true;
            self.row += 1;
            if self.row == s.row_len {
                self.row = 0;
                self.seg += 1;
            }
        }
        progressed
    }
}

enum PeStage {
    Init,
    Mac(usize),
    Fin,
}

struct Pe {
    seg: usize,
    stage: PeStage,
    mac: MacUnit,
    ctx: CycleContext,
    blocked: bool,
    clock: Clock,
    macs: u64,
}

impl Pe {
    fn new(tid: usize) -> Self {
        Pe {
            seg: 0,
            stage: PeStage::Init,
            mac: MacUnit::new(),
            ctx: CycleContext {
                group: 0,
                channel: 0,
                pixel: 0,
                step: 0,
                reduction_index: 0,
            },
            blocked: false,
            clock: Clock::new(tid),
            macs: 0,
        }
    }

    fn done(&self, segments: &[Segment]) -> bool {
        self.seg == segments.len()
    }

    #[allow(clippy::too_many_arguments)]
    fn run<O: CycleObserver + ?Sized>(
        &mut self,
        segments: &[Segment],
        schedule: &ComputeSchedule,
        weights_ch: &mut Channel<i8>,
        acts_ch: &mut Channel<i8>,
        finals_ch: &mut Channel<FinalToken>,
        spill_ch: &mut Channel<PsumToken>,
        reload_ch: &mut Channel<i32>,
        observer: &mut O,
        trace: &mut Trace<'_>,
    ) -> bool {
        let mut progressed = false;
        while self.seg < segments.len() {
            let s = &segments[self.seg];
            match self.stage {
                PeStage::Init => {
                    self.mac = MacUnit::new();
                    if matches!(s.init, SegInit::Reload) {
                        let Some(ready) = reload_ch.ready() else {
                            return progressed;
                        };
                        self.clock.sync(ready, trace);
                        let psum = reload_ch.pop(self.clock.now, trace);
                        self.mac.load(psum);
                    }
                    self.ctx = CycleContext {
                        group: s.group,
                        channel: s.channel,
                        pixel: s.pixel,
                        step: 0,
                        reduction_index: 0,
                    };
                    self.stage = PeStage::Mac(0);
                    progressed = true;
                }
                PeStage::Mac(i) => {
                    let (Some(w_ready), Some(a_ready)) = (weights_ch.ready(), acts_ch.ready())
                    else {
                        return progressed;
                    };
                    self.clock.sync(w_ready.max(a_ready), trace);
                    let w = weights_ch.pop(self.clock.now, trace);
                    let a = acts_ch.pop(self.clock.now, trace);
                    self.ctx.step = s.base_step + i;
                    self.ctx.reduction_index =
                        schedule.groups()[s.group].row_order[s.row_start + i];
                    let cycle = self.mac.mac(w, a);
                    observer.on_cycle(&self.ctx, &cycle);
                    self.clock.tick(trace);
                    self.macs += 1;
                    self.stage = if i + 1 == s.row_len {
                        PeStage::Fin
                    } else {
                        PeStage::Mac(i + 1)
                    };
                    progressed = true;
                }
                PeStage::Fin => {
                    let value = self.mac.psum();
                    let ctx = self.ctx;
                    let (channel, pixel) = (s.channel, s.pixel);
                    let sent = match s.fin {
                        SegFin::Output => {
                            try_send(finals_ch, &mut self.clock, &mut self.blocked, trace, || {
                                FinalToken {
                                    channel,
                                    pixel,
                                    value,
                                    ctx,
                                }
                            })
                        }
                        SegFin::Spill { slot } => {
                            try_send(spill_ch, &mut self.clock, &mut self.blocked, trace, || {
                                PsumToken { slot, value }
                            })
                        }
                    };
                    if !sent {
                        return progressed;
                    }
                    self.seg += 1;
                    self.stage = PeStage::Init;
                    progressed = true;
                }
            }
        }
        progressed
    }
}

struct PsumBuffer {
    op: usize,
    store: HashMap<usize, i32>,
    peak: usize,
    blocked: bool,
    clock: Clock,
}

impl PsumBuffer {
    fn new(tid: usize) -> Self {
        PsumBuffer {
            op: 0,
            store: HashMap::new(),
            peak: 0,
            blocked: false,
            clock: Clock::new(tid),
        }
    }

    fn done(&self, ops: &[BufOp]) -> bool {
        self.op == ops.len()
    }

    fn run(
        &mut self,
        ops: &[BufOp],
        spill_ch: &mut Channel<PsumToken>,
        reload_ch: &mut Channel<i32>,
        trace: &mut Trace<'_>,
    ) -> bool {
        let mut progressed = false;
        while self.op < ops.len() {
            match ops[self.op] {
                BufOp::SendReload { slot } => {
                    if reload_ch.is_full() {
                        self.blocked = true;
                        return progressed;
                    }
                    if std::mem::take(&mut self.blocked) {
                        self.clock.sync(reload_ch.freed_at, trace);
                    }
                    // The partial sum leaves the buffer when it reloads
                    // into the PE; lowering order guarantees the matching
                    // spill arrived first.
                    let value = self.store.remove(&slot).expect("reload before spill");
                    self.clock.tick(trace);
                    reload_ch.push(self.clock.now, value, trace);
                }
                BufOp::RecvSpill => {
                    let Some(ready) = spill_ch.ready() else {
                        return progressed;
                    };
                    self.clock.sync(ready, trace);
                    let token = spill_ch.pop(self.clock.now, trace);
                    self.store.insert(token.slot, token.value);
                    self.peak = self.peak.max(self.store.len());
                    self.clock.tick(trace);
                }
            }
            self.op += 1;
            progressed = true;
        }
        progressed
    }
}

struct Accumulator {
    received: usize,
    expected: usize,
    clock: Clock,
}

impl Accumulator {
    fn new(tid: usize, expected: usize) -> Self {
        Accumulator {
            received: 0,
            expected,
            clock: Clock::new(tid),
        }
    }

    fn done(&self) -> bool {
        self.received == self.expected
    }

    fn run<O: CycleObserver + ?Sized>(
        &mut self,
        finals_ch: &mut Channel<FinalToken>,
        outputs: &mut Matrix<i32>,
        observer: &mut O,
        trace: &mut Trace<'_>,
    ) -> bool {
        let mut progressed = false;
        while self.received < self.expected {
            let Some(ready) = finals_ch.ready() else {
                return progressed;
            };
            self.clock.sync(ready, trace);
            let token = finals_ch.pop(self.clock.now, trace);
            outputs[(token.channel, token.pixel)] = token.value;
            observer.on_output_done(&token.ctx, token.value);
            self.clock.tick(trace);
            self.received += 1;
            progressed = true;
        }
        progressed
    }
}

/// Executes the GEMM on the event-driven context/channel model and returns
/// the outputs plus a [`DataflowReport`].
///
/// The observer sees exactly the MAC cycles (and `on_output_done` contexts)
/// that [`GemmProblem::simulate_with_schedule`] would deliver for the same
/// arguments — see the module docs for why.  Pass `Some(&mut TraceRecorder)`
/// to additionally record a Chrome-format trace of the run; tracing does not
/// change any simulated quantity.
///
/// # Errors
///
/// * [`EventError::ZeroCapacity`] — `config.channel_capacity == 0`;
/// * [`EventError::Sim`] — the schedule does not cover this problem;
/// * [`EventError::UnsupportedDataflow`] — a [`Dataflow`] variant this crate
///   does not know how to lower;
/// * [`EventError::Deadlock`] — the engine seized (indicates a lowering
///   bug; covered by regression tests at capacity 1).
#[allow(clippy::too_many_arguments)]
pub fn run_dataflow<O: CycleObserver + ?Sized>(
    problem: &GemmProblem,
    array: &ArrayConfig,
    dataflow: Dataflow,
    schedule: &ComputeSchedule,
    options: &SimOptions,
    config: &EngineConfig,
    observer: &mut O,
    trace: Option<&mut TraceRecorder>,
) -> Result<DataflowRun, EventError> {
    if config.channel_capacity == 0 {
        return Err(EventError::ZeroCapacity);
    }
    schedule.validate(problem.reduction_len(), problem.num_channels())?;
    let pixels = problem.select_pixels(options);

    let (segments, buf_ops) = match dataflow {
        Dataflow::OutputStationary => (lower_output_stationary(schedule, &pixels), Vec::new()),
        Dataflow::WeightStationary => {
            lower_weight_stationary(schedule, &pixels, array, problem.num_pixels())
        }
        other => {
            return Err(EventError::UnsupportedDataflow { name: other.name() });
        }
    };
    let expected_outputs = segments
        .iter()
        .filter(|s| matches!(s.fin, SegFin::Output))
        .count();

    let mut trace = Trace(trace);
    let tid_wfeed = trace.add_track("weight-feeder");
    let tid_afeed = trace.add_track("act-feeder");
    let tid_pe = trace.add_track("pe");
    let tid_buf = trace.add_track("psum-buffer");
    let tid_acc = trace.add_track("accumulator");

    let mut weights_ch = Channel::<i8>::new(trace.add_counter("weights"), config);
    let mut acts_ch = Channel::<i8>::new(trace.add_counter("acts"), config);
    let mut finals_ch = Channel::<FinalToken>::new(trace.add_counter("finals"), config);
    let mut spill_ch = Channel::<PsumToken>::new(trace.add_counter("spill"), config);
    let mut reload_ch = Channel::<i32>::new(trace.add_counter("reload"), config);

    let mut wfeed = Feeder::new(tid_wfeed);
    let mut afeed = Feeder::new(tid_afeed);
    let mut pe = Pe::new(tid_pe);
    let mut buffer = PsumBuffer::new(tid_buf);
    let mut acc = Accumulator::new(tid_acc, expected_outputs);

    let mut outputs = Matrix::zeros(problem.num_channels(), problem.num_pixels());
    let weights = problem.weights();
    let activations = problem.activations();

    loop {
        let mut progressed = false;
        progressed |= wfeed.run(
            &segments,
            schedule,
            |r, s| weights[(r, s.channel)],
            &mut weights_ch,
            &mut trace,
        );
        progressed |= afeed.run(
            &segments,
            schedule,
            |r, s| activations[(r, s.pixel)],
            &mut acts_ch,
            &mut trace,
        );
        progressed |= pe.run(
            &segments,
            schedule,
            &mut weights_ch,
            &mut acts_ch,
            &mut finals_ch,
            &mut spill_ch,
            &mut reload_ch,
            observer,
            &mut trace,
        );
        progressed |= buffer.run(&buf_ops, &mut spill_ch, &mut reload_ch, &mut trace);
        progressed |= acc.run(&mut finals_ch, &mut outputs, observer, &mut trace);

        let all_done = wfeed.done(&segments)
            && afeed.done(&segments)
            && pe.done(&segments)
            && buffer.done(&buf_ops)
            && acc.done();
        if all_done {
            break;
        }
        if !progressed {
            let at = [
                wfeed.clock.now,
                afeed.clock.now,
                pe.clock.now,
                buffer.clock.now,
                acc.clock.now,
            ]
            .into_iter()
            .max()
            .unwrap_or(0);
            return Err(EventError::Deadlock { at });
        }
    }

    let clocks = [
        &wfeed.clock,
        &afeed.clock,
        &pe.clock,
        &buffer.clock,
        &acc.clock,
    ];
    let makespan = clocks.iter().map(|c| c.now).max().unwrap_or(0);
    let context_names = [
        "weight-feeder",
        "act-feeder",
        "pe",
        "psum-buffer",
        "accumulator",
    ];
    let mut contexts = Vec::with_capacity(clocks.len());
    for (name, clock) in context_names.iter().zip(clocks) {
        trace.drain(clock.tid, clock.now, makespan - clock.now);
        contexts.push(ContextReport {
            name: (*name).to_string(),
            busy: clock.busy,
            stall: clock.stall,
            finish: clock.now,
        });
    }

    let channels = vec![
        channel_report("weights", &weights_ch),
        channel_report("acts", &acts_ch),
        channel_report("finals", &finals_ch),
        channel_report("spill", &spill_ch),
        channel_report("reload", &reload_ch),
    ];

    let report = DataflowReport {
        dataflow: dataflow.name().to_string(),
        cycles: makespan,
        macs: pe.macs,
        outputs: acc.received as u64,
        stalled: contexts.iter().map(|c| c.stall).sum(),
        peak_psum_buffer: buffer.peak as u64,
        contexts,
        channels,
    };

    Ok(DataflowRun {
        outputs,
        simulated_pixels: pixels,
        report,
    })
}

fn channel_report<T>(name: &str, ch: &Channel<T>) -> ChannelReport {
    ChannelReport {
        name: name.to_string(),
        capacity: ch.capacity as u64,
        peak: ch.peak as u64,
        sends: ch.sends,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accel_sim::{NullObserver, SignFlipStats};

    fn test_problem(r: usize, k: usize, m: usize) -> GemmProblem {
        let w = Matrix::from_fn(r, k, |i, j| (((i * 7 + j * 13) % 15) as i8) - 7);
        let a = Matrix::from_fn(r, m, |i, j| ((i * 5 + j * 3) % 8) as i8);
        GemmProblem::new(w, a).unwrap()
    }

    fn run(
        problem: &GemmProblem,
        array: &ArrayConfig,
        dataflow: Dataflow,
        config: &EngineConfig,
    ) -> DataflowRun {
        let schedule = ComputeSchedule::baseline(
            problem.reduction_len(),
            problem.num_channels(),
            array.cols(),
        );
        run_dataflow(
            problem,
            array,
            dataflow,
            &schedule,
            &SimOptions::exhaustive(),
            config,
            &mut NullObserver,
            None,
        )
        .unwrap()
    }

    #[test]
    fn output_stationary_matches_reference() {
        let p = test_problem(20, 6, 9);
        let run = run(
            &p,
            &ArrayConfig::new(4, 2),
            Dataflow::OutputStationary,
            &EngineConfig::default(),
        );
        assert_eq!(run.outputs, p.reference_output().unwrap());
        assert_eq!(run.report.macs, 20 * 6 * 9);
        assert_eq!(run.report.outputs, 6 * 9);
        assert_eq!(run.report.peak_psum_buffer, 0, "OS never spills");
    }

    #[test]
    fn weight_stationary_matches_reference_and_spills() {
        let p = test_problem(20, 6, 9);
        let run = run(
            &p,
            &ArrayConfig::new(4, 2),
            Dataflow::WeightStationary,
            &EngineConfig::default(),
        );
        assert_eq!(run.outputs, p.reference_output().unwrap());
        assert_eq!(run.report.macs, 20 * 6 * 9);
        assert!(run.report.peak_psum_buffer > 0, "WS spills between tiles");
        assert!(run.report.channel("spill").unwrap().sends > 0);
        assert_eq!(
            run.report.channel("spill").unwrap().sends,
            run.report.channel("reload").unwrap().sends
        );
    }

    #[test]
    fn capacity_one_channels_complete_without_deadlock() {
        let p = test_problem(16, 4, 5);
        let config = EngineConfig {
            channel_capacity: 1,
            hop_latency: 1,
        };
        for dataflow in Dataflow::ALL {
            let run = run(&p, &ArrayConfig::new(4, 2), dataflow, &config);
            assert_eq!(run.outputs, p.reference_output().unwrap(), "{dataflow}");
        }
    }

    #[test]
    fn zero_capacity_is_rejected() {
        let p = test_problem(4, 2, 2);
        let schedule = ComputeSchedule::baseline(4, 2, 2);
        let config = EngineConfig {
            channel_capacity: 0,
            hop_latency: 1,
        };
        let err = run_dataflow(
            &p,
            &ArrayConfig::new(2, 2),
            Dataflow::OutputStationary,
            &schedule,
            &SimOptions::exhaustive(),
            &config,
            &mut NullObserver,
            None,
        )
        .unwrap_err();
        assert!(matches!(err, EventError::ZeroCapacity));
    }

    #[test]
    fn invalid_schedule_is_rejected() {
        let p = test_problem(8, 4, 3);
        // Covers only half the channels.
        let schedule = ComputeSchedule::baseline(8, 2, 2);
        let err = run_dataflow(
            &p,
            &ArrayConfig::new(4, 2),
            Dataflow::OutputStationary,
            &schedule,
            &SimOptions::exhaustive(),
            &EngineConfig::default(),
            &mut NullObserver,
            None,
        )
        .unwrap_err();
        assert!(matches!(err, EventError::Sim(_)));
    }

    #[test]
    fn observer_counts_match_the_analytic_engine() {
        let p = test_problem(24, 4, 7);
        let array = ArrayConfig::new(8, 2);
        let schedule = ComputeSchedule::baseline(24, 4, 2);
        for dataflow in Dataflow::ALL {
            let mut analytic = SignFlipStats::new();
            p.simulate_with_schedule(
                &array,
                dataflow,
                &schedule,
                &SimOptions::exhaustive(),
                &mut analytic,
            )
            .unwrap();
            let mut event = SignFlipStats::new();
            run_dataflow(
                &p,
                &array,
                dataflow,
                &schedule,
                &SimOptions::exhaustive(),
                &EngineConfig::default(),
                &mut event,
                None,
            )
            .unwrap();
            assert_eq!(event.total_macs, analytic.total_macs, "{dataflow}");
            assert_eq!(event.outputs, analytic.outputs, "{dataflow}");
            assert_eq!(event.sign_flips, analytic.sign_flips, "{dataflow}");
        }
    }

    #[test]
    fn sampling_simulates_the_same_pixel_subset() {
        let p = test_problem(8, 2, 40);
        let options = SimOptions::sampled(5, 99);
        let mut obs = NullObserver;
        let analytic = p
            .simulate(
                &ArrayConfig::new(4, 2),
                Dataflow::OutputStationary,
                &options,
                &mut obs,
            )
            .unwrap();
        let schedule = ComputeSchedule::baseline(8, 2, 2);
        let event = run_dataflow(
            &p,
            &ArrayConfig::new(4, 2),
            Dataflow::OutputStationary,
            &schedule,
            &options,
            &EngineConfig::default(),
            &mut NullObserver,
            None,
        )
        .unwrap();
        assert_eq!(event.simulated_pixels, analytic.simulated_pixels);
        assert_eq!(event.outputs, analytic.outputs);
    }

    #[test]
    fn stalls_emerge_from_tight_channels() {
        let p = test_problem(32, 4, 6);
        let tight = EngineConfig {
            channel_capacity: 1,
            hop_latency: 4,
        };
        let roomy = EngineConfig {
            channel_capacity: 64,
            hop_latency: 1,
        };
        let array = ArrayConfig::new(8, 2);
        let slow = run(&p, &array, Dataflow::WeightStationary, &tight);
        let fast = run(&p, &array, Dataflow::WeightStationary, &roomy);
        assert!(slow.report.cycles > fast.report.cycles);
        assert!(slow.report.stalled > fast.report.stalled);
        // Timing differs, arithmetic does not.
        assert_eq!(slow.outputs, fast.outputs);
        assert_eq!(slow.report.macs, fast.report.macs);
    }

    #[test]
    fn report_utilization_reflects_pe_occupancy() {
        let p = test_problem(16, 2, 4);
        let run = run(
            &p,
            &ArrayConfig::new(4, 2),
            Dataflow::OutputStationary,
            &EngineConfig::default(),
        );
        let util = run.report.utilization();
        assert!(util > 0.0 && util <= 1.0, "utilization {util}");
        let pe = run.report.context("pe").unwrap();
        assert_eq!(pe.busy, run.report.macs);
        assert!(pe.finish <= run.report.cycles);
    }
}
