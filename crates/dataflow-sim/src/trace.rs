//! Chrome-trace-format (JSON) recording of an engine run.
//!
//! The recorder accumulates, per context, a merged sequence of
//! compute/stall intervals (contiguous cycles collapse into one span) plus
//! per-channel occupancy samples, and serializes them as a Chrome Trace
//! Event document: one *track* (pid 1, tid = context index) per context
//! with `"ph": "X"` complete events, and one counter track per channel
//! with `"ph": "C"` events carrying `{"occupancy": n}`.  Open the file in
//! `chrome://tracing` or <https://ui.perfetto.dev>; one simulated cycle is
//! rendered as one nanosecond.
//!
//! Use a fresh recorder per engine run — the engine appends tracks and
//! never clears previous content.

/// What a span of a context's local time was spent on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SpanKind {
    /// Productive work (a MAC, a buffer access, an output write).
    Compute,
    /// Waiting on a channel: empty input, in-flight token, or backpressure.
    Stall,
    /// Idle after the context finished, until the run's makespan.
    Drain,
}

impl SpanKind {
    fn name(self) -> &'static str {
        match self {
            SpanKind::Compute => "compute",
            SpanKind::Stall => "stall",
            SpanKind::Drain => "drain",
        }
    }
}

#[derive(Debug)]
struct Span {
    kind: SpanKind,
    start: u64,
    dur: u64,
}

#[derive(Debug)]
struct Track {
    name: String,
    spans: Vec<Span>,
}

#[derive(Debug)]
struct CounterTrack {
    name: String,
    /// `(timestamp, queue length)` samples in recording order; timestamps
    /// are only loosely ordered because senders and receivers stamp with
    /// their own local clocks.
    samples: Vec<(u64, usize)>,
}

/// Records context activity and channel occupancy during an engine run and
/// renders it as Chrome-trace-format JSON.
///
/// # Example
///
/// ```
/// use accel_sim::{ArrayConfig, ComputeSchedule, Dataflow, GemmProblem, Matrix, NullObserver, SimOptions};
/// use dataflow_sim::{json, run_dataflow, EngineConfig, TraceRecorder};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let w = Matrix::from_fn(4, 2, |r, c| (r + c) as i8);
/// let a = Matrix::from_fn(4, 3, |r, c| (r * c % 3) as i8);
/// let problem = GemmProblem::new(w, a)?;
/// let schedule = ComputeSchedule::baseline(4, 2, 2);
/// let mut trace = TraceRecorder::new();
/// run_dataflow(
///     &problem,
///     &ArrayConfig::new(2, 2),
///     Dataflow::OutputStationary,
///     &schedule,
///     &SimOptions::exhaustive(),
///     &EngineConfig::default(),
///     &mut NullObserver,
///     Some(&mut trace),
/// )?;
/// json::validate(&trace.to_chrome_json()).expect("trace is valid JSON");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct TraceRecorder {
    tracks: Vec<Track>,
    counters: Vec<CounterTrack>,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// True if nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.tracks.is_empty() && self.counters.is_empty()
    }

    /// Registers a context track and returns its id (`tid` in the trace).
    pub(crate) fn add_track(&mut self, name: &str) -> usize {
        self.tracks.push(Track {
            name: name.to_string(),
            spans: Vec::new(),
        });
        self.tracks.len() - 1
    }

    /// Registers a channel counter track and returns its id.
    pub(crate) fn add_counter(&mut self, name: &str) -> usize {
        self.counters.push(CounterTrack {
            name: format!("chan:{name}"),
            samples: Vec::new(),
        });
        self.counters.len() - 1
    }

    fn span(&mut self, tid: usize, kind: SpanKind, start: u64, dur: u64) {
        if dur == 0 {
            return;
        }
        let spans = &mut self.tracks[tid].spans;
        if let Some(last) = spans.last_mut() {
            if last.kind == kind && last.start + last.dur == start {
                last.dur += dur;
                return;
            }
        }
        spans.push(Span { kind, start, dur });
    }

    /// Records productive cycles `[start, start + dur)` on a track;
    /// contiguous same-kind spans merge into one event.
    pub(crate) fn compute(&mut self, tid: usize, start: u64, dur: u64) {
        self.span(tid, SpanKind::Compute, start, dur);
    }

    /// Records stalled cycles `[start, start + dur)` on a track.
    pub(crate) fn stall(&mut self, tid: usize, start: u64, dur: u64) {
        self.span(tid, SpanKind::Stall, start, dur);
    }

    /// Records the idle tail between a context's finish and the makespan.
    pub(crate) fn drain(&mut self, tid: usize, start: u64, dur: u64) {
        self.span(tid, SpanKind::Drain, start, dur);
    }

    /// Records a channel-occupancy sample (queue length after a send/recv).
    pub(crate) fn counter(&mut self, cid: usize, ts: u64, occupancy: usize) {
        self.counters[cid].samples.push((ts, occupancy));
    }

    /// Serializes the recording as a Chrome Trace Event Format document:
    /// `{"traceEvents": [...], "displayTimeUnit": "ns"}` with one event per
    /// line.  Metadata events name the process and each thread, complete
    /// events (`"ph": "X"`) carry the compute/stall/drain spans, and counter
    /// events (`"ph": "C"`) carry channel occupancy.
    pub fn to_chrome_json(&self) -> String {
        use crate::report::{push_json_str, push_u64};
        // One output line per event; sizing the buffer up front and pushing
        // fields directly (no per-event `format!`, no per-event escaped-name
        // allocation) keeps rendering linear in the document size — this is
        // the dominant cost of a traced run.
        let events = 1
            + self.tracks.len()
            + self.tracks.iter().map(|t| t.spans.len()).sum::<usize>()
            + self.counters.iter().map(|c| c.samples.len()).sum::<usize>();
        let mut out = String::with_capacity(64 + 100 * events);
        out.push_str("{\"traceEvents\": [\n");
        // The process-name metadata event is always first, so every later
        // event can prefix its separator unconditionally.
        out.push_str(
            "{\"ph\": \"M\", \"pid\": 1, \"name\": \"process_name\", \
             \"args\": {\"name\": \"dataflow-sim\"}}",
        );
        // Escape each track name once; it repeats in every span event.
        let names: Vec<String> = self
            .tracks
            .iter()
            .map(|track| {
                let mut escaped = String::with_capacity(track.name.len() + 2);
                push_json_str(&mut escaped, &track.name);
                escaped
            })
            .collect();
        for (tid, name) in names.iter().enumerate() {
            out.push_str(",\n{\"ph\": \"M\", \"pid\": 1, \"tid\": ");
            push_u64(&mut out, tid as u64);
            out.push_str(", \"name\": \"thread_name\", \"args\": {\"name\": ");
            out.push_str(name);
            out.push_str("}}");
        }
        for (tid, track) in self.tracks.iter().enumerate() {
            for span in &track.spans {
                out.push_str(",\n{\"ph\": \"X\", \"pid\": 1, \"tid\": ");
                push_u64(&mut out, tid as u64);
                out.push_str(", \"name\": \"");
                out.push_str(span.kind.name());
                out.push_str("\", \"cat\": ");
                out.push_str(&names[tid]);
                out.push_str(", \"ts\": ");
                push_u64(&mut out, span.start);
                out.push_str(", \"dur\": ");
                push_u64(&mut out, span.dur);
                out.push('}');
            }
        }
        let mut escaped_name = String::new();
        let mut samples: Vec<(u64, usize)> = Vec::new();
        for counter in &self.counters {
            escaped_name.clear();
            push_json_str(&mut escaped_name, &counter.name);
            samples.clear();
            samples.extend_from_slice(&counter.samples);
            samples.sort_by_key(|&(ts, _)| ts);
            for &(ts, occupancy) in &samples {
                out.push_str(",\n{\"ph\": \"C\", \"pid\": 1, \"name\": ");
                out.push_str(&escaped_name);
                out.push_str(", \"ts\": ");
                push_u64(&mut out, ts);
                out.push_str(", \"args\": {\"occupancy\": ");
                push_u64(&mut out, occupancy as u64);
                out.push_str("}}");
            }
        }
        out.push_str("\n], \"displayTimeUnit\": \"ns\"}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_same_kind_spans_merge() {
        let mut trace = TraceRecorder::new();
        let tid = trace.add_track("pe");
        trace.compute(tid, 0, 1);
        trace.compute(tid, 1, 1);
        trace.stall(tid, 2, 3);
        trace.compute(tid, 5, 1);
        trace.compute(tid, 7, 1); // gap: no merge
        let spans = &trace.tracks[tid].spans;
        assert_eq!(spans.len(), 4);
        assert_eq!((spans[0].start, spans[0].dur), (0, 2));
        assert_eq!((spans[1].start, spans[1].dur), (2, 3));
        assert_eq!((spans[3].start, spans[3].dur), (7, 1));
    }

    #[test]
    fn zero_duration_spans_are_dropped() {
        let mut trace = TraceRecorder::new();
        let tid = trace.add_track("pe");
        trace.stall(tid, 3, 0);
        assert!(trace.tracks[tid].spans.is_empty());
    }

    #[test]
    fn chrome_json_is_valid_and_names_tracks() {
        let mut trace = TraceRecorder::new();
        let tid = trace.add_track("weight-feeder");
        let cid = trace.add_counter("weights");
        trace.compute(tid, 0, 4);
        trace.drain(tid, 4, 2);
        trace.counter(cid, 1, 1);
        trace.counter(cid, 0, 2); // out of order: sorted at serialization
        let json = trace.to_chrome_json();
        crate::json::validate(&json).expect("chrome trace parses");
        assert!(json.contains("\"displayTimeUnit\": \"ns\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"chan:weights\""));
        let ts0 = json
            .find("\"ts\": 0, \"args\"")
            .expect("sorted counter first");
        let ts1 = json.find("\"ts\": 1, \"args\"").expect("second sample");
        assert!(ts0 < ts1);
    }
}
