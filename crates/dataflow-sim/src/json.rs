//! A minimal, std-only JSON validity checker.
//!
//! The trace writer and the reports emit JSON by hand; this module gives the
//! test suite, the examples, and the CI smoke step a dependency-free way to
//! assert that what was emitted actually *parses* as JSON (RFC 8259 grammar),
//! without pulling a serde stack into the workspace.

/// Maximum container nesting the validator accepts — far above anything the
/// trace or report emitters produce, low enough to bound recursion.
const MAX_DEPTH: usize = 256;

/// Checks that `input` is exactly one valid JSON value (plus surrounding
/// whitespace).
///
/// # Errors
///
/// Returns a human-readable message naming the byte offset of the first
/// violation.
///
/// # Example
///
/// ```
/// dataflow_sim::json::validate(r#"{"traceEvents": [], "displayTimeUnit": "ns"}"#).unwrap();
/// assert!(dataflow_sim::json::validate("{\"open\": [").is_err());
/// ```
pub fn validate(input: &str) -> Result<(), String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<(), String> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self, depth: usize) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value(depth + 1)?;
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            return self.expect(b'}');
        }
    }

    fn array(&mut self, depth: usize) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.eat(b']') {
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value(depth + 1)?;
            self.skip_ws();
            if self.eat(b',') {
                continue;
            }
            return self.expect(b']');
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.pos += 1,
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => self.pos += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        self.eat(b'-');
        match self.peek() {
            Some(b'0') => {
                self.pos += 1;
            }
            Some(b'1'..=b'9') => self.digits(),
            _ => return Err(self.err("expected a digit")),
        }
        if self.eat(b'.') {
            match self.peek() {
                Some(b'0'..=b'9') => self.digits(),
                _ => return Err(self.err("expected a fraction digit")),
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if !self.eat(b'+') {
                self.eat(b'-');
            }
            match self.peek() {
                Some(b'0'..=b'9') => self.digits(),
                _ => return Err(self.err("expected an exponent digit")),
            }
        }
        Ok(())
    }

    fn digits(&mut self) {
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::validate;

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "null",
            "true",
            " -12.5e+3 ",
            "\"a \\u00e9 \\n b\"",
            "[]",
            "[1, [2, {\"k\": null}], \"s\"]",
            r#"{"traceEvents": [{"ph": "X", "ts": 0, "dur": 3}], "displayTimeUnit": "ns"}"#,
        ] {
            validate(doc).unwrap_or_else(|e| panic!("{doc:?} rejected: {e}"));
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for doc in [
            "",
            "{",
            "[1,]",
            "{\"k\" 1}",
            "nul",
            "01",
            "1.",
            "\"unterminated",
            "\"bad \\x escape\"",
            "{} extra",
            "[1] [2]",
        ] {
            assert!(validate(doc).is_err(), "{doc:?} accepted");
        }
    }

    #[test]
    fn bounds_nesting_depth() {
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        assert!(validate(&deep).is_err());
        let ok = "[".repeat(100) + "1" + &"]".repeat(100);
        validate(&ok).unwrap();
    }
}
