//! Event-driven dataflow simulation for the READ reproduction.
//!
//! The analytic simulator in [`accel_sim`] executes a schedule as a nested
//! loop and assumes every MAC issues back to back; it cannot see pipeline
//! dynamics — stalls, backpressure, or buffer sizing.  This crate adds a
//! second, independent engine in the style of DAM-like simulators: the
//! array is modelled as a set of **contexts** (operand feeders, the PE
//! array, the psum spill buffer, the output accumulator) that each own a
//! **local clock** and exchange typed tokens (activations, weights, psums)
//! over **bounded channels** with blocking send/recv semantics.  Stalls and
//! backpressure *emerge* from channel occupancy instead of being assumed
//! away.
//!
//! Both [`accel_sim::Dataflow`] mappings are implemented:
//!
//! * **Output-stationary** — the PE context performs each output's whole
//!   reduction locally and emits the finished psum to the accumulator.
//! * **Weight-stationary** — the reduction is tiled into row-tiles of the
//!   array; between tiles each output's partial sum is **spilled to and
//!   reloaded from an explicit psum-buffer context**, so WS buffer traffic
//!   (and its capacity-induced stalls) is first-class.
//!
//! The engine drives the existing [`accel_sim::CycleObserver`] seam: every
//! MAC cycle is fed through `on_cycle`/`on_output_done` exactly as the
//! analytic path does, so `timing::DepthHistogram` and
//! `timing::DynamicTimingAnalyzer` consume it unchanged.  Because the
//! program lowered onto the contexts performs the **same MAC multiset in
//! the same per-output order** as [`GemmProblem::simulate_with_schedule`]
//! (WS psums round-trip through the idempotent `MacUnit::load`), any
//! order-insensitive observer tally — the depth histogram in particular —
//! is **byte-identical** to the analytic engine's, property-tested in the
//! workspace test suite.
//!
//! On top of the engine:
//!
//! * [`TraceRecorder`] + [`TraceRecorder::to_chrome_json`] — a std-only
//!   Chrome-trace-format (JSON) writer: one track per context, complete
//!   events for compute/stall/drain phases, counter events for channel
//!   occupancy.  Open the file in `chrome://tracing` or Perfetto.
//! * [`DataflowReport`] — a typed report (cycles, utilization, stall
//!   breakdown per context, peak buffer occupancy) with a deterministic
//!   [`DataflowReport::to_json`] and an exact wire round trip
//!   ([`DataflowReport::to_wire`]/[`DataflowReport::from_wire`]) so probe
//!   results memoize through the pipeline's artifact store.
//!
//! # Example
//!
//! ```
//! use accel_sim::{ArrayConfig, ComputeSchedule, Dataflow, GemmProblem, Matrix, NullObserver, SimOptions};
//! use dataflow_sim::{run_dataflow, EngineConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let w = Matrix::from_fn(6, 2, |r, c| (r as i8) - 3 + c as i8);
//! let a = Matrix::from_fn(6, 5, |r, c| ((r + c) % 3) as i8);
//! let problem = GemmProblem::new(w, a)?;
//! let schedule = ComputeSchedule::baseline(6, 2, 2);
//! let run = run_dataflow(
//!     &problem,
//!     &ArrayConfig::new(4, 2),
//!     Dataflow::WeightStationary,
//!     &schedule,
//!     &SimOptions::exhaustive(),
//!     &EngineConfig::default(),
//!     &mut NullObserver,
//!     None,
//! )?;
//! assert_eq!(run.outputs, problem.reference_output()?);
//! assert!(run.report.peak_psum_buffer > 0, "WS spills between row tiles");
//! # Ok(())
//! # }
//! ```
//!
//! [`GemmProblem::simulate_with_schedule`]: accel_sim::GemmProblem::simulate_with_schedule

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
pub mod json;
mod report;
mod trace;

pub use engine::{run_dataflow, DataflowRun, EngineConfig, EventError};
pub use report::{ChannelReport, ContextReport, DataflowReport};
pub use trace::TraceRecorder;
