//! The typed [`DataflowReport`] an engine run produces, with a
//! deterministic JSON rendering and an exact single-line wire round trip.

/// Per-context accounting: how one context spent its local time.
///
/// All fields are integers so the report round-trips exactly through the
/// wire codec; utilization is derived (see
/// [`ContextReport::utilization`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContextReport {
    /// Context name (one of the engine's fixed track names, e.g. `"pe"`).
    pub name: String,
    /// Cycles the context spent doing useful work.
    pub busy: u64,
    /// Cycles the context spent waiting — on an empty channel, a token
    /// still in flight, or a full channel (backpressure).
    pub stall: u64,
    /// The context's local clock when it finished.
    pub finish: u64,
}

impl ContextReport {
    /// Busy fraction of the run's makespan (`0.0` for an empty run).
    pub fn utilization(&self, cycles: u64) -> f64 {
        if cycles == 0 {
            0.0
        } else {
            self.busy as f64 / cycles as f64
        }
    }
}

/// Per-channel accounting: occupancy and traffic of one bounded channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelReport {
    /// Channel name (one of the engine's fixed channel names, e.g.
    /// `"spill"`).
    pub name: String,
    /// Configured capacity (tokens).
    pub capacity: u64,
    /// Peak queue occupancy observed (tokens).
    pub peak: u64,
    /// Total tokens sent through the channel.
    pub sends: u64,
}

/// What one event-driven run measured: makespan, MAC throughput, stall
/// breakdown per context, channel occupancy, and WS psum-buffer pressure.
///
/// Integer-only so that [`DataflowReport::to_wire`] /
/// [`DataflowReport::from_wire`] round-trip exactly; the derived rates
/// ([`DataflowReport::utilization`]) are recomputed from the integers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataflowReport {
    /// Name of the simulated dataflow ([`accel_sim::Dataflow::name`]).
    pub dataflow: String,
    /// Makespan: the largest local clock over all contexts when the run
    /// drained.
    pub cycles: u64,
    /// MAC cycles executed (equals the analytic engine's `total_cycles`).
    pub macs: u64,
    /// Output values produced.
    pub outputs: u64,
    /// Total stall cycles summed over every context.
    pub stalled: u64,
    /// Peak number of live spilled partial sums in the psum-buffer context
    /// (`0` under output-stationary, which never spills).
    pub peak_psum_buffer: u64,
    /// Per-context time accounting, in fixed engine order.
    pub contexts: Vec<ContextReport>,
    /// Per-channel occupancy/traffic accounting, in fixed engine order.
    pub channels: Vec<ChannelReport>,
}

impl DataflowReport {
    /// PE utilization: MAC cycles over makespan (`1.0` = the array never
    /// stalled).
    pub fn utilization(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.macs as f64 / self.cycles as f64
        }
    }

    /// The context report named `name`, if present.
    pub fn context(&self, name: &str) -> Option<&ContextReport> {
        self.contexts.iter().find(|c| c.name == name)
    }

    /// The channel report named `name`, if present.
    pub fn channel(&self, name: &str) -> Option<&ChannelReport> {
        self.channels.iter().find(|c| c.name == name)
    }

    /// Deterministic JSON rendering (hand-rolled like every report in the
    /// workspace; field order is a stable, golden-pinned contract).
    pub fn to_json(&self) -> String {
        // Sized for the fixed scaffolding plus one line per context and
        // channel; rendered entirely with push-based writers (no per-field
        // `format!` allocations — this is on the per-run reporting path).
        let mut out =
            String::with_capacity(192 + 96 * self.contexts.len() + 72 * self.channels.len());
        out.push_str("{\n  \"dataflow\": ");
        push_json_str(&mut out, &self.dataflow);
        out.push_str(",\n  \"cycles\": ");
        push_u64(&mut out, self.cycles);
        out.push_str(",\n  \"macs\": ");
        push_u64(&mut out, self.macs);
        out.push_str(",\n  \"outputs\": ");
        push_u64(&mut out, self.outputs);
        out.push_str(",\n  ");
        push_json_f64(&mut out, "\"utilization\": ", self.utilization());
        out.push_str(",\n  \"stalled\": ");
        push_u64(&mut out, self.stalled);
        out.push_str(",\n  \"peak_psum_buffer\": ");
        push_u64(&mut out, self.peak_psum_buffer);
        out.push_str(",\n  \"contexts\": [");
        for (i, ctx) in self.contexts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    { \"name\": ");
            push_json_str(&mut out, &ctx.name);
            out.push_str(", \"busy\": ");
            push_u64(&mut out, ctx.busy);
            out.push_str(", \"stall\": ");
            push_u64(&mut out, ctx.stall);
            out.push_str(", \"finish\": ");
            push_u64(&mut out, ctx.finish);
            out.push_str(", ");
            push_json_f64(&mut out, "\"utilization\": ", ctx.utilization(self.cycles));
            out.push_str(" }");
        }
        out.push_str("\n  ],\n  \"channels\": [");
        for (i, ch) in self.channels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    { \"name\": ");
            push_json_str(&mut out, &ch.name);
            out.push_str(", \"capacity\": ");
            push_u64(&mut out, ch.capacity);
            out.push_str(", \"peak\": ");
            push_u64(&mut out, ch.peak);
            out.push_str(", \"sends\": ");
            push_u64(&mut out, ch.sends);
            out.push_str(" }");
        }
        out.push_str("\n  ]\n}");
        out
    }

    /// Exact single-line wire encoding, in the workspace's space-separated
    /// `key=value` style.  Context and channel names are fixed engine
    /// tokens (no whitespace, no `|`/`:`/`,`), so no escaping is needed;
    /// [`DataflowReport::from_wire`] rejects names that would break the
    /// framing.
    pub fn to_wire(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "df={} cycles={} macs={} outputs={} stalled={} peak_buf={} ctx=",
            self.dataflow,
            self.cycles,
            self.macs,
            self.outputs,
            self.stalled,
            self.peak_psum_buffer
        );
        for (i, ctx) in self.contexts.iter().enumerate() {
            if i > 0 {
                out.push('|');
            }
            let _ = write!(
                out,
                "{}:{}:{}:{}",
                ctx.name, ctx.busy, ctx.stall, ctx.finish
            );
        }
        out.push_str(" chan=");
        for (i, ch) in self.channels.iter().enumerate() {
            if i > 0 {
                out.push('|');
            }
            let _ = write!(out, "{}:{}:{}:{}", ch.name, ch.capacity, ch.peak, ch.sends);
        }
        out
    }

    /// Decodes a line produced by [`DataflowReport::to_wire`].  Returns
    /// `None` on any malformed or trailing token (the strict-decode
    /// contract every wire codec in the workspace follows).
    pub fn from_wire(line: &str) -> Option<DataflowReport> {
        let mut tokens = line.split_whitespace();
        let dataflow = wire_field(&mut tokens, "df")?;
        if dataflow.is_empty() || !dataflow.chars().all(name_char) {
            return None;
        }
        let cycles = wire_field(&mut tokens, "cycles")?.parse().ok()?;
        let macs = wire_field(&mut tokens, "macs")?.parse().ok()?;
        let outputs = wire_field(&mut tokens, "outputs")?.parse().ok()?;
        let stalled = wire_field(&mut tokens, "stalled")?.parse().ok()?;
        let peak_psum_buffer = wire_field(&mut tokens, "peak_buf")?.parse().ok()?;
        let ctx_body = wire_field(&mut tokens, "ctx")?;
        let contexts = if ctx_body.is_empty() {
            Vec::new()
        } else {
            ctx_body
                .split('|')
                .map(|entry| {
                    let [name, busy, stall, finish] = four_fields(entry)?;
                    Some(ContextReport {
                        name: name.to_string(),
                        busy: busy.parse().ok()?,
                        stall: stall.parse().ok()?,
                        finish: finish.parse().ok()?,
                    })
                })
                .collect::<Option<Vec<_>>>()?
        };
        let chan_body = wire_field(&mut tokens, "chan")?;
        let channels = if chan_body.is_empty() {
            Vec::new()
        } else {
            chan_body
                .split('|')
                .map(|entry| {
                    let [name, capacity, peak, sends] = four_fields(entry)?;
                    Some(ChannelReport {
                        name: name.to_string(),
                        capacity: capacity.parse().ok()?,
                        peak: peak.parse().ok()?,
                        sends: sends.parse().ok()?,
                    })
                })
                .collect::<Option<Vec<_>>>()?
        };
        if tokens.next().is_some() {
            return None;
        }
        Some(DataflowReport {
            dataflow: dataflow.to_string(),
            cycles,
            macs,
            outputs,
            stalled,
            peak_psum_buffer,
            contexts,
            channels,
        })
    }
}

/// Characters allowed in wire-embedded context/channel/dataflow names.
fn name_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '-' || c == '_'
}

/// `name:a:b:c` → the four parts, with the name restricted to safe tokens.
fn four_fields(entry: &str) -> Option<[&str; 4]> {
    let mut parts = entry.split(':');
    let name = parts.next()?;
    if name.is_empty() || !name.chars().all(name_char) {
        return None;
    }
    let a = parts.next()?;
    let b = parts.next()?;
    let c = parts.next()?;
    if parts.next().is_some() {
        return None;
    }
    Some([name, a, b, c])
}

fn wire_field<'t>(tokens: &mut impl Iterator<Item = &'t str>, key: &str) -> Option<&'t str> {
    tokens
        .next()?
        .strip_prefix(key)
        .and_then(|rest| rest.strip_prefix('='))
}

/// Appends a JSON string literal (the workspace's shared escaping rules).
pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a decimal integer without a `format!` round trip — the trace
/// and report renderers push one of these per field, thousands per
/// document.
pub(crate) fn push_u64(out: &mut String, mut v: u64) {
    let mut buf = [0u8; 20];
    let mut at = buf.len();
    loop {
        at -= 1;
        buf[at] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    // The buffer holds only ASCII digits.
    out.push_str(std::str::from_utf8(&buf[at..]).unwrap());
}

/// Appends `prefix` followed by a shortest-round-trip float (or `null` for
/// a non-finite value), matching the pipeline reports' rendering.  Writes
/// through `fmt::Write` straight into `out` — shortest-round-trip float
/// formatting is not worth hand-rolling, but the intermediate `format!`
/// allocation is.
pub(crate) fn push_json_f64(out: &mut String, prefix: &str, v: f64) {
    use std::fmt::Write as _;
    out.push_str(prefix);
    if v.is_finite() {
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataflowReport {
        DataflowReport {
            dataflow: "weight-stationary".into(),
            cycles: 96,
            macs: 72,
            outputs: 6,
            stalled: 9,
            peak_psum_buffer: 3,
            contexts: vec![
                ContextReport {
                    name: "pe".into(),
                    busy: 72,
                    stall: 9,
                    finish: 96,
                },
                ContextReport {
                    name: "psum-buffer".into(),
                    busy: 18,
                    stall: 4,
                    finish: 92,
                },
            ],
            channels: vec![
                ChannelReport {
                    name: "weights".into(),
                    capacity: 2,
                    peak: 2,
                    sends: 72,
                },
                ChannelReport {
                    name: "spill".into(),
                    capacity: 1,
                    peak: 1,
                    sends: 18,
                },
            ],
        }
    }

    #[test]
    fn wire_round_trips_exactly() {
        let report = sample();
        let line = report.to_wire();
        assert_eq!(DataflowReport::from_wire(&line), Some(report));
    }

    #[test]
    fn wire_rejects_malformed_lines() {
        let line = sample().to_wire();
        assert!(DataflowReport::from_wire(&format!("{line} extra")).is_none());
        assert!(DataflowReport::from_wire(&line.replace("cycles=", "cycle=")).is_none());
        assert!(DataflowReport::from_wire(&line.replace("pe:", "p e:")).is_none());
        assert!(DataflowReport::from_wire("").is_none());
    }

    #[test]
    fn empty_context_and_channel_lists_round_trip() {
        let report = DataflowReport {
            contexts: Vec::new(),
            channels: Vec::new(),
            ..sample()
        };
        assert_eq!(DataflowReport::from_wire(&report.to_wire()), Some(report));
    }

    #[test]
    fn utilization_derives_from_integers() {
        let report = sample();
        assert!((report.utilization() - 0.75).abs() < 1e-12);
        assert_eq!(report.context("pe").unwrap().utilization(96), 0.75);
        let empty = DataflowReport {
            cycles: 0,
            macs: 0,
            ..sample()
        };
        assert_eq!(empty.utilization(), 0.0);
    }

    #[test]
    fn json_is_valid_and_carries_every_section() {
        let json = sample().to_json();
        crate::json::validate(&json).expect("report JSON parses");
        for needle in [
            "\"dataflow\": \"weight-stationary\"",
            "\"utilization\": 0.75",
            "\"peak_psum_buffer\": 3",
            "\"name\": \"psum-buffer\"",
            "\"name\": \"spill\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
    }
}
