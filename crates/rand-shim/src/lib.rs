//! Offline drop-in shim for the subset of the `rand` crate API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this minimal, dependency-free implementation under the same crate name.
//! It provides exactly what the other crates import:
//!
//! * [`rngs::StdRng`] — a seedable PRNG (xoshiro256++, seeded via
//!   SplitMix64).  The *statistical* contract matches the real `StdRng`
//!   (high-quality 64-bit output, deterministic per seed); the exact stream
//!   differs, which is fine for every use in this workspace (synthetic data
//!   generation, Monte-Carlo sampling, shuffles).
//! * [`Rng`] — `gen::<f64>()`, `gen_range(..)` over float and integer
//!   ranges, and `gen_bool(p)`.
//! * [`SeedableRng::seed_from_u64`].
//! * [`seq::SliceRandom::shuffle`] — Fisher–Yates.
//!
//! Everything is deterministic per seed, which the workspace's
//! reproducibility tests rely on.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Object-safe core of a random number generator.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Values that can be sampled from a generator's "standard" distribution.
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 sample range");
        let unit = f64::sample(rng);
        let v = self.start + (self.end - self.start) * unit;
        // Guard against floating-point rounding landing exactly on `end`.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer sample range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); bias is < 2^-64
                // per draw, far below anything observable here.
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer sample range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let hi = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64;
                (self.start as i128 + hi as i128) as $t
            }
        }
    )*};
}

signed_sample_range!(i8, i16, i32, i64, isize);

/// The user-facing generator interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic, seedable PRNG: xoshiro256++ seeded via SplitMix64.
    ///
    /// Stands in for `rand::rngs::StdRng`; same statistical contract,
    /// different (but still deterministic) stream.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but keep the guard explicit.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::RngCore;

    /// Subset of `rand::seq::SliceRandom`: in-place shuffling.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let span = (i + 1) as u64;
                let j = ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<f64>().to_bits(), c.gen::<f64>().to_bits());
    }

    #[test]
    fn unit_floats_are_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.gen_range(3u32..17);
            assert!((3..17).contains(&u));
            let s = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn integer_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements should move");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "hits {hits}");
    }
}
