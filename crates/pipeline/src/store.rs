//! Content-addressed artifact stores: the persistence layer behind the
//! pipeline caches.
//!
//! A pipeline produces three classes of expensive, fully deterministic
//! artifacts — optimized schedules, simulated depth histograms, and
//! memoized work-unit results.  Each is identified by a 64-bit content
//! fingerprint plus a human-readable full-key *check line* (the
//! [`crate::cache`] machinery verifies the check behind the hash, so a
//! fingerprint collision is detected rather than served).  An
//! [`ArtifactStore`] holds the text-encoded payloads behind those keys:
//!
//! * [`MemoryStore`] — a process-local map.  Attach one store to several
//!   pipelines ([`crate::ReadPipelineBuilder::store_arc`]) and they share
//!   schedules, histograms and unit results without recomputing.
//! * [`DiskStore`] — an on-disk, versioned, concurrency-safe directory of
//!   fingerprint-keyed entries.  Writes go to a unique temporary file and
//!   are published with an atomic rename, so concurrent writers (threads
//!   *or* processes) always leave a decodable entry; corrupt or
//!   version-mismatched entries read as misses (counted in
//!   [`StoreStats::corrupt`]) and are rewritten by the next computation.
//!   Point worker processes ([`crate::SubprocessExecutor`],
//!   [`crate::WorkPlan::serve`]) at a shared directory and optimization and
//!   simulation stop being duplicated across processes and runs entirely.
//!
//! Reports are byte-identical whether an artifact came from memory, disk or
//! a fresh computation: every payload codec round-trips exactly (integer
//! counts, shortest-round-trip floats).
//!
//! # On-disk entry format
//!
//! One entry per file, `<root>/<kind>/<key as 16 hex digits>.entry`:
//!
//! ```text
//! read-artifact v1
//! kind=<artifact kind>
//! check=<full-key check line>
//! ---
//! <payload>
//! ```
//!
//! The format is a stable contract pinned by the
//! `tests/fixtures/artifact_entry.txt` golden fixture; bumping
//! [`ENTRY_VERSION`] makes every existing entry read as a (counted) miss,
//! never an error.

use std::collections::HashMap;
use std::fmt::Debug;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::error::PipelineError;

/// Version tag of the on-disk entry format.  Stored in every entry header;
/// entries carrying any other version read as misses and are counted in
/// [`StoreStats::corrupt`], so a format change invalidates old store
/// directories without erroring on them.
pub const ENTRY_VERSION: &str = "v1";

const ENTRY_MAGIC: &str = "read-artifact";

/// Effectiveness counters of an [`ArtifactStore`], across all artifact
/// kinds.  Surfaced per pipeline as the `disk_*`/`store_*` fields of
/// [`crate::CacheStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Lookups served from the store (a computation saved).  [`DiskStore`]
    /// also counts *late* hits here: a `put` that found a racing writer's
    /// identical entry already published keeps that entry (first writer
    /// wins) and counts the redundant write it saved as a hit.
    pub hits: u64,
    /// Lookups the store could not serve (absent key or mismatched check).
    pub misses: u64,
    /// Entries that failed to parse or decode — version mismatches,
    /// truncated writes, garbage payloads.  Each also counts as a miss and
    /// is recomputed and rewritten rather than propagated as an error.
    pub corrupt: u64,
    /// Entries written to the store.
    pub writes: u64,
}

/// A content-addressed, concurrency-safe store of text-encoded artifacts.
///
/// Keys are `(kind, 64-bit fingerprint)` pairs; every entry additionally
/// carries the full-key `check` line it was stored under, and a lookup
/// whose check disagrees is a miss (a fingerprint collision, detected
/// rather than served — the same contract as the in-memory caches).
///
/// Implementations must be safe under concurrent `load`/`put` from several
/// threads *and* — for persistent backends — several processes: a racing
/// `put` of the same key may publish either writer's entry (artifacts are
/// deterministic, so both encode the same value), but a reader must never
/// observe a torn entry.
pub trait ArtifactStore: Send + Sync {
    /// Display name of the backend (for logs and debugging).
    fn name(&self) -> String;

    /// Returns the payload stored under `(kind, key)` when its check line
    /// matches `check`, counting a hit; otherwise counts a miss (plus
    /// [`StoreStats::corrupt`] for undecodable entries) and returns `None`.
    fn load(&self, kind: &str, key: u64, check: &str) -> Option<String>;

    /// Stores `payload` under `(kind, key)` with the given check line,
    /// replacing any previous entry.  Best-effort: an I/O failure leaves
    /// the store unchanged (and uncounted) rather than failing the
    /// computation that produced the artifact.
    fn put(&self, kind: &str, key: u64, check: &str, payload: &str);

    /// Reports that the payload `load` returned for `(kind, key)` failed to
    /// decode: evicts the entry so the next computation rewrites it, and
    /// reclassifies the hit `load` counted as a corrupt miss — so
    /// [`StoreStats::hits`] stays "computations actually saved".
    fn note_corrupt(&self, kind: &str, key: u64);

    /// Current counters.
    fn stats(&self) -> StoreStats;
}

#[derive(Debug, Default)]
struct StoreCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
    writes: AtomicU64,
}

impl StoreCounters {
    /// The [`ArtifactStore::note_corrupt`] accounting: the load that
    /// returned the undecodable payload counted a hit, which was wrong in
    /// hindsight — take it back and count a corrupt miss instead.
    fn reclassify_hit_as_corrupt(&self) {
        let _ = self
            .hits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |h| {
                Some(h.saturating_sub(1))
            });
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.corrupt.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
        }
    }
}

/// A process-local [`ArtifactStore`]: today's in-memory caching behavior,
/// made shareable — attach one `MemoryStore` to several pipelines via
/// [`crate::ReadPipelineBuilder::store_arc`] and they stop duplicating
/// optimization and simulation against each other.
#[derive(Debug, Default)]
pub struct MemoryStore {
    entries: Mutex<HashMap<(String, u64), (String, String)>>,
    counters: StoreCounters,
}

impl MemoryStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries currently stored (all kinds).
    pub fn len(&self) -> usize {
        self.entries.lock().expect("store lock").len()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl ArtifactStore for MemoryStore {
    fn name(&self) -> String {
        "memory".to_string()
    }

    fn load(&self, kind: &str, key: u64, check: &str) -> Option<String> {
        let entries = self.entries.lock().expect("store lock");
        match entries.get(&(kind.to_string(), key)) {
            Some((stored_check, payload)) if stored_check == check => {
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                Some(payload.clone())
            }
            _ => {
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn put(&self, kind: &str, key: u64, check: &str, payload: &str) {
        self.entries.lock().expect("store lock").insert(
            (kind.to_string(), key),
            (check.to_string(), payload.to_string()),
        );
        self.counters.writes.fetch_add(1, Ordering::Relaxed);
    }

    fn note_corrupt(&self, kind: &str, key: u64) {
        self.entries
            .lock()
            .expect("store lock")
            .remove(&(kind.to_string(), key));
        self.counters.reclassify_hit_as_corrupt();
    }

    fn stats(&self) -> StoreStats {
        self.counters.snapshot()
    }
}

/// An on-disk [`ArtifactStore`]: one versioned entry file per artifact
/// under `<root>/<kind>/`, published with atomic tmp-file + rename writes.
///
/// Safe to share between threads and between *processes* (workers pointed
/// at the same directory): a reader sees either a complete previous entry
/// or a complete new one, never a torn write.  Unparseable and
/// version-mismatched entries read as misses — counted in
/// [`StoreStats::corrupt`] — and are replaced by the next computation, so a
/// stale or damaged store directory degrades to a cold cache instead of an
/// error.
#[derive(Debug)]
pub struct DiskStore {
    root: PathBuf,
    counters: StoreCounters,
}

/// Process-global sequence for temp-file names.  Deliberately NOT
/// per-instance: several `DiskStore`s over one directory in one process
/// (one per pipeline is the normal usage) share the same pid, so a
/// per-instance counter would let two of them derive the same tmp name and
/// stomp each other's half-written file — exactly the torn write the
/// tmp+rename scheme exists to rule out.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

impl DiskStore {
    /// Opens (creating if necessary) the store rooted at `root`.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Exec`] when the directory cannot be
    /// created.
    pub fn new(root: impl Into<PathBuf>) -> Result<Self, PipelineError> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(|e| {
            PipelineError::exec(format!(
                "failed to create artifact store {:?}: {e}",
                root.display()
            ))
        })?;
        Ok(DiskStore {
            root,
            counters: StoreCounters::default(),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The entry path of `(kind, key)` — exposed for tests pinning the
    /// on-disk layout.
    pub fn entry_path(&self, kind: &str, key: u64) -> PathBuf {
        self.root.join(kind).join(format!("{key:016x}.entry"))
    }
}

impl ArtifactStore for DiskStore {
    fn name(&self) -> String {
        format!("disk[{}]", self.root.display())
    }

    fn load(&self, kind: &str, key: u64, check: &str) -> Option<String> {
        let path = self.entry_path(kind, key);
        let content = match fs::read_to_string(&path) {
            Ok(content) => content,
            Err(_) => {
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match parse_entry(&content) {
            Some((entry_kind, entry_check, payload)) if entry_kind == kind => {
                if entry_check == escape_check(check) {
                    self.counters.hits.fetch_add(1, Ordering::Relaxed);
                    Some(payload.to_string())
                } else {
                    // A fingerprint collision with a foreign full key: the
                    // entry is healthy, it just is not ours.
                    self.counters.misses.fetch_add(1, Ordering::Relaxed);
                    None
                }
            }
            _ => {
                // Version mismatch, truncated write, or garbage: a counted
                // miss, never an error.  The entry is left in place; the
                // recomputed artifact's put() replaces it atomically.
                self.counters.corrupt.fetch_add(1, Ordering::Relaxed);
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn put(&self, kind: &str, key: u64, check: &str, payload: &str) {
        let path = self.entry_path(kind, key);
        let Some(dir) = path.parent() else { return };
        if fs::create_dir_all(dir).is_err() {
            return;
        }
        // Unique tmp name per (process, write): concurrent writers never
        // stomp each other's half-written file, and the rename publishes a
        // complete entry atomically.
        let tmp = dir.join(format!(
            ".{key:016x}.{}.{}.tmp",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        if fs::write(&tmp, render_entry(kind, check, payload)).is_err() {
            let _ = fs::remove_file(&tmp);
            return;
        }
        // First-writer-wins: a racing writer (thread or process) may have
        // published this artifact while we computed and encoded ours.  The
        // values are deterministic, so renaming over theirs would only burn
        // a redundant write — re-check immediately before the rename and,
        // when a healthy matching entry already exists, keep it and count a
        // late hit instead of a write.
        if let Ok(content) = fs::read_to_string(&path) {
            if let Some((entry_kind, entry_check, _)) = parse_entry(&content) {
                if entry_kind == kind && entry_check == escape_check(check) {
                    let _ = fs::remove_file(&tmp);
                    self.counters.hits.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
        }
        if fs::rename(&tmp, &path).is_err() {
            let _ = fs::remove_file(&tmp);
            return;
        }
        self.counters.writes.fetch_add(1, Ordering::Relaxed);
    }

    fn note_corrupt(&self, kind: &str, key: u64) {
        let _ = fs::remove_file(self.entry_path(kind, key));
        self.counters.reclassify_hit_as_corrupt();
    }

    fn stats(&self) -> StoreStats {
        self.counters.snapshot()
    }
}

/// Minimal injective escaping that keeps a check line on one line (the
/// entry header is line-oriented).  Check lines come pre-escaped by the
/// artifact kinds for their free-text fields; this guards the framing.
fn escape_check(check: &str) -> String {
    check
        .replace('\\', "\\\\")
        .replace('\n', "\\n")
        .replace('\r', "\\r")
}

/// Renders a complete entry file — the byte layout pinned by the
/// `tests/fixtures/artifact_entry.txt` golden fixture.
pub(crate) fn render_entry(kind: &str, check: &str, payload: &str) -> String {
    format!(
        "{ENTRY_MAGIC} {ENTRY_VERSION}\nkind={kind}\ncheck={}\n---\n{payload}\n",
        escape_check(check)
    )
}

/// Parses an entry file into `(kind, escaped check, payload)`; `None` for
/// anything that is not a well-formed current-version entry.
fn parse_entry(content: &str) -> Option<(&str, &str, &str)> {
    let rest = content.strip_prefix(ENTRY_MAGIC)?;
    let rest = rest.strip_prefix(' ')?;
    let (version, rest) = rest.split_once('\n')?;
    if version != ENTRY_VERSION {
        return None;
    }
    let rest = rest.strip_prefix("kind=")?;
    let (kind, rest) = rest.split_once('\n')?;
    let rest = rest.strip_prefix("check=")?;
    let (check, rest) = rest.split_once('\n')?;
    let payload = rest.strip_prefix("---\n")?;
    let payload = payload.strip_suffix('\n')?;
    Some((kind, check, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "read-store-test-{tag}-{}-{:p}",
            std::process::id(),
            &tag
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memory_store_round_trips_and_counts() {
        let store = MemoryStore::new();
        assert!(store.is_empty());
        assert_eq!(store.load("schedule", 7, "check-a"), None);
        store.put("schedule", 7, "check-a", "groups=0@0");
        assert_eq!(
            store.load("schedule", 7, "check-a").as_deref(),
            Some("groups=0@0")
        );
        // A mismatched check is a miss, not the foreign payload.
        assert_eq!(store.load("schedule", 7, "check-b"), None);
        assert_eq!(store.len(), 1);
        assert_eq!(
            store.stats(),
            StoreStats {
                hits: 1,
                misses: 2,
                corrupt: 0,
                writes: 1
            }
        );
        store.note_corrupt("schedule", 7);
        assert!(store.is_empty());
        // The hit that preceded note_corrupt is reclassified: hits count
        // computations actually saved, the bad load becomes a corrupt miss.
        assert_eq!(
            store.stats(),
            StoreStats {
                hits: 0,
                misses: 3,
                corrupt: 1,
                writes: 1
            }
        );
    }

    #[test]
    fn disk_store_round_trips_and_persists() {
        let dir = temp_dir("roundtrip");
        let store = DiskStore::new(&dir).unwrap();
        assert!(store.name().starts_with("disk["));
        store.put("histogram", 0xABCD, "src rows=4", "total=0 flips=0 counts=");
        assert_eq!(
            store.load("histogram", 0xABCD, "src rows=4").as_deref(),
            Some("total=0 flips=0 counts=")
        );
        assert_eq!(store.load("histogram", 0xABCD, "other"), None);
        assert_eq!(store.load("histogram", 0x1234, "src rows=4"), None);

        // A second store instance over the same directory sees the entry —
        // the cross-process persistence contract.
        let reopened = DiskStore::new(&dir).unwrap();
        assert_eq!(
            reopened.load("histogram", 0xABCD, "src rows=4").as_deref(),
            Some("total=0 flips=0 counts=")
        );
        assert_eq!(
            store.stats(),
            StoreStats {
                hits: 1,
                misses: 2,
                corrupt: 0,
                writes: 1
            }
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_mismatch_and_garbage_read_as_counted_misses() {
        let dir = temp_dir("versions");
        let store = DiskStore::new(&dir).unwrap();
        let path = store.entry_path("schedule", 5);
        fs::create_dir_all(path.parent().unwrap()).unwrap();

        // A future-versioned entry: miss + corrupt, never an error.
        fs::write(
            &path,
            "read-artifact v2\nkind=schedule\ncheck=c\n---\npayload\n",
        )
        .unwrap();
        assert_eq!(store.load("schedule", 5, "c"), None);
        assert_eq!(store.stats().corrupt, 1);

        // Garbage: same.
        fs::write(&path, "not an entry at all").unwrap();
        assert_eq!(store.load("schedule", 5, "c"), None);
        assert_eq!(store.stats().corrupt, 2);

        // A put() replaces the damaged entry and the next load hits.
        store.put("schedule", 5, "c", "groups=");
        assert_eq!(store.load("schedule", 5, "c").as_deref(), Some("groups="));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn racing_identical_put_counts_a_late_hit_not_a_write() {
        let dir = temp_dir("late-hit");
        let store = DiskStore::new(&dir).unwrap();
        store.put("unit", 9, "check", "payload");
        // The "losing" writer of a same-artifact race: the entry is already
        // published, so the second put keeps it and counts a late hit.
        store.put("unit", 9, "check", "payload");
        assert_eq!(
            store.stats(),
            StoreStats {
                hits: 1,
                misses: 0,
                corrupt: 0,
                writes: 1
            }
        );
        // A *different* full key under the same fingerprint is not a late
        // hit — the entry genuinely changes, so the rename goes through.
        store.put("unit", 9, "other-check", "other-payload");
        assert_eq!(store.stats().writes, 2);
        assert_eq!(store.stats().hits, 1);
        assert_eq!(
            store.load("unit", 9, "other-check").as_deref(),
            Some("other-payload")
        );
        // No stray tmp files survive the late-hit path.
        let stray: Vec<_> = fs::read_dir(dir.join("unit"))
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(stray.is_empty(), "late-hit put must clean its tmp file");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn entries_survive_multiline_payloads_and_tricky_checks() {
        let dir = temp_dir("payloads");
        let store = DiskStore::new(&dir).unwrap();
        let check = "line\nbreak \\ and spaces";
        let payload = "first line\nsecond line";
        store.put("unit", 1, check, payload);
        assert_eq!(store.load("unit", 1, check).as_deref(), Some(payload));
        assert_eq!(store.load("unit", 1, "line\nbreak"), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn entry_render_and_parse_invert() {
        let rendered = render_entry("histogram", "a b", "total=0 flips=0 counts=");
        let (kind, check, payload) = parse_entry(&rendered).unwrap();
        assert_eq!(kind, "histogram");
        assert_eq!(check, "a b");
        assert_eq!(payload, "total=0 flips=0 counts=");
        assert!(parse_entry("").is_none());
        assert!(parse_entry("read-artifact v1\nkind=x\n").is_none());
    }
}
