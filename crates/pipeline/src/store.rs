//! Content-addressed artifact stores: the persistence layer behind the
//! pipeline caches.
//!
//! A pipeline produces three classes of expensive, fully deterministic
//! artifacts — optimized schedules, simulated depth histograms, and
//! memoized work-unit results.  Each is identified by a 64-bit content
//! fingerprint plus a human-readable full-key *check line* (the
//! [`crate::cache`] machinery verifies the check behind the hash, so a
//! fingerprint collision is detected rather than served).  An
//! [`ArtifactStore`] holds the text-encoded payloads behind those keys:
//!
//! * [`MemoryStore`] — a process-local map.  Attach one store to several
//!   pipelines ([`crate::ReadPipelineBuilder::store_arc`]) and they share
//!   schedules, histograms and unit results without recomputing.
//! * [`DiskStore`] — an on-disk, versioned, concurrency-safe directory of
//!   fingerprint-keyed entries.  Writes go to a unique temporary file and
//!   are published with an atomic rename, so concurrent writers (threads
//!   *or* processes) always leave a decodable entry; corrupt or
//!   version-mismatched entries read as misses (counted in
//!   [`StoreStats::corrupt`]) and are rewritten by the next computation.
//!   Point worker processes ([`crate::SubprocessExecutor`],
//!   [`crate::WorkPlan::serve`]) at a shared directory and optimization and
//!   simulation stop being duplicated across processes and runs entirely.
//!
//! Reports are byte-identical whether an artifact came from memory, disk or
//! a fresh computation: every payload codec round-trips exactly (integer
//! counts, shortest-round-trip floats).
//!
//! # On-disk entry format
//!
//! One entry per file, `<root>/<kind>/<key as 16 hex digits>.entry`:
//!
//! ```text
//! read-artifact v1
//! kind=<artifact kind>
//! check=<full-key check line>
//! ---
//! <payload>
//! ```
//!
//! The format is a stable contract pinned by the
//! `tests/fixtures/artifact_entry.txt` golden fixture; bumping
//! [`ENTRY_VERSION`] makes every existing entry read as a (counted) miss,
//! never an error.

use std::collections::HashMap;
use std::fmt::Debug;
use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::error::PipelineError;
use crate::plan::{escape_wire, unescape};

/// Version tag of the on-disk entry format.  Stored in every entry header;
/// entries carrying any other version read as misses and are counted in
/// [`StoreStats::corrupt`], so a format change invalidates old store
/// directories without erroring on them.
pub const ENTRY_VERSION: &str = "v1";

const ENTRY_MAGIC: &str = "read-artifact";

/// Effectiveness counters of an [`ArtifactStore`], across all artifact
/// kinds.  Surfaced per pipeline as the `disk_*`/`store_*` fields of
/// [`crate::CacheStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Lookups served from the store (a computation saved).  [`DiskStore`]
    /// also counts *late* hits here: a `put` that found a racing writer's
    /// identical entry already published keeps that entry (first writer
    /// wins) and counts the redundant write it saved as a hit.
    pub hits: u64,
    /// Lookups the store could not serve (absent key or mismatched check).
    pub misses: u64,
    /// Entries that failed to parse or decode — version mismatches,
    /// truncated writes, garbage payloads.  Each also counts as a miss and
    /// is recomputed and rewritten rather than propagated as an error.
    pub corrupt: u64,
    /// Entries written to the store.
    pub writes: u64,
    /// Orphaned temporary files swept when the store was opened — the
    /// residue of writers that crashed between tmp-write and rename.
    /// Always zero for [`MemoryStore`]; [`DiskStore::new`] removes and
    /// counts them so a long-lived store directory cannot accumulate them
    /// forever.
    pub stale_tmp: u64,
}

/// A content-addressed, concurrency-safe store of text-encoded artifacts.
///
/// Keys are `(kind, 64-bit fingerprint)` pairs; every entry additionally
/// carries the full-key `check` line it was stored under, and a lookup
/// whose check disagrees is a miss (a fingerprint collision, detected
/// rather than served — the same contract as the in-memory caches).
///
/// Implementations must be safe under concurrent `load`/`put` from several
/// threads *and* — for persistent backends — several processes: a racing
/// `put` of the same key may publish either writer's entry (artifacts are
/// deterministic, so both encode the same value), but a reader must never
/// observe a torn entry.
pub trait ArtifactStore: Send + Sync {
    /// Display name of the backend (for logs and debugging).
    fn name(&self) -> String;

    /// Returns the payload stored under `(kind, key)` when its check line
    /// matches `check`, counting a hit; otherwise counts a miss (plus
    /// [`StoreStats::corrupt`] for undecodable entries) and returns `None`.
    fn load(&self, kind: &str, key: u64, check: &str) -> Option<String>;

    /// Stores `payload` under `(kind, key)` with the given check line,
    /// replacing any previous entry.  Best-effort: an I/O failure leaves
    /// the store unchanged (and uncounted) rather than failing the
    /// computation that produced the artifact.
    fn put(&self, kind: &str, key: u64, check: &str, payload: &str);

    /// Reports that the payload `load` returned for `(kind, key)` failed to
    /// decode: evicts the entry so the next computation rewrites it, and
    /// reclassifies the hit `load` counted as a corrupt miss — so
    /// [`StoreStats::hits`] stays "computations actually saved".
    fn note_corrupt(&self, kind: &str, key: u64);

    /// Batched lookup: one [`ArtifactStore::load`] answer per request, in
    /// request order.  The default implementation loops over `load`;
    /// remote backends override it to answer the whole batch in one round
    /// trip ([`RemoteStore`]'s `mget`), which is what makes warm-rerun
    /// prefetches O(batches) instead of O(units).
    fn load_many(&self, requests: &[StoreRequest]) -> Vec<Option<String>> {
        requests
            .iter()
            .map(|r| self.load(&r.kind, r.key, &r.check))
            .collect()
    }

    /// Publishes any buffered writes (a write-behind backend's `mput`);
    /// call at run boundaries.  Default: no-op — `put` is immediate for
    /// the local backends.
    fn flush(&self) {}

    /// Current counters.
    fn stats(&self) -> StoreStats;
}

/// One lookup of an [`ArtifactStore::load_many`] batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreRequest {
    /// Artifact kind (the `kind` argument of [`ArtifactStore::load`]).
    pub kind: String,
    /// 64-bit content fingerprint.
    pub key: u64,
    /// Full-key check line the entry must match.
    pub check: String,
}

#[derive(Debug, Default)]
struct StoreCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    corrupt: AtomicU64,
    writes: AtomicU64,
    stale_tmp: AtomicU64,
}

impl StoreCounters {
    /// The [`ArtifactStore::note_corrupt`] accounting: the load that
    /// returned the undecodable payload counted a hit, which was wrong in
    /// hindsight — take it back and count a corrupt miss instead.
    fn reclassify_hit_as_corrupt(&self) {
        let _ = self
            .hits
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |h| {
                Some(h.saturating_sub(1))
            });
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.corrupt.fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            stale_tmp: self.stale_tmp.load(Ordering::Relaxed),
        }
    }
}

/// A process-local [`ArtifactStore`]: today's in-memory caching behavior,
/// made shareable — attach one `MemoryStore` to several pipelines via
/// [`crate::ReadPipelineBuilder::store_arc`] and they stop duplicating
/// optimization and simulation against each other.
#[derive(Debug, Default)]
pub struct MemoryStore {
    entries: Mutex<HashMap<(String, u64), (String, String)>>,
    counters: StoreCounters,
}

impl MemoryStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries currently stored (all kinds).
    pub fn len(&self) -> usize {
        self.entries.lock().expect("store lock").len()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl ArtifactStore for MemoryStore {
    fn name(&self) -> String {
        "memory".to_string()
    }

    fn load(&self, kind: &str, key: u64, check: &str) -> Option<String> {
        let entries = self.entries.lock().expect("store lock");
        match entries.get(&(kind.to_string(), key)) {
            Some((stored_check, payload)) if stored_check == check => {
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                Some(payload.clone())
            }
            _ => {
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn put(&self, kind: &str, key: u64, check: &str, payload: &str) {
        self.entries.lock().expect("store lock").insert(
            (kind.to_string(), key),
            (check.to_string(), payload.to_string()),
        );
        self.counters.writes.fetch_add(1, Ordering::Relaxed);
    }

    fn note_corrupt(&self, kind: &str, key: u64) {
        self.entries
            .lock()
            .expect("store lock")
            .remove(&(kind.to_string(), key));
        self.counters.reclassify_hit_as_corrupt();
    }

    fn stats(&self) -> StoreStats {
        self.counters.snapshot()
    }
}

/// An on-disk [`ArtifactStore`]: one versioned entry file per artifact
/// under `<root>/<kind>/`, published with atomic tmp-file + rename writes.
///
/// Safe to share between threads and between *processes* (workers pointed
/// at the same directory): a reader sees either a complete previous entry
/// or a complete new one, never a torn write.  Unparseable and
/// version-mismatched entries read as misses — counted in
/// [`StoreStats::corrupt`] — and are replaced by the next computation, so a
/// stale or damaged store directory degrades to a cold cache instead of an
/// error.
#[derive(Debug)]
pub struct DiskStore {
    root: PathBuf,
    counters: StoreCounters,
}

/// Process-global sequence for temp-file names.  Deliberately NOT
/// per-instance: several `DiskStore`s over one directory in one process
/// (one per pipeline is the normal usage) share the same pid, so a
/// per-instance counter would let two of them derive the same tmp name and
/// stomp each other's half-written file — exactly the torn write the
/// tmp+rename scheme exists to rule out.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

impl DiskStore {
    /// Opens (creating if necessary) the store rooted at `root`, sweeping
    /// any orphaned `.tmp` files a crashed writer left behind (counted in
    /// [`StoreStats::stale_tmp`]).
    ///
    /// The sweep races benignly with live writers in other processes: a
    /// swept-mid-write tmp file makes that writer's publish fail, which
    /// `put` already absorbs as a best-effort no-op — the artifact is
    /// simply recomputed and rewritten by the next user.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Exec`] when the directory cannot be
    /// created.
    pub fn new(root: impl Into<PathBuf>) -> Result<Self, PipelineError> {
        let root = root.into();
        fs::create_dir_all(&root).map_err(|e| {
            PipelineError::exec(format!(
                "failed to create artifact store {:?}: {e}",
                root.display()
            ))
        })?;
        let store = DiskStore {
            root,
            counters: StoreCounters::default(),
        };
        let swept = store.sweep_stale_tmp();
        store.counters.stale_tmp.store(swept, Ordering::Relaxed);
        Ok(store)
    }

    /// Removes every `*.tmp` file under the store's kind directories and
    /// returns how many were deleted.
    fn sweep_stale_tmp(&self) -> u64 {
        let mut swept = 0;
        let Ok(kinds) = fs::read_dir(&self.root) else {
            return 0;
        };
        for kind in kinds.flatten() {
            let dir = kind.path();
            if !dir.is_dir() {
                continue;
            }
            let Ok(entries) = fs::read_dir(&dir) else {
                continue;
            };
            for entry in entries.flatten() {
                let path = entry.path();
                if path.extension().is_some_and(|x| x == "tmp") && fs::remove_file(&path).is_ok() {
                    swept += 1;
                }
            }
        }
        swept
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The entry path of `(kind, key)` — exposed for tests pinning the
    /// on-disk layout.
    pub fn entry_path(&self, kind: &str, key: u64) -> PathBuf {
        self.root.join(kind).join(format!("{key:016x}.entry"))
    }
}

impl ArtifactStore for DiskStore {
    fn name(&self) -> String {
        format!("disk[{}]", self.root.display())
    }

    fn load(&self, kind: &str, key: u64, check: &str) -> Option<String> {
        let path = self.entry_path(kind, key);
        let content = match fs::read_to_string(&path) {
            Ok(content) => content,
            Err(_) => {
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match parse_entry(&content) {
            Some((entry_kind, entry_check, payload)) if entry_kind == kind => {
                if entry_check == escape_check(check) {
                    self.counters.hits.fetch_add(1, Ordering::Relaxed);
                    Some(payload.to_string())
                } else {
                    // A fingerprint collision with a foreign full key: the
                    // entry is healthy, it just is not ours.
                    self.counters.misses.fetch_add(1, Ordering::Relaxed);
                    None
                }
            }
            _ => {
                // Version mismatch, truncated write, or garbage: a counted
                // miss, never an error.  The entry is left in place; the
                // recomputed artifact's put() replaces it atomically.
                self.counters.corrupt.fetch_add(1, Ordering::Relaxed);
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn put(&self, kind: &str, key: u64, check: &str, payload: &str) {
        let path = self.entry_path(kind, key);
        let Some(dir) = path.parent() else { return };
        if fs::create_dir_all(dir).is_err() {
            return;
        }
        // Unique tmp name per (process, write): concurrent writers never
        // stomp each other's half-written file, and the rename publishes a
        // complete entry atomically.
        let tmp = dir.join(format!(
            ".{key:016x}.{}.{}.tmp",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        // Every exit from here on — error, late hit, even a panic in the
        // entry codec — removes the tmp file unless the rename consumed it;
        // only a crash of the whole process can strand one, and those are
        // swept (and counted) by the next [`DiskStore::new`] over this root.
        let guard = TmpGuard { path: &tmp };
        if fs::write(&tmp, render_entry(kind, check, payload)).is_err() {
            return;
        }
        // First-writer-wins: a racing writer (thread or process) may have
        // published this artifact while we computed and encoded ours.  The
        // values are deterministic, so renaming over theirs would only burn
        // a redundant write — re-check immediately before the rename and,
        // when a healthy matching entry already exists, keep it and count a
        // late hit instead of a write.
        if let Ok(content) = fs::read_to_string(&path) {
            if let Some((entry_kind, entry_check, _)) = parse_entry(&content) {
                if entry_kind == kind && entry_check == escape_check(check) {
                    self.counters.hits.fetch_add(1, Ordering::Relaxed);
                    return;
                }
            }
        }
        if fs::rename(&tmp, &path).is_ok() {
            guard.disarm();
            self.counters.writes.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn note_corrupt(&self, kind: &str, key: u64) {
        let _ = fs::remove_file(self.entry_path(kind, key));
        self.counters.reclassify_hit_as_corrupt();
    }

    fn stats(&self) -> StoreStats {
        self.counters.snapshot()
    }
}

/// Removes a pending tmp file on every exit path of [`DiskStore::put`]
/// except the successful rename (which consumes the file).  `disarm` after
/// the rename; dropping armed — early return, error, panic — deletes it.
struct TmpGuard<'p> {
    path: &'p Path,
}

impl TmpGuard<'_> {
    fn disarm(self) {
        std::mem::forget(self);
    }
}

impl Drop for TmpGuard<'_> {
    fn drop(&mut self) {
        let _ = fs::remove_file(self.path);
    }
}

/// Minimal injective escaping that keeps a check line on one line (the
/// entry header is line-oriented).  Check lines come pre-escaped by the
/// artifact kinds for their free-text fields; this guards the framing.
fn escape_check(check: &str) -> String {
    check
        .replace('\\', "\\\\")
        .replace('\n', "\\n")
        .replace('\r', "\\r")
}

/// Renders a complete entry file — the byte layout pinned by the
/// `tests/fixtures/artifact_entry.txt` golden fixture.
pub(crate) fn render_entry(kind: &str, check: &str, payload: &str) -> String {
    format!(
        "{ENTRY_MAGIC} {ENTRY_VERSION}\nkind={kind}\ncheck={}\n---\n{payload}\n",
        escape_check(check)
    )
}

/// Parses an entry file into `(kind, escaped check, payload)`; `None` for
/// anything that is not a well-formed current-version entry.
fn parse_entry(content: &str) -> Option<(&str, &str, &str)> {
    let rest = content.strip_prefix(ENTRY_MAGIC)?;
    let rest = rest.strip_prefix(' ')?;
    let (version, rest) = rest.split_once('\n')?;
    if version != ENTRY_VERSION {
        return None;
    }
    let rest = rest.strip_prefix("kind=")?;
    let (kind, rest) = rest.split_once('\n')?;
    let rest = rest.strip_prefix("check=")?;
    let (check, rest) = rest.split_once('\n')?;
    let payload = rest.strip_prefix("---\n")?;
    let payload = payload.strip_suffix('\n')?;
    Some((kind, check, payload))
}

// ---------------------------------------------------------------------------
// Remote store: a line-delimited TCP protocol over any ArtifactStore
// ---------------------------------------------------------------------------

/// Wire grammar of the remote-store protocol (one request line, one
/// response line; free-text fields use the repo's `\s`/`\n` wire escaping):
///
/// ```text
/// ping                                                   → ok pong
/// get kind=<esc> key=<16 hex> check=<esc>                → hit payload=<esc> | miss
/// put kind=<esc> key=<16 hex> check=<esc> payload=<esc>  → ok
/// mget count=<n> {kind=<esc> key=<16 hex> check=<esc>}×n → mres count=<n> {hit payload=<esc> | miss}×n
/// mput count=<n> {kind=<esc> key=<16 hex> check=<esc> payload=<esc>}×n
///                                                        → ok count=<n>
/// corrupt kind=<esc> key=<16 hex>                        → ok
/// stats                                                  → stats hits=N misses=N corrupt=N writes=N stale_tmp=N
/// shutdown                                               → ok shutdown
/// anything else                                          → err msg=<esc>
/// ```
///
/// The batched `mget`/`mput` lines answer (or publish) `n` entries in one
/// round trip — every field is a single escaped token, so the repeated
/// groups parse unambiguously by position.
///
/// [`RemoteStore`] speaks the client side, [`StoreServer`] the daemon side
/// (backed by any [`ArtifactStore`], typically a [`DiskStore`]).
fn wire_field<'l>(line: &'l str, key: &str) -> Option<&'l str> {
    line.split_whitespace().find_map(|t| t.strip_prefix(key))
}

fn parse_hex_key(value: &str) -> Option<u64> {
    u64::from_str_radix(value, 16).ok()
}

/// An [`ArtifactStore`] served by a remote [`StoreServer`] over TCP: the
/// shared artifact namespace of a worker fleet.  Cold workers pointed at a
/// warm store daemon recompute nothing, and every worker's write-through
/// publishes fleet-wide — the multi-machine form of the shared
/// [`DiskStore`] directory.
///
/// The client holds one lazily-established connection (reconnecting once
/// per operation on a broken pipe) and keeps its own [`StoreStats`]: a
/// transport failure degrades the lookup to a counted miss — the store
/// contract is best-effort, so a dead daemon slows a fleet down but never
/// fails it.
///
/// I/O is *batched*: `put` appends to a small write-behind buffer that is
/// published as one `mput` line when it fills (and on
/// [`ArtifactStore::flush`] — called at run boundaries and when a worker
/// connection drains), and [`ArtifactStore::load_many`] answers a whole
/// batch with one `mget` line.  Reads are read-your-writes: a `load`
/// checks the unflushed buffer first, so buffering is invisible to the
/// writing process; other clients observe the writes after the flush.
#[derive(Debug)]
pub struct RemoteStore {
    addr: String,
    timeout: Duration,
    conn: Mutex<Option<BufReader<TcpStream>>>,
    counters: StoreCounters,
    write_behind: usize,
    buffer: Mutex<Vec<BufferedPut>>,
}

#[derive(Debug)]
struct BufferedPut {
    kind: String,
    key: u64,
    check: String,
    payload: String,
}

/// Entries per batched wire line: bounds line length (and the daemon's
/// per-line allocation) without changing observable behavior.
const BATCH_CHUNK: usize = 64;

impl RemoteStore {
    /// A client for the store daemon at `addr` (e.g. `127.0.0.1:7431`).
    /// Does not connect until first use; use [`RemoteStore::connect`] to
    /// fail fast on an unreachable daemon.
    pub fn new(addr: impl Into<String>) -> RemoteStore {
        RemoteStore {
            addr: addr.into(),
            timeout: Duration::from_secs(30),
            conn: Mutex::new(None),
            counters: StoreCounters::default(),
            write_behind: 32,
            buffer: Mutex::new(Vec::new()),
        }
    }

    /// A client for the daemon at `addr`, validated with a `ping` round
    /// trip.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Exec`] when the daemon is unreachable or
    /// answers the ping with anything but `ok pong`.
    pub fn connect(addr: impl Into<String>) -> Result<RemoteStore, PipelineError> {
        let store = RemoteStore::new(addr);
        store.ping()?;
        Ok(store)
    }

    /// Sets the per-operation I/O timeout (default 30 s).
    #[must_use]
    pub fn timeout(mut self, timeout: Duration) -> RemoteStore {
        self.timeout = timeout;
        self
    }

    /// Sets the write-behind buffer capacity (default 32): `put`s are
    /// buffered and published as one `mput` line when this many
    /// accumulate, or on [`ArtifactStore::flush`].  `0` disables
    /// buffering — every `put` is an immediate round trip, the pre-batched
    /// behavior.
    #[must_use]
    pub fn write_behind(mut self, capacity: usize) -> RemoteStore {
        self.write_behind = capacity;
        self
    }

    /// The daemon address this client talks to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    fn open_connection(&self) -> std::io::Result<BufReader<TcpStream>> {
        let stream = TcpStream::connect(&self.addr)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        Ok(BufReader::new(stream))
    }

    fn try_round_trip(
        conn: &mut Option<BufReader<TcpStream>>,
        line: &str,
    ) -> std::io::Result<String> {
        let reader = match conn {
            Some(reader) => reader,
            None => unreachable!("caller ensures a connection"),
        };
        let mut stream = reader.get_ref();
        writeln!(stream, "{line}")?;
        stream.flush()?;
        let mut response = String::new();
        if reader.read_line(&mut response)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "store daemon closed the connection",
            ));
        }
        Ok(response.trim().to_string())
    }

    /// One request/response exchange, transparently reconnecting once — a
    /// daemon restart between operations otherwise turns the first use of
    /// the stale connection into a spurious miss.
    fn round_trip(&self, line: &str) -> Result<String, PipelineError> {
        let mut conn = self.conn.lock().unwrap_or_else(|p| p.into_inner());
        for attempt in 0..2 {
            if conn.is_none() {
                match self.open_connection() {
                    Ok(fresh) => *conn = Some(fresh),
                    Err(e) if attempt == 0 => {
                        let _ = e;
                        continue;
                    }
                    Err(e) => {
                        return Err(PipelineError::exec(format!(
                            "remote store {}: connect failed: {e}",
                            self.addr
                        )))
                    }
                }
            }
            match Self::try_round_trip(&mut conn, line) {
                Ok(response) => return Ok(response),
                Err(e) => {
                    *conn = None;
                    if attempt > 0 {
                        return Err(PipelineError::exec(format!(
                            "remote store {}: {e}",
                            self.addr
                        )));
                    }
                }
            }
        }
        Err(PipelineError::exec(format!(
            "remote store {}: unreachable",
            self.addr
        )))
    }

    /// Liveness check against the daemon.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Exec`] on transport failure or an
    /// unexpected response.
    pub fn ping(&self) -> Result<(), PipelineError> {
        match self.round_trip("ping")?.as_str() {
            "ok pong" => Ok(()),
            other => Err(PipelineError::exec(format!(
                "remote store {}: unexpected ping response {other:?}",
                self.addr
            ))),
        }
    }

    /// The *daemon's* aggregate counters (every client's traffic), as
    /// opposed to [`ArtifactStore::stats`] which reports this client's own
    /// view.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Exec`] on transport or protocol failure.
    pub fn daemon_stats(&self) -> Result<StoreStats, PipelineError> {
        let response = self.round_trip("stats")?;
        if !response.starts_with("stats ") {
            return Err(PipelineError::exec(format!(
                "remote store {}: unexpected stats response {response:?}",
                self.addr
            )));
        }
        let num = |key: &str| -> u64 {
            wire_field(&response, key)
                .and_then(|v| v.parse().ok())
                .unwrap_or(0)
        };
        Ok(StoreStats {
            hits: num("hits="),
            misses: num("misses="),
            corrupt: num("corrupt="),
            writes: num("writes="),
            stale_tmp: num("stale_tmp="),
        })
    }

    /// Asks the daemon to stop accepting, drain and exit.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Exec`] on transport failure.
    pub fn shutdown_daemon(&self) -> Result<(), PipelineError> {
        self.flush();
        let response = self.round_trip("shutdown")?;
        if response == "ok shutdown" {
            Ok(())
        } else {
            Err(PipelineError::exec(format!(
                "remote store {}: unexpected shutdown response {response:?}",
                self.addr
            )))
        }
    }

    /// Publishes `pending` as `mput` lines, [`BATCH_CHUNK`] entries each.
    /// Best-effort like `put`: a failed batch is dropped (uncounted) and
    /// its artifacts are recomputed by whoever needs them next.
    fn publish(&self, pending: Vec<BufferedPut>) {
        for chunk in pending.chunks(BATCH_CHUNK) {
            let mut line = format!("mput count={}", chunk.len());
            for entry in chunk {
                line.push_str(&format!(
                    " kind={} key={:016x} check={} payload={}",
                    escape_wire(&entry.kind),
                    entry.key,
                    escape_wire(&entry.check),
                    escape_wire(&entry.payload)
                ));
            }
            let expected = format!("ok count={}", chunk.len());
            if matches!(self.round_trip(&line).as_deref(), Ok(r) if r == expected) {
                self.counters
                    .writes
                    .fetch_add(chunk.len() as u64, Ordering::Relaxed);
            }
        }
    }

    /// Serves `(kind, key, check)` from the unflushed write-behind buffer
    /// (read-your-writes), newest entry first.
    fn buffered(&self, kind: &str, key: u64, check: &str) -> Option<String> {
        let buffer = self.buffer.lock().unwrap_or_else(|p| p.into_inner());
        buffer
            .iter()
            .rev()
            .find(|e| e.key == key && e.kind == kind && e.check == check)
            .map(|e| e.payload.clone())
    }

    /// Parses an `mres count=<n> {hit payload=<esc> | miss}×n` response.
    fn parse_mres(response: &str, expect: usize) -> Option<Vec<Option<String>>> {
        let mut tokens = response.split_whitespace();
        if tokens.next()? != "mres" {
            return None;
        }
        let count: usize = tokens.next()?.strip_prefix("count=")?.parse().ok()?;
        if count != expect {
            return None;
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            match tokens.next()? {
                "miss" => out.push(None),
                "hit" => {
                    let escaped = tokens.next()?.strip_prefix("payload=")?;
                    out.push(Some(unescape(escaped, response).ok()?));
                }
                _ => return None,
            }
        }
        tokens.next().is_none().then_some(out)
    }
}

impl Drop for RemoteStore {
    fn drop(&mut self) {
        // Last-chance publish of buffered writes; run boundaries should
        // already have flushed.
        let pending = std::mem::take(self.buffer.get_mut().unwrap_or_else(|p| p.into_inner()));
        if !pending.is_empty() {
            self.publish(pending);
        }
    }
}

impl ArtifactStore for RemoteStore {
    fn name(&self) -> String {
        format!("remote[{}]", self.addr)
    }

    fn load(&self, kind: &str, key: u64, check: &str) -> Option<String> {
        if let Some(payload) = self.buffered(kind, key, check) {
            self.counters.hits.fetch_add(1, Ordering::Relaxed);
            return Some(payload);
        }
        let line = format!(
            "get kind={} key={key:016x} check={}",
            escape_wire(kind),
            escape_wire(check)
        );
        let response = match self.round_trip(&line) {
            Ok(response) => response,
            Err(_) => {
                // Transport failure degrades to a miss: the artifact is
                // recomputed, never an error.
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        if response == "miss" {
            self.counters.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let payload = response
            .starts_with("hit ")
            .then(|| wire_field(&response, "payload="))
            .flatten()
            .and_then(|escaped| unescape(escaped, &response).ok());
        match payload {
            Some(payload) => {
                self.counters.hits.fetch_add(1, Ordering::Relaxed);
                Some(payload)
            }
            None => {
                // A garbled response is treated like a corrupt entry.
                self.counters.misses.fetch_add(1, Ordering::Relaxed);
                self.counters.corrupt.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn put(&self, kind: &str, key: u64, check: &str, payload: &str) {
        if self.write_behind == 0 {
            let line = format!(
                "put kind={} key={key:016x} check={} payload={}",
                escape_wire(kind),
                escape_wire(check),
                escape_wire(payload)
            );
            if matches!(self.round_trip(&line).as_deref(), Ok("ok")) {
                self.counters.writes.fetch_add(1, Ordering::Relaxed);
            }
            return;
        }
        let full = {
            let mut buffer = self.buffer.lock().unwrap_or_else(|p| p.into_inner());
            buffer.push(BufferedPut {
                kind: kind.to_string(),
                key,
                check: check.to_string(),
                payload: payload.to_string(),
            });
            (buffer.len() >= self.write_behind).then(|| std::mem::take(&mut *buffer))
        };
        if let Some(pending) = full {
            self.publish(pending);
        }
    }

    fn note_corrupt(&self, kind: &str, key: u64) {
        {
            // Evict unflushed buffered writes too — the payload failed to
            // decode, so read-your-writes must not re-serve it.
            let mut buffer = self.buffer.lock().unwrap_or_else(|p| p.into_inner());
            buffer.retain(|e| !(e.key == key && e.kind == kind));
        }
        let line = format!("corrupt kind={} key={key:016x}", escape_wire(kind));
        let _ = self.round_trip(&line);
        self.counters.reclassify_hit_as_corrupt();
    }

    fn load_many(&self, requests: &[StoreRequest]) -> Vec<Option<String>> {
        // Read-your-writes first; the rest in `mget` batches.
        let mut answers: Vec<Option<String>> = requests
            .iter()
            .map(|r| self.buffered(&r.kind, r.key, &r.check))
            .collect();
        let unresolved: Vec<usize> = (0..requests.len())
            .filter(|&i| answers[i].is_none())
            .collect();
        for chunk in unresolved.chunks(BATCH_CHUNK) {
            let mut line = format!("mget count={}", chunk.len());
            for &i in chunk {
                let r = &requests[i];
                line.push_str(&format!(
                    " kind={} key={:016x} check={}",
                    escape_wire(&r.kind),
                    r.key,
                    escape_wire(&r.check)
                ));
            }
            // A transport/protocol failure leaves the whole chunk as
            // counted misses, same as a single get.
            let batch = self
                .round_trip(&line)
                .ok()
                .and_then(|response| Self::parse_mres(&response, chunk.len()));
            if let Some(batch) = batch {
                for (&i, answer) in chunk.iter().zip(batch) {
                    answers[i] = answer;
                }
            }
        }
        for answer in &answers {
            let counter = if answer.is_some() {
                &self.counters.hits
            } else {
                &self.counters.misses
            };
            counter.fetch_add(1, Ordering::Relaxed);
        }
        answers
    }

    fn flush(&self) {
        let pending = {
            let mut buffer = self.buffer.lock().unwrap_or_else(|p| p.into_inner());
            std::mem::take(&mut *buffer)
        };
        if !pending.is_empty() {
            self.publish(pending);
        }
    }

    fn stats(&self) -> StoreStats {
        self.counters.snapshot()
    }
}

/// The store daemon: serves the remote-store wire protocol over TCP,
/// backed by any [`ArtifactStore`] (typically a [`DiskStore`], making the
/// fleet's shared namespace persistent).  One handler thread per
/// connection; the in-band `shutdown` command stops the accept loop and
/// drains in-flight connections before [`StoreServer::run`] returns.
pub struct StoreServer {
    listener: TcpListener,
    addr: SocketAddr,
    store: Arc<dyn ArtifactStore>,
    shutdown: AtomicBool,
}

impl StoreServer {
    /// Binds the daemon to `addr` (use port 0 for an ephemeral test port).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Exec`] when the socket cannot be bound.
    pub fn bind(addr: &str, store: Arc<dyn ArtifactStore>) -> Result<StoreServer, PipelineError> {
        let listener = TcpListener::bind(addr)
            .map_err(|e| PipelineError::exec(format!("store daemon bind {addr}: {e}")))?;
        let addr = listener
            .local_addr()
            .map_err(|e| PipelineError::exec(format!("store daemon local_addr: {e}")))?;
        Ok(StoreServer {
            listener,
            addr,
            store,
            shutdown: AtomicBool::new(false),
        })
    }

    /// The bound socket address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serves connections until a `shutdown` command arrives, then drains.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Exec`] on a fatal accept error.
    pub fn run(self) -> Result<(), PipelineError> {
        std::thread::scope(|scope| {
            loop {
                let (stream, _) = match self.listener.accept() {
                    Ok(pair) => pair,
                    Err(e) => {
                        if self.shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        return Err(PipelineError::exec(format!("store daemon accept: {e}")));
                    }
                };
                if self.shutdown.load(Ordering::SeqCst) {
                    drop(stream);
                    break;
                }
                let server = &self;
                scope.spawn(move || server.handle_connection(stream));
            }
            Ok(())
        })
    }

    /// Binds and runs the daemon on a background thread — the in-process
    /// form used by tests and examples.
    ///
    /// # Errors
    ///
    /// Propagates [`StoreServer::bind`] failures.
    pub fn spawn(addr: &str, store: Arc<dyn ArtifactStore>) -> Result<StoreHandle, PipelineError> {
        let server = StoreServer::bind(addr, store)?;
        let addr = server.local_addr();
        let join = std::thread::spawn(move || server.run());
        Ok(StoreHandle { addr, join })
    }

    fn handle_connection(&self, stream: TcpStream) {
        let _ = stream.set_read_timeout(Some(Duration::from_secs(120)));
        let Ok(write_half) = stream.try_clone() else {
            return;
        };
        let mut writer = std::io::BufWriter::new(write_half);
        for line in BufReader::new(stream).lines() {
            let Ok(line) = line else { return };
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let done = self.dispatch(line, &mut writer);
            if writer.flush().is_err() || done {
                return;
            }
        }
    }

    /// Handles one protocol line; returns `true` when the connection
    /// should close (shutdown acknowledged).
    fn dispatch(&self, line: &str, writer: &mut impl std::io::Write) -> bool {
        let reply_err = |writer: &mut dyn std::io::Write, msg: &str| {
            let _ = writeln!(writer, "err msg={}", escape_wire(msg));
        };
        match line.split_whitespace().next() {
            Some("ping") => {
                let _ = writeln!(writer, "ok pong");
            }
            Some("stats") => {
                let s = self.store.stats();
                let _ = writeln!(
                    writer,
                    "stats hits={} misses={} corrupt={} writes={} stale_tmp={}",
                    s.hits, s.misses, s.corrupt, s.writes, s.stale_tmp
                );
            }
            Some("shutdown") => {
                let _ = writeln!(writer, "ok shutdown");
                let _ = writer.flush();
                self.shutdown.store(true, Ordering::SeqCst);
                let _ = TcpStream::connect(self.addr);
                return true;
            }
            Some("get") => match Self::decode_entry_fields(line, false) {
                Some((kind, key, check, _)) => {
                    match self.store.load(&kind, key, &check) {
                        Some(payload) => {
                            let _ = writeln!(writer, "hit payload={}", escape_wire(&payload));
                        }
                        None => {
                            let _ = writeln!(writer, "miss");
                        }
                    };
                }
                None => reply_err(writer, &format!("malformed get {line:?}")),
            },
            Some("put") => match Self::decode_entry_fields(line, true) {
                Some((kind, key, check, Some(payload))) => {
                    self.store.put(&kind, key, &check, &payload);
                    let _ = writeln!(writer, "ok");
                }
                _ => reply_err(writer, &format!("malformed put {line:?}")),
            },
            Some("mget") => match Self::decode_batch(line, false) {
                Some(entries) => {
                    let requests: Vec<StoreRequest> = entries
                        .into_iter()
                        .map(|(kind, key, check, _)| StoreRequest { kind, key, check })
                        .collect();
                    let answers = self.store.load_many(&requests);
                    let mut response = format!("mres count={}", answers.len());
                    for answer in answers {
                        match answer {
                            Some(payload) => {
                                response.push_str(" hit payload=");
                                response.push_str(&escape_wire(&payload));
                            }
                            None => response.push_str(" miss"),
                        }
                    }
                    let _ = writeln!(writer, "{response}");
                }
                None => reply_err(writer, &format!("malformed mget {line:?}")),
            },
            Some("mput") => match Self::decode_batch(line, true) {
                Some(entries) => {
                    let count = entries.len();
                    for (kind, key, check, payload) in entries {
                        let payload = payload.expect("mput batches decode payloads");
                        self.store.put(&kind, key, &check, &payload);
                    }
                    let _ = writeln!(writer, "ok count={count}");
                }
                None => reply_err(writer, &format!("malformed mput {line:?}")),
            },
            Some("corrupt") => {
                let fields = wire_field(line, "kind=")
                    .and_then(|k| unescape(k, line).ok())
                    .zip(wire_field(line, "key=").and_then(parse_hex_key));
                match fields {
                    Some((kind, key)) => {
                        self.store.note_corrupt(&kind, key);
                        let _ = writeln!(writer, "ok");
                    }
                    None => reply_err(writer, &format!("malformed corrupt {line:?}")),
                }
            }
            _ => reply_err(writer, "unknown command"),
        }
        false
    }

    /// Decodes `kind=`/`key=`/`check=` (and, for puts, `payload=`) from a
    /// request line.
    #[allow(clippy::type_complexity)]
    fn decode_entry_fields(
        line: &str,
        want_payload: bool,
    ) -> Option<(String, u64, String, Option<String>)> {
        let kind = unescape(wire_field(line, "kind=")?, line).ok()?;
        let key = parse_hex_key(wire_field(line, "key=")?)?;
        let check = unescape(wire_field(line, "check=")?, line).ok()?;
        let payload = if want_payload {
            Some(unescape(wire_field(line, "payload=")?, line).ok()?)
        } else {
            None
        };
        Some((kind, key, check, payload))
    }

    /// Decodes an `mget`/`mput` batch line: `count=<n>` followed by `n`
    /// positional `kind=`/`key=`/`check=` (and, for `mput`, `payload=`)
    /// groups — every field is one escaped token, so position is identity.
    #[allow(clippy::type_complexity)]
    fn decode_batch(
        line: &str,
        want_payload: bool,
    ) -> Option<Vec<(String, u64, String, Option<String>)>> {
        fn field<'t>(tokens: &mut impl Iterator<Item = &'t str>, key: &str) -> Option<&'t str> {
            tokens.next()?.strip_prefix(key)
        }
        let mut tokens = line.split_whitespace();
        tokens.next()?; // the command itself
        let count: usize = field(&mut tokens, "count=")?.parse().ok()?;
        let mut out = Vec::new();
        for _ in 0..count {
            let kind = unescape(field(&mut tokens, "kind=")?, line).ok()?;
            let key = parse_hex_key(field(&mut tokens, "key=")?)?;
            let check = unescape(field(&mut tokens, "check=")?, line).ok()?;
            let payload = if want_payload {
                Some(unescape(field(&mut tokens, "payload=")?, line).ok()?)
            } else {
                None
            };
            out.push((kind, key, check, payload));
        }
        tokens.next().is_none().then_some(out)
    }
}

/// Handle to a daemon spawned with [`StoreServer::spawn`].
pub struct StoreHandle {
    addr: SocketAddr,
    join: std::thread::JoinHandle<Result<(), PipelineError>>,
}

impl StoreHandle {
    /// The daemon's socket address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A [`RemoteStore`] client connected to this daemon.
    pub fn client(&self) -> RemoteStore {
        RemoteStore::new(self.addr.to_string())
    }

    /// Waits for the daemon to exit (send `shutdown` first — e.g.
    /// [`RemoteStore::shutdown_daemon`] — or this blocks forever).
    ///
    /// # Errors
    ///
    /// Propagates the server's exit result; a panicked server thread
    /// surfaces as [`PipelineError::Exec`].
    pub fn join(self) -> Result<(), PipelineError> {
        self.join
            .join()
            .map_err(|_| PipelineError::exec("store daemon thread panicked"))?
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "read-store-test-{tag}-{}-{:p}",
            std::process::id(),
            &tag
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn memory_store_round_trips_and_counts() {
        let store = MemoryStore::new();
        assert!(store.is_empty());
        assert_eq!(store.load("schedule", 7, "check-a"), None);
        store.put("schedule", 7, "check-a", "groups=0@0");
        assert_eq!(
            store.load("schedule", 7, "check-a").as_deref(),
            Some("groups=0@0")
        );
        // A mismatched check is a miss, not the foreign payload.
        assert_eq!(store.load("schedule", 7, "check-b"), None);
        assert_eq!(store.len(), 1);
        assert_eq!(
            store.stats(),
            StoreStats {
                hits: 1,
                misses: 2,
                corrupt: 0,
                writes: 1,
                stale_tmp: 0
            }
        );
        store.note_corrupt("schedule", 7);
        assert!(store.is_empty());
        // The hit that preceded note_corrupt is reclassified: hits count
        // computations actually saved, the bad load becomes a corrupt miss.
        assert_eq!(
            store.stats(),
            StoreStats {
                hits: 0,
                misses: 3,
                corrupt: 1,
                writes: 1,
                stale_tmp: 0
            }
        );
    }

    #[test]
    fn disk_store_round_trips_and_persists() {
        let dir = temp_dir("roundtrip");
        let store = DiskStore::new(&dir).unwrap();
        assert!(store.name().starts_with("disk["));
        store.put("histogram", 0xABCD, "src rows=4", "total=0 flips=0 counts=");
        assert_eq!(
            store.load("histogram", 0xABCD, "src rows=4").as_deref(),
            Some("total=0 flips=0 counts=")
        );
        assert_eq!(store.load("histogram", 0xABCD, "other"), None);
        assert_eq!(store.load("histogram", 0x1234, "src rows=4"), None);

        // A second store instance over the same directory sees the entry —
        // the cross-process persistence contract.
        let reopened = DiskStore::new(&dir).unwrap();
        assert_eq!(
            reopened.load("histogram", 0xABCD, "src rows=4").as_deref(),
            Some("total=0 flips=0 counts=")
        );
        assert_eq!(
            store.stats(),
            StoreStats {
                hits: 1,
                misses: 2,
                corrupt: 0,
                writes: 1,
                stale_tmp: 0
            }
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_mismatch_and_garbage_read_as_counted_misses() {
        let dir = temp_dir("versions");
        let store = DiskStore::new(&dir).unwrap();
        let path = store.entry_path("schedule", 5);
        fs::create_dir_all(path.parent().unwrap()).unwrap();

        // A future-versioned entry: miss + corrupt, never an error.
        fs::write(
            &path,
            "read-artifact v2\nkind=schedule\ncheck=c\n---\npayload\n",
        )
        .unwrap();
        assert_eq!(store.load("schedule", 5, "c"), None);
        assert_eq!(store.stats().corrupt, 1);

        // Garbage: same.
        fs::write(&path, "not an entry at all").unwrap();
        assert_eq!(store.load("schedule", 5, "c"), None);
        assert_eq!(store.stats().corrupt, 2);

        // A put() replaces the damaged entry and the next load hits.
        store.put("schedule", 5, "c", "groups=");
        assert_eq!(store.load("schedule", 5, "c").as_deref(), Some("groups="));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn racing_identical_put_counts_a_late_hit_not_a_write() {
        let dir = temp_dir("late-hit");
        let store = DiskStore::new(&dir).unwrap();
        store.put("unit", 9, "check", "payload");
        // The "losing" writer of a same-artifact race: the entry is already
        // published, so the second put keeps it and counts a late hit.
        store.put("unit", 9, "check", "payload");
        assert_eq!(
            store.stats(),
            StoreStats {
                hits: 1,
                misses: 0,
                corrupt: 0,
                writes: 1,
                stale_tmp: 0
            }
        );
        // A *different* full key under the same fingerprint is not a late
        // hit — the entry genuinely changes, so the rename goes through.
        store.put("unit", 9, "other-check", "other-payload");
        assert_eq!(store.stats().writes, 2);
        assert_eq!(store.stats().hits, 1);
        assert_eq!(
            store.load("unit", 9, "other-check").as_deref(),
            Some("other-payload")
        );
        // No stray tmp files survive the late-hit path.
        let stray: Vec<_> = fs::read_dir(dir.join("unit"))
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(stray.is_empty(), "late-hit put must clean its tmp file");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn entries_survive_multiline_payloads_and_tricky_checks() {
        let dir = temp_dir("payloads");
        let store = DiskStore::new(&dir).unwrap();
        let check = "line\nbreak \\ and spaces";
        let payload = "first line\nsecond line";
        store.put("unit", 1, check, payload);
        assert_eq!(store.load("unit", 1, check).as_deref(), Some(payload));
        assert_eq!(store.load("unit", 1, "line\nbreak"), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn opening_a_store_sweeps_and_counts_stale_tmp_files() {
        let dir = temp_dir("stale-tmp");
        {
            let store = DiskStore::new(&dir).unwrap();
            store.put("unit", 1, "check", "payload");
            assert_eq!(store.stats().stale_tmp, 0, "fresh store has no orphans");
        }
        // Simulate two writers that crashed between tmp-write and rename.
        let kind_dir = dir.join("unit");
        fs::write(kind_dir.join(".dead1.tmp"), "half an entry").unwrap();
        fs::write(kind_dir.join(".dead2.tmp"), "").unwrap();

        let reopened = DiskStore::new(&dir).unwrap();
        assert_eq!(reopened.stats().stale_tmp, 2);
        assert!(!kind_dir.join(".dead1.tmp").exists());
        assert!(!kind_dir.join(".dead2.tmp").exists());
        // Healthy entries are untouched by the sweep.
        assert_eq!(
            reopened.load("unit", 1, "check").as_deref(),
            Some("payload")
        );
        // A third open finds nothing left to sweep.
        assert_eq!(DiskStore::new(&dir).unwrap().stats().stale_tmp, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn remote_store_round_trips_through_a_daemon() {
        let dir = temp_dir("remote");
        let disk = Arc::new(DiskStore::new(&dir).unwrap()) as Arc<dyn ArtifactStore>;
        let handle = StoreServer::spawn("127.0.0.1:0", Arc::clone(&disk)).unwrap();
        let remote = RemoteStore::connect(handle.addr().to_string()).unwrap();
        assert!(remote.name().starts_with("remote["));

        assert_eq!(remote.load("unit", 7, "check a"), None);
        remote.put("unit", 7, "check a", "payload with\nnewline and spaces");
        // Served read-your-writes from the unflushed write-behind buffer.
        assert_eq!(
            remote.load("unit", 7, "check a").as_deref(),
            Some("payload with\nnewline and spaces")
        );
        // Mismatched check is a miss, exactly like the local backends.
        assert_eq!(remote.load("unit", 7, "check b"), None);
        // Empty payloads survive the wire framing.
        remote.put("unit", 8, "c", "");
        assert_eq!(remote.load("unit", 8, "c").as_deref(), Some(""));

        // Writes count when the buffer publishes (one mput round trip).
        assert_eq!(remote.stats().writes, 0, "buffered, not yet published");
        remote.flush();

        // Client-side counters reflect this client's traffic...
        assert_eq!(
            remote.stats(),
            StoreStats {
                hits: 2,
                misses: 2,
                corrupt: 0,
                writes: 2,
                stale_tmp: 0
            }
        );
        // ...daemon stats reflect the backing store's.
        let daemon = remote.daemon_stats().unwrap();
        assert_eq!(daemon, disk.stats());
        assert_eq!(daemon.writes, 2);

        // note_corrupt evicts daemon-side; the next load misses.
        remote.note_corrupt("unit", 7);
        assert_eq!(remote.load("unit", 7, "check a"), None);

        // A second client sees the first client's entries: the shared
        // namespace contract.
        let second = handle.client();
        assert_eq!(second.load("unit", 8, "c").as_deref(), Some(""));

        remote.shutdown_daemon().unwrap();
        handle.join().unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn remote_store_batches_load_many_across_chunks() {
        let backing = Arc::new(MemoryStore::new());
        let handle = StoreServer::spawn(
            "127.0.0.1:0",
            Arc::clone(&backing) as Arc<dyn ArtifactStore>,
        )
        .unwrap();
        let remote = handle.client();

        // Enough entries to span more than one BATCH_CHUNK wire line in
        // both the mput and mget directions.
        let total = BATCH_CHUNK + 9;
        for i in 0..total as u64 {
            remote.put("unit", i, "check", &format!("payload {i}"));
        }
        remote.flush();
        assert_eq!(backing.len(), total);
        assert_eq!(remote.stats().writes as usize, total);

        // A mixed batch: present keys with the right check hit, wrong
        // checks and absent keys miss, positionally.
        let requests: Vec<StoreRequest> = (0..total as u64 + 4)
            .map(|i| StoreRequest {
                kind: "unit".to_string(),
                key: i,
                check: if i % 2 == 0 { "check" } else { "wrong" }.to_string(),
            })
            .collect();
        let answers = remote.load_many(&requests);
        assert_eq!(answers.len(), requests.len());
        let mut hits = 0u64;
        for (i, answer) in answers.iter().enumerate() {
            if i < total && i % 2 == 0 {
                assert_eq!(answer.as_deref(), Some(format!("payload {i}").as_str()));
                hits += 1;
            } else {
                assert!(answer.is_none(), "entry {i} must miss");
            }
        }
        let stats = remote.stats();
        assert_eq!(stats.hits, hits);
        assert_eq!(stats.misses, requests.len() as u64 - hits);

        remote.shutdown_daemon().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn load_many_serves_buffered_writes_without_a_daemon() {
        // Bind-then-drop guarantees a dead port: only the write-behind
        // buffer can answer, everything else degrades to counted misses.
        let dead_addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().to_string()
        };
        let remote = RemoteStore::new(&dead_addr).timeout(Duration::from_millis(200));
        remote.put("unit", 1, "c", "from the buffer");
        let answers = remote.load_many(&[
            StoreRequest {
                kind: "unit".to_string(),
                key: 1,
                check: "c".to_string(),
            },
            StoreRequest {
                kind: "unit".to_string(),
                key: 2,
                check: "c".to_string(),
            },
        ]);
        assert_eq!(answers[0].as_deref(), Some("from the buffer"));
        assert_eq!(answers[1], None);
        assert_eq!(remote.stats().hits, 1);
        assert_eq!(remote.stats().misses, 1);
    }

    #[test]
    fn write_behind_publishes_at_capacity_and_on_drop() {
        let backing = Arc::new(MemoryStore::new());
        let handle = StoreServer::spawn(
            "127.0.0.1:0",
            Arc::clone(&backing) as Arc<dyn ArtifactStore>,
        )
        .unwrap();
        {
            let remote = handle.client().write_behind(2);
            remote.put("unit", 1, "c", "one");
            assert_eq!(backing.len(), 0, "below capacity: buffered");
            remote.put("unit", 2, "c", "two");
            assert_eq!(
                backing.len(),
                2,
                "capacity reached: one mput publishes both"
            );
            remote.put("unit", 3, "c", "three");
            assert_eq!(backing.len(), 2, "tail write buffered again");
            assert_eq!(remote.stats().writes, 2);
            // Dropping the client publishes the leftover buffer.
        }
        assert_eq!(backing.len(), 3);

        // write_behind(0) restores the pre-batched immediate puts.
        let eager = handle.client().write_behind(0);
        eager.put("unit", 4, "c", "four");
        assert_eq!(backing.len(), 4);
        assert_eq!(eager.stats().writes, 1);
        eager.shutdown_daemon().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn store_daemon_answers_batched_wire_lines_positionally() {
        let handle = StoreServer::spawn("127.0.0.1:0", Arc::new(MemoryStore::new()) as _).unwrap();
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut ask = |line: &str| {
            writeln!(&stream, "{line}").unwrap();
            (&stream).flush().unwrap();
            let mut response = String::new();
            reader.read_line(&mut response).unwrap();
            response.trim_end_matches('\n').to_string()
        };
        assert_eq!(
            ask(
                "mput count=2 kind=unit key=0000000000000001 check=c payload=one\\stwo \
                 kind=unit key=0000000000000002 check=c payload="
            ),
            "ok count=2"
        );
        // Answers come back positionally: hit, miss, hit-with-empty-payload.
        assert_eq!(
            ask("mget count=3 kind=unit key=0000000000000001 check=c \
                 kind=unit key=0000000000000003 check=c \
                 kind=unit key=0000000000000002 check=c"),
            "mres count=3 hit payload=one\\stwo miss hit payload="
        );
        // Truncated batches, trailing tokens and bad keys are rejected
        // in-band; the connection survives.
        assert!(ask("mget count=2 kind=unit key=0000000000000001 check=c").starts_with("err msg="));
        assert!(
            ask("mget count=1 kind=unit key=0000000000000001 check=c extra=1")
                .starts_with("err msg=")
        );
        assert!(ask("mput count=1 kind=unit key=zz check=c payload=p").starts_with("err msg="));
        assert_eq!(ask("ping"), "ok pong");
        assert_eq!(ask("shutdown"), "ok shutdown");
        handle.join().unwrap();
    }

    #[test]
    fn remote_store_degrades_to_misses_when_daemon_is_unreachable() {
        // Bind-then-drop guarantees a dead port.
        let dead_addr = {
            let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().to_string()
        };
        assert!(RemoteStore::connect(&dead_addr).is_err(), "ping must fail");
        let remote = RemoteStore::new(&dead_addr).timeout(Duration::from_millis(200));
        assert_eq!(remote.load("unit", 1, "c"), None);
        remote.put("unit", 1, "c", "p");
        assert_eq!(remote.stats().misses, 1);
        assert_eq!(remote.stats().writes, 0, "failed put is uncounted");
    }

    #[test]
    fn store_daemon_rejects_malformed_lines_in_band() {
        let handle = StoreServer::spawn("127.0.0.1:0", Arc::new(MemoryStore::new()) as _).unwrap();
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut ask = |line: &str| {
            writeln!(&stream, "{line}").unwrap();
            (&stream).flush().unwrap();
            let mut response = String::new();
            reader.read_line(&mut response).unwrap();
            response.trim().to_string()
        };
        assert!(ask("get kind=unit").starts_with("err msg="));
        assert!(ask("put kind=unit key=zz check=c payload=p").starts_with("err msg="));
        assert!(ask("warp").starts_with("err msg="));
        // The connection survives protocol errors.
        assert_eq!(ask("ping"), "ok pong");
        assert_eq!(ask("shutdown"), "ok shutdown");
        handle.join().unwrap();
    }

    #[test]
    fn entry_render_and_parse_invert() {
        let rendered = render_entry("histogram", "a b", "total=0 flips=0 counts=");
        let (kind, check, payload) = parse_entry(&rendered).unwrap();
        assert_eq!(kind, "histogram");
        assert_eq!(check, "a b");
        assert_eq!(payload, "total=0 flips=0 counts=");
        assert!(parse_entry("").is_none());
        assert!(parse_entry("read-artifact v1\nkind=x\n").is_none());
    }
}
