//! Unified staged-pipeline API for the READ reproduction.
//!
//! The paper's contribution is a *flow*: cluster a layer's output channels,
//! reorder its input channels, then measure the timing error rate and the
//! network accuracy under PVTA stress.  This crate packages that flow as a
//! single composable object, [`ReadPipeline`], built from three trait-based
//! stages:
//!
//! * [`ScheduleSource`] — turns a weight matrix into a compute schedule.
//!   Implemented by [`Baseline`], by [`read_core::ReadOptimizer`] itself,
//!   and by the paper-set [`Algorithm`] enum; custom heuristics implement
//!   the same trait.
//! * [`ErrorModel`] — turns a triggered-depth histogram into a TER estimate
//!   at an operating condition.  The hierarchy covers the paper's three
//!   error-analysis modes: [`DelayErrorModel`] (closed-form analytic, the
//!   default), [`MonteCarloErrorModel`] (seeded sampling, mean/stddev
//!   aggregation) and [`VariationErrorModel`] (per-PE process variation of
//!   one die); reports carry the optional `ter_stddev`/`corner` fields they
//!   produce.
//! * [`Evaluator`] — measures accuracy under per-layer BERs
//!   ([`TopKEvaluator`] wraps [`qnn::fault::evaluate_topk`]).
//!
//! Every experiment first expands into a [`WorkPlan`] — a typed, enumerable
//! list of position-independent [`WorkUnit`]s with a deterministic text
//! wire encoding — and then runs on an [`Executor`]: [`SerialExecutor`],
//! [`ThreadExecutor`] (scoped worker threads) or [`SubprocessExecutor`]
//! (worker processes speaking the unit-id/unit-result protocol over
//! stdin/stdout).  The [`Aggregator`] folds any permutation or partition of
//! unit results back into typed, deterministically-serializable
//! [`LayerReport`]/[`NetworkReport`]/[`AccuracyReport`]/[`SweepReport`]
//! results, byte-identical across execution strategies.  Schedules and
//! histograms are cached under seed-aware keys so repeated corners never
//! re-optimize or re-simulate — and the caches can be backed by a
//! content-addressed [`ArtifactStore`] ([`MemoryStore`] for cross-pipeline
//! sharing, [`DiskStore`] for persistence across processes and runs), which
//! also memoizes whole work-unit results so a rerun of any plan is pure
//! aggregation (see [`store`]).
//!
//! The [`sweep`] subsystem evaluates one pipeline across a whole grid of
//! operating corners and silicon dies in a single run: a [`SweepPlan`]
//! (conditions × dies, plus a shardable Monte-Carlo trial budget) expands
//! into the same work units and produces a [`SweepReport`] whose per-cell
//! rows are byte-identical to the equivalent single-condition runs.
//!
//! # Example
//!
//! ```
//! use read_pipeline::prelude::*;
//!
//! # fn main() -> Result<(), read_pipeline::PipelineError> {
//! let pipeline = ReadPipeline::builder()
//!     .source(Algorithm::Baseline)
//!     .source(Algorithm::ClusterThenReorder(SortCriterion::SignFirst))
//!     .condition(OperatingCondition::aging_vt(10.0, 0.05))
//!     .parallel()
//!     .build()?;
//!
//! let config = WorkloadConfig { pixels_per_layer: 1, ..Default::default() };
//! let workloads: Vec<_> = vgg16_workloads(&config).into_iter().take(2).collect();
//! let report = pipeline.run_ter("vgg16", &workloads)?;
//! let (geo, max) = report.ter_reduction("cluster-then-reorder[sign_first]", "baseline");
//! assert!(geo >= 1.0 && max >= geo);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod error;
pub mod exec;
pub mod executor;
pub mod plan;
pub mod report;
pub mod serve;
pub mod stage;
pub mod store;
pub mod sweep;
pub mod workload;

mod pipeline;

pub use cache::{
    CacheStats, HistogramCheck, HistogramKey, KeyCheck, ScheduleKey, UnitCheck, UnitKey,
};
pub use error::PipelineError;
pub use executor::{
    Executor, FlakyExecutor, FleetStats, SerialExecutor, SocketExecutor, SubprocessExecutor,
    ThreadExecutor,
};
pub use pipeline::{ReadPipeline, ReadPipelineBuilder};
pub use plan::{Aggregator, PlanOutput, UnitLedger, UnitResult, WorkPlan, WorkUnit};
pub use report::{
    AccuracyPoint, AccuracyReport, DataflowNetworkReport, DataflowRow, LayerReport, NetworkReport,
};
pub use serve::{
    AccuracySpec, CornerSpec, McSpec, ModelFamily, Priority, RequestKind, ServeClient, ServeHandle,
    ServeReply, ServeRequest, ServeServer, ServerConfig, SourceSpec, WorkerConfig, WorkerHandle,
    WorkerServer, NO_TIMEOUT,
};
pub use stage::{
    Algorithm, Baseline, DataflowProber, DelayErrorModel, ErrorModel, Evaluator, EventProber,
    MonteCarloErrorModel, ScheduleSource, TopKEvaluator, VariationErrorModel,
};
pub use store::{
    ArtifactStore, DiskStore, MemoryStore, RemoteStore, StoreHandle, StoreRequest, StoreServer,
    StoreStats,
};
pub use sweep::{DieSpec, MonteCarloSweep, SweepCell, SweepPlan, SweepReport, WorstCase};
pub use workload::{
    resnet18_workloads, resnet18_workloads_prefix, resnet34_workloads, resnet34_workloads_prefix,
    vgg16_workloads, vgg16_workloads_prefix, LayerWorkload, WorkloadConfig,
};

/// Everything a pipeline consumer usually needs.
pub mod prelude {
    pub use crate::cache::CacheStats;
    pub use crate::error::PipelineError;
    pub use crate::executor::{
        Executor, FlakyExecutor, FleetStats, SerialExecutor, SocketExecutor, SubprocessExecutor,
        ThreadExecutor,
    };
    pub use crate::pipeline::{ReadPipeline, ReadPipelineBuilder};
    pub use crate::plan::{Aggregator, PlanOutput, UnitLedger, UnitResult, WorkPlan, WorkUnit};
    pub use crate::report::{
        AccuracyPoint, AccuracyReport, DataflowNetworkReport, DataflowRow, LayerReport,
        NetworkReport,
    };
    pub use crate::serve::{
        AccuracySpec, CornerSpec, McSpec, ModelFamily, Priority, RequestKind, ServeClient,
        ServeHandle, ServeReply, ServeRequest, ServeServer, ServerConfig, SourceSpec, WorkerConfig,
        WorkerHandle, WorkerServer, NO_TIMEOUT,
    };
    pub use crate::stage::{
        Algorithm, Baseline, DataflowProber, DelayErrorModel, ErrorModel, Evaluator, EventProber,
        MonteCarloErrorModel, ScheduleSource, TopKEvaluator, VariationErrorModel,
    };
    pub use crate::store::{
        ArtifactStore, DiskStore, MemoryStore, RemoteStore, StoreHandle, StoreRequest, StoreServer,
        StoreStats,
    };
    pub use crate::sweep::{
        DieSpec, MonteCarloSweep, SweepCell, SweepPlan, SweepReport, WorstCase,
    };
    pub use crate::workload::{
        resnet18_workloads, resnet18_workloads_prefix, resnet34_workloads,
        resnet34_workloads_prefix, vgg16_workloads, vgg16_workloads_prefix, LayerWorkload,
        WorkloadConfig,
    };
    pub use read_core::{ClusteringMode, ReadConfig, ReadOptimizer, SortCriterion};
    pub use timing::{OperatingCondition, OperatingCorner, TerEstimate, Variation};
}
