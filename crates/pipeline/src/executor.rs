//! Execution strategies for a [`WorkPlan`]: the [`Executor`] trait and its
//! in-process ([`SerialExecutor`], [`ThreadExecutor`]) and multi-process
//! ([`SubprocessExecutor`]) implementations.
//!
//! An executor receives a plan plus a unit-index range and returns one
//! [`UnitResult`] per unit.  Units are position-independent and results are
//! self-identifying, so *how* the range is executed — one thread, a scoped
//! thread pool, or worker processes speaking the wire protocol over
//! stdin/stdout — never changes what the [`crate::Aggregator`] folds the
//! results into: every executor produces byte-identical reports.  This
//! trait is the seam later distribution backends (machines, job queues)
//! plug into; they only need to return the same results for the same unit
//! ids.

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::ops::Range;
use std::path::PathBuf;
use std::process::{Child, Command, ExitStatus, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::error::PipelineError;
use crate::exec::{resolve_threads, run_indexed_threads};
use crate::plan::{UnitLedger, UnitResult, WorkPlan, WorkUnit};

/// A strategy for executing a contiguous range of a [`WorkPlan`]'s units.
pub trait Executor: Send + Sync {
    /// Display name of the strategy (for logs and debugging).
    fn name(&self) -> String;

    /// Executes the units at `range` and returns their results in unit-index
    /// order, one per unit.  On failure the error of the smallest failing
    /// unit index is returned, independent of worker timing.
    ///
    /// # Errors
    ///
    /// Propagates unit failures and executor-level failures
    /// ([`PipelineError::Exec`]: dead workers, undecodable wire traffic,
    /// missing results).
    fn execute(
        &self,
        plan: &WorkPlan<'_>,
        range: Range<usize>,
    ) -> Result<Vec<UnitResult>, PipelineError>;
}

/// Runs every unit on the calling thread, in order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SerialExecutor;

impl Executor for SerialExecutor {
    fn name(&self) -> String {
        "serial".to_string()
    }

    fn execute(
        &self,
        plan: &WorkPlan<'_>,
        range: Range<usize>,
    ) -> Result<Vec<UnitResult>, PipelineError> {
        range.map(|index| plan.run_unit(index)).collect()
    }
}

/// Runs units on scoped worker threads pulling from a shared queue
/// (absorbing the legacy `ExecMode::Parallel` behavior).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreadExecutor {
    /// Worker count; `0` uses the machine's available parallelism.  The
    /// resolved count is clamped to at least one thread and at most one per
    /// unit.
    pub threads: usize,
}

impl ThreadExecutor {
    /// Executor with an explicit worker count (`0` = machine-sized).
    pub fn new(threads: usize) -> Self {
        ThreadExecutor { threads }
    }

    /// Executor sized to the machine's available parallelism.
    pub fn machine() -> Self {
        ThreadExecutor { threads: 0 }
    }
}

impl Executor for ThreadExecutor {
    fn name(&self) -> String {
        match self.threads {
            0 => "threads[machine]".to_string(),
            n => format!("threads[{n}]"),
        }
    }

    fn execute(
        &self,
        plan: &WorkPlan<'_>,
        range: Range<usize>,
    ) -> Result<Vec<UnitResult>, PipelineError> {
        let start = range.start;
        run_indexed_threads(
            resolve_threads(self.threads, range.len()),
            range.len(),
            |i| plan.run_unit(start + i),
        )
    }
}

/// Distributes units across worker *processes* speaking the
/// [`crate::plan`] wire protocol: each worker receives unit-id lines on
/// stdin and answers one encoded [`UnitResult`] line per unit on stdout.
///
/// The driver splits the range into one contiguous chunk per worker,
/// spawns every worker, feeds and drains them concurrently, and re-orders
/// the self-identifying results by unit index — so the aggregate is
/// byte-identical to a serial run regardless of worker count or scheduling.
///
/// A worker is any command that reconstructs the same pipeline and plan and
/// calls [`WorkPlan::serve`] on its stdio — see `examples/shard_worker.rs`
/// for the canonical self-spawning driver.  Lines a worker writes that are
/// neither a decodable result nor a `!`-prefixed failure report are ignored
/// (harness chatter); failure reports and missing results abort the run.
#[derive(Debug, Clone)]
pub struct SubprocessExecutor {
    program: PathBuf,
    args: Vec<String>,
    envs: Vec<(String, String)>,
    workers: usize,
}

impl SubprocessExecutor {
    /// Executor spawning `program` as the worker command (2 workers by
    /// default).
    pub fn new(program: impl Into<PathBuf>) -> Self {
        SubprocessExecutor {
            program: program.into(),
            args: Vec::new(),
            envs: Vec::new(),
            workers: 2,
        }
    }

    /// Adds one worker command-line argument.
    pub fn arg(mut self, arg: impl Into<String>) -> Self {
        self.args.push(arg.into());
        self
    }

    /// Adds several worker command-line arguments.
    pub fn args(mut self, args: impl IntoIterator<Item = impl Into<String>>) -> Self {
        self.args.extend(args.into_iter().map(Into::into));
        self
    }

    /// Sets an environment variable for every worker process.
    pub fn env(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.envs.push((key.into(), value.into()));
        self
    }

    /// Sets the worker-process count (clamped to at least 1 at execution).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// The configured worker count.
    pub fn worker_count(&self) -> usize {
        self.workers
    }

    fn spawn_worker(&self) -> Result<Child, PipelineError> {
        let mut command = Command::new(&self.program);
        command
            .args(&self.args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            // stderr is not part of the protocol; capture it so a dying
            // worker's panic message can be attached to the driver error
            // (and re-emitted on the driver's stderr on success).
            .stderr(Stdio::piped());
        for (key, value) in &self.envs {
            command.env(key, value);
        }
        command.spawn().map_err(|e| {
            PipelineError::exec(format!(
                "failed to spawn worker {:?}: {e}",
                self.program.display()
            ))
        })
    }

    /// Feeds `units` to one worker and returns its results matched back to
    /// the request order.
    ///
    /// Every exit path — protocol error, worker crash, even a panic in a
    /// driver thread — reaps the child (via [`ChildGuard`]); no path leaves
    /// a zombie.  Protocol errors carry the worker's exit status and its
    /// captured stderr so a mid-stream death is diagnosable from the error
    /// alone.
    fn drive_worker(&self, units: &[WorkUnit]) -> Result<Vec<UnitResult>, PipelineError> {
        let mut guard = ChildGuard::new(self.spawn_worker()?);
        let Some(mut stdin) = guard.child.stdin.take() else {
            return Err(PipelineError::exec("worker stdin was not piped"));
        };
        let Some(stdout) = guard.child.stdout.take() else {
            return Err(PipelineError::exec("worker stdout was not piped"));
        };
        let stderr = guard.child.stderr.take();

        // Feed from a scoped thread while draining on this one, so neither
        // pipe can fill up and deadlock the pair.  stderr is drained on its
        // own thread for the same reason: a chatty worker must not block on
        // a full stderr pipe while the driver waits for stdout.
        let (drained, written, stderr_text) = std::thread::scope(|scope| {
            let writer = scope.spawn(move || -> std::io::Result<()> {
                for unit in units {
                    writeln!(stdin, "{}", unit.encode())?;
                }
                stdin.flush()
                // Dropping stdin closes the pipe: the worker sees EOF and
                // exits its serve loop.
            });
            let stderr_reader = scope.spawn(move || {
                let mut text = String::new();
                if let Some(mut pipe) = stderr {
                    let _ = pipe.read_to_string(&mut text);
                }
                text
            });

            // Unit → request-index lookup: results self-identify, so each
            // line is matched in O(1) rather than scanning the chunk.
            let unit_index: HashMap<&WorkUnit, usize> = units
                .iter()
                .enumerate()
                .map(|(index, unit)| (unit, index))
                .collect();
            let mut results: Vec<Option<UnitResult>> = vec![None; units.len()];
            let drain = |results: &mut Vec<Option<UnitResult>>| -> Result<(), PipelineError> {
                for line in BufReader::new(stdout).lines() {
                    let line = line.map_err(|e| {
                        PipelineError::exec(format!("worker stdout read failed: {e}"))
                    })?;
                    let line = line.trim();
                    if let Some(failure) = line.strip_prefix('!') {
                        return Err(PipelineError::exec(format!(
                            "worker reported failure: {failure}"
                        )));
                    }
                    // Non-protocol chatter (e.g. a test harness banner) is
                    // skipped; only decodable results are collected.
                    let Ok(result) = UnitResult::decode(line) else {
                        continue;
                    };
                    let unit = result.unit();
                    match unit_index.get(&unit).copied() {
                        Some(index) if results[index].is_none() => {
                            results[index] = Some(result);
                        }
                        Some(_) => {
                            return Err(PipelineError::exec(format!(
                                "worker returned unit {:?} twice",
                                unit.encode()
                            )));
                        }
                        None => {
                            return Err(PipelineError::exec(format!(
                                "worker returned unrequested unit {:?}",
                                unit.encode()
                            )));
                        }
                    }
                }
                Ok(())
            };
            let drained = drain(&mut results);
            // If drain aborted early, a *serve-based* worker unblocks on its
            // own (its result writes hit EPIPE and it exits) — but a wedged
            // or foreign worker may never exit, leaving the writer blocked
            // on a full stdin pipe and the stderr reader short of EOF.  Kill
            // the child here so both joins below are guaranteed to return.
            if drained.is_err() {
                let _ = guard.child.kill();
            }
            let written: Result<(), PipelineError> = match writer.join() {
                Ok(Ok(())) => Ok(()),
                Ok(Err(e)) => Err(PipelineError::exec(format!(
                    "worker stdin write failed: {e}"
                ))),
                Err(_) => Err(PipelineError::exec("worker stdin writer thread panicked")),
            };
            let stderr_text = stderr_reader.join().unwrap_or_default();
            (drained.map(|()| results), written, stderr_text)
        });

        let status = guard
            .wait()
            .map_err(|e| PipelineError::exec(format!("worker wait failed: {e}")))?;
        let results = match drained.and_then(|results| written.map(|()| results)) {
            Ok(results) => results,
            Err(e) => {
                return Err(PipelineError::exec(format!(
                    "{e} ({}{})",
                    describe_exit(status),
                    stderr_excerpt(&stderr_text)
                )));
            }
        };
        if !status.success() {
            return Err(PipelineError::exec(format!(
                "{}{}",
                describe_exit(status),
                stderr_excerpt(&stderr_text)
            )));
        }
        // The protocol succeeded: forward the worker's diagnostics to the
        // driver's stderr, preserving the visibility the old
        // `Stdio::inherit` gave worker panics and harness chatter.
        if !stderr_text.is_empty() {
            eprint!("{stderr_text}");
        }
        results
            .into_iter()
            .zip(units)
            .map(|(slot, unit)| {
                slot.ok_or_else(|| {
                    PipelineError::exec(format!(
                        "worker returned no result for unit {:?}",
                        unit.encode()
                    ))
                })
            })
            .collect()
    }
}

/// Reaps a worker process on every exit path: dropping the guard without
/// calling [`ChildGuard::wait`] kills the child and waits on it, so early
/// returns and panics in the driver cannot leak zombies.
struct ChildGuard {
    child: Child,
    reaped: bool,
}

impl ChildGuard {
    fn new(child: Child) -> Self {
        ChildGuard {
            child,
            reaped: false,
        }
    }

    /// Waits for the child to exit and disarms the drop-side kill.
    fn wait(&mut self) -> std::io::Result<ExitStatus> {
        let status = self.child.wait();
        if status.is_ok() {
            self.reaped = true;
        }
        status
    }
}

impl Drop for ChildGuard {
    fn drop(&mut self) {
        if !self.reaped {
            let _ = self.child.kill();
            let _ = self.child.wait();
        }
    }
}

/// Human-readable exit summary: "worker exited with exit status: 7" or, for
/// a still-running (killed) worker, the signal form the platform reports.
fn describe_exit(status: ExitStatus) -> String {
    format!("worker exited with {status}")
}

/// Bounded stderr attachment for error messages (the full stream could be
/// megabytes of harness output; errors stay greppable).
fn stderr_excerpt(text: &str) -> String {
    const CAP: usize = 4096;
    let trimmed = text.trim();
    if trimmed.is_empty() {
        return String::new();
    }
    let mut excerpt = trimmed.to_string();
    if excerpt.len() > CAP {
        let mut cut = CAP;
        while !excerpt.is_char_boundary(cut) {
            cut -= 1;
        }
        excerpt.truncate(cut);
        excerpt.push_str("… [truncated]");
    }
    format!("; worker stderr: {excerpt}")
}

impl Executor for SubprocessExecutor {
    fn name(&self) -> String {
        format!(
            "subprocess[{}x {}]",
            self.workers.max(1),
            self.program.display()
        )
    }

    fn execute(
        &self,
        plan: &WorkPlan<'_>,
        range: Range<usize>,
    ) -> Result<Vec<UnitResult>, PipelineError> {
        let units: Vec<WorkUnit> = range
            .map(|index| {
                plan.units()
                    .get(index)
                    .cloned()
                    .ok_or_else(|| PipelineError::exec(format!("unit index {index} out of range")))
            })
            .collect::<Result<_, _>>()?;
        if units.is_empty() {
            return Ok(Vec::new());
        }
        let workers = self.workers.max(1).min(units.len());
        let per_chunk = units.len().div_ceil(workers);
        let chunks: Vec<&[WorkUnit]> = units.chunks(per_chunk).collect();
        // One driver thread per worker process; chunk order is preserved, so
        // the concatenation is in unit-index order.
        let chunk_results = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|chunk| scope.spawn(move || self.drive_worker(chunk)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker driver thread"))
                .collect::<Vec<_>>()
        });
        let mut out = Vec::with_capacity(units.len());
        for chunk in chunk_results {
            out.extend(chunk?);
        }
        Ok(out)
    }
}

/// Observed fleet behavior of a [`SocketExecutor`], shared across clones of
/// the executor (counters accumulate over every `execute` call).
///
/// These are diagnostics, not part of the result contract: a run that
/// reports deaths and retries still aggregates byte-identically to a serial
/// run, because lost units are re-executed and results self-identify.
#[derive(Debug, Default)]
pub struct FleetStats {
    worker_deaths: AtomicU64,
    failed_connects: AtomicU64,
    retried_units: AtomicU64,
    completed_units: AtomicU64,
    inflight_peak: AtomicU64,
    requeued_inflight: AtomicU64,
}

impl FleetStats {
    /// Workers that died mid-stream (EOF, io error, liveness timeout, or a
    /// malformed/mismatched response) after a successful handshake.
    pub fn worker_deaths(&self) -> u64 {
        self.worker_deaths.load(Ordering::Relaxed)
    }

    /// Worker addresses that never completed the connect + handshake.
    pub fn failed_connects(&self) -> u64 {
        self.failed_connects.load(Ordering::Relaxed)
    }

    /// Units re-queued for another worker after their first worker died.
    pub fn retried_units(&self) -> u64 {
        self.retried_units.load(Ordering::Relaxed)
    }

    /// Unit results successfully collected from remote workers.
    pub fn completed_units(&self) -> u64 {
        self.completed_units.load(Ordering::Relaxed)
    }

    /// The largest in-flight window observed on any single worker: 1 under
    /// lock-step dispatch, up to [`SocketExecutor::window`] when pipelining
    /// actually filled the wire.
    pub fn inflight_peak(&self) -> u64 {
        self.inflight_peak.load(Ordering::Relaxed)
    }

    /// In-flight units swept back to the pending queue by worker deaths —
    /// under windowed dispatch one death can requeue a whole window, and
    /// this counter makes that recovery observable (it counts only the
    /// requeued units; budget-exhausted losses fail the run instead).
    pub fn requeued_inflight(&self) -> u64 {
        self.requeued_inflight.load(Ordering::Relaxed)
    }

    fn observe_inflight(&self, depth: u64) {
        self.inflight_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// The counters as a deterministic JSON object (keys in declaration
    /// order, one per line) — the layout is golden-pinned in
    /// `tests/fixtures/fleet_stats.json`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(192);
        out.push_str("{\n");
        let fields = [
            ("worker_deaths", self.worker_deaths()),
            ("failed_connects", self.failed_connects()),
            ("retried_units", self.retried_units()),
            ("completed_units", self.completed_units()),
            ("inflight_peak", self.inflight_peak()),
            ("requeued_inflight", self.requeued_inflight()),
        ];
        for (i, (key, value)) in fields.iter().enumerate() {
            out.push_str("  \"");
            out.push_str(key);
            out.push_str("\": ");
            out.push_str(&value.to_string());
            out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
        }
        out.push_str("}\n");
        out
    }
}

/// How a connect + handshake attempt against one worker address ended.
enum ConnectOutcome {
    /// Connected and the worker accepted the pipeline spec; the `usize` is
    /// the negotiated in-flight window (1 = lock-step peer).
    Ready(BufReader<TcpStream>, usize),
    /// The worker is unreachable or died during the handshake; its share of
    /// the plan is redistributed to surviving workers.
    Down(String),
    /// The worker *answered* and rejected the spec — a configuration error
    /// that retrying on other workers cannot fix.
    Rejected(String),
}

/// How the optional `window=<n>` pre-spec negotiation ended.
enum WindowOutcome {
    /// The worker understands the streamed protocol and answered
    /// `ok window=<m>`; pipeline at `min(requested, m)`.
    Negotiated(BufReader<TcpStream>, usize),
    /// The worker rejected (or closed on) the unknown line — an old
    /// lock-step peer.  Reconnect fresh and drive it at window 1.
    LockStep,
    /// The connection itself failed.
    Down(String),
}

/// How one response read from a live worker ended.
enum Exchange {
    /// The worker answered with a self-identifying unit result.
    Completed(UnitResult),
    /// The worker reported an in-band (`!`-prefixed) unit failure — a
    /// deterministic error every worker would reproduce, so it is recorded,
    /// not retried.  Workers answer in request order, so it belongs to the
    /// oldest in-flight unit.
    UnitFailed(String),
    /// The connection died (EOF, io error, liveness timeout, or an
    /// undecodable response); every in-flight unit is lost.
    Death(String),
}

/// Shared driver state for one [`SocketExecutor::execute`] call: the unit
/// ledger, worker liveness, and the first fatal (non-retryable) error.
struct FleetShared {
    ledger: Mutex<UnitLedger>,
    work_cv: Condvar,
    live_workers: Mutex<usize>,
    fatal: Mutex<Option<String>>,
}

impl FleetShared {
    fn new(units: usize, max_attempts: u32, workers: usize) -> Self {
        let mut ledger = UnitLedger::new(units, max_attempts);
        for _ in 0..workers {
            // Worker id i belongs to the driver thread of address i.
            ledger.add_worker();
        }
        FleetShared {
            ledger: Mutex::new(ledger),
            work_cv: Condvar::new(),
            live_workers: Mutex::new(workers),
            fatal: Mutex::new(None),
        }
    }

    fn lock_ledger(&self) -> std::sync::MutexGuard<'_, UnitLedger> {
        self.ledger.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn fatal_set(&self) -> bool {
        self.fatal
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_some()
    }

    fn set_fatal(&self, reason: String) {
        let mut fatal = self.fatal.lock().unwrap_or_else(|e| e.into_inner());
        fatal.get_or_insert(reason);
        drop(fatal);
        self.work_cv.notify_all();
    }

    /// Blocks until a unit is available, the plan is settled, a fatal error
    /// is recorded, or the deadline expires.  Returns the checked-out
    /// `(slot, attempt)` or `None` when this worker should stop.
    ///
    /// Workers must *not* exit on a momentarily-empty queue: another
    /// worker's in-flight unit may yet be lost and re-queued, and this
    /// worker may be the only survivor able to run it.
    fn next_job(&self, worker: usize, deadline: Option<Instant>) -> Option<(usize, u32)> {
        let mut ledger = self.lock_ledger();
        loop {
            if self.fatal_set() {
                return None;
            }
            if let Some(deadline) = deadline {
                if Instant::now() >= deadline {
                    drop(ledger);
                    self.set_fatal("request timed out while units were outstanding".to_string());
                    return None;
                }
            }
            if let Some(job) = ledger.checkout_for(worker) {
                return Some(job);
            }
            if ledger.is_settled() {
                // Wake any other waiters so they observe settledness too.
                self.work_cv.notify_all();
                return None;
            }
            // Bounded wait so the deadline (and fatal flags set without the
            // ledger lock held) are re-checked promptly.
            let (guard, _) = self
                .work_cv
                .wait_timeout(ledger, Duration::from_millis(50))
                .unwrap_or_else(|e| e.into_inner());
            ledger = guard;
        }
    }

    /// Non-blocking [`FleetShared::next_job`]: tops up a worker's window
    /// when more work is pending *right now*, without waiting for other
    /// workers' in-flight units to be lost and re-queued — the worker
    /// already has units in flight to keep it busy.
    fn try_job(&self, worker: usize) -> Option<(usize, u32)> {
        if self.fatal_set() {
            return None;
        }
        self.lock_ledger().checkout_for(worker)
    }

    /// Settles `slot` from `worker`'s window; `false` means the worker
    /// never held that slot (a protocol violation — treat the connection
    /// as corrupt).
    fn complete(&self, worker: usize, slot: usize, result: UnitResult) -> bool {
        let matched = self.lock_ledger().complete_for(worker, slot, result);
        self.work_cv.notify_all();
        matched
    }

    fn fail(&self, worker: usize, slot: usize, reason: String) -> bool {
        let matched = self.lock_ledger().fail_for(worker, slot, reason);
        self.work_cv.notify_all();
        matched
    }

    /// Requeues (or budget-fails) every unit in `worker`'s window; returns
    /// `(requeued, held)` counts.
    fn lose_all(&self, worker: usize, reason: &str) -> (usize, usize) {
        let counts = self.lock_ledger().lose_all(worker, reason);
        self.work_cv.notify_all();
        counts
    }

    /// Removes one worker from the live set; when the last worker is gone,
    /// all still-pending units are abandoned so the run fails loudly rather
    /// than hanging.
    fn worker_down(&self, reason: &str) {
        let mut live = self.live_workers.lock().unwrap_or_else(|e| e.into_inner());
        *live = live.saturating_sub(1);
        let none_left = *live == 0;
        drop(live);
        if none_left {
            self.lock_ledger()
                .abandon_pending(&format!("no live workers remain; last error: {reason}"));
        }
        self.work_cv.notify_all();
    }
}

/// Distributes units across worker *machines*: connects to N TCP addresses
/// (each served by a `read-worker` process), streams encoded [`WorkUnit`]
/// lines, and collects self-identifying [`UnitResult`] lines.
///
/// Unlike the local executors, remote workers can die mid-stream — the
/// driver detects EOF, io errors, liveness timeouts, and malformed or
/// mismatched responses, and re-queues the lost unit for a surviving worker
/// (up to [`SocketExecutor::max_attempts`] attempts per unit).  Because
/// results self-identify and the [`crate::Aggregator`] accepts any
/// partition/permutation, a run that survives worker deaths aggregates
/// byte-identically to [`SerialExecutor`].
///
/// Wire session, per worker (line-delimited, same unit grammar as
/// [`WorkPlan::serve`]):
///
/// ```text
/// driver → worker   window=<n>                (only when window > 1)
/// worker → driver   ok window=<m>             (old peers "!"/close → window 1)
/// driver → worker   <pipeline spec line>      (a ServeRequest encoding)
/// worker → driver   ok units=<n>              (or "!<reason>" = rejected)
/// driver → worker   <unit line>               (up to the window streamed ahead)
/// worker → driver   <unit-result line>        (or "!<reason>" = unit failed)
/// ```
///
/// Dispatch is *windowed*: the driver streams up to
/// [`SocketExecutor::window`] unit lines per worker before awaiting
/// results, hiding the per-message network latency that a lock-step
/// exchange pays on every unit.  Loss accounting stays exact — the ledger
/// tracks each worker's in-flight *set*, results self-identify and are
/// matched against that set out of order, and a dead connection requeues
/// precisely the units it still held.  Old lock-step workers that do not
/// understand the `window=` line are driven at window 1, byte-identically
/// to before.
#[derive(Debug, Clone)]
pub struct SocketExecutor {
    spec: String,
    workers: Vec<String>,
    connect_timeout: Duration,
    liveness_timeout: Duration,
    max_attempts: u32,
    window: usize,
    stats: Arc<FleetStats>,
}

impl SocketExecutor {
    /// Executor shipping `spec` (a pipeline spec line each worker rebuilds
    /// its plan from) to `workers` (TCP `host:port` addresses).
    pub fn new(
        spec: impl Into<String>,
        workers: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        SocketExecutor {
            spec: spec.into(),
            workers: workers.into_iter().map(Into::into).collect(),
            connect_timeout: Duration::from_secs(5),
            liveness_timeout: Duration::from_secs(120),
            max_attempts: 3,
            window: 8,
            stats: Arc::new(FleetStats::default()),
        }
    }

    /// Sets the per-address TCP connect timeout (default 5s).
    #[must_use]
    pub fn connect_timeout(mut self, timeout: Duration) -> Self {
        self.connect_timeout = timeout;
        self
    }

    /// Sets the per-response liveness timeout (default 120s): a worker that
    /// goes silent longer than this while a unit is outstanding is declared
    /// dead and its unit re-queued.
    #[must_use]
    pub fn liveness_timeout(mut self, timeout: Duration) -> Self {
        self.liveness_timeout = timeout;
        self
    }

    /// Sets the per-unit attempt budget (default 3, clamped to ≥ 1): a unit
    /// lost this many times fails the run instead of being re-queued.
    #[must_use]
    pub fn max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Sets the per-worker in-flight window (default 8, clamped to ≥ 1):
    /// how many unit lines are streamed ahead of results on one
    /// connection.  1 restores the lock-step exchange; the negotiated
    /// window is further capped by what the worker answers in the
    /// `window=` handshake.
    #[must_use]
    pub fn window(mut self, window: usize) -> Self {
        self.window = window.max(1);
        self
    }

    /// The worker addresses this executor fans out to.
    pub fn worker_addrs(&self) -> &[String] {
        &self.workers
    }

    /// Shared fleet diagnostics (deaths, retries); clones of this executor
    /// accumulate into the same counters.
    pub fn stats(&self) -> Arc<FleetStats> {
        Arc::clone(&self.stats)
    }

    /// [`Executor::execute`] with an optional wall-clock deadline: when it
    /// expires the run fails with a "timed out" error instead of waiting
    /// for stragglers.  Deadline granularity is bounded by the liveness
    /// timeout (a worker blocked in a read notices on its next wake).
    ///
    /// # Errors
    ///
    /// Unit failures (smallest failing index wins), spec rejection by a
    /// worker, all workers dead with units outstanding, attempt budget
    /// exhaustion, or deadline expiry.
    pub fn execute_with_deadline(
        &self,
        plan: &WorkPlan<'_>,
        range: Range<usize>,
        deadline: Option<Instant>,
    ) -> Result<Vec<UnitResult>, PipelineError> {
        let units: Vec<WorkUnit> = range
            .map(|index| {
                plan.units()
                    .get(index)
                    .cloned()
                    .ok_or_else(|| PipelineError::exec(format!("unit index {index} out of range")))
            })
            .collect::<Result<_, _>>()?;
        if units.is_empty() {
            return Ok(Vec::new());
        }
        if self.workers.is_empty() {
            return Err(PipelineError::exec(
                "socket executor has no worker addresses",
            ));
        }
        let shared = FleetShared::new(units.len(), self.max_attempts, self.workers.len());
        std::thread::scope(|scope| {
            for (worker, addr) in self.workers.iter().enumerate() {
                let shared = &shared;
                let units = &units;
                scope.spawn(move || self.drive_fleet_worker(worker, addr, units, shared, deadline));
            }
        });
        let fatal = shared.fatal.into_inner().unwrap_or_else(|e| e.into_inner());
        if let Some(reason) = fatal {
            return Err(PipelineError::exec(reason));
        }
        let results = shared
            .ledger
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
            .into_results()?;
        self.stats
            .completed_units
            .fetch_add(results.len() as u64, Ordering::Relaxed);
        Ok(results)
    }

    /// One driver thread's session against one worker address: connect,
    /// handshake (window negotiation + spec), then windowed unit streaming
    /// until the plan settles or the connection dies.
    ///
    /// The driver keeps its window full — blocking for work only when
    /// nothing is in flight — and matches each response against its
    /// in-flight set: results self-identify, in-band `!` failures belong
    /// to the oldest outstanding unit (workers answer in request order).
    /// On death every unit still in flight is requeued at once.
    fn drive_fleet_worker(
        &self,
        worker: usize,
        addr: &str,
        units: &[WorkUnit],
        shared: &FleetShared,
        deadline: Option<Instant>,
    ) {
        let (mut reader, window) = match self.connect_worker(addr) {
            ConnectOutcome::Ready(reader, window) => (reader, window.max(1)),
            ConnectOutcome::Down(reason) => {
                self.stats.failed_connects.fetch_add(1, Ordering::Relaxed);
                shared.worker_down(&format!("worker {addr}: {reason}"));
                return;
            }
            ConnectOutcome::Rejected(reason) => {
                // A spec the worker refuses is a driver/worker configuration
                // mismatch; no amount of reassignment fixes it.
                shared.set_fatal(format!("worker {addr} rejected pipeline spec: {reason}"));
                shared.worker_down("spec rejected");
                return;
            }
        };
        // Mirror of the ledger's in-flight set for this worker, in send
        // order (front = oldest outstanding unit).
        let mut inflight: VecDeque<(usize, u32)> = VecDeque::new();
        let die = |inflight: &mut VecDeque<(usize, u32)>, reason: String| {
            self.stats.worker_deaths.fetch_add(1, Ordering::Relaxed);
            // Requeue the in-flight window *before* the live-worker
            // decrement: if this was the last worker, the units must
            // already be re-queued (or budget-failed) so `abandon_pending`
            // accounts for them too.
            let reason = format!("worker {addr} died: {reason}");
            let (requeued, _held) = shared.lose_all(worker, &reason);
            inflight.clear();
            self.stats
                .retried_units
                .fetch_add(requeued as u64, Ordering::Relaxed);
            self.stats
                .requeued_inflight
                .fetch_add(requeued as u64, Ordering::Relaxed);
            shared.worker_down(&reason);
        };
        loop {
            // Top up the window.  Block only with an empty window: the
            // queue may be momentarily dry while another worker's units
            // are in flight, and this worker may be the survivor that has
            // to run them if they are lost.
            while inflight.len() < window {
                let job = if inflight.is_empty() {
                    shared.next_job(worker, deadline)
                } else {
                    shared.try_job(worker)
                };
                let Some((slot, attempt)) = job else { break };
                inflight.push_back((slot, attempt));
                let mut stream = reader.get_ref();
                if let Err(e) = writeln!(stream, "{}", units[slot].encode()) {
                    die(&mut inflight, format!("unit send failed: {e}"));
                    return;
                }
            }
            if inflight.is_empty() {
                // Nothing pending, nothing in flight here: settled or fatal.
                return;
            }
            self.stats.observe_inflight(inflight.len() as u64);
            match self.receive(&mut reader) {
                Exchange::Completed(result) => {
                    let Some(at) = inflight
                        .iter()
                        .position(|&(slot, _)| units[slot] == result.unit())
                    else {
                        die(
                            &mut inflight,
                            format!("answered with wrong unit {:?}", result.unit().encode()),
                        );
                        return;
                    };
                    let (slot, _) = inflight.remove(at).expect("position is in range");
                    if !shared.complete(worker, slot, result) {
                        die(&mut inflight, format!("ledger lost track of slot {slot}"));
                        return;
                    }
                }
                Exchange::UnitFailed(reason) => {
                    let (slot, _) = inflight.pop_front().expect("window is non-empty");
                    if !shared.fail(worker, slot, reason) {
                        die(&mut inflight, format!("ledger lost track of slot {slot}"));
                        return;
                    }
                }
                Exchange::Death(reason) => {
                    die(&mut inflight, reason);
                    return;
                }
            }
        }
    }

    /// Connects to one worker address and performs the handshake (window
    /// negotiation, then the pipeline spec).
    fn connect_worker(&self, addr: &str) -> ConnectOutcome {
        let addrs = match addr.to_socket_addrs() {
            Ok(addrs) => addrs,
            Err(e) => return ConnectOutcome::Down(format!("address did not resolve: {e}")),
        };
        let mut last_error = "address resolved to nothing".to_string();
        for sock_addr in addrs {
            match TcpStream::connect_timeout(&sock_addr, self.connect_timeout) {
                Ok(stream) => return self.handshake(stream, &sock_addr),
                Err(e) => last_error = format!("connect failed: {e}"),
            }
        }
        ConnectOutcome::Down(last_error)
    }

    fn prepare(&self, stream: TcpStream) -> Result<BufReader<TcpStream>, String> {
        if let Err(e) = stream.set_read_timeout(Some(self.liveness_timeout)) {
            return Err(format!("set_read_timeout failed: {e}"));
        }
        let _ = stream.set_nodelay(true);
        Ok(BufReader::new(stream))
    }

    fn handshake(&self, stream: TcpStream, sock_addr: &std::net::SocketAddr) -> ConnectOutcome {
        let mut window = self.window.max(1);
        let mut stream = stream;
        if window > 1 {
            match self.negotiate_window(stream) {
                WindowOutcome::Negotiated(reader, peer) => {
                    return self.spec_handshake(reader, window.min(peer.max(1)));
                }
                WindowOutcome::LockStep => {
                    // The old peer closed the connection on the unknown
                    // line; reconnect fresh and drive it lock-step.
                    window = 1;
                    match TcpStream::connect_timeout(sock_addr, self.connect_timeout) {
                        Ok(fresh) => stream = fresh,
                        Err(e) => {
                            return ConnectOutcome::Down(format!(
                                "reconnect for lock-step fallback failed: {e}"
                            ));
                        }
                    }
                }
                WindowOutcome::Down(reason) => return ConnectOutcome::Down(reason),
            }
        }
        let reader = match self.prepare(stream) {
            Ok(reader) => reader,
            Err(reason) => return ConnectOutcome::Down(reason),
        };
        self.spec_handshake(reader, window)
    }

    /// Sends `window=<n>` and classifies the peer: a streamed-protocol
    /// worker answers `ok window=<m>`; an old lock-step worker rejects the
    /// line (`!`-reply and/or close), which is the fallback signal.
    fn negotiate_window(&self, stream: TcpStream) -> WindowOutcome {
        let mut reader = match self.prepare(stream) {
            Ok(reader) => reader,
            Err(reason) => return WindowOutcome::Down(reason),
        };
        if let Err(e) = writeln!(reader.get_ref(), "window={}", self.window) {
            return WindowOutcome::Down(format!("window send failed: {e}"));
        }
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => return WindowOutcome::LockStep,
            Ok(_) => {}
            Err(e) => return WindowOutcome::Down(format!("window negotiation read failed: {e}")),
        }
        let line = line.trim();
        if line.starts_with('!') {
            return WindowOutcome::LockStep;
        }
        match line
            .strip_prefix("ok window=")
            .and_then(|m| m.parse::<usize>().ok())
        {
            Some(peer) => WindowOutcome::Negotiated(reader, peer),
            None => WindowOutcome::Down(format!("unexpected window response {line:?}")),
        }
    }

    /// Sends the pipeline spec and awaits acceptance on a prepared
    /// connection.
    fn spec_handshake(&self, mut reader: BufReader<TcpStream>, window: usize) -> ConnectOutcome {
        if let Err(e) = writeln!(reader.get_ref(), "{}", self.spec) {
            return ConnectOutcome::Down(format!("spec send failed: {e}"));
        }
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => return ConnectOutcome::Down("connection closed during handshake".to_string()),
            Ok(_) => {}
            Err(e) => return ConnectOutcome::Down(format!("handshake read failed: {e}")),
        }
        let line = line.trim();
        if let Some(reason) = line.strip_prefix('!') {
            return ConnectOutcome::Rejected(reason.to_string());
        }
        if line.starts_with("ok") {
            ConnectOutcome::Ready(reader, window)
        } else {
            ConnectOutcome::Down(format!("unexpected handshake response {line:?}"))
        }
    }

    /// Reads one response line from an established connection.
    fn receive(&self, reader: &mut BufReader<TcpStream>) -> Exchange {
        let mut line = String::new();
        loop {
            line.clear();
            match reader.read_line(&mut line) {
                Ok(0) => return Exchange::Death("connection closed (EOF) mid-stream".to_string()),
                Ok(_) => {}
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Exchange::Death(format!(
                        "liveness timeout: no response within {:?}",
                        self.liveness_timeout
                    ));
                }
                Err(e) => return Exchange::Death(format!("read failed: {e}")),
            }
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            if let Some(failure) = trimmed.strip_prefix('!') {
                return Exchange::UnitFailed(format!("worker reported failure: {failure}"));
            }
            // Unlike local subprocess stdout, this connection carries only
            // protocol traffic: an undecodable line means the stream is
            // corrupt and the worker cannot be trusted with further units.
            return match UnitResult::decode(trimmed) {
                Ok(result) => Exchange::Completed(result),
                Err(_) => Exchange::Death(format!("undecodable response line {trimmed:?}")),
            };
        }
    }
}

impl Executor for SocketExecutor {
    fn name(&self) -> String {
        format!("socket[{}x remote]", self.workers.len())
    }

    fn execute(
        &self,
        plan: &WorkPlan<'_>,
        range: Range<usize>,
    ) -> Result<Vec<UnitResult>, PipelineError> {
        self.execute_with_deadline(plan, range, None)
    }
}

/// Deterministic fault-injection wrapper for property tests: perturbs an
/// inner executor's result stream (seeded drops, duplicates, shuffles) to
/// prove the downstream [`crate::Aggregator`] either reproduces the serial
/// bytes exactly (pure reordering) or fails loudly (any loss/duplication) —
/// never silently omits units.
///
/// The perturbation is deterministic in `(seed, range.start)`, so a failure
/// reproduces from the test's seed alone.
#[derive(Debug)]
pub struct FlakyExecutor<E> {
    inner: E,
    seed: u64,
    drop_per_mille: u16,
    duplicate_per_mille: u16,
    shuffle: bool,
    dropped: AtomicU64,
    duplicated: AtomicU64,
}

impl<E> FlakyExecutor<E> {
    /// Wraps `inner` with no perturbations enabled; compose with the
    /// builder methods.
    pub fn new(inner: E, seed: u64) -> Self {
        FlakyExecutor {
            inner,
            seed,
            drop_per_mille: 0,
            duplicate_per_mille: 0,
            shuffle: false,
            dropped: AtomicU64::new(0),
            duplicated: AtomicU64::new(0),
        }
    }

    /// Drops each result with probability `per_mille`/1000.
    #[must_use]
    pub fn drop_per_mille(mut self, per_mille: u16) -> Self {
        self.drop_per_mille = per_mille.min(1000);
        self
    }

    /// Duplicates each (undropped) result with probability `per_mille`/1000.
    #[must_use]
    pub fn duplicate_per_mille(mut self, per_mille: u16) -> Self {
        self.duplicate_per_mille = per_mille.min(1000);
        self
    }

    /// Shuffles the surviving results (Fisher–Yates on the seeded stream).
    #[must_use]
    pub fn shuffle(mut self, shuffle: bool) -> Self {
        self.shuffle = shuffle;
        self
    }

    /// Results dropped so far (across all `execute` calls).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Results duplicated so far (across all `execute` calls).
    pub fn duplicated(&self) -> u64 {
        self.duplicated.load(Ordering::Relaxed)
    }
}

impl<E: Executor> Executor for FlakyExecutor<E> {
    fn name(&self) -> String {
        format!("flaky[{}]", self.inner.name())
    }

    fn execute(
        &self,
        plan: &WorkPlan<'_>,
        range: Range<usize>,
    ) -> Result<Vec<UnitResult>, PipelineError> {
        let mut rng =
            SplitMix64::new(self.seed ^ (range.start as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let results = self.inner.execute(plan, range)?;
        let mut perturbed = Vec::with_capacity(results.len());
        for result in results {
            let roll = rng.next() % 1000;
            if roll < u64::from(self.drop_per_mille) {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            if roll < u64::from(self.drop_per_mille) + u64::from(self.duplicate_per_mille) {
                self.duplicated.fetch_add(1, Ordering::Relaxed);
                perturbed.push(result.clone());
            }
            perturbed.push(result);
        }
        if self.shuffle {
            // Fisher–Yates over the seeded stream.
            for i in (1..perturbed.len()).rev() {
                let j = (rng.next() % (i as u64 + 1)) as usize;
                perturbed.swap(i, j);
            }
        }
        Ok(perturbed)
    }
}

/// SplitMix64: tiny deterministic PRNG for fault injection (this crate has
/// no rand dependency by design).
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executor_names_are_descriptive() {
        assert_eq!(SerialExecutor.name(), "serial");
        assert_eq!(ThreadExecutor::machine().name(), "threads[machine]");
        assert_eq!(ThreadExecutor::new(4).name(), "threads[4]");
        let sub = SubprocessExecutor::new("/bin/worker").workers(3);
        assert!(sub.name().starts_with("subprocess[3x"));
        assert_eq!(sub.worker_count(), 3);
    }

    #[test]
    fn subprocess_builder_composes() {
        let exec = SubprocessExecutor::new("prog")
            .arg("--worker")
            .args(["a", "b"])
            .env("K", "V")
            .workers(0);
        // Zero workers clamps to one at execution time.
        assert_eq!(exec.worker_count(), 0);
        assert_eq!(exec.args.len(), 3);
        assert_eq!(exec.envs.len(), 1);
    }

    #[test]
    fn socket_executor_builder_composes() {
        let exec = SocketExecutor::new("req v1 ...", ["127.0.0.1:7070", "127.0.0.1:7071"])
            .connect_timeout(Duration::from_millis(10))
            .liveness_timeout(Duration::from_secs(2))
            .max_attempts(0);
        assert_eq!(exec.name(), "socket[2x remote]");
        assert_eq!(exec.worker_addrs().len(), 2);
        // Attempt budget clamps to at least one try.
        assert_eq!(exec.max_attempts, 1);
        assert_eq!(exec.stats().worker_deaths(), 0);
    }

    #[test]
    fn flaky_executor_is_deterministic_in_its_seed() {
        // Two streams from the same seed must agree (failures reproduce).
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..64 {
            assert_eq!(a.next(), b.next());
        }
        let mut c = SplitMix64::new(43);
        let mut d = SplitMix64::new(42);
        assert_ne!(
            (0..8).map(|_| c.next()).collect::<Vec<_>>(),
            (0..8).map(|_| d.next()).collect::<Vec<_>>()
        );
        let flaky = FlakyExecutor::new(SerialExecutor, 42)
            .drop_per_mille(100)
            .duplicate_per_mille(100)
            .shuffle(true);
        assert_eq!(flaky.name(), "flaky[serial]");
        assert_eq!(flaky.dropped(), 0);
        assert_eq!(flaky.duplicated(), 0);
    }

    #[test]
    fn stderr_excerpt_is_bounded_and_labeled() {
        assert_eq!(stderr_excerpt("   \n"), "");
        assert_eq!(
            stderr_excerpt("boom\n"),
            "; worker stderr: boom".to_string()
        );
        let long = "x".repeat(10_000);
        let excerpt = stderr_excerpt(&long);
        assert!(excerpt.len() < 5000);
        assert!(excerpt.ends_with("… [truncated]"));
    }
}
