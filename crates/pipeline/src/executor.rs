//! Execution strategies for a [`WorkPlan`]: the [`Executor`] trait and its
//! in-process ([`SerialExecutor`], [`ThreadExecutor`]) and multi-process
//! ([`SubprocessExecutor`]) implementations.
//!
//! An executor receives a plan plus a unit-index range and returns one
//! [`UnitResult`] per unit.  Units are position-independent and results are
//! self-identifying, so *how* the range is executed — one thread, a scoped
//! thread pool, or worker processes speaking the wire protocol over
//! stdin/stdout — never changes what the [`crate::Aggregator`] folds the
//! results into: every executor produces byte-identical reports.  This
//! trait is the seam later distribution backends (machines, job queues)
//! plug into; they only need to return the same results for the same unit
//! ids.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::ops::Range;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

use crate::error::PipelineError;
use crate::exec::{resolve_threads, run_indexed_threads};
use crate::plan::{UnitResult, WorkPlan, WorkUnit};

/// A strategy for executing a contiguous range of a [`WorkPlan`]'s units.
pub trait Executor: Send + Sync {
    /// Display name of the strategy (for logs and debugging).
    fn name(&self) -> String;

    /// Executes the units at `range` and returns their results in unit-index
    /// order, one per unit.  On failure the error of the smallest failing
    /// unit index is returned, independent of worker timing.
    ///
    /// # Errors
    ///
    /// Propagates unit failures and executor-level failures
    /// ([`PipelineError::Exec`]: dead workers, undecodable wire traffic,
    /// missing results).
    fn execute(
        &self,
        plan: &WorkPlan<'_>,
        range: Range<usize>,
    ) -> Result<Vec<UnitResult>, PipelineError>;
}

/// Runs every unit on the calling thread, in order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SerialExecutor;

impl Executor for SerialExecutor {
    fn name(&self) -> String {
        "serial".to_string()
    }

    fn execute(
        &self,
        plan: &WorkPlan<'_>,
        range: Range<usize>,
    ) -> Result<Vec<UnitResult>, PipelineError> {
        range.map(|index| plan.run_unit(index)).collect()
    }
}

/// Runs units on scoped worker threads pulling from a shared queue
/// (absorbing the legacy `ExecMode::Parallel` behavior).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreadExecutor {
    /// Worker count; `0` uses the machine's available parallelism.  The
    /// resolved count is clamped to at least one thread and at most one per
    /// unit.
    pub threads: usize,
}

impl ThreadExecutor {
    /// Executor with an explicit worker count (`0` = machine-sized).
    pub fn new(threads: usize) -> Self {
        ThreadExecutor { threads }
    }

    /// Executor sized to the machine's available parallelism.
    pub fn machine() -> Self {
        ThreadExecutor { threads: 0 }
    }
}

impl Executor for ThreadExecutor {
    fn name(&self) -> String {
        match self.threads {
            0 => "threads[machine]".to_string(),
            n => format!("threads[{n}]"),
        }
    }

    fn execute(
        &self,
        plan: &WorkPlan<'_>,
        range: Range<usize>,
    ) -> Result<Vec<UnitResult>, PipelineError> {
        let start = range.start;
        run_indexed_threads(
            resolve_threads(self.threads, range.len()),
            range.len(),
            |i| plan.run_unit(start + i),
        )
    }
}

/// Distributes units across worker *processes* speaking the
/// [`crate::plan`] wire protocol: each worker receives unit-id lines on
/// stdin and answers one encoded [`UnitResult`] line per unit on stdout.
///
/// The driver splits the range into one contiguous chunk per worker,
/// spawns every worker, feeds and drains them concurrently, and re-orders
/// the self-identifying results by unit index — so the aggregate is
/// byte-identical to a serial run regardless of worker count or scheduling.
///
/// A worker is any command that reconstructs the same pipeline and plan and
/// calls [`WorkPlan::serve`] on its stdio — see `examples/shard_worker.rs`
/// for the canonical self-spawning driver.  Lines a worker writes that are
/// neither a decodable result nor a `!`-prefixed failure report are ignored
/// (harness chatter); failure reports and missing results abort the run.
#[derive(Debug, Clone)]
pub struct SubprocessExecutor {
    program: PathBuf,
    args: Vec<String>,
    envs: Vec<(String, String)>,
    workers: usize,
}

impl SubprocessExecutor {
    /// Executor spawning `program` as the worker command (2 workers by
    /// default).
    pub fn new(program: impl Into<PathBuf>) -> Self {
        SubprocessExecutor {
            program: program.into(),
            args: Vec::new(),
            envs: Vec::new(),
            workers: 2,
        }
    }

    /// Adds one worker command-line argument.
    pub fn arg(mut self, arg: impl Into<String>) -> Self {
        self.args.push(arg.into());
        self
    }

    /// Adds several worker command-line arguments.
    pub fn args(mut self, args: impl IntoIterator<Item = impl Into<String>>) -> Self {
        self.args.extend(args.into_iter().map(Into::into));
        self
    }

    /// Sets an environment variable for every worker process.
    pub fn env(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.envs.push((key.into(), value.into()));
        self
    }

    /// Sets the worker-process count (clamped to at least 1 at execution).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// The configured worker count.
    pub fn worker_count(&self) -> usize {
        self.workers
    }

    fn spawn_worker(&self) -> Result<Child, PipelineError> {
        let mut command = Command::new(&self.program);
        command
            .args(&self.args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            // stderr is not part of the protocol; inherit it so worker
            // panics and diagnostics reach the driver's terminal instead of
            // vanishing behind an opaque exit status.
            .stderr(Stdio::inherit());
        for (key, value) in &self.envs {
            command.env(key, value);
        }
        command.spawn().map_err(|e| {
            PipelineError::exec(format!(
                "failed to spawn worker {:?}: {e}",
                self.program.display()
            ))
        })
    }

    /// Feeds `units` to one worker and returns its results matched back to
    /// the request order.
    fn drive_worker(&self, units: &[WorkUnit]) -> Result<Vec<UnitResult>, PipelineError> {
        let mut child = self.spawn_worker()?;
        let mut stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");

        // Feed from a scoped thread while draining on this one, so neither
        // pipe can fill up and deadlock the pair.
        let feed_and_drain = std::thread::scope(|scope| {
            let writer = scope.spawn(move || -> std::io::Result<()> {
                for unit in units {
                    writeln!(stdin, "{}", unit.encode())?;
                }
                stdin.flush()
                // Dropping stdin closes the pipe: the worker sees EOF and
                // exits its serve loop.
            });

            // Unit → request-index lookup: results self-identify, so each
            // line is matched in O(1) rather than scanning the chunk.
            let unit_index: HashMap<&WorkUnit, usize> = units
                .iter()
                .enumerate()
                .map(|(index, unit)| (unit, index))
                .collect();
            let mut results: Vec<Option<UnitResult>> = vec![None; units.len()];
            let drain = || -> Result<(), PipelineError> {
                for line in BufReader::new(stdout).lines() {
                    let line = line.map_err(|e| {
                        PipelineError::exec(format!("worker stdout read failed: {e}"))
                    })?;
                    let line = line.trim();
                    if let Some(failure) = line.strip_prefix('!') {
                        return Err(PipelineError::exec(format!(
                            "worker reported failure: {failure}"
                        )));
                    }
                    // Non-protocol chatter (e.g. a test harness banner) is
                    // skipped; only decodable results are collected.
                    let Ok(result) = UnitResult::decode(line) else {
                        continue;
                    };
                    let unit = result.unit();
                    match unit_index.get(&unit).copied() {
                        Some(index) if results[index].is_none() => {
                            results[index] = Some(result);
                        }
                        Some(_) => {
                            return Err(PipelineError::exec(format!(
                                "worker returned unit {:?} twice",
                                unit.encode()
                            )));
                        }
                        None => {
                            return Err(PipelineError::exec(format!(
                                "worker returned unrequested unit {:?}",
                                unit.encode()
                            )));
                        }
                    }
                }
                Ok(())
            };
            // If drain aborted early, returning from it dropped the stdout
            // reader and closed the pipe's read end: a worker blocked
            // writing results gets EPIPE, its serve loop errors out and the
            // process exits, which in turn unblocks the writer thread (its
            // stdin writes fail) — so the join and the wait below cannot
            // deadlock on a serve-based worker.
            let drained = drain();
            let written = writer.join().expect("writer thread");
            drained.and(
                written.map_err(|e| PipelineError::exec(format!("worker stdin write failed: {e}"))),
            )?;
            Ok::<_, PipelineError>(results)
        });

        let status = child
            .wait()
            .map_err(|e| PipelineError::exec(format!("worker wait failed: {e}")))?;
        let results = feed_and_drain?;
        if !status.success() {
            return Err(PipelineError::exec(format!("worker exited with {status}")));
        }
        results
            .into_iter()
            .zip(units)
            .map(|(slot, unit)| {
                slot.ok_or_else(|| {
                    PipelineError::exec(format!(
                        "worker returned no result for unit {:?}",
                        unit.encode()
                    ))
                })
            })
            .collect()
    }
}

impl Executor for SubprocessExecutor {
    fn name(&self) -> String {
        format!(
            "subprocess[{}x {}]",
            self.workers.max(1),
            self.program.display()
        )
    }

    fn execute(
        &self,
        plan: &WorkPlan<'_>,
        range: Range<usize>,
    ) -> Result<Vec<UnitResult>, PipelineError> {
        let units: Vec<WorkUnit> = range
            .map(|index| {
                plan.units()
                    .get(index)
                    .cloned()
                    .ok_or_else(|| PipelineError::exec(format!("unit index {index} out of range")))
            })
            .collect::<Result<_, _>>()?;
        if units.is_empty() {
            return Ok(Vec::new());
        }
        let workers = self.workers.max(1).min(units.len());
        let per_chunk = units.len().div_ceil(workers);
        let chunks: Vec<&[WorkUnit]> = units.chunks(per_chunk).collect();
        // One driver thread per worker process; chunk order is preserved, so
        // the concatenation is in unit-index order.
        let chunk_results = std::thread::scope(|scope| {
            let handles: Vec<_> = chunks
                .iter()
                .map(|chunk| scope.spawn(move || self.drive_worker(chunk)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker driver thread"))
                .collect::<Vec<_>>()
        });
        let mut out = Vec::with_capacity(units.len());
        for chunk in chunk_results {
            out.extend(chunk?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executor_names_are_descriptive() {
        assert_eq!(SerialExecutor.name(), "serial");
        assert_eq!(ThreadExecutor::machine().name(), "threads[machine]");
        assert_eq!(ThreadExecutor::new(4).name(), "threads[4]");
        let sub = SubprocessExecutor::new("/bin/worker").workers(3);
        assert!(sub.name().starts_with("subprocess[3x"));
        assert_eq!(sub.worker_count(), 3);
    }

    #[test]
    fn subprocess_builder_composes() {
        let exec = SubprocessExecutor::new("prog")
            .arg("--worker")
            .args(["a", "b"])
            .env("K", "V")
            .workers(0);
        // Zero workers clamps to one at execution time.
        assert_eq!(exec.worker_count(), 0);
        assert_eq!(exec.args.len(), 3);
        assert_eq!(exec.envs.len(), 1);
    }
}
