//! Error type of the pipeline layer.

use accel_sim::SimError;
use dataflow_sim::EventError;
use qnn::QnnError;
use read_core::ReadError;

/// Errors produced while building or running a [`crate::ReadPipeline`].
#[derive(Debug)]
#[non_exhaustive]
pub enum PipelineError {
    /// The builder was misconfigured.
    Builder {
        /// What was wrong.
        reason: String,
    },
    /// A stage that the requested operation needs was not configured.
    Missing {
        /// The missing stage ("model", "dataset", ...).
        what: &'static str,
    },
    /// The experiment inputs are inconsistent with each other.
    Input {
        /// What was inconsistent.
        reason: String,
    },
    /// A work-plan executor failed: a worker process died, a wire message
    /// did not decode, or the returned unit results do not cover the plan.
    Exec {
        /// What went wrong.
        reason: String,
    },
    /// The schedule source rejected the layer.
    Schedule(ReadError),
    /// The simulator rejected the problem or schedule.
    Sim(SimError),
    /// The fault-injection evaluation failed.
    Eval(QnnError),
    /// The event-driven dataflow engine failed.
    Probe(EventError),
}

impl PipelineError {
    /// Builder-validation error with the given reason.
    pub fn builder(reason: impl Into<String>) -> Self {
        PipelineError::Builder {
            reason: reason.into(),
        }
    }

    /// Executor error with the given reason.
    pub fn exec(reason: impl Into<String>) -> Self {
        PipelineError::Exec {
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Builder { reason } => write!(f, "invalid pipeline: {reason}"),
            PipelineError::Missing { what } => {
                write!(f, "pipeline stage not configured: {what}")
            }
            PipelineError::Input { reason } => {
                write!(f, "inconsistent experiment inputs: {reason}")
            }
            PipelineError::Exec { reason } => write!(f, "executor failed: {reason}"),
            PipelineError::Schedule(e) => write!(f, "schedule source failed: {e}"),
            PipelineError::Sim(e) => write!(f, "simulation failed: {e}"),
            PipelineError::Eval(e) => write!(f, "evaluation failed: {e}"),
            PipelineError::Probe(e) => write!(f, "dataflow probe failed: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Schedule(e) => Some(e),
            PipelineError::Sim(e) => Some(e),
            PipelineError::Eval(e) => Some(e),
            PipelineError::Probe(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ReadError> for PipelineError {
    fn from(e: ReadError) -> Self {
        PipelineError::Schedule(e)
    }
}

impl From<SimError> for PipelineError {
    fn from(e: SimError) -> Self {
        PipelineError::Sim(e)
    }
}

impl From<QnnError> for PipelineError {
    fn from(e: QnnError) -> Self {
        PipelineError::Eval(e)
    }
}

impl From<EventError> for PipelineError {
    fn from(e: EventError) -> Self {
        // An invalid schedule is a simulation-input error whichever engine
        // rejects it; everything else is specific to the event engine.
        match e {
            EventError::Sim(sim) => PipelineError::Sim(sim),
            other => PipelineError::Probe(other),
        }
    }
}
