//! Sweep-as-a-service: a long-running daemon that accepts TER, sweep and
//! accuracy requests over TCP and answers them from one shared cache
//! hierarchy with **in-flight dedup**.
//!
//! A batch pipeline pays the full simulation cost once per process; the
//! serve layer amortizes it across *clients*.  [`ServeServer`] listens on a
//! plain TCP socket speaking the repo's line-delimited text idiom (the same
//! family as the [`WorkUnit`]/[`UnitResult`] worker protocol), expands each
//! request into a [`WorkPlan`], and schedules its units through a
//! daemon-wide `UnitScheduler` where identical in-flight units are
//! computed once and fanned out to every waiting request — *single-flight*
//! layered on top of the existing [`ArtifactStore`] write-through:
//!
//! ```text
//! client ──req──▶ daemon ──▶ single-flight scheduler ──▶ executor pool
//!                    ▲              │ coalesce                │
//!                    └──report──────┴──────── shared ArtifactStore
//! ```
//!
//! * **Dedup key** — histogram units use the content-addressed artifact
//!   check line (grid-independent, so a TER request coalesces with the
//!   histogram phase of a concurrent sweep); all other units use
//!   `(plan signature, unit id)`.
//! * **Exactly-once** — each request runs its histogram units first, then
//!   the rest; by the time a Monte-Carlo shard or accuracy point needs a
//!   histogram internally, the leader's synchronous store write-through has
//!   published it, so cross-plan overlap never recomputes.
//! * **Priority** — a two-level admission gate: `interactive` units preempt
//!   `bulk` ones at unit granularity (bulk acquisition blocks while any
//!   interactive unit is waiting for a slot).
//! * **Accounting** — every response carries a per-request [`CacheStats`]
//!   whose `inflight_hits` counts units served by joining another request's
//!   computation.
//!
//! Use [`ServeClient`] from Rust, or speak the protocol directly (see the
//! repo README for the wire grammar).  [`ServeServer::spawn`] +
//! [`ServeClient::shutdown`] give an in-process daemon for tests.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use qnn::fit::fit_classifier_head;
use qnn::{models, Dataset, Model, SyntheticDatasetBuilder};
use read_core::SortCriterion;
use timing::{DepthHistogram, OperatingCondition};

use crate::cache::CacheStats;
use crate::error::PipelineError;
use crate::exec::{resolve_threads, run_indexed_threads};
use crate::executor::SocketExecutor;
use crate::pipeline::ReadPipeline;
use crate::plan::{escape_wire, unescape, UnitResult, WorkPlan, WorkUnit};
use crate::stage::Algorithm;
use crate::store::{ArtifactStore, MemoryStore};
use crate::sweep::SweepPlan;
use crate::workload::{
    resnet18_workloads_prefix, resnet34_workloads_prefix, vgg16_workloads_prefix, LayerWorkload,
    WorkloadConfig,
};

fn bad_request(line: &str, why: &str) -> PipelineError {
    PipelineError::Input {
        reason: format!("bad request line {line:?}: {why}"),
    }
}

fn io_err(context: &str, e: std::io::Error) -> PipelineError {
    PipelineError::exec(format!("{context}: {e}"))
}

// ---------------------------------------------------------------------------
// Protocol vocabulary
// ---------------------------------------------------------------------------

/// Sentinel for [`ServeRequest::timeout_ms`] requesting an explicitly
/// unbounded request (wire spelling: `timeout_ms=none`).
///
/// `timeout_ms=0` means "use the server's default timeout", so without this
/// sentinel a client could never *opt out* of a server default.
pub const NO_TIMEOUT: u64 = u64::MAX;

/// Admission class of a request: interactive units preempt bulk ones at the
/// daemon's scheduling gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// Latency-sensitive: may claim executor slots ahead of queued bulk
    /// units.
    Interactive,
    /// Throughput work: yields slots whenever an interactive unit waits.
    Bulk,
}

impl Priority {
    /// Wire name (`interactive` / `bulk`).
    pub fn as_str(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Bulk => "bulk",
        }
    }

    fn parse(s: &str, line: &str) -> Result<Option<Priority>, PipelineError> {
        match s {
            "auto" => Ok(None),
            "interactive" => Ok(Some(Priority::Interactive)),
            "bulk" => Ok(Some(Priority::Bulk)),
            other => Err(bad_request(line, &format!("unknown priority {other:?}"))),
        }
    }
}

/// Which experiment a [`ServeRequest`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// Layer-wise TER table ([`ReadPipeline::run_ter`]).
    Ter,
    /// Corner/die sweep ([`ReadPipeline::run_sweep`]).
    Sweep,
    /// Fault-injection accuracy ([`ReadPipeline::run_accuracy_for`]).
    Accuracy,
}

impl RequestKind {
    /// Wire name (`ter` / `sweep` / `acc`).
    pub fn as_str(self) -> &'static str {
        match self {
            RequestKind::Ter => "ter",
            RequestKind::Sweep => "sweep",
            RequestKind::Accuracy => "acc",
        }
    }

    fn parse(s: &str, line: &str) -> Result<RequestKind, PipelineError> {
        match s {
            "ter" => Ok(RequestKind::Ter),
            "sweep" => Ok(RequestKind::Sweep),
            "acc" => Ok(RequestKind::Accuracy),
            other => Err(bad_request(line, &format!("unknown kind {other:?}"))),
        }
    }
}

/// Which workload family the request simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelFamily {
    /// VGG-16 conv layers.
    Vgg16,
    /// ResNet-18 conv layers.
    Resnet18,
    /// ResNet-34 conv layers.
    Resnet34,
}

impl ModelFamily {
    /// Wire name (`vgg16` / `resnet18` / `resnet34`).
    pub fn as_str(self) -> &'static str {
        match self {
            ModelFamily::Vgg16 => "vgg16",
            ModelFamily::Resnet18 => "resnet18",
            ModelFamily::Resnet34 => "resnet34",
        }
    }

    fn parse(s: &str, line: &str) -> Result<ModelFamily, PipelineError> {
        match s {
            "vgg16" => Ok(ModelFamily::Vgg16),
            "resnet18" => Ok(ModelFamily::Resnet18),
            "resnet34" => Ok(ModelFamily::Resnet34),
            other => Err(bad_request(line, &format!("unknown family {other:?}"))),
        }
    }

    /// Generates only the requested layer prefix — interactive requests
    /// must not pay deep-layer weight synthesis for layers they never
    /// simulate.
    fn workloads(self, config: &WorkloadConfig, take: usize) -> Vec<LayerWorkload> {
        match self {
            ModelFamily::Vgg16 => vgg16_workloads_prefix(config, take),
            ModelFamily::Resnet18 => resnet18_workloads_prefix(config, take),
            ModelFamily::Resnet34 => resnet34_workloads_prefix(config, take),
        }
    }
}

/// One schedule source from the paper's comparison set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceSpec {
    /// Unoptimized row-major schedule.
    Baseline,
    /// Input-channel reordering only.
    Reorder,
    /// Full READ flow: cluster then reorder (sign-first).
    Read,
}

impl SourceSpec {
    /// Wire name (`baseline` / `reorder` / `read`).
    pub fn as_str(self) -> &'static str {
        match self {
            SourceSpec::Baseline => "baseline",
            SourceSpec::Reorder => "reorder",
            SourceSpec::Read => "read",
        }
    }

    fn parse(s: &str, line: &str) -> Result<SourceSpec, PipelineError> {
        match s {
            "baseline" => Ok(SourceSpec::Baseline),
            "reorder" => Ok(SourceSpec::Reorder),
            "read" => Ok(SourceSpec::Read),
            other => Err(bad_request(line, &format!("unknown source {other:?}"))),
        }
    }

    fn algorithm(self) -> Algorithm {
        match self {
            SourceSpec::Baseline => Algorithm::Baseline,
            SourceSpec::Reorder => Algorithm::Reorder(SortCriterion::SignFirst),
            SourceSpec::Read => Algorithm::ClusterThenReorder(SortCriterion::SignFirst),
        }
    }
}

/// One PVTA operating corner, wire-encodable.
///
/// `aging_years == 0` and `vt_fluctuation == 0` is the ideal corner; the
/// other combinations resolve through the [`OperatingCondition`]
/// constructors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CornerSpec {
    /// Device age in years (0 = fresh silicon).
    pub aging_years: f64,
    /// Voltage/temperature fluctuation fraction (0 = nominal).
    pub vt_fluctuation: f64,
}

impl CornerSpec {
    /// The ideal (fresh, nominal) corner.
    pub fn ideal() -> CornerSpec {
        CornerSpec {
            aging_years: 0.0,
            vt_fluctuation: 0.0,
        }
    }

    /// The paper's stress corner: `aging_vt(years, fluctuation)`.
    pub fn aging_vt(years: f64, fluctuation: f64) -> CornerSpec {
        CornerSpec {
            aging_years: years,
            vt_fluctuation: fluctuation,
        }
    }

    /// Wire encoding: `ideal`, `vt:<f>`, `aging:<y>` or `agingvt:<y>:<f>`.
    pub fn encode(&self) -> String {
        match (self.aging_years > 0.0, self.vt_fluctuation > 0.0) {
            (false, false) => "ideal".to_string(),
            (false, true) => format!("vt:{}", self.vt_fluctuation),
            (true, false) => format!("aging:{}", self.aging_years),
            (true, true) => format!("agingvt:{}:{}", self.aging_years, self.vt_fluctuation),
        }
    }

    /// Decodes the encoding produced by [`CornerSpec::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Input`] on an unknown tag or malformed
    /// number.
    pub fn decode(s: &str, line: &str) -> Result<CornerSpec, PipelineError> {
        let mut parts = s.split(':');
        let tag = parts.next().unwrap_or("");
        let mut num = |what: &str| -> Result<f64, PipelineError> {
            let raw = parts
                .next()
                .ok_or_else(|| bad_request(line, &format!("corner {s:?} is missing {what}")))?;
            let value: f64 = raw
                .parse()
                .map_err(|_| bad_request(line, &format!("corner {s:?}: bad {what} {raw:?}")))?;
            if !value.is_finite() || value < 0.0 {
                return Err(bad_request(
                    line,
                    &format!("corner {s:?}: {what} out of range"),
                ));
            }
            Ok(value)
        };
        let corner = match tag {
            "ideal" => CornerSpec::ideal(),
            "vt" => CornerSpec {
                aging_years: 0.0,
                vt_fluctuation: num("fluctuation")?,
            },
            "aging" => CornerSpec {
                aging_years: num("years")?,
                vt_fluctuation: 0.0,
            },
            "agingvt" => CornerSpec {
                aging_years: num("years")?,
                vt_fluctuation: num("fluctuation")?,
            },
            other => return Err(bad_request(line, &format!("unknown corner tag {other:?}"))),
        };
        match parts.next() {
            None => Ok(corner),
            Some(extra) => Err(bad_request(
                line,
                &format!("corner {s:?}: trailing field {extra:?}"),
            )),
        }
    }

    /// Resolves the spec into an [`OperatingCondition`] with the paper's
    /// canonical names.
    pub fn resolve(&self) -> OperatingCondition {
        match (self.aging_years > 0.0, self.vt_fluctuation > 0.0) {
            (false, false) => OperatingCondition::ideal(),
            (false, true) => OperatingCondition::vt(self.vt_fluctuation),
            (true, false) => OperatingCondition::aging(self.aging_years),
            (true, true) => OperatingCondition::aging_vt(self.aging_years, self.vt_fluctuation),
        }
    }
}

/// Monte-Carlo budget of a sweep request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McSpec {
    /// Total trials per sampling cell.
    pub trials: u32,
    /// Base RNG seed.
    pub seed: u64,
    /// Trials per [`WorkUnit::McShard`] (0 = one shard).
    pub trials_per_shard: u32,
}

/// Accuracy-experiment parameters (scaled VGG-16 on a synthetic dataset —
/// the repo's standard fault-injection rig).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracySpec {
    /// Channel-width divisor of the scaled model.
    pub width_div: usize,
    /// Number of classes (model head and dataset).
    pub classes: usize,
    /// Weight-initialization seed of the model.
    pub model_seed: u64,
    /// Samples per class in the synthetic dataset.
    pub samples_per_class: usize,
    /// Dataset noise amplitude.
    pub noise: f64,
    /// Dataset RNG seed.
    pub data_seed: u64,
    /// Fault-injection seeds per accuracy point.
    pub seeds: u64,
    /// Fit the classifier head before evaluating.
    pub fit: bool,
}

impl Default for AccuracySpec {
    fn default() -> AccuracySpec {
        AccuracySpec {
            width_div: 16,
            classes: 4,
            model_seed: 9,
            samples_per_class: 2,
            noise: 24.0,
            data_seed: 5,
            seeds: 2,
            fit: false,
        }
    }
}

impl McSpec {
    fn encode(&self) -> String {
        format!("{}:{}:{}", self.trials, self.seed, self.trials_per_shard)
    }

    fn decode(s: &str, line: &str) -> Result<McSpec, PipelineError> {
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() != 3 {
            return Err(bad_request(line, "mc wants <trials>:<seed>:<per_shard>"));
        }
        Ok(McSpec {
            trials: parse_num(parts[0], "mc trials", line)?,
            seed: parse_num(parts[1], "mc seed", line)?,
            trials_per_shard: parse_num(parts[2], "mc per_shard", line)?,
        })
    }
}

impl AccuracySpec {
    fn encode(&self) -> String {
        format!(
            "{}:{}:{}:{}:{}:{}:{}:{}",
            self.width_div,
            self.classes,
            self.model_seed,
            self.samples_per_class,
            self.noise,
            self.data_seed,
            self.seeds,
            u8::from(self.fit)
        )
    }

    fn decode(s: &str, line: &str) -> Result<AccuracySpec, PipelineError> {
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() != 8 {
            return Err(bad_request(
                line,
                "acc wants <wdiv>:<classes>:<mseed>:<samples>:<noise>:<dseed>:<seeds>:<fit>",
            ));
        }
        let noise: f64 = parts[4]
            .parse()
            .map_err(|_| bad_request(line, &format!("acc: bad noise {:?}", parts[4])))?;
        if !noise.is_finite() || noise < 0.0 {
            return Err(bad_request(line, "acc: noise out of range"));
        }
        let fit = match parts[7] {
            "0" => false,
            "1" => true,
            other => return Err(bad_request(line, &format!("acc: bad fit flag {other:?}"))),
        };
        Ok(AccuracySpec {
            width_div: parse_num(parts[0], "acc wdiv", line)?,
            classes: parse_num(parts[1], "acc classes", line)?,
            model_seed: parse_num(parts[2], "acc mseed", line)?,
            samples_per_class: parse_num(parts[3], "acc samples", line)?,
            noise,
            data_seed: parse_num(parts[5], "acc dseed", line)?,
            seeds: parse_num(parts[6], "acc seeds", line)?,
            fit,
        })
    }
}

fn parse_num<T: std::str::FromStr>(raw: &str, what: &str, line: &str) -> Result<T, PipelineError> {
    raw.parse()
        .map_err(|_| bad_request(line, &format!("bad {what} {raw:?}")))
}

// ---------------------------------------------------------------------------
// ServeRequest
// ---------------------------------------------------------------------------

/// One experiment request, wire-encodable as a single `req v1 ...` line.
///
/// Build with [`ServeRequest::ter`], [`ServeRequest::sweep`] or
/// [`ServeRequest::accuracy`] and adjust the public fields, then send it
/// through a [`ServeClient`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServeRequest {
    /// Experiment kind.
    pub kind: RequestKind,
    /// Network label carried into the report (any string; wire-escaped).
    pub network: String,
    /// Workload family to simulate.
    pub family: ModelFamily,
    /// Number of leading family layers to keep (0 = all).
    pub layers: usize,
    /// Pixels (GEMM columns) per layer workload.
    pub pixels: usize,
    /// Workload generator seed.
    pub workload_seed: u64,
    /// Schedule sources to compare (at least one).
    pub sources: Vec<SourceSpec>,
    /// Operating corners (TER/accuracy: report rows; sweep: grid columns).
    pub corners: Vec<CornerSpec>,
    /// Sweep only: include the typical (no-variation) die.
    pub typical: bool,
    /// Sweep only: per-die variation seeds.
    pub dies: Vec<u64>,
    /// Sweep only: Monte-Carlo budget.
    pub mc: Option<McSpec>,
    /// Accuracy only: model/dataset/evaluation parameters.
    pub accuracy: Option<AccuracySpec>,
    /// Admission class; `None` lets the daemon choose by unit count.
    pub priority: Option<Priority>,
    /// Per-request timeout in milliseconds.  `0` means "use the server's
    /// default timeout" ([`ServerConfig::default_timeout_ms`]); the
    /// [`NO_TIMEOUT`] sentinel (wire: `timeout_ms=none`) explicitly
    /// requests an unbounded run even when the server has a default.
    pub timeout_ms: u64,
}

impl ServeRequest {
    fn base(kind: RequestKind, network: &str) -> ServeRequest {
        ServeRequest {
            kind,
            network: network.to_string(),
            family: ModelFamily::Vgg16,
            layers: 2,
            pixels: 2,
            workload_seed: WorkloadConfig::default().seed,
            sources: vec![SourceSpec::Baseline, SourceSpec::Read],
            corners: vec![CornerSpec::aging_vt(10.0, 0.05)],
            typical: false,
            dies: Vec::new(),
            mc: None,
            accuracy: None,
            priority: None,
            timeout_ms: 0,
        }
    }

    /// A small layer-wise TER request (two VGG-16 layers, baseline vs READ
    /// at the stress corner).
    pub fn ter(network: &str) -> ServeRequest {
        ServeRequest::base(RequestKind::Ter, network)
    }

    /// A small corner/die sweep request (typical die, stress corner).
    pub fn sweep(network: &str) -> ServeRequest {
        ServeRequest {
            typical: true,
            ..ServeRequest::base(RequestKind::Sweep, network)
        }
    }

    /// A small fault-injection accuracy request (default [`AccuracySpec`]).
    pub fn accuracy(network: &str) -> ServeRequest {
        ServeRequest {
            accuracy: Some(AccuracySpec::default()),
            ..ServeRequest::base(RequestKind::Accuracy, network)
        }
    }

    /// The request's single-line wire encoding (`req v1 ...`).
    pub fn encode(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "req v1 kind={} net={} family={} layers={} pixels={} wseed={}",
            self.kind.as_str(),
            escape_wire(&self.network),
            self.family.as_str(),
            self.layers,
            self.pixels,
            self.workload_seed
        );
        let sources: Vec<&str> = self.sources.iter().map(|s| s.as_str()).collect();
        let _ = write!(out, " sources={}", sources.join(","));
        let corners: Vec<String> = self.corners.iter().map(|c| c.encode()).collect();
        let _ = write!(out, " corners={}", corners.join(","));
        if self.typical {
            out.push_str(" typical=1");
        }
        if !self.dies.is_empty() {
            let dies: Vec<String> = self.dies.iter().map(|d| d.to_string()).collect();
            let _ = write!(out, " dies={}", dies.join(","));
        }
        if let Some(mc) = &self.mc {
            let _ = write!(out, " mc={}", mc.encode());
        }
        if let Some(acc) = &self.accuracy {
            let _ = write!(out, " acc={}", acc.encode());
        }
        let priority = match self.priority {
            None => "auto",
            Some(p) => p.as_str(),
        };
        let _ = write!(out, " priority={priority}");
        if self.timeout_ms == NO_TIMEOUT {
            out.push_str(" timeout_ms=none");
        } else {
            let _ = write!(out, " timeout_ms={}", self.timeout_ms);
        }
        out
    }

    /// Decodes a `req v1 ...` line produced by [`ServeRequest::encode`] (or
    /// typed by hand).  Field order after the prefix is free; unknown keys
    /// are rejected.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Input`] on any malformed or invalid field.
    pub fn decode(line: &str) -> Result<ServeRequest, PipelineError> {
        let mut tokens = line.split_whitespace();
        if tokens.next() != Some("req") || tokens.next() != Some("v1") {
            return Err(bad_request(line, "expected `req v1` prefix"));
        }
        let mut kind = None;
        let mut request = ServeRequest {
            kind: RequestKind::Ter,
            network: String::new(),
            family: ModelFamily::Vgg16,
            layers: 0,
            pixels: WorkloadConfig::default().pixels_per_layer,
            workload_seed: WorkloadConfig::default().seed,
            sources: Vec::new(),
            corners: Vec::new(),
            typical: false,
            dies: Vec::new(),
            mc: None,
            accuracy: None,
            priority: None,
            timeout_ms: 0,
        };
        for token in tokens {
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| bad_request(line, &format!("field {token:?} wants key=value")))?;
            match key {
                "kind" => kind = Some(RequestKind::parse(value, line)?),
                "net" => request.network = unescape(value, line)?,
                "family" => request.family = ModelFamily::parse(value, line)?,
                "layers" => request.layers = parse_num(value, "layers", line)?,
                "pixels" => request.pixels = parse_num(value, "pixels", line)?,
                "wseed" => request.workload_seed = parse_num(value, "wseed", line)?,
                "sources" => {
                    for s in value.split(',').filter(|s| !s.is_empty()) {
                        request.sources.push(SourceSpec::parse(s, line)?);
                    }
                }
                "corners" => {
                    for c in value.split(',').filter(|c| !c.is_empty()) {
                        request.corners.push(CornerSpec::decode(c, line)?);
                    }
                }
                "typical" => {
                    request.typical = match value {
                        "0" => false,
                        "1" => true,
                        other => {
                            return Err(bad_request(line, &format!("bad typical flag {other:?}")))
                        }
                    }
                }
                "dies" => {
                    for d in value.split(',').filter(|d| !d.is_empty()) {
                        request.dies.push(parse_num(d, "die seed", line)?);
                    }
                }
                "mc" => request.mc = Some(McSpec::decode(value, line)?),
                "acc" => request.accuracy = Some(AccuracySpec::decode(value, line)?),
                "priority" => request.priority = Priority::parse(value, line)?,
                "timeout_ms" => {
                    request.timeout_ms = if value == "none" {
                        NO_TIMEOUT
                    } else {
                        parse_num(value, "timeout_ms", line)?
                    }
                }
                other => return Err(bad_request(line, &format!("unknown field {other:?}"))),
            }
        }
        request.kind = kind.ok_or_else(|| bad_request(line, "missing kind"))?;
        request.validate().map_err(|e| match e {
            PipelineError::Input { reason } => bad_request(line, &reason),
            other => other,
        })?;
        Ok(request)
    }

    /// Checks cross-field consistency (which fields each kind allows).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Input`] describing the first violation.
    pub fn validate(&self) -> Result<(), PipelineError> {
        let input = |reason: &str| PipelineError::Input {
            reason: reason.to_string(),
        };
        if self.sources.is_empty() {
            return Err(input("at least one source is required"));
        }
        if self.corners.is_empty() {
            return Err(input("at least one corner is required"));
        }
        if self.pixels == 0 {
            return Err(input("pixels must be >= 1"));
        }
        match self.kind {
            RequestKind::Ter => {
                if self.typical || !self.dies.is_empty() || self.mc.is_some() {
                    return Err(input("typical/dies/mc are sweep-only fields"));
                }
                if self.accuracy.is_some() {
                    return Err(input("acc is an accuracy-only field"));
                }
            }
            RequestKind::Sweep => {
                if !self.typical && self.dies.is_empty() {
                    return Err(input("sweep wants typical=1 or at least one die"));
                }
                if self.accuracy.is_some() {
                    return Err(input("acc is an accuracy-only field"));
                }
            }
            RequestKind::Accuracy => {
                if self.typical || !self.dies.is_empty() || self.mc.is_some() {
                    return Err(input("typical/dies/mc are sweep-only fields"));
                }
                let acc = self
                    .accuracy
                    .as_ref()
                    .ok_or_else(|| input("acc is required"))?;
                if self.family != ModelFamily::Vgg16 {
                    return Err(input("accuracy requests support family=vgg16 only"));
                }
                if acc.width_div == 0 || acc.classes < 2 || acc.samples_per_class == 0 {
                    return Err(input("acc wants wdiv>=1, classes>=2, samples>=1"));
                }
                if acc.seeds == 0 {
                    return Err(input("acc wants seeds>=1"));
                }
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Single-flight scheduler
// ---------------------------------------------------------------------------

/// Payload fanned out from a completed flight.  Histogram flights carry the
/// bare histogram (the flight key is content-addressed across plans, so the
/// waiter re-wraps it with *its own* cell/pair indices); every other unit is
/// plan-specific and fans out verbatim.
#[derive(Clone)]
enum FlightValue {
    Unit(UnitResult),
    Hist(DepthHistogram),
}

enum FlightState {
    /// A leader is computing; `waiters` requests are parked on the condvar.
    ///
    /// `epoch` identifies the flight *generation*: when a leader aborts and
    /// a new leader re-takes the same key, parked waiters of the old
    /// generation observe a different epoch and retry instead of touching
    /// counters they never registered on.
    Running { epoch: u64, waiters: usize },
    /// The leader finished; `remaining` registered waiters have yet to
    /// collect.  Errors fan out as strings ([`PipelineError`] is not
    /// `Clone`).
    Done {
        epoch: u64,
        value: Result<FlightValue, String>,
        remaining: usize,
    },
}

struct GateState {
    active: usize,
    interactive_waiting: usize,
}

/// RAII executor-pool slot; releasing wakes both gate queues.
struct GatePermit<'s> {
    sched: &'s UnitScheduler,
}

impl Drop for GatePermit<'_> {
    fn drop(&mut self) {
        let mut gate = lock_ok(&self.sched.gate);
        gate.active -= 1;
        self.sched.gate_cv.notify_all();
    }
}

/// Recover from a poisoned mutex: every critical section here leaves the
/// protected state consistent before any operation that could panic, so the
/// inner data is still valid.
fn lock_ok<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn timed_out(what: &str) -> PipelineError {
    PipelineError::exec(format!("request timed out {what}"))
}

fn deadline_wait(deadline: Option<Instant>) -> Option<Duration> {
    const POLL: Duration = Duration::from_millis(50);
    deadline.map(|d| d.saturating_duration_since(Instant::now()).min(POLL))
}

/// Daemon-wide unit scheduler: a bounded executor pool (`slots` concurrent
/// unit computations) with two-level priority admission and single-flight
/// dedup of identical in-flight units.
pub(crate) struct UnitScheduler {
    slots: usize,
    gate: Mutex<GateState>,
    gate_cv: Condvar,
    flights: Mutex<HashMap<String, FlightState>>,
    flights_cv: Condvar,
    flight_epoch: AtomicU64,
}

impl UnitScheduler {
    pub(crate) fn new(slots: usize) -> UnitScheduler {
        UnitScheduler {
            slots: slots.max(1),
            gate: Mutex::new(GateState {
                active: 0,
                interactive_waiting: 0,
            }),
            gate_cv: Condvar::new(),
            flights: Mutex::new(HashMap::new()),
            flights_cv: Condvar::new(),
            flight_epoch: AtomicU64::new(0),
        }
    }

    pub(crate) fn slots(&self) -> usize {
        self.slots
    }

    /// Claims one executor slot, blocking until admitted.  Bulk acquisition
    /// additionally blocks while any interactive unit is waiting — that is
    /// the whole preemption mechanism: at unit granularity, freed slots go
    /// to interactive work first.
    fn acquire(
        &self,
        priority: Priority,
        deadline: Option<Instant>,
    ) -> Result<GatePermit<'_>, PipelineError> {
        let mut gate = lock_ok(&self.gate);
        if priority == Priority::Interactive {
            gate.interactive_waiting += 1;
        }
        loop {
            // Deadline first, even when a slot is free: an already-expired
            // request must not claim a slot and begin a computation its
            // client has given up on.
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    if priority == Priority::Interactive {
                        gate.interactive_waiting -= 1;
                    }
                    self.gate_cv.notify_all();
                    return Err(timed_out("waiting for an executor slot"));
                }
            }
            let blocked = gate.active >= self.slots
                || (priority == Priority::Bulk && gate.interactive_waiting > 0);
            if !blocked {
                break;
            }
            gate = match deadline_wait(deadline) {
                Some(wait) => {
                    self.gate_cv
                        .wait_timeout(gate, wait)
                        .unwrap_or_else(|poisoned| poisoned.into_inner())
                        .0
                }
                None => self
                    .gate_cv
                    .wait(gate)
                    .unwrap_or_else(|poisoned| poisoned.into_inner()),
            };
        }
        if priority == Priority::Interactive {
            gate.interactive_waiting -= 1;
        }
        gate.active += 1;
        Ok(GatePermit { sched: self })
    }

    /// Runs one work unit with single-flight dedup: the first request to
    /// need a given flight key computes it (leader); concurrent requests
    /// park and receive a clone of the value, counting an in-flight hit in
    /// their own `inflight_hits`.
    pub(crate) fn run_unit(
        &self,
        plan: &WorkPlan<'_>,
        unit: &WorkUnit,
        priority: Priority,
        deadline: Option<Instant>,
        inflight_hits: &AtomicU64,
    ) -> Result<UnitResult, PipelineError> {
        let key = plan.flight_key(unit);
        loop {
            match self.join_or_lead(&key, deadline)? {
                Role::Leader => return self.lead(&key, plan, unit, priority, deadline),
                Role::Joined(Ok(value)) => {
                    inflight_hits.fetch_add(1, Ordering::Relaxed);
                    return adapt_flight_value(value, unit);
                }
                Role::Joined(Err(msg)) => {
                    return Err(PipelineError::exec(format!(
                        "in-flight leader failed: {msg}"
                    )))
                }
                Role::Retry => continue,
            }
        }
    }

    /// Registers interest in `key`: becomes the leader if nobody holds it,
    /// otherwise parks until the leader publishes (or aborts → `Retry`).
    fn join_or_lead(&self, key: &str, deadline: Option<Instant>) -> Result<Role, PipelineError> {
        let mut flights = lock_ok(&self.flights);
        let joined_epoch = match flights.get_mut(key) {
            None => {
                let epoch = self.flight_epoch.fetch_add(1, Ordering::Relaxed);
                flights.insert(key.to_string(), FlightState::Running { epoch, waiters: 0 });
                return Ok(Role::Leader);
            }
            Some(FlightState::Running { epoch, waiters }) => {
                *waiters += 1;
                *epoch
            }
            Some(FlightState::Done { value, .. }) => {
                // Late arrival after publish but before the last registered
                // waiter collected: clone without touching `remaining`.
                return Ok(Role::Joined(value.clone()));
            }
        };
        loop {
            flights = match deadline_wait(deadline) {
                Some(wait) => {
                    self.flights_cv
                        .wait_timeout(flights, wait)
                        .unwrap_or_else(|poisoned| poisoned.into_inner())
                        .0
                }
                None => self
                    .flights_cv
                    .wait(flights)
                    .unwrap_or_else(|poisoned| poisoned.into_inner()),
            };
            match flights.get_mut(key) {
                // Leader aborted (its gate wait timed out): race again.
                None => return Ok(Role::Retry),
                Some(FlightState::Running { epoch, waiters }) => {
                    if *epoch != joined_epoch {
                        // Our leader aborted and a *new* flight re-took the
                        // key before we woke; we are not registered on this
                        // generation, so leave its counter alone and race
                        // again.
                        return Ok(Role::Retry);
                    }
                    if let Some(d) = deadline {
                        if Instant::now() >= d {
                            *waiters = waiters.saturating_sub(1);
                            return Err(timed_out("waiting on an in-flight unit"));
                        }
                    }
                }
                Some(FlightState::Done {
                    epoch,
                    value,
                    remaining,
                }) => {
                    if *epoch != joined_epoch {
                        // A successor generation published; its `remaining`
                        // counts *its* waiters, not us — clone without
                        // decrementing (same as a late arrival).
                        return Ok(Role::Joined(value.clone()));
                    }
                    let value = value.clone();
                    *remaining = remaining.saturating_sub(1);
                    if *remaining == 0 {
                        flights.remove(key);
                    }
                    return Ok(Role::Joined(value));
                }
            }
        }
    }

    /// Leader path: claim a slot, compute, publish to waiters.
    fn lead(
        &self,
        key: &str,
        plan: &WorkPlan<'_>,
        unit: &WorkUnit,
        priority: Priority,
        deadline: Option<Instant>,
    ) -> Result<UnitResult, PipelineError> {
        let permit = match self.acquire(priority, deadline) {
            Ok(permit) => permit,
            Err(e) => {
                // Abort the flight so parked waiters retry instead of
                // hanging on a leader that never computed.
                let mut flights = lock_ok(&self.flights);
                flights.remove(key);
                self.flights_cv.notify_all();
                return Err(e);
            }
        };
        let result = plan.run_unit_spec(unit);
        drop(permit);
        let value = match &result {
            Ok(unit_result) => Ok(flight_value_of(unit_result, unit)),
            Err(e) => Err(e.to_string()),
        };
        let mut flights = lock_ok(&self.flights);
        match flights.get_mut(key) {
            Some(FlightState::Running { epoch, waiters }) if *waiters > 0 => {
                let (epoch, remaining) = (*epoch, *waiters);
                flights.insert(
                    key.to_string(),
                    FlightState::Done {
                        epoch,
                        value,
                        remaining,
                    },
                );
            }
            _ => {
                flights.remove(key);
            }
        }
        self.flights_cv.notify_all();
        result
    }

    /// Runs all of a plan's units through the pool in two phases — every
    /// histogram unit first, then the rest.  The barrier guarantees
    /// exactly-once across overlapping plans: when a Monte-Carlo shard or
    /// accuracy point later needs a histogram *internally*, the leader's
    /// synchronous cache/store write-through has already published it.
    pub(crate) fn run_plan_units(
        &self,
        plan: &WorkPlan<'_>,
        priority: Priority,
        deadline: Option<Instant>,
        inflight_hits: &AtomicU64,
    ) -> Result<Vec<UnitResult>, PipelineError> {
        let units = plan.units();
        let mut results: Vec<Option<UnitResult>> = Vec::new();
        results.resize_with(units.len(), || None);
        let hist: Vec<usize> = (0..units.len())
            .filter(|&i| matches!(units[i], WorkUnit::Histogram { .. }))
            .collect();
        let rest: Vec<usize> = (0..units.len())
            .filter(|&i| !matches!(units[i], WorkUnit::Histogram { .. }))
            .collect();
        for phase in [hist, rest] {
            if phase.is_empty() {
                continue;
            }
            let threads = resolve_threads(self.slots.min(phase.len()), phase.len());
            let phase_results = run_indexed_threads(threads, phase.len(), |i| {
                // Check the deadline *between* units, not only inside gate
                // and flight waits: a leader that just finished a large unit
                // must not start the next one after its client's timeout —
                // previously a request's compute was unbounded once
                // admitted.
                if let Some(d) = deadline {
                    if Instant::now() >= d {
                        return Err(timed_out("between units"));
                    }
                }
                self.run_unit(plan, &units[phase[i]], priority, deadline, inflight_hits)
            })?;
            for (&slot, result) in phase.iter().zip(phase_results) {
                results[slot] = Some(result);
            }
        }
        Ok(results.into_iter().flatten().collect())
    }
}

enum Role {
    Leader,
    Joined(Result<FlightValue, String>),
    Retry,
}

fn flight_value_of(result: &UnitResult, unit: &WorkUnit) -> FlightValue {
    match (result, unit) {
        (UnitResult::Histogram { hist, .. }, WorkUnit::Histogram { .. }) => {
            FlightValue::Hist(hist.clone())
        }
        _ => FlightValue::Unit(result.clone()),
    }
}

fn adapt_flight_value(value: FlightValue, unit: &WorkUnit) -> Result<UnitResult, PipelineError> {
    match (value, unit) {
        (FlightValue::Hist(hist), WorkUnit::Histogram { cell, pair }) => {
            Ok(UnitResult::Histogram {
                cell: *cell,
                pair: *pair,
                hist,
            })
        }
        (FlightValue::Unit(result), _) => Ok(result),
        (FlightValue::Hist(_), _) => Err(PipelineError::exec(
            "flight key mismatch: histogram payload for a non-histogram unit",
        )),
    }
}

// ---------------------------------------------------------------------------
// Request execution
// ---------------------------------------------------------------------------

/// Everything a request's plan borrows, owned for the connection's
/// lifetime: [`WorkPlan`] is deliberately non-`'static` (it borrows the
/// pipeline and workloads), so each request builds a fresh pipeline that
/// *shares the daemon's artifact store* — per-request cache counters,
/// daemon-wide reuse.
struct RequestJob {
    request: ServeRequest,
    pipeline: ReadPipeline,
    workloads: Vec<LayerWorkload>,
    model: Option<Model>,
    dataset: Option<Dataset>,
}

/// The server-side outcome of one request.
struct JobOutcome {
    kind: RequestKind,
    units: usize,
    priority: Priority,
    report_json: String,
    stats: CacheStats,
}

impl RequestJob {
    fn build(
        request: ServeRequest,
        store: Arc<dyn ArtifactStore>,
    ) -> Result<RequestJob, PipelineError> {
        let config = WorkloadConfig {
            pixels_per_layer: request.pixels,
            seed: request.workload_seed,
            ..WorkloadConfig::default()
        };
        let workloads = request.family.workloads(&config, request.layers);
        if workloads.is_empty() {
            return Err(PipelineError::Input {
                reason: "request selects zero workloads".to_string(),
            });
        }
        let mut builder = ReadPipeline::builder().store_arc(store);
        for source in &request.sources {
            builder = builder.source(source.algorithm());
        }
        let conditions: Vec<OperatingCondition> =
            request.corners.iter().map(|c| c.resolve()).collect();
        let mut model = None;
        let mut dataset = None;
        match request.kind {
            RequestKind::Ter => builder = builder.conditions(conditions),
            RequestKind::Sweep => {
                let mut plan = SweepPlan::new().conditions(conditions);
                if request.typical {
                    plan = plan.typical();
                }
                plan = plan.dies(request.dies.iter().copied());
                if let Some(mc) = &request.mc {
                    plan = plan.monte_carlo(mc.trials, mc.seed);
                    if mc.trials_per_shard > 0 {
                        plan = plan.trials_per_shard(mc.trials_per_shard);
                    }
                }
                builder = builder.sweep(plan);
            }
            RequestKind::Accuracy => {
                let acc = request.accuracy.as_ref().ok_or(PipelineError::Missing {
                    what: "accuracy spec",
                })?;
                let mut m = models::vgg16_cifar_scaled(acc.width_div, acc.classes, acc.model_seed)?;
                let d = SyntheticDatasetBuilder::new(acc.classes, [3, 32, 32])
                    .samples_per_class(acc.samples_per_class)
                    .noise(acc.noise)
                    .seed(acc.data_seed)
                    .build()?;
                if acc.fit {
                    fit_classifier_head(&mut m, &d)?;
                }
                model = Some(m);
                dataset = Some(d);
                builder = builder.conditions(conditions);
            }
        }
        Ok(RequestJob {
            request,
            pipeline: builder.build()?,
            workloads,
            model,
            dataset,
        })
    }

    /// Expands this request's [`WorkPlan`] (borrowing the job's pipeline
    /// and workloads).  Also the worker-side entry point: a `read-worker`
    /// rebuilds the same plan from the same spec line, so unit encodings
    /// match the driver's byte-for-byte.
    pub(crate) fn plan(&self) -> Result<WorkPlan<'_>, PipelineError> {
        let request = &self.request;
        match request.kind {
            RequestKind::Ter => self.pipeline.plan_ter(&request.network, &self.workloads),
            RequestKind::Sweep => self.pipeline.plan_sweep(&request.network, &self.workloads),
            RequestKind::Accuracy => {
                let model = self
                    .model
                    .as_ref()
                    .ok_or(PipelineError::Missing { what: "model" })?;
                let dataset = self
                    .dataset
                    .as_ref()
                    .ok_or(PipelineError::Missing { what: "dataset" })?;
                let seeds = self.request.accuracy.as_ref().map_or(1, |a| a.seeds);
                self.pipeline.plan_accuracy_for(
                    model,
                    &request.network,
                    dataset,
                    &self.workloads,
                    seeds,
                )
            }
        }
    }

    /// Expands the plan, schedules its units through the daemon pool (or a
    /// worker fleet, for bulk requests when one is configured) and
    /// aggregates the report, returning per-request cache statistics.
    fn run(
        &self,
        sched: &UnitScheduler,
        store: &Arc<dyn ArtifactStore>,
        interactive_max_units: usize,
        default_timeout_ms: u64,
        fleet: &[String],
    ) -> Result<JobOutcome, PipelineError> {
        let store_before = store.stats();
        let request = &self.request;
        let plan = self.plan()?;
        let units = plan.len();
        let priority = request
            .priority
            .unwrap_or(if units <= interactive_max_units {
                Priority::Interactive
            } else {
                Priority::Bulk
            });
        // `0` = server default, `NO_TIMEOUT` = explicitly unbounded (which
        // also overrides a server default), anything else = explicit bound.
        let timeout_ms = match request.timeout_ms {
            0 => default_timeout_ms,
            ms => ms,
        };
        let deadline = (timeout_ms > 0 && timeout_ms != NO_TIMEOUT)
            .then(|| Instant::now() + Duration::from_millis(timeout_ms));
        let inflight = AtomicU64::new(0);
        let results = if !fleet.is_empty() && priority == Priority::Bulk {
            // Bulk work ships to the worker fleet (interactive requests stay
            // local: connection + handshake latency would dominate them).
            // A fleet-level failure falls back to the local pool so a dead
            // fleet degrades to PR-6 behavior instead of failing requests.
            let executor = SocketExecutor::new(request.encode(), fleet.iter().cloned());
            match executor.execute_with_deadline(&plan, 0..plan.len(), deadline) {
                Ok(results) => results,
                Err(_) => sched.run_plan_units(&plan, priority, deadline, &inflight)?,
            }
        } else {
            sched.run_plan_units(&plan, priority, deadline, &inflight)?
        };
        let output = plan.aggregate(results)?;
        let report_json = match request.kind {
            RequestKind::Ter => output.into_ter()?.to_json(),
            RequestKind::Sweep => output.into_sweep()?.to_json(),
            RequestKind::Accuracy => output.into_accuracy()?.to_json(),
        };
        // Per-request view: the pipeline (and its caches) are request-local,
        // but the store is daemon-wide — report its activity as a delta over
        // the request (approximate under concurrency, exact when serial).
        let mut stats = self.pipeline.cache_stats();
        let store_after = store.stats();
        stats.disk_hits = store_after.hits.saturating_sub(store_before.hits);
        stats.disk_misses = store_after.misses.saturating_sub(store_before.misses);
        stats.corrupt_entries = store_after.corrupt.saturating_sub(store_before.corrupt);
        stats.store_writes = store_after.writes.saturating_sub(store_before.writes);
        stats.inflight_hits = inflight.load(Ordering::Relaxed);
        Ok(JobOutcome {
            kind: request.kind,
            units,
            priority,
            report_json,
            stats,
        })
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// Daemon configuration for [`ServeServer::bind`].
pub struct ServerConfig {
    /// Executor-pool width (concurrent unit computations daemon-wide);
    /// 0 = available parallelism.
    pub slots: usize,
    /// Shared artifact store; `None` = a fresh in-memory store.
    pub store: Option<Arc<dyn ArtifactStore>>,
    /// `priority=auto` requests with at most this many units run as
    /// interactive.
    pub interactive_max_units: usize,
    /// Default per-request timeout in milliseconds (0 = none; a request can
    /// opt out of a non-zero default with [`NO_TIMEOUT`]).
    pub default_timeout_ms: u64,
    /// Worker-fleet addresses (`host:port` of `read-worker` processes).
    /// When non-empty, bulk requests route their whole plan through a
    /// [`SocketExecutor`] over these workers instead of the local pool,
    /// falling back locally if the fleet fails.
    pub fleet: Vec<String>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            slots: 0,
            store: None,
            interactive_max_units: 8,
            default_timeout_ms: 0,
            fleet: Vec::new(),
        }
    }
}

struct ServerShared {
    sched: UnitScheduler,
    store: Arc<dyn ArtifactStore>,
    interactive_max_units: usize,
    default_timeout_ms: u64,
    fleet: Vec<String>,
    shutdown: AtomicBool,
    next_id: AtomicU64,
}

/// The sweep-as-a-service daemon: accepts line-delimited requests over TCP
/// and serves them from one shared store with single-flight unit dedup.
///
/// One connection handler thread per client; every request's units flow
/// through the daemon-wide `UnitScheduler`.  `shutdown` (the in-band
/// control command) stops accepting and drains in-flight connections before
/// [`ServeServer::run`] returns.
pub struct ServeServer {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<ServerShared>,
}

impl ServeServer {
    /// Binds the daemon to `addr` (e.g. `127.0.0.1:0` for an ephemeral
    /// test port).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Exec`] when the socket cannot be bound.
    pub fn bind(addr: &str, config: ServerConfig) -> Result<ServeServer, PipelineError> {
        let listener = TcpListener::bind(addr).map_err(|e| io_err("bind", e))?;
        let local = listener.local_addr().map_err(|e| io_err("local_addr", e))?;
        let slots = resolve_threads(config.slots, usize::MAX);
        let store = config
            .store
            .unwrap_or_else(|| Arc::new(MemoryStore::new()) as Arc<dyn ArtifactStore>);
        Ok(ServeServer {
            listener,
            addr: local,
            shared: Arc::new(ServerShared {
                sched: UnitScheduler::new(slots),
                store,
                interactive_max_units: config.interactive_max_units,
                default_timeout_ms: config.default_timeout_ms,
                fleet: config.fleet,
                shutdown: AtomicBool::new(false),
                next_id: AtomicU64::new(1),
            }),
        })
    }

    /// The bound socket address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Executor-pool width the daemon resolved from its configuration.
    pub fn slots(&self) -> usize {
        self.shared.sched.slots()
    }

    /// Serves connections until a `shutdown` command arrives, then drains:
    /// the accept loop stops and every in-flight connection finishes before
    /// this returns (scoped handler threads join on exit).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Exec`] on a fatal accept error.
    pub fn run(self) -> Result<(), PipelineError> {
        let shared = &self.shared;
        let addr = self.addr;
        std::thread::scope(|scope| {
            loop {
                let (stream, _) = match self.listener.accept() {
                    Ok(pair) => pair,
                    Err(e) => {
                        if shared.shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        return Err(io_err("accept", e));
                    }
                };
                if shared.shutdown.load(Ordering::SeqCst) {
                    // The wake-up connection (or a late client): drop it and
                    // stop accepting; scope exit drains the handlers.
                    drop(stream);
                    break;
                }
                scope.spawn(move || handle_connection(shared, stream, addr));
            }
            Ok(())
        })
    }

    /// Binds and runs the daemon on a background thread — the in-process
    /// form used by tests and examples.
    ///
    /// # Errors
    ///
    /// Propagates [`ServeServer::bind`] failures.
    pub fn spawn(addr: &str, config: ServerConfig) -> Result<ServeHandle, PipelineError> {
        let server = ServeServer::bind(addr, config)?;
        let local = server.local_addr();
        let join = std::thread::spawn(move || server.run());
        Ok(ServeHandle { addr: local, join })
    }
}

/// Handle to a daemon spawned with [`ServeServer::spawn`].
pub struct ServeHandle {
    addr: SocketAddr,
    join: std::thread::JoinHandle<Result<(), PipelineError>>,
}

impl ServeHandle {
    /// The daemon's socket address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A client connected to this daemon.
    pub fn client(&self) -> ServeClient {
        ServeClient::new(self.addr)
    }

    /// Waits for the daemon to exit (send `shutdown` first, or this blocks
    /// until the server thread ends).
    ///
    /// # Errors
    ///
    /// Propagates the server's exit result; a panicked server thread
    /// surfaces as [`PipelineError::Exec`].
    pub fn join(self) -> Result<(), PipelineError> {
        self.join
            .join()
            .map_err(|_| PipelineError::exec("server thread panicked"))?
    }
}

fn handle_connection(shared: &ServerShared, stream: TcpStream, self_addr: SocketAddr) {
    // Generous read timeout so an idle client cannot pin the drain forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(120)));
    let peer = stream.try_clone();
    let Ok(write_half) = peer else { return };
    let mut writer = std::io::BufWriter::new(write_half);
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { return };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let done = dispatch_line(shared, line, &mut writer, self_addr);
        if writer.flush().is_err() || done {
            return;
        }
    }
}

/// Handles one protocol line; returns `true` when the connection should
/// close (shutdown acknowledged).
fn dispatch_line(
    shared: &ServerShared,
    line: &str,
    writer: &mut impl Write,
    self_addr: SocketAddr,
) -> bool {
    match line.split_whitespace().next() {
        Some("ping") => {
            let _ = writeln!(writer, "ok pong\n.");
            false
        }
        Some("stats") => {
            let stats = store_level_stats(&shared.store);
            let _ = writeln!(
                writer,
                "ok stats\nstats {}\n.",
                escape_wire(&stats.to_json())
            );
            false
        }
        Some("shutdown") => {
            let _ = writeln!(writer, "ok shutdown\n.");
            let _ = writer.flush();
            shared.shutdown.store(true, Ordering::SeqCst);
            // Wake the acceptor so it observes the flag (std has no
            // signal/select machinery; a self-connection is the portable
            // nudge).
            let _ = TcpStream::connect(self_addr);
            true
        }
        Some("req") => {
            let id = shared.next_id.fetch_add(1, Ordering::Relaxed);
            let started = Instant::now();
            match process_request(shared, line) {
                Ok(outcome) => {
                    let latency_us = started.elapsed().as_micros();
                    let _ = writeln!(
                        writer,
                        "ok id={id} kind={} units={} priority={} latency_us={latency_us}",
                        outcome.kind.as_str(),
                        outcome.units,
                        outcome.priority.as_str()
                    );
                    let _ = writeln!(writer, "report {}", escape_wire(&outcome.report_json));
                    let _ = writeln!(writer, "stats {}\n.", escape_wire(&outcome.stats.to_json()));
                }
                Err(e) => {
                    let _ = writeln!(writer, "err id={id} msg={}\n.", escape_wire(&e.to_string()));
                }
            }
            false
        }
        _ => {
            let _ = writeln!(writer, "err id=0 msg={}\n.", escape_wire("unknown command"));
            false
        }
    }
}

fn process_request(shared: &ServerShared, line: &str) -> Result<JobOutcome, PipelineError> {
    if shared.shutdown.load(Ordering::SeqCst) {
        return Err(PipelineError::exec("server is shutting down"));
    }
    let request = ServeRequest::decode(line)?;
    let job = RequestJob::build(request, Arc::clone(&shared.store))?;
    job.run(
        &shared.sched,
        &shared.store,
        shared.interactive_max_units,
        shared.default_timeout_ms,
        &shared.fleet,
    )
}

/// Daemon-level stats: only the shared store is daemon-wide (pipeline
/// caches are per-request), so the `stats` command reports store counters
/// in the standard [`CacheStats`] shape.
fn store_level_stats(store: &Arc<dyn ArtifactStore>) -> CacheStats {
    let s = store.stats();
    CacheStats {
        disk_hits: s.hits,
        disk_misses: s.misses,
        corrupt_entries: s.corrupt,
        store_writes: s.writes,
        ..CacheStats::default()
    }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// One served response: report JSON plus the request's cache statistics.
#[derive(Debug, Clone)]
pub struct ServeReply {
    /// Server-assigned request id.
    pub id: u64,
    /// Experiment kind the server ran.
    pub kind: RequestKind,
    /// Number of work units the request expanded into.
    pub units: usize,
    /// Admission class the request actually ran at.
    pub priority: Priority,
    /// Server-side latency (decode → report).
    pub latency: Duration,
    /// The report's canonical JSON (byte-identical to an in-process run).
    pub report_json: String,
    /// Per-request cache statistics, including `inflight_hits`.
    pub stats: CacheStats,
}

/// Blocking client for a [`ServeServer`]: one TCP connection per call.
#[derive(Debug, Clone)]
pub struct ServeClient {
    addr: SocketAddr,
}

impl ServeClient {
    /// A client for the daemon at `addr`.
    pub fn new(addr: SocketAddr) -> ServeClient {
        ServeClient { addr }
    }

    /// Resolves `addr` (e.g. `127.0.0.1:7341`) and returns a client.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Input`] on an unparsable address.
    pub fn connect(addr: &str) -> Result<ServeClient, PipelineError> {
        let addr: SocketAddr = addr.parse().map_err(|_| PipelineError::Input {
            reason: format!("bad server address {addr:?}"),
        })?;
        Ok(ServeClient { addr })
    }

    fn round_trip(&self, line: &str) -> Result<Vec<String>, PipelineError> {
        let stream = TcpStream::connect(self.addr).map_err(|e| io_err("connect", e))?;
        stream
            .set_read_timeout(Some(Duration::from_secs(600)))
            .map_err(|e| io_err("set_read_timeout", e))?;
        let mut write_half = stream.try_clone().map_err(|e| io_err("clone stream", e))?;
        writeln!(write_half, "{line}").map_err(|e| io_err("send", e))?;
        write_half.flush().map_err(|e| io_err("send", e))?;
        let reader = BufReader::new(stream);
        let mut lines = Vec::new();
        for read in reader.lines() {
            let read = read.map_err(|e| io_err("receive", e))?;
            if read == "." {
                return Ok(lines);
            }
            lines.push(read);
        }
        Err(PipelineError::exec("connection closed before terminator"))
    }

    fn expect_ok<'l>(lines: &'l [String], what: &str) -> Result<&'l str, PipelineError> {
        let first = lines
            .first()
            .ok_or_else(|| PipelineError::exec(format!("{what}: empty response")))?;
        if let Some(rest) = first.strip_prefix("ok") {
            return Ok(rest.trim_start());
        }
        if let Some(rest) = first.strip_prefix("err ") {
            let msg = rest
                .split_whitespace()
                .find_map(|t| t.strip_prefix("msg="))
                .map(|m| unescape(m, rest).unwrap_or_else(|_| m.to_string()))
                .unwrap_or_else(|| rest.to_string());
            return Err(PipelineError::exec(format!("server error: {msg}")));
        }
        Err(PipelineError::exec(format!(
            "{what}: unexpected response line {first:?}"
        )))
    }

    /// Liveness check (`ping` → `ok pong`).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Exec`] on transport failure or an
    /// unexpected response.
    pub fn ping(&self) -> Result<(), PipelineError> {
        let lines = self.round_trip("ping")?;
        let rest = Self::expect_ok(&lines, "ping")?;
        if rest == "pong" {
            Ok(())
        } else {
            Err(PipelineError::exec(format!("ping: unexpected {rest:?}")))
        }
    }

    /// Daemon-level store statistics ([`CacheStats`] with only the store
    /// fields populated).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Exec`] on transport or protocol failure.
    pub fn stats(&self) -> Result<CacheStats, PipelineError> {
        let lines = self.round_trip("stats")?;
        Self::expect_ok(&lines, "stats")?;
        let stats_line = lines
            .iter()
            .find_map(|l| l.strip_prefix("stats "))
            .ok_or_else(|| PipelineError::exec("stats: missing stats line"))?;
        let json = unescape(stats_line, stats_line)?;
        CacheStats::from_json(&json).map_err(PipelineError::exec)
    }

    /// Asks the daemon to stop accepting, drain and exit.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Exec`] on transport failure.
    pub fn shutdown(&self) -> Result<(), PipelineError> {
        let lines = self.round_trip("shutdown")?;
        Self::expect_ok(&lines, "shutdown").map(|_| ())
    }

    /// Sends one request and blocks until its report arrives.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Input`] on a request the server rejects
    /// and [`PipelineError::Exec`] on transport/serve failures (including
    /// per-request timeouts).
    pub fn request(&self, request: &ServeRequest) -> Result<ServeReply, PipelineError> {
        request.validate()?;
        let lines = self.round_trip(&request.encode())?;
        let header = Self::expect_ok(&lines, "request")?;
        let mut id = 0u64;
        let mut kind = None;
        let mut units = 0usize;
        let mut priority = None;
        let mut latency_us = 0u64;
        for token in header.split_whitespace() {
            let Some((key, value)) = token.split_once('=') else {
                continue;
            };
            match key {
                "id" => id = parse_num(value, "id", header)?,
                "kind" => kind = Some(RequestKind::parse(value, header)?),
                "units" => units = parse_num(value, "units", header)?,
                "priority" => priority = Priority::parse(value, header)?,
                "latency_us" => latency_us = parse_num(value, "latency_us", header)?,
                _ => {}
            }
        }
        let report_line = lines
            .iter()
            .find_map(|l| l.strip_prefix("report "))
            .ok_or_else(|| PipelineError::exec("response is missing the report line"))?;
        let stats_line = lines
            .iter()
            .find_map(|l| l.strip_prefix("stats "))
            .ok_or_else(|| PipelineError::exec("response is missing the stats line"))?;
        let stats_json = unescape(stats_line, stats_line)?;
        Ok(ServeReply {
            id,
            kind: kind.ok_or_else(|| PipelineError::exec("response is missing kind"))?,
            units,
            priority: priority
                .ok_or_else(|| PipelineError::exec("response is missing priority"))?,
            latency: Duration::from_micros(latency_us),
            report_json: unescape(report_line, report_line)?,
            stats: CacheStats::from_json(&stats_json).map_err(PipelineError::exec)?,
        })
    }
}

// ---------------------------------------------------------------------------
// Worker server (fleet side)
// ---------------------------------------------------------------------------

/// Configuration for a [`WorkerServer`].
#[derive(Default)]
pub struct WorkerConfig {
    /// Shared artifact store (typically a
    /// [`crate::store::RemoteStore`] so the whole fleet shares one warm
    /// namespace); `None` = a fresh in-memory store.
    pub store: Option<Arc<dyn ArtifactStore>>,
    /// Fault injection for tests and smoke runs: after serving this many
    /// units the worker drops its connection mid-stream (no reply) and
    /// [`WorkerServer::run`] returns an error, as a crashed worker process
    /// would.
    pub die_after_units: Option<u64>,
}

struct WorkerShared {
    store: Arc<dyn ArtifactStore>,
    die_after_units: Option<u64>,
    served: AtomicU64,
    died: AtomicBool,
    shutdown: AtomicBool,
}

/// The fleet worker daemon: the remote analog of handing
/// [`WorkPlan::serve`] a pipe pair.  Each connection opens with a `req v1`
/// pipeline spec line; the worker rebuilds the same [`WorkPlan`] the driver
/// holds (same spec → same unit encodings) and answers unit lines with
/// unit-result lines until EOF.
///
/// Per-connection wire session (driver side documented on
/// [`SocketExecutor`]):
///
/// ```text
/// ← window=<n>              (optional: streamed-protocol negotiation)
/// → ok window=<m>           (m = n clamped to [1, 1024])
/// ← <req v1 spec line>      (or: ping / shutdown)
/// → ok units=<n>            (or "!<reason>" = spec rejected)
/// ← <unit line>             (drivers may stream several ahead)
/// → <unit-result line>      (or "!<reason>" = unit failed)
/// ```
///
/// Units are answered strictly in request order, one reply per unit line,
/// so a pipelining driver can attribute in-band `!` failures to its oldest
/// outstanding unit.  The negotiation line exists for interop: a driver
/// that receives `!`/close instead of `ok window=` knows it is talking to
/// an old lock-step worker and falls back to window 1.
pub struct WorkerServer {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<WorkerShared>,
}

impl WorkerServer {
    /// Binds a worker to `addr` (e.g. `127.0.0.1:0` for an ephemeral test
    /// port).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Exec`] when the socket cannot be bound.
    pub fn bind(addr: &str, config: WorkerConfig) -> Result<WorkerServer, PipelineError> {
        let listener = TcpListener::bind(addr).map_err(|e| io_err("bind", e))?;
        let local = listener.local_addr().map_err(|e| io_err("local_addr", e))?;
        let store = config
            .store
            .unwrap_or_else(|| Arc::new(MemoryStore::new()) as Arc<dyn ArtifactStore>);
        Ok(WorkerServer {
            listener,
            addr: local,
            shared: Arc::new(WorkerShared {
                store,
                die_after_units: config.die_after_units,
                served: AtomicU64::new(0),
                died: AtomicBool::new(false),
                shutdown: AtomicBool::new(false),
            }),
        })
    }

    /// The bound socket address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serves driver connections until `shutdown` arrives (drains in-flight
    /// connections before returning) — or until the injected death
    /// triggers, which also stops the accept loop.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Exec`] on a fatal accept error, and — by
    /// design — after an injected [`WorkerConfig::die_after_units`] death,
    /// so a worker *binary* exits non-zero exactly like a crashed process.
    pub fn run(self) -> Result<(), PipelineError> {
        let shared = &self.shared;
        let addr = self.addr;
        std::thread::scope(|scope| {
            loop {
                let (stream, _) = match self.listener.accept() {
                    Ok(pair) => pair,
                    Err(e) => {
                        if shared.shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                        return Err(io_err("accept", e));
                    }
                };
                if shared.shutdown.load(Ordering::SeqCst) {
                    drop(stream);
                    break;
                }
                scope.spawn(move || handle_worker_connection(shared, stream, addr));
            }
            Ok(())
        })?;
        if self.shared.died.load(Ordering::SeqCst) {
            return Err(PipelineError::exec(format!(
                "worker died (injected) after {} served units",
                self.shared.served.load(Ordering::Relaxed)
            )));
        }
        Ok(())
    }

    /// Binds and runs the worker on a background thread — the in-process
    /// form used by tests and examples.
    ///
    /// # Errors
    ///
    /// Propagates [`WorkerServer::bind`] failures.
    pub fn spawn(addr: &str, config: WorkerConfig) -> Result<WorkerHandle, PipelineError> {
        let server = WorkerServer::bind(addr, config)?;
        let local = server.local_addr();
        let join = std::thread::spawn(move || server.run());
        Ok(WorkerHandle { addr: local, join })
    }

    /// Asks the worker at `addr` to stop accepting, drain and exit.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Exec`] on transport failure or an
    /// unexpected response.
    pub fn shutdown_at(addr: &str) -> Result<(), PipelineError> {
        let stream = TcpStream::connect(addr).map_err(|e| io_err("connect", e))?;
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .map_err(|e| io_err("set_read_timeout", e))?;
        let mut reader = BufReader::new(stream);
        writeln!(reader.get_ref(), "shutdown").map_err(|e| io_err("send", e))?;
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| io_err("receive", e))?;
        if line.trim() == "ok shutdown" {
            Ok(())
        } else {
            Err(PipelineError::exec(format!(
                "worker shutdown: unexpected response {:?}",
                line.trim()
            )))
        }
    }
}

/// Handle to a worker spawned with [`WorkerServer::spawn`].
pub struct WorkerHandle {
    addr: SocketAddr,
    join: std::thread::JoinHandle<Result<(), PipelineError>>,
}

impl WorkerHandle {
    /// The worker's socket address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the worker to exit and returns its run result (an `Err`
    /// for an injected death — the in-process analog of a non-zero exit).
    ///
    /// # Errors
    ///
    /// Propagates the worker's exit result; a panicked worker thread
    /// surfaces as [`PipelineError::Exec`].
    pub fn join(self) -> Result<(), PipelineError> {
        self.join
            .join()
            .map_err(|_| PipelineError::exec("worker thread panicked"))?
    }
}

fn handle_worker_connection(shared: &WorkerShared, stream: TcpStream, self_addr: SocketAddr) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(120)));
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut writer = std::io::BufWriter::new(write_half);
    let mut reader = BufReader::new(stream);
    // Control / handshake phase: answer pings until a spec line arrives.
    let job = loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "ping" {
            if writeln!(writer, "ok pong").is_err() || writer.flush().is_err() {
                return;
            }
            continue;
        }
        if line == "shutdown" {
            let _ = writeln!(writer, "ok shutdown");
            let _ = writer.flush();
            shared.shutdown.store(true, Ordering::SeqCst);
            // Wake the acceptor so it observes the flag.
            let _ = TcpStream::connect(self_addr);
            return;
        }
        if let Some(requested) = line.strip_prefix("window=") {
            // Streamed-protocol negotiation: echo the accepted window
            // (serving is FIFO regardless — requests queue in the socket —
            // so the cap only bounds how far drivers run ahead).
            match requested.parse::<usize>() {
                Ok(n) if n >= 1 => {
                    if writeln!(writer, "ok window={}", n.min(1024)).is_err()
                        || writer.flush().is_err()
                    {
                        return;
                    }
                    continue;
                }
                _ => {
                    let _ = writeln!(writer, "!bad window line {line:?}");
                    let _ = writer.flush();
                    return;
                }
            }
        }
        let spec = ServeRequest::decode(line)
            .and_then(|request| RequestJob::build(request, Arc::clone(&shared.store)));
        match spec {
            Ok(job) => break job,
            Err(e) => {
                let _ = writeln!(writer, "!{e}");
                let _ = writer.flush();
                return;
            }
        }
    };
    let plan = match job.plan() {
        Ok(plan) => plan,
        Err(e) => {
            let _ = writeln!(writer, "!{e}");
            let _ = writer.flush();
            return;
        }
    };
    // Batched store warm-up: seed the plan's unit-result cache with one
    // mget round trip (per batch) instead of a per-unit get during the
    // stream — the O(batches) warm-rerun path.
    plan.prefetch_units();
    if writeln!(writer, "ok units={}", plan.len()).is_err() || writer.flush().is_err() {
        shared.store.flush();
        return;
    }
    serve_units(shared, &plan, &mut reader, &mut writer, self_addr);
    // Connection drained (or died): publish this connection's buffered
    // write-behind puts so other fleet members (and warm reruns) see them.
    shared.store.flush();
}

/// The unit phase of a worker connection: essentially [`WorkPlan::serve`]
/// over the socket, with the optional injected death for fault testing.
fn serve_units(
    shared: &WorkerShared,
    plan: &crate::plan::WorkPlan<'_>,
    reader: &mut BufReader<TcpStream>,
    writer: &mut std::io::BufWriter<TcpStream>,
    self_addr: SocketAddr,
) {
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(limit) = shared.die_after_units {
            if shared.served.load(Ordering::Relaxed) >= limit
                && !shared.died.swap(true, Ordering::SeqCst)
            {
                // Injected mid-stream death: drop the connection without
                // answering the outstanding unit, and stop the whole worker
                // (run() will report the death) — exactly what a crashed
                // process looks like to the driver.
                shared.shutdown.store(true, Ordering::SeqCst);
                let _ = TcpStream::connect(self_addr);
                return;
            }
        }
        let reply = match WorkUnit::decode(trimmed) {
            Ok(unit) => match plan.run_unit_spec(&unit) {
                Ok(result) => result.encode(),
                Err(e) => format!("!{e}"),
            },
            Err(e) => format!("!{e}"),
        };
        if writeln!(writer, "{reply}").is_err() || writer.flush().is_err() {
            return;
        }
        shared.served.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{Executor as _, SerialExecutor};
    use std::sync::mpsc;

    // ---- protocol ---------------------------------------------------------

    #[test]
    fn request_encode_decode_round_trips() {
        let mut sweep = ServeRequest::sweep("vgg16 demo");
        sweep.dies = vec![3, 4];
        sweep.mc = Some(McSpec {
            trials: 48,
            seed: 7,
            trials_per_shard: 12,
        });
        sweep.corners = vec![
            CornerSpec::ideal(),
            CornerSpec {
                aging_years: 0.0,
                vt_fluctuation: 0.05,
            },
            CornerSpec {
                aging_years: 10.0,
                vt_fluctuation: 0.0,
            },
            CornerSpec::aging_vt(10.0, 0.05),
        ];
        sweep.priority = Some(Priority::Bulk);
        sweep.timeout_ms = 2500;
        let mut acc = ServeRequest::accuracy("acc run");
        acc.accuracy = Some(AccuracySpec {
            fit: true,
            ..AccuracySpec::default()
        });
        for request in [ServeRequest::ter("plain ter"), sweep, acc] {
            let line = request.encode();
            let decoded = ServeRequest::decode(&line).expect(&line);
            assert_eq!(decoded, request, "round trip of {line}");
        }
    }

    #[test]
    fn request_decode_rejects_malformed_lines() {
        for line in [
            "nope",
            "req v2 kind=ter",
            "req v1",
            "req v1 kind=warp sources=baseline corners=ideal",
            "req v1 kind=ter sources=baseline corners=ideal bogus=1",
            "req v1 kind=ter sources=baseline corners=warp:1",
            "req v1 kind=ter sources= corners=ideal",
            "req v1 kind=ter sources=baseline corners=ideal layers=x",
            "req v1 kind=sweep sources=baseline corners=ideal",
            "req v1 kind=acc sources=baseline corners=ideal",
            "req v1 kind=ter sources=baseline corners=ideal mc=1:2:3",
        ] {
            assert!(
                ServeRequest::decode(line).is_err(),
                "should reject {line:?}"
            );
        }
    }

    #[test]
    fn corner_spec_resolves_to_paper_conditions() {
        assert_eq!(CornerSpec::ideal().resolve().name, "Ideal");
        assert_eq!(
            CornerSpec::aging_vt(10.0, 0.05).resolve().name,
            OperatingCondition::aging_vt(10.0, 0.05).name
        );
        let vt = CornerSpec::decode("vt:0.03", "t").unwrap();
        assert_eq!(vt.resolve().name, OperatingCondition::vt(0.03).name);
    }

    // ---- gate -------------------------------------------------------------

    #[test]
    fn interactive_acquisition_preempts_queued_bulk() {
        let sched = Arc::new(UnitScheduler::new(1));
        let holder = sched.acquire(Priority::Bulk, None).unwrap();
        let (tx, rx) = mpsc::channel::<&'static str>();

        let bulk = {
            let sched = Arc::clone(&sched);
            let tx = tx.clone();
            std::thread::spawn(move || {
                let permit = sched.acquire(Priority::Bulk, None).unwrap();
                tx.send("bulk").unwrap();
                drop(permit);
            })
        };
        // Give the bulk waiter time to park, then queue an interactive one.
        std::thread::sleep(Duration::from_millis(50));
        let interactive = {
            let sched = Arc::clone(&sched);
            std::thread::spawn(move || {
                let permit = sched.acquire(Priority::Interactive, None).unwrap();
                tx.send("interactive").unwrap();
                // Hold briefly so the bulk thread demonstrably waited.
                std::thread::sleep(Duration::from_millis(20));
                drop(permit);
            })
        };
        std::thread::sleep(Duration::from_millis(50));
        drop(holder);
        assert_eq!(
            rx.recv_timeout(Duration::from_secs(5)).unwrap(),
            "interactive"
        );
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), "bulk");
        interactive.join().unwrap();
        bulk.join().unwrap();
    }

    #[test]
    fn gate_acquisition_times_out_when_slots_are_held() {
        let sched = UnitScheduler::new(1);
        let _holder = sched.acquire(Priority::Bulk, None).unwrap();
        let deadline = Some(Instant::now() + Duration::from_millis(30));
        let Err(err) = sched.acquire(Priority::Interactive, deadline) else {
            panic!("acquire should time out while the only slot is held");
        };
        assert!(err.to_string().contains("timed out"), "{err}");
        // The timed-out interactive waiter must not leave the gate counting
        // it, or bulk work would starve forever.
        assert_eq!(lock_ok(&sched.gate).interactive_waiting, 0);
    }

    // ---- single-flight ----------------------------------------------------

    fn tiny_plan_fixture() -> (ReadPipeline, Vec<LayerWorkload>) {
        let pipeline = ReadPipeline::builder()
            .source(Algorithm::Baseline)
            .condition(OperatingCondition::ideal())
            .build()
            .unwrap();
        let config = WorkloadConfig {
            pixels_per_layer: 1,
            ..WorkloadConfig::default()
        };
        let workloads = vgg16_workloads_prefix(&config, 1);
        (pipeline, workloads)
    }

    #[test]
    fn joining_a_published_flight_counts_an_inflight_hit() {
        let (pipeline, workloads) = tiny_plan_fixture();
        let plan = pipeline.plan_ter("vgg16", &workloads).unwrap();
        let unit = plan.units()[0].clone();
        let sched = UnitScheduler::new(1);
        let key = plan.flight_key(&unit);

        // Act as the leader by hand: mark the flight running, park a real
        // waiter on it, then publish a sentinel histogram and check the
        // waiter re-wraps it with its own indices and counts an in-flight
        // hit instead of computing.
        lock_ok(&sched.flights).insert(
            key.clone(),
            FlightState::Running {
                epoch: 0,
                waiters: 0,
            },
        );
        let sentinel = DepthHistogram::new();
        let (result, joined_hits) = std::thread::scope(|scope| {
            let handle = scope.spawn(|| {
                let inflight = AtomicU64::new(0);
                let result = sched.run_unit(&plan, &unit, Priority::Interactive, None, &inflight);
                (result, inflight.load(Ordering::Relaxed))
            });
            loop {
                {
                    let flights = lock_ok(&sched.flights);
                    if matches!(
                        flights.get(&key),
                        Some(FlightState::Running { waiters: 1, .. })
                    ) {
                        break;
                    }
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            {
                let mut flights = lock_ok(&sched.flights);
                flights.insert(
                    key.clone(),
                    FlightState::Done {
                        epoch: 0,
                        value: Ok(FlightValue::Hist(sentinel.clone())),
                        remaining: 1,
                    },
                );
            }
            sched.flights_cv.notify_all();
            handle.join().unwrap()
        });
        let WorkUnit::Histogram { cell, pair } = unit else {
            panic!("expected a histogram unit");
        };
        assert_eq!(
            result.unwrap(),
            UnitResult::Histogram {
                cell,
                pair,
                hist: sentinel
            }
        );
        assert_eq!(joined_hits, 1);
        // The last collector removes the Done entry.
        assert!(lock_ok(&sched.flights).is_empty());
    }

    #[test]
    fn run_plan_units_matches_direct_execution() {
        let (pipeline, workloads) = tiny_plan_fixture();
        let plan = pipeline.plan_ter("vgg16", &workloads).unwrap();
        let sched = UnitScheduler::new(2);
        let inflight = AtomicU64::new(0);
        let results = sched
            .run_plan_units(&plan, Priority::Interactive, None, &inflight)
            .unwrap();
        assert_eq!(results.len(), plan.len());
        let report = plan.aggregate(results).unwrap().into_ter().unwrap();
        let direct = pipeline.run_ter("vgg16", &workloads).unwrap();
        assert_eq!(report.to_json(), direct.to_json());
        assert_eq!(inflight.load(Ordering::Relaxed), 0);
    }

    // ---- end-to-end -------------------------------------------------------

    #[test]
    fn daemon_serves_ping_request_and_shuts_down() {
        let handle = ServeServer::spawn("127.0.0.1:0", ServerConfig::default()).unwrap();
        let client = handle.client();
        client.ping().unwrap();

        let mut request = ServeRequest::ter("serve-e2e");
        request.layers = 1;
        request.pixels = 1;
        request.sources = vec![SourceSpec::Baseline];
        request.corners = vec![CornerSpec::ideal()];
        let reply = client.request(&request).unwrap();
        assert_eq!(reply.kind, RequestKind::Ter);
        assert_eq!(reply.priority, Priority::Interactive);
        assert_eq!(reply.units, 1);
        assert!(
            reply.report_json.contains("serve-e2e"),
            "{}",
            reply.report_json
        );
        assert_eq!(reply.stats.hist_misses, 1);
        assert_eq!(reply.stats.inflight_hits, 0);

        // A repeat of the same request is served from the daemon store:
        // zero fresh histogram computations.
        let warm = client.request(&request).unwrap();
        assert_eq!(warm.report_json, reply.report_json);
        assert_eq!(warm.stats.hist_misses, 0);
        assert!(warm.stats.disk_hits > 0);

        let daemon_stats = client.stats().unwrap();
        assert!(daemon_stats.store_writes > 0);

        let bad = client.request(&ServeRequest {
            sources: Vec::new(),
            ..ServeRequest::ter("bad")
        });
        assert!(bad.is_err());

        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    // ---- deadline + waiter-accounting pins --------------------------------

    #[test]
    fn expired_deadline_never_claims_a_free_slot() {
        // Bug pin: `acquire` used to check the deadline only while blocked,
        // so an already-expired request with a free slot started computing
        // anyway.
        let sched = UnitScheduler::new(4);
        let expired = Some(Instant::now() - Duration::from_millis(1));
        let err = sched
            .acquire(Priority::Interactive, expired)
            .map(|_| ())
            .unwrap_err();
        assert!(err.to_string().contains("timed out"), "{err}");
        // The aborted acquisition left the gate untouched.
        let gate = lock_ok(&sched.gate);
        assert_eq!(gate.active, 0);
        assert_eq!(gate.interactive_waiting, 0);
    }

    #[test]
    fn deadline_is_checked_between_units() {
        // Bug pin: once admitted, a leader used to run every remaining unit
        // with no deadline check between them.
        let (pipeline, workloads) = tiny_plan_fixture();
        let plan = pipeline.plan_ter("vgg16", &workloads).unwrap();
        let sched = UnitScheduler::new(1);
        let inflight = AtomicU64::new(0);
        let expired = Some(Instant::now() - Duration::from_millis(1));
        let err = sched
            .run_plan_units(&plan, Priority::Interactive, expired, &inflight)
            .unwrap_err();
        assert!(err.to_string().contains("timed out"), "{err}");
    }

    #[test]
    fn abandoned_waiter_does_not_touch_a_successor_flights_accounting() {
        // Bug pin: a waiter parked on a flight whose leader aborted used to
        // decrement whatever state *currently* held the key — if a new
        // generation had re-taken it, the waiter corrupted (underflowed)
        // counters it never registered on.
        let sched = UnitScheduler::new(1);
        let key = "epoch-test".to_string();
        std::thread::scope(|scope| {
            // Generation 1: this thread leads.
            assert!(matches!(
                sched.join_or_lead(&key, None).unwrap(),
                Role::Leader
            ));
            let deadline = Some(Instant::now() + Duration::from_millis(200));
            let (sched_ref, key_ref) = (&sched, &key);
            let waiter = scope.spawn(move || sched_ref.join_or_lead(key_ref, deadline));
            // Wait until the waiter registered on generation 1.
            loop {
                {
                    let flights = lock_ok(&sched.flights);
                    if matches!(
                        flights.get(&key),
                        Some(FlightState::Running { waiters: 1, .. })
                    ) {
                        break;
                    }
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            // Generation 1 aborts and generation 2 re-takes the key before
            // the waiter wakes.
            {
                let mut flights = lock_ok(&sched.flights);
                flights.remove(&key);
                let epoch = sched.flight_epoch.fetch_add(1, Ordering::Relaxed);
                flights.insert(key.clone(), FlightState::Running { epoch, waiters: 0 });
            }
            sched.flights_cv.notify_all();
            // The stale waiter must come back as Retry without panicking or
            // decrementing generation 2's counter.
            assert!(matches!(waiter.join().unwrap().unwrap(), Role::Retry));
            let flights = lock_ok(&sched.flights);
            assert!(matches!(
                flights.get(&key),
                Some(FlightState::Running { waiters: 0, .. })
            ));
        });
    }

    #[test]
    fn stale_waiter_joins_a_successor_publish_without_decrementing_it() {
        // Same race, Done flavor: the successor generation published with
        // `remaining` counting *its* waiters; a stale waiter clones the
        // value but must not decrement (which used to free the entry early
        // or underflow).
        let sched = UnitScheduler::new(1);
        let key = "epoch-done-test".to_string();
        std::thread::scope(|scope| {
            assert!(matches!(
                sched.join_or_lead(&key, None).unwrap(),
                Role::Leader
            ));
            let waiter = scope.spawn(|| sched.join_or_lead(&key, None));
            loop {
                {
                    let flights = lock_ok(&sched.flights);
                    if matches!(
                        flights.get(&key),
                        Some(FlightState::Running { waiters: 1, .. })
                    ) {
                        break;
                    }
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            // Generation 1 aborts; generation 2 leads and publishes Done
            // with 2 registered waiters of its own.
            {
                let mut flights = lock_ok(&sched.flights);
                flights.remove(&key);
                let epoch = sched.flight_epoch.fetch_add(1, Ordering::Relaxed);
                flights.insert(
                    key.clone(),
                    FlightState::Done {
                        epoch,
                        value: Ok(FlightValue::Hist(DepthHistogram::new())),
                        remaining: 2,
                    },
                );
            }
            sched.flights_cv.notify_all();
            let joined = waiter.join().unwrap().unwrap();
            assert!(matches!(joined, Role::Joined(Ok(FlightValue::Hist(_)))));
            let flights = lock_ok(&sched.flights);
            assert!(matches!(
                flights.get(&key),
                Some(FlightState::Done { remaining: 2, .. })
            ));
        });
    }

    #[test]
    fn no_timeout_sentinel_round_trips_and_disables_the_server_default() {
        let mut request = ServeRequest::ter("no-timeout");
        request.timeout_ms = NO_TIMEOUT;
        let encoded = request.encode();
        assert!(encoded.contains("timeout_ms=none"), "{encoded}");
        let decoded = ServeRequest::decode(&encoded).unwrap();
        assert_eq!(decoded.timeout_ms, NO_TIMEOUT);
        assert_eq!(decoded, request);

        // End-to-end: a server whose default timeout already expired still
        // serves a NO_TIMEOUT request (0 would have inherited the default
        // and timed out between units).
        let handle = ServeServer::spawn(
            "127.0.0.1:0",
            ServerConfig {
                default_timeout_ms: 1,
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let client = handle.client();
        let mut request = ServeRequest::ter("no-timeout");
        request.layers = 1;
        request.pixels = 1;
        request.sources = vec![SourceSpec::Baseline];
        request.corners = vec![CornerSpec::ideal()];
        request.timeout_ms = NO_TIMEOUT;
        let reply = client.request(&request).unwrap();
        assert_eq!(reply.units, 1);
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    // ---- worker server ----------------------------------------------------

    #[test]
    fn worker_rejects_a_bad_spec_in_band() {
        let handle = WorkerServer::spawn("127.0.0.1:0", WorkerConfig::default()).unwrap();
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let mut reader = BufReader::new(stream);
        writeln!(reader.get_ref(), "req v1 kind=nonsense").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.starts_with('!'), "{line}");
        WorkerServer::shutdown_at(&handle.addr().to_string()).unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn worker_serves_a_plan_over_the_socket_protocol() {
        let handle = WorkerServer::spawn("127.0.0.1:0", WorkerConfig::default()).unwrap();

        let mut request = ServeRequest::ter("worker-e2e");
        request.layers = 1;
        request.pixels = 1;
        request.sources = vec![SourceSpec::Baseline];
        request.corners = vec![CornerSpec::ideal()];
        // Driver side: the same spec expands to the same plan.
        let store: Arc<dyn ArtifactStore> = Arc::new(MemoryStore::new());
        let job = RequestJob::build(request.clone(), store).unwrap();
        let plan = job.plan().unwrap();
        let serial = SerialExecutor.execute(&plan, 0..plan.len()).unwrap();

        let executor = SocketExecutor::new(request.encode(), [handle.addr().to_string()]);
        let remote = executor.execute(&plan, 0..plan.len()).unwrap();
        assert_eq!(remote, serial);
        assert_eq!(executor.stats().worker_deaths(), 0);
        assert_eq!(executor.stats().completed_units(), plan.len() as u64);

        WorkerServer::shutdown_at(&handle.addr().to_string()).unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn request_timeout_surfaces_as_a_server_error() {
        let handle = ServeServer::spawn("127.0.0.1:0", ServerConfig::default()).unwrap();
        let client = handle.client();
        // Saturate the only flight key path cheaply: a deadline in the past
        // cannot admit any unit.
        let mut request = ServeRequest::ter("deadline");
        request.layers = 1;
        request.pixels = 1;
        request.sources = vec![SourceSpec::Baseline];
        request.corners = vec![CornerSpec::ideal()];
        request.timeout_ms = 1;
        // The request may still succeed when the unit finishes within 1ms of
        // admission; accept either a timeout error or success, but a timeout
        // must be a clean protocol error, not a hang.
        match client.request(&request) {
            Ok(reply) => assert_eq!(reply.units, 1),
            Err(e) => assert!(e.to_string().contains("timed out"), "{e}"),
        }
        client.shutdown().unwrap();
        handle.join().unwrap();
    }
}
