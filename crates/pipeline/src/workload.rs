//! Synthetic layer workloads: the paper's network layers realised with
//! synthetic trained weights and post-ReLU activations.
//!
//! (Moved here from `read-bench` so that every pipeline consumer — benches,
//! examples, tests — shares one workload vocabulary.)

use accel_sim::{ConvShape, GemmProblem, Matrix};
use qnn::init::{synthetic_activations, WeightInit};
use qnn::models;

/// How a layer workload is generated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadConfig {
    /// Number of output pixels (activation-matrix columns) to generate per
    /// layer.  TER is a rate, so a modest sample is sufficient; the paper's
    /// full layers would be billions of MACs.
    pub pixels_per_layer: usize,
    /// Fraction of zero activations (post-ReLU sparsity).
    pub activation_sparsity: f64,
    /// Weight sparsity (fraction of exactly-zero weights).
    pub weight_sparsity: f64,
    /// Cross-channel correlation of the weights in `[0, 1]`: trained
    /// convolution filters fall into families with similar sign patterns,
    /// which is exactly the structure output-channel clustering exploits.
    /// `0.0` makes every output channel independent; values around `0.5`
    /// mimic trained layers.
    pub channel_correlation: f64,
    /// Number of filter families the correlated component is drawn from.
    pub filter_families: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            pixels_per_layer: 4,
            activation_sparsity: 0.45,
            weight_sparsity: 0.05,
            channel_correlation: 0.55,
            filter_families: 8,
            seed: 0xBE9C4,
        }
    }
}

/// One convolution layer lowered to the GEMM form the simulator consumes.
#[derive(Debug, Clone)]
pub struct LayerWorkload {
    /// Layer name (e.g. `"conv3_2"`).
    pub name: String,
    /// Full-size convolution shape of the layer.
    pub shape: ConvShape,
    /// Weight matrix (`reduction_len x K`).
    pub weights: Matrix<i8>,
    /// Activation matrix (`reduction_len x pixels`).
    pub activations: Matrix<i8>,
}

impl LayerWorkload {
    /// Wraps raw weight/activation matrices as a workload (a pointwise
    /// convolution shape is synthesized, so `macs_per_output` equals the
    /// reduction length).
    ///
    /// # Errors
    ///
    /// Returns [`accel_sim::SimError`] when the matrices are empty or their
    /// reduction dimensions disagree.
    pub fn from_matrices(
        name: &str,
        weights: Matrix<i8>,
        activations: Matrix<i8>,
    ) -> Result<Self, accel_sim::SimError> {
        // Validate consistency the same way the simulator will.
        GemmProblem::new(weights.clone(), activations.clone())?;
        let shape = ConvShape::pointwise(
            1,
            weights.rows(),
            1,
            activations.cols().max(1),
            weights.cols(),
        );
        Ok(LayerWorkload {
            name: name.to_string(),
            shape,
            weights,
            activations,
        })
    }

    /// Builds a workload for one layer shape.
    pub fn generate(name: &str, shape: ConvShape, config: &WorkloadConfig, index: usize) -> Self {
        let reduction = shape.reduction_len();
        let rho = config.channel_correlation.clamp(0.0, 1.0);
        let families = config.filter_families.max(1);
        let mut proto_init =
            WeightInit::new(config.seed.wrapping_add(index as u64 * 7919)).with_sparsity(0.0);
        // Shared "filter family" component: channels of the same family have
        // correlated sign patterns, as trained filters do.
        let prototypes = Matrix::from_fn(reduction, families, |_, _| proto_init.weight(reduction));
        let mut init = WeightInit::new(config.seed.wrapping_add(index as u64 * 7919 + 1))
            .with_sparsity(config.weight_sparsity);
        let weights = Matrix::from_fn(reduction, shape.k, |r, k| {
            let idio = f64::from(init.weight(reduction));
            if idio == 0.0 {
                // Preserve the configured exact-zero sparsity.
                return 0;
            }
            let proto = f64::from(prototypes[(r, k % families)]);
            let mixed = rho.sqrt() * proto + (1.0 - rho).sqrt() * idio;
            mixed.round().clamp(-127.0, 127.0) as i8
        });
        let acts = synthetic_activations(
            reduction * config.pixels_per_layer,
            config.activation_sparsity,
            config.seed.wrapping_add(0x5A17 + index as u64),
        );
        let activations = Matrix::from_fn(reduction, config.pixels_per_layer, |r, p| {
            acts[r * config.pixels_per_layer + p]
        });
        LayerWorkload {
            name: name.to_string(),
            shape,
            weights,
            activations,
        }
    }

    /// The GEMM problem of this workload.
    ///
    /// # Panics
    ///
    /// Never panics for workloads produced by [`LayerWorkload::generate`]
    /// (the matrices are consistent by construction).
    pub fn problem(&self) -> GemmProblem {
        GemmProblem::new(self.weights.clone(), self.activations.clone())
            .expect("workload matrices are consistent by construction")
    }

    /// MAC operations per output activation (the `N` of Eq. (1)).
    pub fn macs_per_output(&self) -> usize {
        self.shape.macs_per_output()
    }
}

fn generate_prefix(
    shapes: Vec<(String, ConvShape)>,
    base_index: usize,
    config: &WorkloadConfig,
    take: usize,
) -> Vec<LayerWorkload> {
    let take = if take == 0 { shapes.len() } else { take };
    shapes
        .into_iter()
        .take(take)
        .enumerate()
        .map(|(i, (name, shape))| LayerWorkload::generate(&name, shape, config, base_index + i))
        .collect()
}

/// Workloads for every convolution layer of VGG-16 on CIFAR-sized inputs.
pub fn vgg16_workloads(config: &WorkloadConfig) -> Vec<LayerWorkload> {
    vgg16_workloads_prefix(config, 0)
}

/// The first `take` layers of [`vgg16_workloads`] (0 = all) without
/// generating the rest.  Deep-layer weight synthesis dominates generation
/// cost, so a layer-prefix consumer — e.g. an interactive serve request —
/// should never pay for conv5 it will not simulate.  Each generated layer
/// is identical to its [`vgg16_workloads`] counterpart (per-layer seeds
/// derive from the layer index alone).
pub fn vgg16_workloads_prefix(config: &WorkloadConfig, take: usize) -> Vec<LayerWorkload> {
    generate_prefix(models::vgg16_cifar_conv_shapes(), 0, config, take)
}

/// Workloads for every main-path convolution layer of ResNet-18 on
/// CIFAR-sized inputs.
pub fn resnet18_workloads(config: &WorkloadConfig) -> Vec<LayerWorkload> {
    resnet18_workloads_prefix(config, 0)
}

/// The first `take` layers of [`resnet18_workloads`] (0 = all); see
/// [`vgg16_workloads_prefix`].
pub fn resnet18_workloads_prefix(config: &WorkloadConfig, take: usize) -> Vec<LayerWorkload> {
    generate_prefix(models::resnet18_cifar_conv_shapes(), 100, config, take)
}

/// Workloads for every main-path convolution layer of ResNet-34 on
/// ImageNet-sized inputs.
pub fn resnet34_workloads(config: &WorkloadConfig) -> Vec<LayerWorkload> {
    resnet34_workloads_prefix(config, 0)
}

/// The first `take` layers of [`resnet34_workloads`] (0 = all); see
/// [`vgg16_workloads_prefix`].
pub fn resnet34_workloads_prefix(config: &WorkloadConfig, take: usize) -> Vec<LayerWorkload> {
    generate_prefix(models::resnet34_imagenet_conv_shapes(), 200, config, take)
}

#[cfg(test)]
mod prefix_tests {
    use super::*;

    #[test]
    fn prefix_generation_matches_truncated_full_generation() {
        let config = WorkloadConfig {
            pixels_per_layer: 1,
            ..WorkloadConfig::default()
        };
        let full = vgg16_workloads(&config);
        let prefix = vgg16_workloads_prefix(&config, 2);
        assert_eq!(prefix.len(), 2);
        for (p, f) in prefix.iter().zip(&full) {
            assert_eq!(p.name, f.name);
            assert_eq!(p.weights, f.weights);
            assert_eq!(p.activations, f.activations);
        }
        // take = 0 and an oversized take both mean "all layers".
        assert_eq!(vgg16_workloads_prefix(&config, 0).len(), full.len());
        assert_eq!(vgg16_workloads_prefix(&config, 999).len(), full.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg_workloads_cover_all_layers() {
        let config = WorkloadConfig {
            pixels_per_layer: 2,
            ..WorkloadConfig::default()
        };
        let w = vgg16_workloads(&config);
        assert_eq!(w.len(), 13);
        for layer in &w {
            assert_eq!(layer.weights.rows(), layer.shape.reduction_len());
            assert_eq!(layer.activations.cols(), 2);
            assert!(layer.activations.as_slice().iter().all(|&a| a >= 0));
        }
    }

    #[test]
    fn resnet_workloads_have_expected_counts() {
        let config = WorkloadConfig {
            pixels_per_layer: 1,
            ..WorkloadConfig::default()
        };
        assert_eq!(resnet18_workloads(&config).len(), 17);
        assert_eq!(resnet34_workloads(&config).len(), 33);
    }

    #[test]
    fn workload_problem_is_consistent() {
        let config = WorkloadConfig {
            pixels_per_layer: 3,
            ..WorkloadConfig::default()
        };
        let layer = &vgg16_workloads(&config)[1];
        let p = layer.problem();
        assert_eq!(p.reduction_len(), layer.shape.reduction_len());
        assert_eq!(p.num_pixels(), 3);
        assert_eq!(layer.macs_per_output(), layer.shape.reduction_len());
    }

    #[test]
    fn generation_is_deterministic() {
        let config = WorkloadConfig::default();
        let a = vgg16_workloads(&config);
        let b = vgg16_workloads(&config);
        assert_eq!(a[3].weights, b[3].weights);
        assert_eq!(a[3].activations, b[3].activations);
    }
}
