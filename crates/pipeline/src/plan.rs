//! The [`WorkPlan`]: a typed, enumerable description of every unit of work
//! a pipeline run executes, with a deterministic text wire encoding.
//!
//! Every `ReadPipeline::run_*` experiment expands into a flat list of
//! [`WorkUnit`]s before anything executes:
//!
//! * [`WorkUnit::Histogram`] — simulate one (workload, source) pair and
//!   return its triggered-depth histogram.  Histograms are independent of
//!   the operating corner, so a sweep emits one histogram unit per pair
//!   (with `cell = 0`) and every grid cell reuses it.
//! * [`WorkUnit::McShard`] — evaluate one Monte-Carlo trial sub-range of a
//!   sweep cell across every pair.  Trial `t`'s RNG stream depends only on
//!   `(seed, t)`, so any partition of the trial range re-aggregates bit for
//!   bit.
//! * [`WorkUnit::AccuracyPoint`] — evaluate one (condition, source) cell of
//!   an accuracy experiment under error injection.
//! * [`WorkUnit::DataflowProbe`] — run the event-driven dataflow engine on
//!   one (dataflow, workload, source) cell and return its
//!   [`dataflow_sim::DataflowReport`] (cycles, utilization, stall
//!   breakdown, peak buffer occupancy).
//!
//! Units are *position-independent*: a unit's result depends only on the
//! unit identity and the pipeline configuration, never on which worker ran
//! it or in what order.  That is what makes the plan the multi-process
//! sharding seam — [`WorkUnit::encode`] / [`UnitResult::encode`] define a
//! line-oriented wire format (hand-rolled, like the report `to_json()`s,
//! since serde is unavailable offline) that [`crate::SubprocessExecutor`]
//! speaks over worker stdin/stdout and [`WorkPlan::serve`] answers, and the
//! [`Aggregator`] folds any permutation or partition of [`UnitResult`]s
//! back into the exact report a serial in-process run produces.
//!
//! The wire format is a stable contract (pinned by a golden fixture in the
//! integration tests): one unit or result per line, space-separated
//! `key=value` fields in a fixed order, strings escaped with `\s`/`\n`/
//! `\r`/`\\`, floats rendered with Rust's shortest round-trip formatting
//! (exact `f64` round trips).

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::io::{BufRead, Write};
use std::ops::Range;
use std::sync::Arc;

use accel_sim::Dataflow;
use dataflow_sim::DataflowReport;
use qnn::{Dataset, Model};
use timing::{DepthHistogram, OperatingCorner, TerEstimate};

use crate::cache::{
    dataset_fingerprint, model_fingerprint, workload_fingerprint, UnitCheck, UnitKey,
};
use crate::error::PipelineError;
use crate::pipeline::ReadPipeline;
use crate::report::{
    AccuracyPoint, AccuracyReport, DataflowNetworkReport, DataflowRow, LayerReport, NetworkReport,
};
use crate::stage::fnv1a;
use crate::sweep::{DieModel, SweepCell, SweepPlan, SweepReport, WorstCase};
use crate::workload::LayerWorkload;

/// One unit of a [`WorkPlan`]: the smallest independently-executable,
/// position-independent piece of a pipeline run.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum WorkUnit {
    /// Simulate one (workload, source) pair and return its depth histogram.
    /// `pair` indexes workload-major over the pipeline's sources
    /// (`workload = pair / sources`, `source = pair % sources`).  `cell` is
    /// the grid cell the unit was emitted for; histograms are
    /// corner-independent, so plans emit `cell = 0` and every cell shares
    /// the result.
    Histogram {
        /// Grid-cell index (always `0` in emitted plans).
        cell: usize,
        /// (workload, source) pair index.
        pair: usize,
    },
    /// Evaluate the Monte-Carlo trials `trial_range` of sweep cell `cell`
    /// for every pair.
    McShard {
        /// Sweep grid-cell index (die-major, the [`SweepPlan::corners`]
        /// order).
        cell: usize,
        /// Global trial indices this shard evaluates.
        trial_range: Range<u32>,
    },
    /// Evaluate one (condition, source) accuracy cell
    /// (`condition = cell / sources`, `source = cell % sources`).
    AccuracyPoint {
        /// (condition, source) cell index.
        cell: usize,
    },
    /// Run the event-driven dataflow engine on one
    /// (dataflow, workload, source) cell.  Cells are dataflow-major over
    /// the plan's pairs (`dataflow = cell / pairs`, `pair = cell % pairs`).
    DataflowProbe {
        /// (dataflow, workload, source) cell index.
        cell: usize,
    },
}

impl WorkUnit {
    /// The unit's deterministic, single-line wire id.
    pub fn encode(&self) -> String {
        match self {
            WorkUnit::Histogram { cell, pair } => format!("hist cell={cell} pair={pair}"),
            WorkUnit::McShard { cell, trial_range } => {
                format!(
                    "mc cell={cell} trials={}..{}",
                    trial_range.start, trial_range.end
                )
            }
            WorkUnit::AccuracyPoint { cell } => format!("acc cell={cell}"),
            WorkUnit::DataflowProbe { cell } => format!("dflow cell={cell}"),
        }
    }

    /// Decodes a wire id produced by [`WorkUnit::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Exec`] on any malformed line.
    pub fn decode(line: &str) -> Result<WorkUnit, PipelineError> {
        let mut tokens = line.split_whitespace();
        let tag = tokens.next().ok_or_else(|| bad_wire(line, "empty unit"))?;
        let unit = match tag {
            "hist" => WorkUnit::Histogram {
                cell: parse_field(&mut tokens, "cell", line)?,
                pair: parse_field(&mut tokens, "pair", line)?,
            },
            "mc" => WorkUnit::McShard {
                cell: parse_field(&mut tokens, "cell", line)?,
                trial_range: parse_range(field(&mut tokens, "trials", line)?, line)?,
            },
            "acc" => WorkUnit::AccuracyPoint {
                cell: parse_field(&mut tokens, "cell", line)?,
            },
            "dflow" => WorkUnit::DataflowProbe {
                cell: parse_field(&mut tokens, "cell", line)?,
            },
            other => return Err(bad_wire(line, &format!("unknown unit tag {other:?}"))),
        };
        match tokens.next() {
            None => Ok(unit),
            Some(extra) => Err(bad_wire(line, &format!("trailing token {extra:?}"))),
        }
    }
}

impl std::fmt::Display for WorkUnit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.encode())
    }
}

/// The result of one [`WorkUnit`], self-identifying so results can arrive
/// in any order from any worker.
#[derive(Debug, Clone, PartialEq)]
pub enum UnitResult {
    /// A [`WorkUnit::Histogram`] result.
    Histogram {
        /// Grid-cell index of the producing unit.
        cell: usize,
        /// (workload, source) pair index.
        pair: usize,
        /// The simulated triggered-depth histogram.
        hist: DepthHistogram,
    },
    /// A [`WorkUnit::McShard`] result.
    McShard {
        /// Sweep grid-cell index.
        cell: usize,
        /// Global trial indices the shard evaluated.
        trial_range: Range<u32>,
        /// Per-pair trial TER samples (`ters[pair][trial - start]`), in
        /// pair order then trial order.
        ters: Vec<Vec<f64>>,
    },
    /// A [`WorkUnit::AccuracyPoint`] result.
    Accuracy {
        /// (condition, source) cell index.
        cell: usize,
        /// The evaluated accuracy point.
        point: AccuracyPoint,
    },
    /// A [`WorkUnit::DataflowProbe`] result.
    DataflowProbe {
        /// (dataflow, workload, source) cell index.
        cell: usize,
        /// The probed dynamic-timing report.
        report: DataflowReport,
    },
}

impl UnitResult {
    /// The unit this result answers.
    pub fn unit(&self) -> WorkUnit {
        match self {
            UnitResult::Histogram { cell, pair, .. } => WorkUnit::Histogram {
                cell: *cell,
                pair: *pair,
            },
            UnitResult::McShard {
                cell, trial_range, ..
            } => WorkUnit::McShard {
                cell: *cell,
                trial_range: trial_range.clone(),
            },
            UnitResult::Accuracy { cell, .. } => WorkUnit::AccuracyPoint { cell: *cell },
            UnitResult::DataflowProbe { cell, .. } => WorkUnit::DataflowProbe { cell: *cell },
        }
    }

    /// The result's deterministic, single-line wire encoding.
    pub fn encode(&self) -> String {
        match self {
            UnitResult::Histogram { cell, pair, hist } => {
                // The histogram body is the timing crate's wire rendering
                // (`total=.. flips=.. counts=..`), shared with the artifact
                // store so both persist byte-identical payloads.
                format!("hist cell={cell} pair={pair} {}", hist.to_wire())
            }
            UnitResult::McShard {
                cell,
                trial_range,
                ters,
            } => {
                let mut out = format!(
                    "mc cell={cell} trials={}..{} ters=",
                    trial_range.start, trial_range.end
                );
                for (pi, pair_ters) in ters.iter().enumerate() {
                    if pi > 0 {
                        out.push('|');
                    }
                    for (ti, ter) in pair_ters.iter().enumerate() {
                        if ti > 0 {
                            out.push(',');
                        }
                        out.push_str(&format!("{ter:?}"));
                    }
                }
                out
            }
            UnitResult::Accuracy { cell, point } => format!(
                "acc cell={cell} condition={} algorithm={} top1={:?} topk={:?} k={} mean_ber={:?} seeds={}",
                escape_wire(&point.condition),
                escape_wire(&point.algorithm),
                point.top1,
                point.topk,
                point.k,
                point.mean_ber,
                point.seeds
            ),
            UnitResult::DataflowProbe { cell, report } => {
                // The report body is the dataflow-sim crate's own wire
                // rendering, shared with the artifact store.
                format!("dflow cell={cell} {}", report.to_wire())
            }
        }
    }

    /// Decodes a wire line produced by [`UnitResult::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Exec`] on any malformed line.
    pub fn decode(line: &str) -> Result<UnitResult, PipelineError> {
        let mut tokens = line.split_whitespace();
        let tag = tokens
            .next()
            .ok_or_else(|| bad_wire(line, "empty result"))?;
        let result = match tag {
            "hist" => {
                let cell = parse_field(&mut tokens, "cell", line)?;
                let pair = parse_field(&mut tokens, "pair", line)?;
                // The remaining tokens are the timing crate's histogram
                // wire rendering, which rejects trailing tokens itself.
                let body: Vec<&str> = tokens.by_ref().collect();
                let hist = DepthHistogram::from_wire(&body.join(" "))
                    .ok_or_else(|| bad_wire(line, "malformed or inconsistent histogram"))?;
                UnitResult::Histogram { cell, pair, hist }
            }
            "mc" => {
                let cell = parse_field(&mut tokens, "cell", line)?;
                let trial_range = parse_range(field(&mut tokens, "trials", line)?, line)?;
                let ters_value = field(&mut tokens, "ters", line)?;
                let ters = if ters_value.is_empty() {
                    Vec::new()
                } else {
                    ters_value
                        .split('|')
                        .map(|group| {
                            if group.is_empty() {
                                return Ok(Vec::new());
                            }
                            group
                                .split(',')
                                .map(|v| v.parse::<f64>().map_err(|_| bad_wire(line, "bad ter")))
                                .collect()
                        })
                        .collect::<Result<Vec<Vec<f64>>, PipelineError>>()?
                };
                UnitResult::McShard {
                    cell,
                    trial_range,
                    ters,
                }
            }
            "acc" => {
                let cell = parse_field(&mut tokens, "cell", line)?;
                let condition = unescape(field(&mut tokens, "condition", line)?, line)?;
                let algorithm = unescape(field(&mut tokens, "algorithm", line)?, line)?;
                let top1 = parse_f64(field(&mut tokens, "top1", line)?, line)?;
                let topk = parse_f64(field(&mut tokens, "topk", line)?, line)?;
                let k = parse_field(&mut tokens, "k", line)?;
                let mean_ber = parse_f64(field(&mut tokens, "mean_ber", line)?, line)?;
                let seeds = parse_field(&mut tokens, "seeds", line)?;
                UnitResult::Accuracy {
                    cell,
                    point: AccuracyPoint {
                        condition,
                        algorithm,
                        top1,
                        topk,
                        k,
                        mean_ber,
                        seeds,
                    },
                }
            }
            "dflow" => {
                let cell = parse_field(&mut tokens, "cell", line)?;
                // The remaining tokens are the dataflow report's wire
                // rendering, which rejects trailing tokens itself.
                let body: Vec<&str> = tokens.by_ref().collect();
                let report = DataflowReport::from_wire(&body.join(" "))
                    .ok_or_else(|| bad_wire(line, "malformed dataflow report"))?;
                UnitResult::DataflowProbe { cell, report }
            }
            other => return Err(bad_wire(line, &format!("unknown result tag {other:?}"))),
        };
        match tokens.next() {
            None => Ok(result),
            Some(extra) => Err(bad_wire(line, &format!("trailing token {extra:?}"))),
        }
    }
}

fn bad_wire(line: &str, reason: &str) -> PipelineError {
    PipelineError::exec(format!("malformed wire line {line:?}: {reason}"))
}

/// Pulls the next token off `tokens` and returns its value, requiring the
/// `key=` prefix (the wire format's fields come in a fixed order).
fn field<'t>(
    tokens: &mut impl Iterator<Item = &'t str>,
    key: &str,
    line: &str,
) -> Result<&'t str, PipelineError> {
    let token = tokens
        .next()
        .ok_or_else(|| bad_wire(line, &format!("missing field {key:?}")))?;
    token
        .strip_prefix(key)
        .and_then(|rest| rest.strip_prefix('='))
        .ok_or_else(|| bad_wire(line, &format!("expected field {key:?}, got {token:?}")))
}

fn parse_field<'t, T: std::str::FromStr>(
    tokens: &mut impl Iterator<Item = &'t str>,
    key: &str,
    line: &str,
) -> Result<T, PipelineError> {
    field(tokens, key, line)?
        .parse()
        .map_err(|_| bad_wire(line, &format!("bad value for {key:?}")))
}

fn parse_f64(value: &str, line: &str) -> Result<f64, PipelineError> {
    value.parse().map_err(|_| bad_wire(line, "bad float value"))
}

fn parse_range(value: &str, line: &str) -> Result<Range<u32>, PipelineError> {
    let (lo, hi) = value
        .split_once("..")
        .ok_or_else(|| bad_wire(line, "range without '..'"))?;
    let lo: u32 = lo.parse().map_err(|_| bad_wire(line, "bad range start"))?;
    let hi: u32 = hi.parse().map_err(|_| bad_wire(line, "bad range end"))?;
    Ok(lo..hi)
}

/// Escapes a string field for the single-line, space-tokenized wire format.
/// The decoder tokenizes with `split_whitespace`, so EVERY Unicode
/// whitespace character must be escaped, not just ASCII space — the
/// uncommon ones round-trip as `\uXXXX` (whitespace is BMP-only).
/// Shared with the artifact-store check lines ([`crate::cache`]), which
/// reuse the same single-line framing.
pub(crate) fn escape_wire(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            ' ' => out.push_str("\\s"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if c.is_whitespace() => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

pub(crate) fn unescape(s: &str, line: &str) -> Result<String, PipelineError> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(ch) = chars.next() {
        if ch != '\\' {
            out.push(ch);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('s') => out.push(' '),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                let code = u32::from_str_radix(&hex, 16)
                    .ok()
                    .and_then(char::from_u32)
                    .ok_or_else(|| bad_wire(line, "bad \\u escape"))?;
                out.push(code);
            }
            _ => return Err(bad_wire(line, "bad escape sequence")),
        }
    }
    Ok(out)
}

/// What a [`WorkPlan`] produces when aggregated.
pub(crate) enum PlanKind<'a> {
    /// A layer-wise TER experiment ([`ReadPipeline::run_ter`]).
    Ter,
    /// A corner/die sweep ([`ReadPipeline::run_sweep`]).
    Sweep {
        corners: Vec<OperatingCorner>,
        models: Vec<DieModel>,
    },
    /// An accuracy-under-PVTA experiment ([`ReadPipeline::run_accuracy`]).
    Accuracy {
        model: &'a Model,
        dataset: &'a Dataset,
        conv_names: Vec<String>,
        seeds: u64,
    },
    /// A dataflow-probe experiment ([`ReadPipeline::run_dataflow`]).
    Dataflow { dataflows: Vec<Dataflow> },
}

/// The full content signature of a plan: every stage fingerprint, workload
/// content hash and grid parameter a unit's result can depend on, rendered
/// deterministically.  Two plans with equal signatures produce identical
/// results for identical unit ids — which is exactly the contract the
/// memoized unit-result cache ([`crate::cache::UnitCache`]) keys on.  The
/// network label is deliberately excluded: it names reports, it never
/// changes a unit's result.
fn plan_signature(
    pipeline: &ReadPipeline,
    workloads: &[LayerWorkload],
    kind: &PlanKind<'_>,
) -> String {
    use std::fmt::Write as _;
    let mut sig = pipeline.stage_signature();
    sig.push_str(" workloads=");
    for (i, workload) in workloads.iter().enumerate() {
        if i > 0 {
            sig.push(';');
        }
        let _ = write!(
            sig,
            "{}:{:016x}",
            escape_wire(&workload.name),
            workload_fingerprint(workload)
        );
    }
    match kind {
        PlanKind::Ter => sig.push_str(" kind=ter"),
        PlanKind::Sweep { corners, models } => {
            sig.push_str(" kind=sweep grid=");
            for (i, (corner, model)) in corners.iter().zip(models).enumerate() {
                if i > 0 {
                    sig.push(';');
                }
                let _ = write!(
                    sig,
                    "{:?}|{:016x}",
                    corner,
                    model.as_error_model().fingerprint()
                );
            }
        }
        PlanKind::Accuracy {
            model,
            dataset,
            seeds,
            ..
        } => {
            let _ = write!(
                sig,
                " kind=acc model={:016x} dataset={:016x} seeds={seeds} conds=",
                model_fingerprint(model),
                dataset_fingerprint(dataset)
            );
            for (i, condition) in pipeline.conditions().iter().enumerate() {
                if i > 0 {
                    sig.push(';');
                }
                let _ = write!(sig, "{condition:?}");
            }
        }
        PlanKind::Dataflow { dataflows } => {
            // The prober's fingerprint covers the engine configuration
            // (channel capacities, hop latency), which changes every probe
            // result — the stage signature deliberately excludes it so TER
            // / sweep / accuracy memoization stays undisturbed.
            let prober = pipeline.dataflow_prober();
            let _ = write!(
                sig,
                " kind=dflow prober={}:{:016x} dataflows=",
                escape_wire(&prober.name()),
                prober.fingerprint()
            );
            for (i, dataflow) in dataflows.iter().enumerate() {
                if i > 0 {
                    sig.push(';');
                }
                sig.push_str(dataflow.name());
            }
        }
    }
    sig
}

/// A typed, enumerable description of every unit a pipeline run executes.
///
/// Obtain one with [`ReadPipeline::plan_ter`], [`ReadPipeline::plan_sweep`]
/// / [`ReadPipeline::plan_sweep_with`] or [`ReadPipeline::plan_accuracy_for`];
/// execute it with any [`crate::Executor`]; fold the results back with
/// [`WorkPlan::aggregate`] (or an explicit [`Aggregator`]).  Executing the
/// same plan on any executor — serial, threaded, or worker subprocesses —
/// and aggregating any permutation or partition of the results produces
/// byte-identical reports.
pub struct WorkPlan<'a> {
    pub(crate) pipeline: &'a ReadPipeline,
    pub(crate) workloads: &'a [LayerWorkload],
    network: String,
    kind: PlanKind<'a>,
    units: Vec<WorkUnit>,
    /// Unit → index lookup, so serving and result-matching stay O(1) per
    /// unit instead of scanning the unit list (plans can carry thousands of
    /// Monte-Carlo shards at paper scale).
    unit_index: HashMap<WorkUnit, usize>,
    /// Full content signature of everything a unit result depends on —
    /// stage fingerprints, workload contents, the evaluation grid — used to
    /// key memoized [`UnitResult`]s (see [`WorkPlan::signature`]).
    signature: Arc<str>,
    /// FNV-1a of [`WorkPlan::signature`], the `plan` half of a
    /// [`UnitKey`].
    signature_hash: u64,
}

impl<'a> WorkPlan<'a> {
    fn assemble(
        pipeline: &'a ReadPipeline,
        workloads: &'a [LayerWorkload],
        network: &str,
        kind: PlanKind<'a>,
        units: Vec<WorkUnit>,
    ) -> Self {
        let unit_index = units
            .iter()
            .enumerate()
            .map(|(index, unit)| (unit.clone(), index))
            .collect();
        let signature: Arc<str> = plan_signature(pipeline, workloads, &kind).into();
        let signature_hash = fnv1a(signature.bytes());
        WorkPlan {
            pipeline,
            workloads,
            network: network.to_string(),
            kind,
            units,
            unit_index,
            signature,
            signature_hash,
        }
    }
    pub(crate) fn ter(
        pipeline: &'a ReadPipeline,
        network: &str,
        workloads: &'a [LayerWorkload],
    ) -> Result<Self, PipelineError> {
        if pipeline.conditions().is_empty() {
            return Err(PipelineError::Missing {
                what: "operating conditions",
            });
        }
        let pairs = workloads.len() * pipeline.sources().len();
        let units = (0..pairs)
            .map(|pair| WorkUnit::Histogram { cell: 0, pair })
            .collect();
        Ok(WorkPlan::assemble(
            pipeline,
            workloads,
            network,
            PlanKind::Ter,
            units,
        ))
    }

    pub(crate) fn sweep(
        pipeline: &'a ReadPipeline,
        network: &str,
        workloads: &'a [LayerWorkload],
        plan: &SweepPlan,
    ) -> Result<Self, PipelineError> {
        plan.validate()?;
        // The grid is the single encoding of cell order (die-major); each
        // cell's error model derives from its corner's variation, so the
        // stage can never drift from the grid position.
        let corners = plan.corners(pipeline.array());
        let models: Vec<DieModel> = corners
            .iter()
            .map(|corner| plan.cell_model(corner))
            .collect();
        let pairs = workloads.len() * pipeline.sources().len();
        // Histograms are corner-independent: one unit per pair serves every
        // cell of the grid.  Monte-Carlo cells additionally expand their
        // trial budget into one unit per shard; a shard re-reads the pair
        // histograms through the cache, so the leading histogram units
        // double as its warm-up (a thread that claims a shard while some
        // pair is still mid-simulation may race a duplicate simulation —
        // bounded by the in-flight pair count, deterministic, and accepted
        // by the cache contract).  Analytic and per-PE cells
        // emit no evaluation unit on purpose: their estimates are
        // closed-form sums over the ~25 histogram buckets (× PEs for a
        // die), computed during aggregation — orders of magnitude cheaper
        // than the simulation/sampling units and far below the
        // per-unit coordination cost of any distributed executor.
        let mut units: Vec<WorkUnit> = (0..pairs)
            .map(|pair| WorkUnit::Histogram { cell: 0, pair })
            .collect();
        for (cell, model) in models.iter().enumerate() {
            if let Some((_, mc)) = model.monte_carlo() {
                units.extend((0..mc.shards()).map(|shard| WorkUnit::McShard {
                    cell,
                    trial_range: mc.shard_range(shard),
                }));
            }
        }
        Ok(WorkPlan::assemble(
            pipeline,
            workloads,
            network,
            PlanKind::Sweep { corners, models },
            units,
        ))
    }

    pub(crate) fn accuracy(
        pipeline: &'a ReadPipeline,
        model: &'a Model,
        network: &str,
        dataset: &'a Dataset,
        workloads: &'a [LayerWorkload],
        seeds: u64,
    ) -> Result<Self, PipelineError> {
        if pipeline.conditions().is_empty() {
            return Err(PipelineError::Missing {
                what: "operating conditions",
            });
        }
        let conv_names: Vec<String> = model
            .conv_layers()
            .iter()
            .map(|c| c.name().to_string())
            .collect();
        // BERs are matched to conv layers by name; a workload set from one
        // network evaluated against a model of another would silently inject
        // nothing, so refuse it outright.
        if !workloads.is_empty() && !workloads.iter().any(|w| conv_names.contains(&w.name)) {
            return Err(PipelineError::Input {
                reason: format!(
                    "no workload name matches any convolution layer of the model \
                     (workloads: {:?}..., model layers: {:?}...)",
                    workloads
                        .iter()
                        .map(|w| &w.name)
                        .take(3)
                        .collect::<Vec<_>>(),
                    conv_names.iter().take(3).collect::<Vec<_>>(),
                ),
            });
        }
        let pairs = workloads.len() * pipeline.sources().len();
        let cells = pipeline.conditions().len() * pipeline.sources().len();
        // Histogram units warm the shared cache (and give in-process
        // executors per-pair parallelism); each accuracy cell then reuses
        // them — or, in an isolated worker, recomputes them locally.
        let mut units: Vec<WorkUnit> = (0..pairs)
            .map(|pair| WorkUnit::Histogram { cell: 0, pair })
            .collect();
        units.extend((0..cells).map(|cell| WorkUnit::AccuracyPoint { cell }));
        Ok(WorkPlan::assemble(
            pipeline,
            workloads,
            network,
            PlanKind::Accuracy {
                model,
                dataset,
                conv_names,
                seeds,
            },
            units,
        ))
    }

    pub(crate) fn dataflow(
        pipeline: &'a ReadPipeline,
        network: &str,
        workloads: &'a [LayerWorkload],
        dataflows: Vec<Dataflow>,
    ) -> Result<Self, PipelineError> {
        if dataflows.is_empty() {
            return Err(PipelineError::Input {
                reason: "dataflow plan needs at least one dataflow to probe".into(),
            });
        }
        // Probes carry their own dynamics; no operating condition or
        // histogram warm-up is involved.  Cells are dataflow-major so the
        // report groups each dataflow's layers together.
        let pairs = workloads.len() * pipeline.sources().len();
        let units = (0..dataflows.len() * pairs)
            .map(|cell| WorkUnit::DataflowProbe { cell })
            .collect();
        Ok(WorkPlan::assemble(
            pipeline,
            workloads,
            network,
            PlanKind::Dataflow { dataflows },
            units,
        ))
    }

    /// The network / experiment label the aggregated report carries.
    pub fn network(&self) -> &str {
        &self.network
    }

    /// The plan's units, in deterministic emission order (histogram units
    /// pair-ascending first, then Monte-Carlo shards cell-major, then
    /// accuracy cells ascending).
    pub fn units(&self) -> &[WorkUnit] {
        &self.units
    }

    /// Number of units in the plan.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// Whether the plan has no units.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// Number of (workload, source) pairs the plan covers.
    pub fn pairs(&self) -> usize {
        self.workloads.len() * self.pipeline.sources().len()
    }

    /// The index of `unit` in [`WorkPlan::units`], if it belongs to this
    /// plan (O(1)).
    pub fn index_of(&self, unit: &WorkUnit) -> Option<usize> {
        self.unit_index.get(unit).copied()
    }

    fn workload_of(&self, pair: usize) -> &LayerWorkload {
        &self.workloads[pair / self.pipeline.sources().len()]
    }

    fn source_of(&self, pair: usize) -> &dyn crate::stage::ScheduleSource {
        self.pipeline.sources()[pair % self.pipeline.sources().len()].as_ref()
    }

    /// Executes the unit at `index` and returns its self-identifying result.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Exec`] for an out-of-range index; otherwise
    /// propagates simulation/evaluation failures.
    pub fn run_unit(&self, index: usize) -> Result<UnitResult, PipelineError> {
        let unit = self
            .units
            .get(index)
            .ok_or_else(|| PipelineError::exec(format!("unit index {index} out of range")))?;
        self.run_unit_spec(unit)
    }

    /// The plan's full content signature: every stage fingerprint, workload
    /// content hash and grid parameter a unit result depends on.  Plans
    /// with equal signatures are interchangeable for unit execution — the
    /// key contract of the memoized unit-result cache.
    pub fn signature(&self) -> &str {
        &self.signature
    }

    /// The serve layer's single-flight identity of `unit`: two in-flight
    /// units with equal flight keys compute the same artifact, so one
    /// computation can be fanned out to both (see [`crate::serve`]).
    ///
    /// Histogram units are keyed on the histogram's full *content* identity
    /// (the store check line: source/workload fingerprints, dimensions,
    /// simulation context) rather than on the plan signature — the result
    /// is grid-independent, so concurrent TER, sweep and accuracy requests
    /// over the same pairs coalesce even though their plan signatures
    /// differ.  Every other unit is keyed on
    /// `(`[`WorkPlan::signature`]`, `[`WorkUnit::encode`]`)`, the memoized
    /// unit-result cache's own key contract.
    pub(crate) fn flight_key(&self, unit: &WorkUnit) -> String {
        match unit {
            WorkUnit::Histogram { pair, .. } => format!(
                "hist {}",
                self.pipeline
                    .histogram_check_line(self.workload_of(*pair), self.source_of(*pair))
            ),
            _ => format!("unit {} {}", self.signature(), unit.encode()),
        }
    }

    /// Executes an explicit unit.  The unit must belong to this plan —
    /// worker processes decode ids from the wire and run them against a
    /// locally-reconstructed plan.
    ///
    /// Monte-Carlo-shard and accuracy units are memoized through the
    /// pipeline's unit-result cache, keyed on
    /// `(`[`WorkPlan::signature`]`, `[`WorkUnit::encode`]`)` — with an
    /// artifact store attached ([`crate::ReadPipelineBuilder::store`]),
    /// reruns across pipelines, workers and processes serve them without
    /// re-executing.  Histogram units are not double-stored: their payload
    /// *is* the histogram, already cached (and persisted) by the histogram
    /// cache inside [`ReadPipeline::layer_histogram`].
    ///
    /// Memoized results live in the pipeline's memory for its lifetime —
    /// that is what makes a same-pipeline rerun free even without a store.
    /// A long-lived pipeline cycling through many large Monte-Carlo sweeps
    /// can release the retained trial samples with
    /// [`ReadPipeline::clear_caches`].
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Exec`] when the unit is not part of the
    /// plan; otherwise propagates simulation/evaluation failures.
    pub fn run_unit_spec(&self, unit: &WorkUnit) -> Result<UnitResult, PipelineError> {
        if self.index_of(unit).is_none() {
            return Err(PipelineError::exec(format!(
                "unit {:?} is not part of this plan",
                unit.encode()
            )));
        }
        if matches!(unit, WorkUnit::Histogram { .. }) {
            return self.compute_unit(unit);
        }
        let encoded = unit.encode();
        let key = UnitKey {
            plan: self.signature_hash,
            unit: fnv1a(encoded.bytes()),
        };
        let check = UnitCheck {
            plan: Arc::clone(&self.signature),
            unit: encoded,
        };
        let result = self
            .pipeline
            .unit_cache()
            .get_or_compute(key, check, || self.compute_unit(unit))?;
        Ok((*result).clone())
    }

    /// Seeds the pipeline's memoized unit-result cache from its artifact
    /// store in batched round trips, for every cacheable unit of this
    /// plan — on a [`crate::store::RemoteStore`] that is one `mget` per
    /// batch, so a warm rerun (or a warm worker connection) costs
    /// O(batches) store round trips instead of O(units).  Returns how many
    /// unit results were seeded.  A no-op without an attached store;
    /// histogram units are excluded (their payload is the histogram,
    /// cached separately — see [`WorkPlan::run_unit_spec`]).
    pub fn prefetch_units(&self) -> usize {
        if self.pipeline.artifact_store().is_none() {
            return 0;
        }
        let entries: Vec<(UnitKey, UnitCheck)> = self
            .units
            .iter()
            .filter(|unit| !matches!(unit, WorkUnit::Histogram { .. }))
            .map(|unit| {
                let encoded = unit.encode();
                (
                    UnitKey {
                        plan: self.signature_hash,
                        unit: fnv1a(encoded.bytes()),
                    },
                    UnitCheck {
                        plan: Arc::clone(&self.signature),
                        unit: encoded,
                    },
                )
            })
            .collect();
        self.pipeline.unit_cache().prefetch(&entries)
    }

    /// Executes a unit unconditionally (the memoization layer's compute
    /// path).
    fn compute_unit(&self, unit: &WorkUnit) -> Result<UnitResult, PipelineError> {
        match unit {
            WorkUnit::Histogram { cell, pair } => {
                let hist = self
                    .pipeline
                    .layer_histogram(self.workload_of(*pair), self.source_of(*pair))?;
                Ok(UnitResult::Histogram {
                    cell: *cell,
                    pair: *pair,
                    hist,
                })
            }
            WorkUnit::McShard { cell, trial_range } => {
                let PlanKind::Sweep { corners, models } = &self.kind else {
                    return Err(PipelineError::exec("mc unit outside a sweep plan"));
                };
                let condition = &corners[*cell].condition;
                let (mc_model, _) = models[*cell]
                    .monte_carlo()
                    .ok_or_else(|| PipelineError::exec("mc unit on a non-sampling cell"))?;
                let ters = (0..self.pairs())
                    .map(|pair| {
                        let hist = self
                            .pipeline
                            .layer_histogram(self.workload_of(pair), self.source_of(pair))?;
                        Ok(mc_model.trial_ters(&hist, condition, trial_range.clone()))
                    })
                    .collect::<Result<Vec<_>, PipelineError>>()?;
                Ok(UnitResult::McShard {
                    cell: *cell,
                    trial_range: trial_range.clone(),
                    ters,
                })
            }
            WorkUnit::AccuracyPoint { cell } => {
                let PlanKind::Accuracy {
                    model,
                    dataset,
                    conv_names,
                    seeds,
                } = &self.kind
                else {
                    return Err(PipelineError::exec("acc unit outside an accuracy plan"));
                };
                let sources = self.pipeline.sources();
                let condition = &self.pipeline.conditions()[cell / sources.len()];
                let si = cell % sources.len();
                let source = &sources[si];
                let error_model = self.pipeline.error_model();

                // Per-layer BERs for the model, matched by layer name.
                let mut bers = vec![0.0f64; conv_names.len()];
                let mut ber_sum = 0.0;
                let mut ber_count = 0usize;
                for workload in self.workloads.iter() {
                    let hist = self.pipeline.layer_histogram(workload, source.as_ref())?;
                    let ter = error_model.ter(&hist, condition);
                    let ber = error_model.ber(ter, workload.macs_per_output());
                    ber_sum += ber;
                    ber_count += 1;
                    if let Some(idx) = conv_names.iter().position(|n| *n == workload.name) {
                        bers[idx] = ber;
                    }
                }

                let runs = (*seeds).max(1);
                let mut top1 = 0.0;
                let mut topk = 0.0;
                let mut k = 0usize;
                for seed in 0..runs {
                    let acc = self.pipeline.evaluator().evaluate(
                        model,
                        dataset,
                        &bers,
                        seed * 977 + 13,
                    )?;
                    top1 += acc.top1;
                    topk += acc.topk;
                    k = acc.k;
                }
                Ok(UnitResult::Accuracy {
                    cell: *cell,
                    point: AccuracyPoint {
                        condition: condition.name.to_string(),
                        algorithm: source.name(),
                        top1: top1 / runs as f64,
                        topk: topk / runs as f64,
                        k,
                        mean_ber: if ber_count == 0 {
                            0.0
                        } else {
                            ber_sum / ber_count as f64
                        },
                        seeds: runs,
                    },
                })
            }
            WorkUnit::DataflowProbe { cell } => {
                let PlanKind::Dataflow { dataflows } = &self.kind else {
                    return Err(PipelineError::exec("dflow unit outside a dataflow plan"));
                };
                let pairs = self.pairs();
                let dataflow = dataflows[*cell / pairs];
                let pair = *cell % pairs;
                let workload = self.workload_of(pair);
                let source = self.source_of(pair);
                let schedule = self.pipeline.schedule_for(&workload.weights, source)?;
                let report = self.pipeline.dataflow_prober().probe(
                    &workload.problem(),
                    self.pipeline.array(),
                    dataflow,
                    &schedule,
                    self.pipeline.sim_options(),
                )?;
                Ok(UnitResult::DataflowProbe {
                    cell: *cell,
                    report,
                })
            }
        }
    }

    /// Answers the wire protocol on a stream pair: reads one unit id per
    /// line from `input`, executes it, and writes the encoded result line to
    /// `output` (flushing after each).  This is the whole worker side of
    /// [`crate::SubprocessExecutor`] — a worker process reconstructs the
    /// same pipeline and plan, then calls `serve(stdin, stdout)`.
    ///
    /// Failures are reported in-band as `!`-prefixed lines (so the driver
    /// can attribute them) and serving continues with the next unit.
    ///
    /// # Errors
    ///
    /// Returns the first I/O error on the streams themselves.
    pub fn serve(&self, input: impl BufRead, output: &mut impl Write) -> std::io::Result<()> {
        for line in input.lines() {
            let line = line?;
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let response = WorkUnit::decode(line)
                .and_then(|unit| self.run_unit_spec(&unit))
                .map(|result| result.encode());
            match response {
                Ok(encoded) => writeln!(output, "{encoded}")?,
                Err(e) => writeln!(output, "!{e}")?,
            }
            output.flush()?;
        }
        Ok(())
    }

    /// Folds unit results — in any order, from any partition of the plan
    /// across executors or workers — into the run's report.  Convenience
    /// over an explicit [`Aggregator`].
    ///
    /// # Errors
    ///
    /// See [`Aggregator::finish`].
    pub fn aggregate(
        &self,
        results: impl IntoIterator<Item = UnitResult>,
    ) -> Result<PlanOutput, PipelineError> {
        let mut agg = Aggregator::new(self);
        for result in results {
            agg.push(result)?;
        }
        agg.finish()
    }
}

impl std::fmt::Debug for WorkPlan<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let kind = match &self.kind {
            PlanKind::Ter => "ter",
            PlanKind::Sweep { .. } => "sweep",
            PlanKind::Accuracy { .. } => "accuracy",
            PlanKind::Dataflow { .. } => "dataflow",
        };
        f.debug_struct("WorkPlan")
            .field("network", &self.network)
            .field("kind", &kind)
            .field("units", &self.units.len())
            .field("pairs", &self.pairs())
            .finish()
    }
}

/// The typed report a [`WorkPlan`] aggregation produces.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanOutput {
    /// A [`ReadPipeline::run_ter`]-shaped report.
    Ter(NetworkReport),
    /// A [`ReadPipeline::run_sweep`]-shaped report.
    Sweep(SweepReport),
    /// A [`ReadPipeline::run_accuracy`]-shaped report.
    Accuracy(AccuracyReport),
    /// A [`ReadPipeline::run_dataflow`]-shaped report.
    Dataflow(DataflowNetworkReport),
}

impl PlanOutput {
    /// The network report, if this output is one.
    pub fn into_ter(self) -> Result<NetworkReport, PipelineError> {
        match self {
            PlanOutput::Ter(report) => Ok(report),
            other => Err(PipelineError::exec(format!(
                "expected a TER report, aggregated {other:?}"
            ))),
        }
    }

    /// The sweep report, if this output is one.
    pub fn into_sweep(self) -> Result<SweepReport, PipelineError> {
        match self {
            PlanOutput::Sweep(report) => Ok(report),
            other => Err(PipelineError::exec(format!(
                "expected a sweep report, aggregated {other:?}"
            ))),
        }
    }

    /// The accuracy report, if this output is one.
    pub fn into_accuracy(self) -> Result<AccuracyReport, PipelineError> {
        match self {
            PlanOutput::Accuracy(report) => Ok(report),
            other => Err(PipelineError::exec(format!(
                "expected an accuracy report, aggregated {other:?}"
            ))),
        }
    }

    /// The dataflow report, if this output is one.
    pub fn into_dataflow(self) -> Result<DataflowNetworkReport, PipelineError> {
        match self {
            PlanOutput::Dataflow(report) => Ok(report),
            other => Err(PipelineError::exec(format!(
                "expected a dataflow report, aggregated {other:?}"
            ))),
        }
    }
}

/// Folds [`UnitResult`]s back into the plan's report.
///
/// Results may arrive in **any order** and from **any partition** of the
/// plan across executors, threads or worker processes: every result is
/// self-identifying, Monte-Carlo shards are re-assembled in trial order
/// before the one aggregation ([`TerEstimate::from_trials`]), and rows are
/// emitted in the canonical report order — so the aggregate is byte-
/// identical to a serial in-process run.  Missing, duplicate or overlapping
/// results are detected and rejected rather than silently misfolded.
pub struct Aggregator<'p, 'a> {
    plan: &'p WorkPlan<'a>,
    hists: BTreeMap<usize, DepthHistogram>,
    shards: BTreeMap<usize, Vec<McShardSamples>>,
    points: BTreeMap<usize, AccuracyPoint>,
    probes: BTreeMap<usize, DataflowReport>,
}

/// One Monte-Carlo shard's samples: the trial range plus the per-pair trial
/// TER vectors.
type McShardSamples = (Range<u32>, Vec<Vec<f64>>);

impl<'p, 'a> Aggregator<'p, 'a> {
    /// An empty aggregator for `plan`.
    pub fn new(plan: &'p WorkPlan<'a>) -> Self {
        Aggregator {
            plan,
            hists: BTreeMap::new(),
            shards: BTreeMap::new(),
            points: BTreeMap::new(),
            probes: BTreeMap::new(),
        }
    }

    /// Adds one result.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Exec`] for a result that duplicates one
    /// already folded or does not belong to the plan.
    pub fn push(&mut self, result: UnitResult) -> Result<(), PipelineError> {
        match result {
            UnitResult::Histogram { cell, pair, hist } => {
                if self
                    .plan
                    .index_of(&WorkUnit::Histogram { cell, pair })
                    .is_none()
                {
                    return Err(PipelineError::exec(format!(
                        "histogram result for cell {cell} pair {pair}, which is \
                         not a unit of this plan"
                    )));
                }
                if self.hists.insert(pair, hist).is_some() {
                    return Err(PipelineError::exec(format!(
                        "duplicate histogram result for pair {pair}"
                    )));
                }
            }
            UnitResult::McShard {
                cell,
                trial_range,
                ters,
            } => {
                // A shard must belong to a Monte-Carlo cell of THIS plan —
                // a mislabeled cell would otherwise be dropped silently at
                // finish(), violating the "rejected, never misfolded"
                // contract.
                let is_mc_cell = matches!(
                    &self.plan.kind,
                    PlanKind::Sweep { models, .. }
                        if models.get(cell).is_some_and(|m| m.monte_carlo().is_some())
                );
                if !is_mc_cell {
                    return Err(PipelineError::exec(format!(
                        "mc shard result for cell {cell}, which is not a \
                         Monte-Carlo cell of this plan"
                    )));
                }
                if ters.len() != self.plan.pairs() {
                    return Err(PipelineError::exec(format!(
                        "mc shard for cell {cell} carries {} pair groups, plan has {}",
                        ters.len(),
                        self.plan.pairs()
                    )));
                }
                self.shards
                    .entry(cell)
                    .or_default()
                    .push((trial_range, ters));
            }
            UnitResult::Accuracy { cell, point } => {
                if self
                    .plan
                    .index_of(&WorkUnit::AccuracyPoint { cell })
                    .is_none()
                {
                    return Err(PipelineError::exec(format!(
                        "accuracy result for cell {cell}, which is not part of this plan"
                    )));
                }
                if self.points.insert(cell, point).is_some() {
                    return Err(PipelineError::exec(format!(
                        "duplicate accuracy result for cell {cell}"
                    )));
                }
            }
            UnitResult::DataflowProbe { cell, report } => {
                if self
                    .plan
                    .index_of(&WorkUnit::DataflowProbe { cell })
                    .is_none()
                {
                    return Err(PipelineError::exec(format!(
                        "dataflow result for cell {cell}, which is not part of this plan"
                    )));
                }
                if self.probes.insert(cell, report).is_some() {
                    return Err(PipelineError::exec(format!(
                        "duplicate dataflow result for cell {cell}"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Per-pair trial vectors of one Monte-Carlo cell, re-assembled in
    /// global trial order and verified to cover `0..trials` exactly once.
    fn cell_trials(&self, cell: usize, trials: u32) -> Result<Vec<Vec<f64>>, PipelineError> {
        let mut shards: Vec<&McShardSamples> = self
            .shards
            .get(&cell)
            .map(|v| v.iter().collect())
            .unwrap_or_default();
        shards.sort_by_key(|(range, _)| range.start);
        let mut out = vec![Vec::with_capacity(trials as usize); self.plan.pairs()];
        let mut next = 0u32;
        for (range, ters) in shards {
            if range.start != next {
                return Err(PipelineError::exec(format!(
                    "mc cell {cell}: trial range gap or overlap at trial {next} (shard starts at {})",
                    range.start
                )));
            }
            for (pair, pair_ters) in ters.iter().enumerate() {
                if pair_ters.len() != range.len() {
                    return Err(PipelineError::exec(format!(
                        "mc cell {cell} pair {pair}: shard {}..{} carries {} samples",
                        range.start,
                        range.end,
                        pair_ters.len()
                    )));
                }
                out[pair].extend_from_slice(pair_ters);
            }
            next = range.end;
        }
        if next != trials {
            return Err(PipelineError::exec(format!(
                "mc cell {cell}: trials {next}..{trials} missing"
            )));
        }
        Ok(out)
    }

    fn pair_hist(&self, pair: usize) -> Result<&DepthHistogram, PipelineError> {
        self.hists
            .get(&pair)
            .ok_or_else(|| PipelineError::exec(format!("histogram result for pair {pair} missing")))
    }

    /// Builds the canonical row set of one cell from the folded results.
    fn cell_rows(
        &self,
        condition: &timing::OperatingCondition,
        error_model: &dyn crate::stage::ErrorModel,
        estimate_of_pair: impl Fn(usize, &DepthHistogram) -> TerEstimate,
    ) -> Result<Vec<LayerReport>, PipelineError> {
        let plan = self.plan;
        let mut rows = Vec::with_capacity(plan.pairs());
        for pair in 0..plan.pairs() {
            let workload = plan.workload_of(pair);
            let hist = self.pair_hist(pair)?;
            let estimate = estimate_of_pair(pair, hist);
            rows.push(LayerReport {
                layer: workload.name.clone(),
                algorithm: plan.source_of(pair).name(),
                condition: condition.name.to_string(),
                corner: error_model.corner(),
                ter: estimate.ter,
                ter_stddev: estimate.stddev,
                ber: error_model.ber(estimate.ter, workload.macs_per_output()),
                sign_flip_rate: hist.sign_flip_rate(),
                macs_per_output: workload.macs_per_output(),
                total_cycles: hist.total(),
                sign_flips: hist.sign_flips(),
            });
        }
        Ok(rows)
    }

    /// Folds everything pushed so far into the plan's report.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Exec`] when results are missing, duplicated
    /// or inconsistent (e.g. a Monte-Carlo trial-range gap).
    pub fn finish(self) -> Result<PlanOutput, PipelineError> {
        let plan = self.plan;
        match &plan.kind {
            PlanKind::Ter => {
                let error_model = plan.pipeline.error_model();
                let mut rows = Vec::with_capacity(plan.pairs() * plan.pipeline.conditions().len());
                for pair in 0..plan.pairs() {
                    let workload = plan.workload_of(pair);
                    let hist = self.pair_hist(pair)?;
                    for condition in plan.pipeline.conditions() {
                        let estimate = error_model.estimate(hist, condition);
                        rows.push(LayerReport {
                            layer: workload.name.clone(),
                            algorithm: plan.source_of(pair).name(),
                            condition: condition.name.to_string(),
                            corner: error_model.corner(),
                            ter: estimate.ter,
                            ter_stddev: estimate.stddev,
                            ber: error_model.ber(estimate.ter, workload.macs_per_output()),
                            sign_flip_rate: hist.sign_flip_rate(),
                            macs_per_output: workload.macs_per_output(),
                            total_cycles: hist.total(),
                            sign_flips: hist.sign_flips(),
                        });
                    }
                }
                Ok(PlanOutput::Ter(NetworkReport {
                    network: plan.network.clone(),
                    rows,
                }))
            }
            PlanKind::Sweep { corners, models } => {
                let mut report_cells = Vec::with_capacity(corners.len());
                for (ci, corner) in corners.iter().enumerate() {
                    let condition = &corner.condition;
                    let model = &models[ci];
                    let error_model = model.as_error_model();
                    let rows = match model.monte_carlo() {
                        Some((_, mc)) => {
                            // Concatenate the cell's per-shard trial samples
                            // in trial order and reduce once — bit-identical
                            // to the unsharded estimate.
                            let trials = self.cell_trials(ci, mc.trials)?;
                            self.cell_rows(condition, error_model, |pair, _| {
                                TerEstimate::from_trials(&trials[pair])
                            })?
                        }
                        None => self.cell_rows(condition, error_model, |_, hist| {
                            error_model.estimate(hist, condition)
                        })?,
                    };
                    report_cells.push(SweepCell {
                        die: corner.variation.label(),
                        condition: condition.name.to_string(),
                        error_model: error_model.name(),
                        shards: model.shards(),
                        rows,
                    });
                }

                // Cross-corner summary: the worst row per algorithm, in
                // source order (first occurrence wins ties, so the summary
                // is stable).
                let sources = plan.pipeline.sources();
                let mut worst = Vec::with_capacity(sources.len());
                for source in sources {
                    let name = source.name();
                    let mut best: Option<WorstCase> = None;
                    for cell in &report_cells {
                        for row in cell.rows.iter().filter(|r| r.algorithm == name) {
                            if best.as_ref().map(|b| row.ter > b.ter).unwrap_or(true) {
                                best = Some(WorstCase {
                                    algorithm: name.clone(),
                                    ter: row.ter,
                                    layer: row.layer.clone(),
                                    condition: row.condition.clone(),
                                    die: cell.die.clone(),
                                });
                            }
                        }
                    }
                    worst.extend(best);
                }

                Ok(PlanOutput::Sweep(SweepReport {
                    network: plan.network.clone(),
                    cells: report_cells,
                    worst,
                }))
            }
            PlanKind::Accuracy { .. } => {
                let cells = plan.pipeline.conditions().len() * plan.pipeline.sources().len();
                let mut points = Vec::with_capacity(cells);
                for cell in 0..cells {
                    points.push(self.points.get(&cell).cloned().ok_or_else(|| {
                        PipelineError::exec(format!("accuracy result for cell {cell} missing"))
                    })?);
                }
                Ok(PlanOutput::Accuracy(AccuracyReport {
                    network: plan.network.clone(),
                    points,
                }))
            }
            PlanKind::Dataflow { dataflows } => {
                let cells = dataflows.len() * plan.pairs();
                let mut rows = Vec::with_capacity(cells);
                for cell in 0..cells {
                    let report = self.probes.get(&cell).cloned().ok_or_else(|| {
                        PipelineError::exec(format!("dataflow result for cell {cell} missing"))
                    })?;
                    let pair = cell % plan.pairs();
                    rows.push(DataflowRow {
                        layer: plan.workload_of(pair).name.clone(),
                        algorithm: plan.source_of(pair).name(),
                        report,
                    });
                }
                Ok(PlanOutput::Dataflow(DataflowNetworkReport {
                    network: plan.network.clone(),
                    rows,
                }))
            }
        }
    }
}

// ---------------------------------------------------------------------------
// UnitLedger
// ---------------------------------------------------------------------------

/// Unit-loss accounting for executors whose workers can die: tracks every
/// unit of a range from *pending*, through *in flight* on some worker, to
/// *completed* or *failed* — with a bounded number of re-dispatch attempts
/// when a worker is lost mid-unit.
///
/// The ledger is pure bookkeeping (no I/O, no threads); a distributed
/// executor like [`crate::SocketExecutor`] drives it under a mutex:
///
/// * [`UnitLedger::checkout`] hands the next pending unit to a worker.
/// * [`UnitLedger::complete`] / [`UnitLedger::fail`] settle an in-flight
///   unit — failure here means the unit itself failed *deterministically*
///   (the worker answered with an in-band `!` report), so retrying on
///   another worker would fail identically and the failure is recorded.
/// * [`UnitLedger::lose`] reports that the worker holding a unit died; the
///   unit is re-queued for another worker until its attempt budget is
///   exhausted, at which point it fails.
/// * [`UnitLedger::abandon_pending`] fails everything still queued — the
///   last surviving worker died.
///
/// [`UnitLedger::into_results`] enforces the [`crate::Executor`] contract:
/// all units completed → results in unit order; otherwise the error of the
/// smallest failing unit index, independent of worker timing.  A unit can
/// never be silently omitted — every checkout is settled exactly once.
///
/// For *windowed* (pipelined) dispatch, where one worker holds several
/// units in flight at once, the ledger also tracks per-worker in-flight
/// sets: register a worker with [`UnitLedger::add_worker`], check units
/// out to it with [`UnitLedger::checkout_for`], settle them by slot with
/// [`UnitLedger::complete_for`] / [`UnitLedger::fail_for`], and on worker
/// death requeue *everything* it held with [`UnitLedger::lose_all`] — the
/// same attempt-budget and smallest-failing-index semantics as the
/// one-unit API, applied to the whole window.
#[derive(Debug)]
pub struct UnitLedger {
    /// `(slot, attempt)` queue; attempts start at 1.
    pending: VecDeque<(usize, u32)>,
    results: Vec<Option<UnitResult>>,
    failures: BTreeMap<usize, String>,
    in_flight: usize,
    max_attempts: u32,
    retried: u64,
    lost: u64,
    /// Per-worker in-flight sets for windowed dispatch; entries mirror a
    /// subset of the global `in_flight` count.
    workers: Vec<Vec<(usize, u32)>>,
}

impl UnitLedger {
    /// A ledger over `units` slots, each dispatchable up to `max_attempts`
    /// times (clamped to at least 1).
    pub fn new(units: usize, max_attempts: u32) -> UnitLedger {
        UnitLedger {
            pending: (0..units).map(|slot| (slot, 1)).collect(),
            results: (0..units).map(|_| None).collect(),
            failures: BTreeMap::new(),
            in_flight: 0,
            max_attempts: max_attempts.max(1),
            retried: 0,
            lost: 0,
            workers: Vec::new(),
        }
    }

    /// Registers a worker for windowed dispatch and returns its id, used as
    /// the `worker` argument of the `*_for` methods below.
    pub fn add_worker(&mut self) -> usize {
        self.workers.push(Vec::new());
        self.workers.len() - 1
    }

    /// [`UnitLedger::checkout`] into `worker`'s in-flight set: the unit is
    /// remembered as held by that worker until settled by slot or requeued
    /// wholesale by [`UnitLedger::lose_all`].
    pub fn checkout_for(&mut self, worker: usize) -> Option<(usize, u32)> {
        let job = self.checkout()?;
        self.workers[worker].push(job);
        Some(job)
    }

    /// Units currently checked out to `worker`.
    pub fn in_flight_of(&self, worker: usize) -> usize {
        self.workers[worker].len()
    }

    fn release(&mut self, worker: usize, slot: usize) -> bool {
        let held = &mut self.workers[worker];
        match held.iter().position(|&(s, _)| s == slot) {
            Some(at) => {
                held.swap_remove(at);
                true
            }
            None => false,
        }
    }

    /// Settles `slot` from `worker`'s in-flight set with its result.
    /// Returns `false` (and changes nothing) when the worker does not hold
    /// that slot — the response did not match anything the caller sent, so
    /// the connection should be treated as corrupt instead.
    pub fn complete_for(&mut self, worker: usize, slot: usize, result: UnitResult) -> bool {
        if !self.release(worker, slot) {
            return false;
        }
        self.complete(slot, result);
        true
    }

    /// Settles `slot` from `worker`'s in-flight set as deterministically
    /// failed (see [`UnitLedger::fail`]).  Returns `false` when the worker
    /// does not hold that slot.
    pub fn fail_for(&mut self, worker: usize, slot: usize, reason: impl Into<String>) -> bool {
        if !self.release(worker, slot) {
            return false;
        }
        self.fail(slot, reason);
        true
    }

    /// Reports that `worker` died: every unit in its in-flight set is lost
    /// at once — each is re-queued for a survivor (attempt budget
    /// permitting) or recorded as failed, exactly as [`UnitLedger::lose`]
    /// would one at a time.  Returns `(requeued, held)`: how many units
    /// went back to the pending queue out of how many the worker held.
    pub fn lose_all(&mut self, worker: usize, reason: &str) -> (usize, usize) {
        let held = std::mem::take(&mut self.workers[worker]);
        let total = held.len();
        let mut requeued = 0;
        for (slot, attempt) in held {
            if self.lose(slot, attempt, reason) {
                requeued += 1;
            }
        }
        (requeued, total)
    }

    /// Hands out the next pending `(slot, attempt)`, marking it in flight.
    /// `None` means nothing is pending *right now* — the caller must check
    /// [`UnitLedger::is_settled`] before concluding the plan is done, since
    /// another worker's in-flight unit may yet be lost and re-queued.
    pub fn checkout(&mut self) -> Option<(usize, u32)> {
        let entry = self.pending.pop_front()?;
        self.in_flight += 1;
        Some(entry)
    }

    /// Settles a checked-out slot with its result.  A duplicate completion
    /// (two workers racing the same re-dispatched slot) keeps the first
    /// result — units are deterministic, so both are byte-identical.
    pub fn complete(&mut self, slot: usize, result: UnitResult) {
        self.in_flight = self.in_flight.saturating_sub(1);
        if self.results[slot].is_none() && !self.failures.contains_key(&slot) {
            self.results[slot] = Some(result);
        }
    }

    /// Settles a checked-out slot as deterministically failed (the worker
    /// computed it and reported an in-band failure): re-dispatching would
    /// fail identically, so the slot is not retried.
    pub fn fail(&mut self, slot: usize, reason: impl Into<String>) {
        self.in_flight = self.in_flight.saturating_sub(1);
        if self.results[slot].is_none() {
            self.failures.entry(slot).or_insert_with(|| reason.into());
        }
    }

    /// Reports that the worker holding `(slot, attempt)` died before
    /// answering.  Returns `true` when the unit was re-queued for another
    /// worker; `false` when its attempt budget is exhausted and it has been
    /// recorded as failed.
    pub fn lose(&mut self, slot: usize, attempt: u32, reason: &str) -> bool {
        self.in_flight = self.in_flight.saturating_sub(1);
        self.lost += 1;
        if attempt < self.max_attempts {
            self.retried += 1;
            self.pending.push_back((slot, attempt + 1));
            true
        } else {
            self.failures.entry(slot).or_insert_with(|| {
                format!("unit lost {attempt} time(s); attempt budget exhausted: {reason}")
            });
            false
        }
    }

    /// Fails every still-pending unit (no worker left to run them).
    pub fn abandon_pending(&mut self, reason: &str) {
        while let Some((slot, _)) = self.pending.pop_front() {
            self.failures
                .entry(slot)
                .or_insert_with(|| format!("unit abandoned: {reason}"));
        }
    }

    /// Whether every unit has been settled (completed or failed) — nothing
    /// pending, nothing in flight.
    pub fn is_settled(&self) -> bool {
        self.pending.is_empty() && self.in_flight == 0
    }

    /// Units currently checked out to workers.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Total re-dispatches of lost units.
    pub fn retried(&self) -> u64 {
        self.retried
    }

    /// Total worker-loss events observed (each re-queued or failed a unit).
    pub fn lost(&self) -> u64 {
        self.lost
    }

    /// Finishes the ledger: every slot completed → the results in unit
    /// order; otherwise the recorded failure of the *smallest* failing slot
    /// (deterministic regardless of worker timing).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Exec`] for the smallest failed slot, or for
    /// the smallest unsettled slot when the ledger was finished early.
    pub fn into_results(self) -> Result<Vec<UnitResult>, PipelineError> {
        if let Some((slot, reason)) = self.failures.into_iter().next() {
            return Err(PipelineError::exec(format!("unit {slot}: {reason}")));
        }
        self.results
            .into_iter()
            .enumerate()
            .map(|(slot, result)| {
                result.ok_or_else(|| PipelineError::exec(format!("unit {slot} was never settled")))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_ids_round_trip() {
        let units = [
            WorkUnit::Histogram { cell: 0, pair: 7 },
            WorkUnit::McShard {
                cell: 3,
                trial_range: 8..24,
            },
            WorkUnit::AccuracyPoint { cell: 5 },
            WorkUnit::DataflowProbe { cell: 11 },
        ];
        for unit in units {
            let encoded = unit.encode();
            assert_eq!(WorkUnit::decode(&encoded).unwrap(), unit, "{encoded}");
        }
        assert_eq!(
            WorkUnit::Histogram { cell: 0, pair: 7 }.encode(),
            "hist cell=0 pair=7"
        );
        assert_eq!(
            WorkUnit::McShard {
                cell: 3,
                trial_range: 8..24
            }
            .encode(),
            "mc cell=3 trials=8..24"
        );
    }

    #[test]
    fn malformed_unit_ids_are_rejected() {
        for bad in [
            "",
            "zap cell=0",
            "hist cell=0",
            "hist pair=0 cell=0",
            "hist cell=0 pair=1 extra=2",
            "mc cell=1 trials=5",
            "acc cell=x",
            "dflow cell=",
            "dflow cell=0 extra=1",
        ] {
            assert!(WorkUnit::decode(bad).is_err(), "{bad:?} should not decode");
        }
    }

    #[test]
    fn histogram_results_round_trip() {
        let hist = DepthHistogram::from_parts(&[10, 0, 3, 0, 2], 4, 15).unwrap();
        let result = UnitResult::Histogram {
            cell: 0,
            pair: 2,
            hist: hist.clone(),
        };
        let encoded = result.encode();
        assert_eq!(
            encoded,
            "hist cell=0 pair=2 total=15 flips=4 counts=0:10,2:3,4:2"
        );
        assert_eq!(UnitResult::decode(&encoded).unwrap(), result);
        // Inconsistent counts are rejected, not silently accepted.
        assert!(UnitResult::decode("hist cell=0 pair=2 total=2 flips=0 counts=0:10").is_err());
    }

    #[test]
    fn mc_results_round_trip_exactly() {
        let result = UnitResult::McShard {
            cell: 1,
            trial_range: 4..7,
            ters: vec![
                vec![1.25e-7, 0.0, 3.5e-4],
                vec![f64::MIN_POSITIVE, 1.0, 0.125],
            ],
        };
        let encoded = result.encode();
        let decoded = UnitResult::decode(&encoded).unwrap();
        // Bit-exact float round trip (shortest round-trip formatting).
        assert_eq!(decoded, result);
        let UnitResult::McShard { ters, .. } = decoded else {
            unreachable!()
        };
        assert_eq!(ters[1][0].to_bits(), f64::MIN_POSITIVE.to_bits());
    }

    #[test]
    fn accuracy_results_round_trip_with_escaping() {
        let result = UnitResult::Accuracy {
            cell: 9,
            point: AccuracyPoint {
                condition: "Aging&VT-5% plus margin".into(),
                algorithm: "cluster\\then reorder".into(),
                top1: 0.75,
                topk: 0.9375,
                k: 3,
                mean_ber: 3.2e-5,
                seeds: 4,
            },
        };
        let encoded = result.encode();
        assert!(!encoded.contains("5% plus"), "spaces must be escaped");
        assert_eq!(UnitResult::decode(&encoded).unwrap(), result);
    }

    #[test]
    fn every_whitespace_kind_escapes_and_round_trips() {
        // The decoder splits on any Unicode whitespace, so tab, NBSP and
        // friends must never appear raw in an encoded field.
        let tricky = "a\tb\u{a0}c\u{2003}d e";
        let escaped = escape_wire(tricky);
        assert!(
            !escaped.chars().any(char::is_whitespace),
            "escaped field must carry no raw whitespace: {escaped:?}"
        );
        assert_eq!(unescape(&escaped, "ctx").unwrap(), tricky);
        let result = UnitResult::Accuracy {
            cell: 0,
            point: AccuracyPoint {
                condition: tricky.into(),
                algorithm: "alg".into(),
                top1: 0.5,
                topk: 0.5,
                k: 1,
                mean_ber: 0.0,
                seeds: 1,
            },
        };
        assert_eq!(UnitResult::decode(&result.encode()).unwrap(), result);
    }

    #[test]
    fn results_identify_their_units() {
        let hist = DepthHistogram::from_parts(&[1], 0, 1).unwrap();
        assert_eq!(
            UnitResult::Histogram {
                cell: 0,
                pair: 3,
                hist
            }
            .unit(),
            WorkUnit::Histogram { cell: 0, pair: 3 }
        );
        assert_eq!(
            UnitResult::McShard {
                cell: 2,
                trial_range: 0..8,
                ters: vec![]
            }
            .unit(),
            WorkUnit::McShard {
                cell: 2,
                trial_range: 0..8
            }
        );
    }

    #[test]
    fn dataflow_results_round_trip() {
        let report = DataflowReport {
            dataflow: "weight-stationary".into(),
            cycles: 240,
            macs: 128,
            outputs: 16,
            stalled: 31,
            peak_psum_buffer: 8,
            contexts: vec![dataflow_sim::ContextReport {
                name: "pe".into(),
                busy: 128,
                stall: 31,
                finish: 240,
            }],
            channels: vec![dataflow_sim::ChannelReport {
                name: "weights".into(),
                capacity: 4,
                peak: 4,
                sends: 128,
            }],
        };
        let result = UnitResult::DataflowProbe { cell: 3, report };
        assert_eq!(result.unit(), WorkUnit::DataflowProbe { cell: 3 });
        let encoded = result.encode();
        assert!(encoded.starts_with("dflow cell=3 df=weight-stationary "));
        assert_eq!(UnitResult::decode(&encoded).unwrap(), result);
        // A truncated report body is rejected, not silently accepted.
        assert!(UnitResult::decode("dflow cell=3 df=weight-stationary cycles=240").is_err());
    }

    // ---- UnitLedger -------------------------------------------------------

    fn sentinel_result(slot: usize) -> UnitResult {
        UnitResult::McShard {
            cell: slot,
            trial_range: 0..1,
            ters: vec![],
        }
    }

    #[test]
    fn ledger_happy_path_returns_results_in_unit_order() {
        let mut ledger = UnitLedger::new(3, 3);
        // Check units out in a scrambled order (two workers interleaving).
        let a = ledger.checkout().unwrap();
        let b = ledger.checkout().unwrap();
        assert_eq!((a, b), ((0, 1), (1, 1)));
        ledger.complete(b.0, sentinel_result(b.0));
        let c = ledger.checkout().unwrap();
        ledger.complete(c.0, sentinel_result(c.0));
        assert!(!ledger.is_settled(), "slot 0 still in flight");
        ledger.complete(a.0, sentinel_result(a.0));
        assert!(ledger.is_settled());
        assert_eq!(ledger.checkout(), None);
        let results = ledger.into_results().unwrap();
        assert_eq!(results.len(), 3);
        for (slot, result) in results.iter().enumerate() {
            assert_eq!(*result, sentinel_result(slot));
        }
    }

    #[test]
    fn ledger_requeues_lost_units_until_budget_exhausted() {
        let mut ledger = UnitLedger::new(1, 2);
        let (slot, attempt) = ledger.checkout().unwrap();
        assert!(
            ledger.lose(slot, attempt, "worker died"),
            "first loss retries"
        );
        assert_eq!(ledger.retried(), 1);
        assert!(!ledger.is_settled(), "re-queued unit is pending again");
        let (slot, attempt) = ledger.checkout().unwrap();
        assert_eq!(attempt, 2);
        assert!(
            !ledger.lose(slot, attempt, "worker died again"),
            "budget spent"
        );
        assert!(ledger.is_settled());
        assert_eq!(ledger.lost(), 2);
        let err = ledger.into_results().unwrap_err().to_string();
        assert!(err.contains("unit 0"), "{err}");
        assert!(err.contains("budget exhausted"), "{err}");
        assert!(err.contains("worker died again"), "{err}");
    }

    #[test]
    fn ledger_reports_smallest_failing_slot_regardless_of_timing() {
        let mut ledger = UnitLedger::new(3, 1);
        let first = ledger.checkout().unwrap();
        let second = ledger.checkout().unwrap();
        let third = ledger.checkout().unwrap();
        // Failures land in reverse order; the smallest slot's error wins.
        ledger.fail(third.0, "late failure");
        ledger.fail(second.0, "middle failure");
        ledger.complete(first.0, sentinel_result(0));
        let err = ledger.into_results().unwrap_err().to_string();
        assert!(err.contains("unit 1: middle failure"), "{err}");
    }

    #[test]
    fn ledger_abandons_pending_units_when_no_workers_survive() {
        let mut ledger = UnitLedger::new(3, 3);
        let (slot, attempt) = ledger.checkout().unwrap();
        ledger.lose(slot, attempt, "connection reset");
        ledger.abandon_pending("no surviving workers");
        assert!(ledger.is_settled());
        let err = ledger.into_results().unwrap_err().to_string();
        assert!(err.contains("unit 0: unit abandoned"), "{err}");
        assert!(err.contains("no surviving workers"), "{err}");
    }

    #[test]
    fn ledger_keeps_first_result_on_duplicate_completion() {
        let mut ledger = UnitLedger::new(1, 3);
        let (slot, attempt) = ledger.checkout().unwrap();
        // The driver declared this worker dead (liveness timeout) and
        // re-dispatched, but the slow worker's result eventually surfaced
        // too: first settle wins, the duplicate is dropped on the floor.
        assert!(ledger.lose(slot, attempt, "liveness timeout"));
        let (slot2, _) = ledger.checkout().unwrap();
        ledger.complete(slot2, sentinel_result(0));
        ledger.complete(slot, sentinel_result(0));
        assert!(ledger.is_settled());
        assert_eq!(ledger.into_results().unwrap().len(), 1);
    }

    #[test]
    fn ledger_windowed_checkout_tracks_per_worker_sets() {
        let mut ledger = UnitLedger::new(4, 3);
        let w0 = ledger.add_worker();
        let w1 = ledger.add_worker();
        let (a, _) = ledger.checkout_for(w0).unwrap();
        let (b, _) = ledger.checkout_for(w0).unwrap();
        let (c, _) = ledger.checkout_for(w1).unwrap();
        assert_eq!(ledger.in_flight_of(w0), 2);
        assert_eq!(ledger.in_flight_of(w1), 1);
        assert_eq!(ledger.in_flight(), 3);
        // Out-of-order settle within the window.
        assert!(ledger.complete_for(w0, b, sentinel_result(b)));
        assert!(ledger.complete_for(w0, a, sentinel_result(a)));
        // A slot another worker holds (or nobody holds) does not match.
        assert!(!ledger.complete_for(w0, c, sentinel_result(c)));
        assert!(ledger.complete_for(w1, c, sentinel_result(c)));
        let (d, _) = ledger.checkout_for(w1).unwrap();
        assert!(ledger.fail_for(w1, d, "deterministic failure"));
        assert!(ledger.is_settled());
        let err = ledger.into_results().unwrap_err().to_string();
        assert!(
            err.contains(&format!("unit {d}: deterministic failure")),
            "{err}"
        );
    }

    #[test]
    fn ledger_lose_all_requeues_a_dead_workers_window() {
        let mut ledger = UnitLedger::new(3, 2);
        let w0 = ledger.add_worker();
        let w1 = ledger.add_worker();
        for _ in 0..3 {
            ledger.checkout_for(w0).unwrap();
        }
        let (requeued, held) = ledger.lose_all(w0, "worker died");
        assert_eq!((requeued, held), (3, 3));
        assert_eq!(ledger.in_flight_of(w0), 0);
        assert_eq!(ledger.retried(), 3);
        assert!(!ledger.is_settled(), "window went back to pending");
        // The survivor drains the requeued units at attempt 2.
        while let Some((slot, attempt)) = ledger.checkout_for(w1) {
            assert_eq!(attempt, 2);
            assert!(ledger.complete_for(w1, slot, sentinel_result(slot)));
        }
        assert!(ledger.is_settled());
        assert_eq!(ledger.into_results().unwrap().len(), 3);
    }

    #[test]
    fn ledger_lose_all_exhausts_attempt_budgets_per_unit() {
        let mut ledger = UnitLedger::new(2, 2);
        let w0 = ledger.add_worker();
        // Slot 0 burns one attempt first; slot 1 is on its first attempt.
        let (slot, attempt) = ledger.checkout().unwrap();
        assert!(ledger.lose(slot, attempt, "first death"));
        ledger.checkout_for(w0).unwrap();
        ledger.checkout_for(w0).unwrap();
        let (requeued, held) = ledger.lose_all(w0, "second death");
        assert_eq!(held, 2);
        assert_eq!(requeued, 1, "slot 0's budget is spent, slot 1 requeues");
        let err = ledger.into_results().unwrap_err().to_string();
        assert!(err.contains("unit 0"), "{err}");
        assert!(err.contains("budget exhausted"), "{err}");
    }
}
