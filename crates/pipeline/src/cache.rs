//! Seed-keyed schedule cache.
//!
//! Optimizing a layer is the expensive part of a sweep (balanced k-means
//! plus per-cluster sorting), and experiment grids revisit the same
//! (source, layer, array) corner many times — e.g. every operating condition
//! of an accuracy sweep, or repeated runs over seeds.  The cache keys on the
//! source fingerprint (which includes [`read_core::ReadConfig::seed`]), a
//! fingerprint of the weight matrix, and the array column count, so a
//! repeated corner reuses its schedule while any configuration change
//! recomputes it.  Because the fingerprints are 64-bit hashes, every entry
//! also stores a [`KeyCheck`] (source name + weight dimensions) that
//! lookups verify — a hash collision that differs in either is detected
//! and bypassed rather than served (see [`CacheStats::collisions`]).  The
//! check deliberately stops there: a collision between equal-dimension
//! weight contents, or between same-named sources with different configs,
//! would additionally need the 64-bit content/config hashes to collide
//! (probability ~2^-64 per pair) and is accepted as residual risk.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use accel_sim::{ComputeSchedule, Matrix};

use crate::error::PipelineError;
use crate::stage::fnv1a;

/// Cache key: (source fingerprint, weights fingerprint, array columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScheduleKey {
    /// [`crate::ScheduleSource::fingerprint`] of the producing source.
    pub source: u64,
    /// Fingerprint of the weight matrix (dimensions + contents).
    pub weights: u64,
    /// Array columns the schedule was built for.
    pub array_cols: usize,
}

/// Full-key verification data stored beside every cache entry.
///
/// The `source`/`weights` components of a [`ScheduleKey`] are 64-bit FNV-1a
/// hashes, so two distinct (source, layer) pairs can — however improbably —
/// collide.  Serving a colliding entry would silently hand a layer the
/// wrong schedule; storing the source name and the weight dimensions makes
/// such a collision *detectable*: a lookup whose check disagrees with the
/// stored one bypasses the cache (counted in [`CacheStats::collisions`])
/// instead of returning a foreign schedule.  Collisions that agree on name
/// and dimensions but differ only in weight contents or source
/// configuration are not caught by the check — they require a simultaneous
/// 64-bit content/config hash collision and are accepted as residual risk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyCheck {
    /// [`crate::ScheduleSource::name`] of the producing source.
    pub source: String,
    /// Weight-matrix rows (reduction length).
    pub rows: usize,
    /// Weight-matrix columns (output channels).
    pub cols: usize,
}

/// Fingerprint of a weight matrix: FNV-1a over its dimensions and bytes.
pub fn weights_fingerprint(weights: &Matrix<i8>) -> u64 {
    let dims = [weights.rows() as u64, weights.cols() as u64];
    let bytes = dims
        .iter()
        .flat_map(|d| d.to_le_bytes())
        .chain(weights.as_slice().iter().map(|&w| w as u8));
    fnv1a(bytes)
}

/// Cache effectiveness counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to compute a schedule.
    pub misses: u64,
    /// Lookups whose hash key matched a cached entry but whose full key
    /// ([`KeyCheck`]) did not — a fingerprint collision, served by a fresh
    /// computation instead of the cached schedule.
    pub collisions: u64,
    /// Schedules currently cached.
    pub entries: usize,
}

/// A thread-safe, in-memory schedule cache.
#[derive(Debug, Default)]
pub struct ScheduleCache {
    map: Mutex<HashMap<ScheduleKey, (KeyCheck, Arc<ComputeSchedule>)>>,
    hits: AtomicU64,
    misses: AtomicU64,
    collisions: AtomicU64,
}

impl ScheduleCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached schedule for `key`, or computes, caches and
    /// returns it.  `check` is the full (name + dims) key verified against
    /// the stored entry: a hash collision is detected rather than served,
    /// and its lookup computes a fresh schedule without touching the cache.
    ///
    /// The compute closure runs outside the cache lock, so concurrent
    /// lookups of *different* keys never serialize on a slow optimization;
    /// two racing computations of the same key are deterministic and
    /// idempotent, and the first insert wins.
    ///
    /// # Errors
    ///
    /// Propagates the compute closure's error without caching anything.
    pub fn get_or_compute(
        &self,
        key: ScheduleKey,
        check: KeyCheck,
        compute: impl FnOnce() -> Result<ComputeSchedule, PipelineError>,
    ) -> Result<Arc<ComputeSchedule>, PipelineError> {
        // Look up under the lock, but release it before any compute() call
        // (the if-let guard temporary would otherwise live to the end of the
        // branch and serialize unrelated lookups on a slow optimization).
        let cached = {
            let map = self.map.lock().expect("cache lock");
            map.get(&key)
                .map(|(stored, found)| (*stored == check, Arc::clone(found)))
        };
        match cached {
            Some((true, found)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(found);
            }
            Some((false, _)) => {
                // Fingerprint collision: the 64-bit hashes matched but the
                // full keys differ.  Serve a fresh computation and leave the
                // cached entry alone (overwriting would just thrash both
                // parties).
                self.collisions.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::new(compute()?));
            }
            None => {}
        }
        let computed = Arc::new(compute()?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut map = self.map.lock().expect("cache lock");
        let entry = map
            .entry(key)
            .or_insert_with(|| (check.clone(), Arc::clone(&computed)));
        if entry.0 == check {
            Ok(Arc::clone(&entry.1))
        } else {
            // A racing thread inserted a colliding full key first.
            self.collisions.fetch_add(1, Ordering::Relaxed);
            Ok(computed)
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            collisions: self.collisions.load(Ordering::Relaxed),
            entries: self.map.lock().expect("cache lock").len(),
        }
    }

    /// Drops every cached schedule and resets the counters.
    pub fn clear(&self) {
        self.map.lock().expect("cache lock").clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.collisions.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> ScheduleKey {
        ScheduleKey {
            source: n,
            weights: 7,
            array_cols: 4,
        }
    }

    fn check(source: &str) -> KeyCheck {
        KeyCheck {
            source: source.to_string(),
            rows: 8,
            cols: 4,
        }
    }

    #[test]
    fn second_lookup_hits() {
        let cache = ScheduleCache::new();
        let make = || Ok(ComputeSchedule::baseline(8, 4, 2));
        let a = cache.get_or_compute(key(1), check("a"), make).unwrap();
        let b = cache.get_or_compute(key(1), check("a"), make).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.collisions, 0);
    }

    #[test]
    fn distinct_keys_compute_separately() {
        let cache = ScheduleCache::new();
        cache
            .get_or_compute(key(1), check("a"), || {
                Ok(ComputeSchedule::baseline(8, 4, 2))
            })
            .unwrap();
        cache
            .get_or_compute(key(2), check("a"), || {
                Ok(ComputeSchedule::baseline(8, 4, 4))
            })
            .unwrap();
        assert_eq!(cache.stats().entries, 2);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = ScheduleCache::new();
        let err = cache.get_or_compute(key(3), check("a"), || Err(PipelineError::builder("nope")));
        assert!(err.is_err());
        assert_eq!(cache.stats().entries, 0);
        // A later successful compute still works.
        cache
            .get_or_compute(key(3), check("a"), || {
                Ok(ComputeSchedule::baseline(8, 4, 2))
            })
            .unwrap();
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn fingerprint_collisions_are_detected_not_served() {
        let cache = ScheduleCache::new();
        // Same 64-bit key, different full keys: a simulated FNV collision.
        let first = cache
            .get_or_compute(key(1), check("a"), || {
                Ok(ComputeSchedule::baseline(8, 4, 2))
            })
            .unwrap();
        let collided = cache
            .get_or_compute(key(1), check("b"), || {
                Ok(ComputeSchedule::baseline(8, 4, 4))
            })
            .unwrap();
        // The colliding lookup got its own fresh schedule, not the cached one.
        assert!(!Arc::ptr_eq(&first, &collided));
        assert_eq!(*collided, ComputeSchedule::baseline(8, 4, 4));
        let stats = cache.stats();
        assert_eq!(stats.collisions, 1);
        assert_eq!(stats.entries, 1, "collisions never overwrite the entry");
        // The original full key still hits.
        cache
            .get_or_compute(key(1), check("a"), || {
                Ok(ComputeSchedule::baseline(8, 4, 2))
            })
            .unwrap();
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn weights_fingerprint_sees_dims_and_values() {
        let a = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as i8);
        let b = Matrix::from_fn(2, 8, |r, c| (r * 8 + c) as i8);
        let c = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as i8 + 1);
        assert_ne!(weights_fingerprint(&a), weights_fingerprint(&b));
        assert_ne!(weights_fingerprint(&a), weights_fingerprint(&c));
        assert_eq!(weights_fingerprint(&a), weights_fingerprint(&a.clone()));
    }

    #[test]
    fn clear_resets_everything() {
        let cache = ScheduleCache::new();
        cache
            .get_or_compute(key(1), check("a"), || {
                Ok(ComputeSchedule::baseline(8, 4, 2))
            })
            .unwrap();
        cache
            .get_or_compute(key(1), check("b"), || {
                Ok(ComputeSchedule::baseline(8, 4, 4))
            })
            .unwrap();
        cache.clear();
        assert_eq!(cache.stats(), CacheStats::default());
    }
}
