//! Seed-keyed schedule cache.
//!
//! Optimizing a layer is the expensive part of a sweep (balanced k-means
//! plus per-cluster sorting), and experiment grids revisit the same
//! (source, layer, array) corner many times — e.g. every operating condition
//! of an accuracy sweep, or repeated runs over seeds.  The cache keys on the
//! source fingerprint (which includes [`read_core::ReadConfig::seed`]), a
//! fingerprint of the weight matrix, and the array column count, so a
//! repeated corner reuses its schedule while any configuration change
//! recomputes it.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use accel_sim::{ComputeSchedule, Matrix};

use crate::error::PipelineError;
use crate::stage::fnv1a;

/// Cache key: (source fingerprint, weights fingerprint, array columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScheduleKey {
    /// [`crate::ScheduleSource::fingerprint`] of the producing source.
    pub source: u64,
    /// Fingerprint of the weight matrix (dimensions + contents).
    pub weights: u64,
    /// Array columns the schedule was built for.
    pub array_cols: usize,
}

/// Fingerprint of a weight matrix: FNV-1a over its dimensions and bytes.
pub fn weights_fingerprint(weights: &Matrix<i8>) -> u64 {
    let dims = [weights.rows() as u64, weights.cols() as u64];
    let bytes = dims
        .iter()
        .flat_map(|d| d.to_le_bytes())
        .chain(weights.as_slice().iter().map(|&w| w as u8));
    fnv1a(bytes)
}

/// Cache effectiveness counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to compute a schedule.
    pub misses: u64,
    /// Schedules currently cached.
    pub entries: usize,
}

/// A thread-safe, in-memory schedule cache.
#[derive(Debug, Default)]
pub struct ScheduleCache {
    map: Mutex<HashMap<ScheduleKey, Arc<ComputeSchedule>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ScheduleCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached schedule for `key`, or computes, caches and
    /// returns it.
    ///
    /// The compute closure runs outside the cache lock, so concurrent
    /// lookups of *different* keys never serialize on a slow optimization;
    /// two racing computations of the same key are deterministic and
    /// idempotent, and the first insert wins.
    ///
    /// # Errors
    ///
    /// Propagates the compute closure's error without caching anything.
    pub fn get_or_compute(
        &self,
        key: ScheduleKey,
        compute: impl FnOnce() -> Result<ComputeSchedule, PipelineError>,
    ) -> Result<Arc<ComputeSchedule>, PipelineError> {
        if let Some(found) = self.map.lock().expect("cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(found));
        }
        let computed = Arc::new(compute()?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut map = self.map.lock().expect("cache lock");
        let entry = map.entry(key).or_insert_with(|| Arc::clone(&computed));
        Ok(Arc::clone(entry))
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.map.lock().expect("cache lock").len(),
        }
    }

    /// Drops every cached schedule and resets the counters.
    pub fn clear(&self) {
        self.map.lock().expect("cache lock").clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> ScheduleKey {
        ScheduleKey {
            source: n,
            weights: 7,
            array_cols: 4,
        }
    }

    #[test]
    fn second_lookup_hits() {
        let cache = ScheduleCache::new();
        let make = || Ok(ComputeSchedule::baseline(8, 4, 2));
        let a = cache.get_or_compute(key(1), make).unwrap();
        let b = cache.get_or_compute(key(1), make).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn distinct_keys_compute_separately() {
        let cache = ScheduleCache::new();
        cache
            .get_or_compute(key(1), || Ok(ComputeSchedule::baseline(8, 4, 2)))
            .unwrap();
        cache
            .get_or_compute(key(2), || Ok(ComputeSchedule::baseline(8, 4, 4)))
            .unwrap();
        assert_eq!(cache.stats().entries, 2);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = ScheduleCache::new();
        let err = cache.get_or_compute(key(3), || Err(PipelineError::builder("nope")));
        assert!(err.is_err());
        assert_eq!(cache.stats().entries, 0);
        // A later successful compute still works.
        cache
            .get_or_compute(key(3), || Ok(ComputeSchedule::baseline(8, 4, 2)))
            .unwrap();
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn weights_fingerprint_sees_dims_and_values() {
        let a = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as i8);
        let b = Matrix::from_fn(2, 8, |r, c| (r * 8 + c) as i8);
        let c = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as i8 + 1);
        assert_ne!(weights_fingerprint(&a), weights_fingerprint(&b));
        assert_ne!(weights_fingerprint(&a), weights_fingerprint(&c));
        assert_eq!(weights_fingerprint(&a), weights_fingerprint(&a.clone()));
    }

    #[test]
    fn clear_resets_everything() {
        let cache = ScheduleCache::new();
        cache
            .get_or_compute(key(1), || Ok(ComputeSchedule::baseline(8, 4, 2)))
            .unwrap();
        cache.clear();
        assert_eq!(cache.stats(), CacheStats::default());
    }
}
