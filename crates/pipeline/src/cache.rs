//! Fingerprint-keyed artifact caches: schedules, layer histograms, and
//! memoized work-unit results.
//!
//! Optimizing a layer is the expensive part of a sweep (balanced k-means
//! plus per-cluster sorting), and experiment grids revisit the same
//! (source, layer, array) corner many times — e.g. every operating condition
//! of an accuracy sweep, or repeated runs over seeds.  The schedule cache
//! keys on the source fingerprint (which includes
//! [`read_core::ReadConfig::seed`]), a fingerprint of the weight matrix, and
//! the array column count, so a repeated corner reuses its schedule while
//! any configuration change recomputes it.  The histogram cache is keyed the
//! same way — source fingerprint plus a fingerprint of the full workload and
//! the simulation context (array geometry, dataflow, options) — and
//! amortizes the cycle simulation the same way the schedule cache amortizes
//! the optimization.  The unit cache memoizes whole
//! [`crate::UnitResult`]s keyed on the unit's wire id plus a full signature
//! of every stage fingerprint the result depends on, so a rerun of any
//! [`crate::WorkPlan`] is pure aggregation.
//!
//! All three run on the same machinery: a [`VerifiedCache`] over an
//! [`ArtifactKind`] codec, with an optional content-addressed
//! [`ArtifactStore`] behind it ([`crate::MemoryStore`] for cross-pipeline
//! sharing in one process, [`crate::DiskStore`] for persistence across
//! processes and runs — see [`crate::store`]).  Artifacts decode bit-exactly,
//! so reports are byte-identical whether an entry came from memory, disk or
//! a fresh computation.
//!
//! Because the fingerprints are 64-bit hashes, every entry also stores a
//! verification check (names + dimensions) that lookups verify — a hash
//! collision that differs in either is detected and bypassed rather than
//! served (see [`CacheStats::collisions`]).  The check deliberately stops
//! there: a collision between equal-dimension contents, or between
//! same-named sources with different configs, would additionally need the
//! 64-bit content/config hashes to collide (probability ~2^-64 per pair)
//! and is accepted as residual risk.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use accel_sim::{ComputeSchedule, Matrix};
use qnn::{Dataset, Model};
use timing::DepthHistogram;

use crate::error::PipelineError;
use crate::plan::{escape_wire, UnitResult};
use crate::stage::fnv1a;
use crate::store::{ArtifactStore, StoreRequest};
use crate::workload::LayerWorkload;

/// Cache key: (source fingerprint, weights fingerprint, array columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScheduleKey {
    /// [`crate::ScheduleSource::fingerprint`] of the producing source.
    pub source: u64,
    /// Fingerprint of the weight matrix (dimensions + contents).
    pub weights: u64,
    /// Array columns the schedule was built for.
    pub array_cols: usize,
}

/// Full-key verification data stored beside every cache entry.
///
/// The `source`/`weights` components of a [`ScheduleKey`] are 64-bit FNV-1a
/// hashes, so two distinct (source, layer) pairs can — however improbably —
/// collide.  Serving a colliding entry would silently hand a layer the
/// wrong schedule; storing the source name and the weight dimensions makes
/// such a collision *detectable*: a lookup whose check disagrees with the
/// stored one bypasses the cache (counted in [`CacheStats::collisions`])
/// instead of returning a foreign schedule.  Collisions that agree on name
/// and dimensions but differ only in weight contents or source
/// configuration are not caught by the check — they require a simultaneous
/// 64-bit content/config hash collision and are accepted as residual risk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyCheck {
    /// [`crate::ScheduleSource::name`] of the producing source.
    pub source: String,
    /// Weight-matrix rows (reduction length).
    pub rows: usize,
    /// Weight-matrix columns (output channels).
    pub cols: usize,
}

/// Histogram-cache key: (source fingerprint, workload fingerprint,
/// simulation-context fingerprint).
///
/// A triggered-depth histogram depends on the schedule (determined by the
/// source and the weights), the activations, and the simulation context —
/// the array geometry, the dataflow and the simulation options — but *not*
/// on the operating corner, which is applied after the fact by the error
/// model.  The key therefore covers exactly those inputs, so one cached
/// histogram serves every corner, die and trial budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HistogramKey {
    /// [`crate::ScheduleSource::fingerprint`] of the producing source.
    pub source: u64,
    /// Fingerprint of the full workload (weights + activations, dims and
    /// contents) — see [`workload_fingerprint`].
    pub workload: u64,
    /// Fingerprint of the simulation context (array geometry, dataflow,
    /// simulation options).
    pub context: u64,
}

/// Full-key verification data of a histogram-cache entry (the
/// [`KeyCheck`] analogue: names + dimensions behind the 64-bit hashes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramCheck {
    /// [`crate::ScheduleSource::name`] of the producing source.
    pub source: String,
    /// [`LayerWorkload`] name.
    pub workload: String,
    /// Weight-matrix rows (reduction length).
    pub rows: usize,
    /// Weight-matrix columns (output channels).
    pub cols: usize,
    /// Activation-matrix columns (pixels).
    pub pixels: usize,
}

/// Unit-result cache key: (plan-signature fingerprint, unit-id
/// fingerprint).  The signature covers every stage fingerprint the unit's
/// result depends on — see [`crate::WorkPlan`]'s signature construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UnitKey {
    /// FNV-1a of the plan's full signature string.
    pub plan: u64,
    /// FNV-1a of the unit's wire id ([`crate::WorkUnit::encode`]).
    pub unit: u64,
}

/// Full-key verification data of a unit-result cache entry: the complete
/// signature and unit id behind the [`UnitKey`] hashes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitCheck {
    /// The plan's full signature (stage fingerprints, workloads, grid) —
    /// shared, since every unit of a plan carries the same signature and
    /// plans can hold thousands of Monte-Carlo shards.
    pub plan: Arc<str>,
    /// The unit's wire id.
    pub unit: String,
}

/// Fingerprint of a weight matrix: FNV-1a over its dimensions and bytes.
pub fn weights_fingerprint(weights: &Matrix<i8>) -> u64 {
    let dims = [weights.rows() as u64, weights.cols() as u64];
    let bytes = dims
        .iter()
        .flat_map(|d| d.to_le_bytes())
        .chain(weights.as_slice().iter().map(|&w| w as u8));
    fnv1a(bytes)
}

/// Fingerprint of a full workload: FNV-1a over the weight and activation
/// matrices (dimensions + contents).
pub fn workload_fingerprint(workload: &LayerWorkload) -> u64 {
    let dims = [
        workload.weights.rows() as u64,
        workload.weights.cols() as u64,
        workload.activations.rows() as u64,
        workload.activations.cols() as u64,
    ];
    let bytes = dims
        .iter()
        .flat_map(|d| d.to_le_bytes())
        .chain(workload.weights.as_slice().iter().map(|&w| w as u8))
        .chain(workload.activations.as_slice().iter().map(|&a| a as u8));
    fnv1a(bytes)
}

/// Fingerprint of an executable model: FNV-1a over the architecture (layer
/// sequence), every convolution's configuration, weights and bias, and the
/// classifier — anything that can change a forward pass.  Used to key
/// memoized accuracy-unit results.
pub fn model_fingerprint(model: &Model) -> u64 {
    let mut bytes: Vec<u8> = Vec::new();
    let push_str = |bytes: &mut Vec<u8>, s: &str| {
        bytes.extend((s.len() as u64).to_le_bytes());
        bytes.extend(s.bytes());
    };
    push_str(&mut bytes, model.name());
    bytes.extend((model.num_classes() as u64).to_le_bytes());
    // Layer-sequence tags, so two architectures sharing conv layers but
    // differing in pooling/residual structure fingerprint differently.
    for layer in model.layers() {
        let tag: &str = match layer {
            qnn::LayerKind::Conv { relu, .. } => {
                if *relu {
                    "conv+relu"
                } else {
                    "conv"
                }
            }
            qnn::LayerKind::MaxPool2 => "maxpool2",
            qnn::LayerKind::GlobalAvgPool => "gap",
            qnn::LayerKind::Residual(_) => "residual",
            qnn::LayerKind::Classifier(_) => "classifier",
            _ => "other",
        };
        push_str(&mut bytes, tag);
    }
    for conv in model.conv_layers() {
        push_str(&mut bytes, conv.name());
        for dim in [
            conv.in_channels(),
            conv.out_channels(),
            conv.kernel(),
            conv.stride(),
            conv.padding(),
        ] {
            bytes.extend((dim as u64).to_le_bytes());
        }
        bytes.extend(conv.out_scale().to_bits().to_le_bytes());
        bytes.extend(conv.weights().iter().map(|&w| w as u8));
        for &b in conv.bias() {
            bytes.extend(b.to_le_bytes());
        }
    }
    let classifier = model.classifier();
    bytes.extend((classifier.in_features() as u64).to_le_bytes());
    bytes.extend((classifier.out_features() as u64).to_le_bytes());
    bytes.extend(classifier.weights().iter().map(|&w| w as u8));
    for &b in classifier.bias() {
        bytes.extend(b.to_le_bytes());
    }
    fnv1a(bytes)
}

/// Fingerprint of a dataset: FNV-1a over every image's shape and contents
/// plus the labels.  Used to key memoized accuracy-unit results.
pub fn dataset_fingerprint(dataset: &Dataset) -> u64 {
    let mut bytes: Vec<u8> = Vec::new();
    bytes.extend((dataset.num_classes() as u64).to_le_bytes());
    for (image, label) in dataset.iter() {
        for dim in image.shape() {
            bytes.extend((dim as u64).to_le_bytes());
        }
        bytes.extend(image.as_slice().iter().map(|&v| v as u8));
        bytes.extend((label as u64).to_le_bytes());
    }
    fnv1a(bytes)
}

/// Cache effectiveness counters of a pipeline's caches and its artifact
/// store.
///
/// The `misses` counters count *fresh computations* — a lookup served by
/// the store (a `disk_hit`) is neither a hit nor a miss of the in-memory
/// layer, so "`misses` unchanged" is exactly "the optimizer/simulator/
/// evaluator did not run again", whether the artifact came from memory or
/// from a shared store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Schedule lookups served from the in-memory cache.
    pub hits: u64,
    /// Schedule lookups that had to compute a schedule.
    pub misses: u64,
    /// Schedule lookups whose hash key matched a cached entry but whose
    /// full key ([`KeyCheck`]) did not — a fingerprint collision, served by
    /// a fresh computation instead of the cached schedule.
    pub collisions: u64,
    /// Schedules currently cached in memory.
    pub entries: usize,
    /// Histogram lookups served from the in-memory cache (a simulation pass
    /// saved).
    pub hist_hits: u64,
    /// Histogram lookups that had to simulate.
    pub hist_misses: u64,
    /// Histogram lookups whose hash key collided (see
    /// [`CacheStats::collisions`]) — served by a fresh simulation.
    pub hist_collisions: u64,
    /// Histograms currently cached in memory.
    pub hist_entries: usize,
    /// Work-unit results served from the in-memory cache.
    pub unit_hits: u64,
    /// Work-unit results that had to execute fresh.
    pub unit_misses: u64,
    /// Work-unit lookups whose hash key collided — executed fresh.
    pub unit_collisions: u64,
    /// Work-unit results currently cached in memory.
    pub unit_entries: usize,
    /// Work-unit results served by joining an identical *in-flight*
    /// computation instead of starting one — the serve layer's single-flight
    /// dedup (see [`crate::serve`]).  Always zero for a plain pipeline: only
    /// a daemon coalescing concurrent requests produces in-flight joins.
    pub inflight_hits: u64,
    /// Lookups (all artifact kinds) served from the configured
    /// [`ArtifactStore`].
    pub disk_hits: u64,
    /// Store lookups that found nothing servable.
    pub disk_misses: u64,
    /// Store entries that failed to parse or decode — read as misses and
    /// rewritten, never propagated as errors.
    pub corrupt_entries: u64,
    /// Artifacts written to the store.
    pub store_writes: u64,
}

impl CacheStats {
    /// Deterministic JSON rendering (stable key order, all counters),
    /// golden-pinned by `tests/fixtures/cache_stats.json`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"hits\":{},\"misses\":{},\"collisions\":{},\"entries\":{},\
             \"hist_hits\":{},\"hist_misses\":{},\"hist_collisions\":{},\"hist_entries\":{},\
             \"unit_hits\":{},\"unit_misses\":{},\"unit_collisions\":{},\"unit_entries\":{},\
             \"inflight_hits\":{},\
             \"disk_hits\":{},\"disk_misses\":{},\"corrupt_entries\":{},\"store_writes\":{}}}",
            self.hits,
            self.misses,
            self.collisions,
            self.entries,
            self.hist_hits,
            self.hist_misses,
            self.hist_collisions,
            self.hist_entries,
            self.unit_hits,
            self.unit_misses,
            self.unit_collisions,
            self.unit_entries,
            self.inflight_hits,
            self.disk_hits,
            self.disk_misses,
            self.corrupt_entries,
            self.store_writes,
        )
    }

    /// Parses the flat-object JSON produced by [`CacheStats::to_json`]
    /// (unknown keys are ignored, absent keys stay zero) — the decoder the
    /// serve protocol uses to carry per-request stats over the wire.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed key/value pair.
    pub fn from_json(json: &str) -> Result<CacheStats, String> {
        let body = json
            .trim()
            .strip_prefix('{')
            .and_then(|rest| rest.strip_suffix('}'))
            .ok_or_else(|| format!("cache stats JSON is not an object: {json:?}"))?;
        let mut stats = CacheStats::default();
        if body.trim().is_empty() {
            return Ok(stats);
        }
        for pair in body.split(',') {
            let (key, value) = pair
                .split_once(':')
                .ok_or_else(|| format!("malformed cache stats pair {pair:?}"))?;
            let key = key.trim().trim_matches('"');
            let value: u64 = value
                .trim()
                .parse()
                .map_err(|e| format!("bad cache stats value for {key:?}: {e}"))?;
            match key {
                "hits" => stats.hits = value,
                "misses" => stats.misses = value,
                "collisions" => stats.collisions = value,
                "entries" => stats.entries = value as usize,
                "hist_hits" => stats.hist_hits = value,
                "hist_misses" => stats.hist_misses = value,
                "hist_collisions" => stats.hist_collisions = value,
                "hist_entries" => stats.hist_entries = value as usize,
                "unit_hits" => stats.unit_hits = value,
                "unit_misses" => stats.unit_misses = value,
                "unit_collisions" => stats.unit_collisions = value,
                "unit_entries" => stats.unit_entries = value as usize,
                "inflight_hits" => stats.inflight_hits = value,
                "disk_hits" => stats.disk_hits = value,
                "disk_misses" => stats.disk_misses = value,
                "corrupt_entries" => stats.corrupt_entries = value,
                "store_writes" => stats.store_writes = value,
                _ => {}
            }
        }
        Ok(stats)
    }
}

/// One cacheable artifact class: how its keys hash, how its full key
/// renders into a store check line, and how its values encode to and from
/// the store's text payloads.
///
/// The three built-in kinds cover schedules, histograms and unit results;
/// custom pipelines can define further kinds and run them through the same
/// [`VerifiedCache`] + [`ArtifactStore`] machinery.
pub trait ArtifactKind {
    /// Store namespace of the kind (the entry subdirectory on disk).
    const KIND: &'static str;
    /// The 64-bit-fingerprint key type.
    type Key: Eq + Hash + Copy;
    /// The full-key verification data behind the hashes.
    type Check: Eq + Clone;
    /// The cached value type.
    type Value;

    /// Collapses a key into the store's 64-bit content address.
    fn key_id(key: &Self::Key) -> u64;
    /// Renders the full key — the verification data AND every component of
    /// `key` the 64-bit [`ArtifactKind::key_id`] collapses — as a
    /// single-line check (free-text fields must be escaped; see
    /// [`crate::WorkUnit::encode`]'s escaping rules).  Including the key
    /// components matters for *shared* stores: two pipelines whose distinct
    /// keys collide in `key_id` must disagree on the check line, so the
    /// foreign entry reads as a miss rather than a verified hit.
    fn check_line(key: &Self::Key, check: &Self::Check) -> String;
    /// Encodes a value as a store payload (must round-trip exactly through
    /// [`ArtifactKind::decode`]).
    fn encode(value: &Self::Value) -> String;
    /// Decodes a store payload; `None` marks the entry corrupt (a counted
    /// miss, recomputed and rewritten).
    fn decode(payload: &str) -> Option<Self::Value>;
}

/// The schedule artifact class ([`ScheduleKey`] → [`ComputeSchedule`]).
#[derive(Debug)]
pub struct ScheduleArtifact;

impl ArtifactKind for ScheduleArtifact {
    const KIND: &'static str = "schedule";
    type Key = ScheduleKey;
    type Check = KeyCheck;
    type Value = ComputeSchedule;

    fn key_id(key: &Self::Key) -> u64 {
        fnv1a(
            key.source
                .to_le_bytes()
                .into_iter()
                .chain(key.weights.to_le_bytes())
                .chain((key.array_cols as u64).to_le_bytes()),
        )
    }

    fn check_line(key: &Self::Key, check: &Self::Check) -> String {
        format!(
            "source={} rows={} cols={} array_cols={} source_fp={:016x} weights_fp={:016x}",
            escape_wire(&check.source),
            check.rows,
            check.cols,
            key.array_cols,
            key.source,
            key.weights
        )
    }

    fn encode(value: &Self::Value) -> String {
        value.to_wire()
    }

    fn decode(payload: &str) -> Option<Self::Value> {
        ComputeSchedule::from_wire(payload)
    }
}

/// The histogram artifact class ([`HistogramKey`] → [`DepthHistogram`]).
#[derive(Debug)]
pub struct HistogramArtifact;

impl ArtifactKind for HistogramArtifact {
    const KIND: &'static str = "histogram";
    type Key = HistogramKey;
    type Check = HistogramCheck;
    type Value = DepthHistogram;

    fn key_id(key: &Self::Key) -> u64 {
        fnv1a(
            key.source
                .to_le_bytes()
                .into_iter()
                .chain(key.workload.to_le_bytes())
                .chain(key.context.to_le_bytes()),
        )
    }

    fn check_line(key: &Self::Key, check: &Self::Check) -> String {
        format!(
            "source={} workload={} rows={} cols={} pixels={} \
             source_fp={:016x} workload_fp={:016x} context_fp={:016x}",
            escape_wire(&check.source),
            escape_wire(&check.workload),
            check.rows,
            check.cols,
            check.pixels,
            key.source,
            key.workload,
            key.context
        )
    }

    fn encode(value: &Self::Value) -> String {
        value.to_wire()
    }

    fn decode(payload: &str) -> Option<Self::Value> {
        DepthHistogram::from_wire(payload)
    }
}

/// The memoized work-unit-result artifact class ([`UnitKey`] →
/// [`UnitResult`]).
#[derive(Debug)]
pub struct UnitArtifact;

impl ArtifactKind for UnitArtifact {
    const KIND: &'static str = "unit";
    type Key = UnitKey;
    type Check = UnitCheck;
    type Value = UnitResult;

    fn key_id(key: &Self::Key) -> u64 {
        fnv1a(
            key.plan
                .to_le_bytes()
                .into_iter()
                .chain(key.unit.to_le_bytes()),
        )
    }

    fn check_line(_key: &Self::Key, check: &Self::Check) -> String {
        // The check already carries the complete key preimages (the full
        // signature and unit id the UnitKey hashes collapse), so a key_id
        // collision between distinct units always disagrees here.
        format!(
            "unit={} plan={}",
            escape_wire(&check.unit),
            escape_wire(&check.plan)
        )
    }

    fn encode(value: &Self::Value) -> String {
        value.encode()
    }

    fn decode(payload: &str) -> Option<Self::Value> {
        UnitResult::decode(payload).ok()
    }
}

/// The in-memory layer of a [`VerifiedCache`]: full key + shared value,
/// keyed by the 64-bit-fingerprint key.
type CheckedMap<A> = HashMap<
    <A as ArtifactKind>::Key,
    (<A as ArtifactKind>::Check, Arc<<A as ArtifactKind>::Value>),
>;

/// A thread-safe verified cache over one [`ArtifactKind`]: an in-memory
/// full-key-checked map (today's per-pipeline behavior) layered on an
/// optional content-addressed [`ArtifactStore`] for sharing across
/// pipelines, workers and processes.
///
/// Lookup order: memory, then store, then compute (counted in `misses`) —
/// with every fresh computation written through to the store.  Collision
/// verification applies at both layers: a fingerprint collision is
/// detected via the stored full key and served by a fresh computation,
/// never by a foreign artifact.
pub struct VerifiedCache<A: ArtifactKind> {
    map: Mutex<CheckedMap<A>>,
    store: Option<Arc<dyn ArtifactStore>>,
    hits: AtomicU64,
    misses: AtomicU64,
    collisions: AtomicU64,
}

impl<A: ArtifactKind> std::fmt::Debug for VerifiedCache<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VerifiedCache")
            .field("kind", &A::KIND)
            .field("store", &self.store.as_ref().map(|s| s.name()))
            .finish_non_exhaustive()
    }
}

impl<A: ArtifactKind> Default for VerifiedCache<A> {
    fn default() -> Self {
        Self::with_store(None)
    }
}

impl<A: ArtifactKind> VerifiedCache<A> {
    /// An empty cache with no backing store.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache over an optional backing store.
    pub fn with_store(store: Option<Arc<dyn ArtifactStore>>) -> Self {
        VerifiedCache {
            map: Mutex::new(HashMap::new()),
            store,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            collisions: AtomicU64::new(0),
        }
    }

    /// Returns the cached value for `key`, or computes, caches and returns
    /// it.  `check` is the full key verified against the stored entry: a
    /// hash collision is detected rather than served, and its lookup
    /// computes a fresh value without touching the cache.
    ///
    /// The compute closure runs outside the cache lock, so concurrent
    /// lookups of *different* keys never serialize on a slow computation;
    /// two racing computations of the same key are deterministic and
    /// idempotent, and the first insert wins.
    ///
    /// # Errors
    ///
    /// Propagates the compute closure's error without caching anything.
    pub fn get_or_compute(
        &self,
        key: A::Key,
        check: A::Check,
        compute: impl FnOnce() -> Result<A::Value, PipelineError>,
    ) -> Result<Arc<A::Value>, PipelineError> {
        // Look up under the lock, but release it before any compute() call
        // (the if-let guard temporary would otherwise live to the end of the
        // branch and serialize unrelated lookups on a slow computation).
        let cached = {
            let map = self.map.lock().expect("cache lock");
            map.get(&key)
                .map(|(stored, found)| (*stored == check, Arc::clone(found)))
        };
        match cached {
            Some((true, found)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(found);
            }
            Some((false, _)) => {
                // Fingerprint collision: the 64-bit hashes matched but the
                // full keys differ.  Serve a fresh computation and leave the
                // cached entry alone (overwriting would just thrash both
                // parties).
                self.collisions.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::new(compute()?));
            }
            None => {}
        }

        // Memory miss: try the backing store before computing.  A store hit
        // is neither a memory hit nor a miss — `misses` stays the count of
        // fresh computations; the store's own counters record the rest.
        if let Some(store) = &self.store {
            let id = A::key_id(&key);
            if let Some(payload) = store.load(A::KIND, id, &A::check_line(&key, &check)) {
                match A::decode(&payload) {
                    Some(value) => return Ok(self.admit(key, check, Arc::new(value), false)),
                    None => store.note_corrupt(A::KIND, id),
                }
            }
        }

        let computed = Arc::new(compute()?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        Ok(self.admit(key, check, computed, true))
    }

    /// Seeds the memory layer from the backing store in batched round
    /// trips: every entry not already in memory is looked up through
    /// [`ArtifactStore::load_many`] (one `mget` per batch on a
    /// [`crate::store::RemoteStore`] — O(batches) instead of O(entries))
    /// and the decoded hits are admitted, so the following
    /// [`VerifiedCache::get_or_compute`] calls are plain memory hits.
    /// Returns how many entries were admitted.  A no-op without a store.
    ///
    /// Purely an optimization: misses and undecodable payloads (noted
    /// corrupt, as in the un-prefetched path) are computed on demand
    /// exactly as before, so results are byte-identical either way.
    pub fn prefetch(&self, entries: &[(A::Key, A::Check)]) -> usize {
        let Some(store) = &self.store else { return 0 };
        let wanted: Vec<&(A::Key, A::Check)> = {
            let map = self.map.lock().expect("cache lock");
            entries
                .iter()
                .filter(|(key, _)| !map.contains_key(key))
                .collect()
        };
        if wanted.is_empty() {
            return 0;
        }
        let requests: Vec<StoreRequest> = wanted
            .iter()
            .map(|(key, check)| StoreRequest {
                kind: A::KIND.to_string(),
                key: A::key_id(key),
                check: A::check_line(key, check),
            })
            .collect();
        let mut admitted = 0;
        for ((key, check), payload) in wanted.iter().zip(store.load_many(&requests)) {
            let Some(payload) = payload else { continue };
            match A::decode(&payload) {
                Some(value) => {
                    self.admit(*key, check.clone(), Arc::new(value), false);
                    admitted += 1;
                }
                None => store.note_corrupt(A::KIND, A::key_id(key)),
            }
        }
        admitted
    }

    /// Inserts a value into the memory layer (first insert wins; a racing
    /// colliding full key is counted and bypassed) and — for freshly
    /// computed values that won the insert — writes it through to the
    /// store.
    fn admit(
        &self,
        key: A::Key,
        check: A::Check,
        value: Arc<A::Value>,
        write_through: bool,
    ) -> Arc<A::Value> {
        let admitted = {
            let mut map = self.map.lock().expect("cache lock");
            let entry = map
                .entry(key)
                .or_insert_with(|| (check.clone(), Arc::clone(&value)));
            if entry.0 == check {
                Some(Arc::clone(&entry.1))
            } else {
                None
            }
        };
        match admitted {
            Some(entry) => {
                if write_through {
                    if let Some(store) = &self.store {
                        store.put(
                            A::KIND,
                            A::key_id(&key),
                            &A::check_line(&key, &check),
                            &A::encode(&entry),
                        );
                    }
                }
                entry
            }
            None => {
                // A racing thread inserted a colliding full key first.
                self.collisions.fetch_add(1, Ordering::Relaxed);
                value
            }
        }
    }

    /// Current counters: (hits, misses, collisions, entries).
    pub fn counters(&self) -> (u64, u64, u64, usize) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.collisions.load(Ordering::Relaxed),
            self.map.lock().expect("cache lock").len(),
        )
    }

    /// Drops every cached value and resets the counters.  The backing
    /// store (and its counters) is untouched.
    pub fn clear(&self) {
        self.map.lock().expect("cache lock").clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.collisions.store(0, Ordering::Relaxed);
    }
}

/// A thread-safe schedule cache (see [`VerifiedCache`]).
#[derive(Debug, Default)]
pub struct ScheduleCache {
    inner: VerifiedCache<ScheduleArtifact>,
}

impl ScheduleCache {
    /// Creates an empty cache with no backing store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty cache over an optional backing store.
    pub fn with_store(store: Option<Arc<dyn ArtifactStore>>) -> Self {
        ScheduleCache {
            inner: VerifiedCache::with_store(store),
        }
    }

    /// Returns the cached schedule for `key`, or computes, caches and
    /// returns it.  `check` is the full (name + dims) key verified against
    /// the stored entry: a hash collision is detected rather than served,
    /// and its lookup computes a fresh schedule without touching the cache.
    ///
    /// # Errors
    ///
    /// Propagates the compute closure's error without caching anything.
    pub fn get_or_compute(
        &self,
        key: ScheduleKey,
        check: KeyCheck,
        compute: impl FnOnce() -> Result<ComputeSchedule, PipelineError>,
    ) -> Result<Arc<ComputeSchedule>, PipelineError> {
        self.inner.get_or_compute(key, check, compute)
    }

    /// Current counters (schedule fields only; the histogram/unit/store
    /// fields of the combined [`CacheStats`] are zero —
    /// [`crate::ReadPipeline::cache_stats`] fills them from the other
    /// caches and the store).
    pub fn stats(&self) -> CacheStats {
        let (hits, misses, collisions, entries) = self.inner.counters();
        CacheStats {
            hits,
            misses,
            collisions,
            entries,
            ..CacheStats::default()
        }
    }

    /// Drops every cached schedule and resets the counters.
    pub fn clear(&self) {
        self.inner.clear();
    }
}

/// A thread-safe triggered-depth-histogram cache (see [`VerifiedCache`]).
///
/// Keyed like the schedule cache ([`HistogramKey`]), it amortizes the cycle
/// simulation across the corners, dies and repeated runs of a sweep: the
/// histogram of a (workload, source) pair is corner-independent, so one
/// simulation pass serves the whole grid.
#[derive(Debug, Default)]
pub struct HistogramCache {
    inner: VerifiedCache<HistogramArtifact>,
}

impl HistogramCache {
    /// Creates an empty cache with no backing store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty cache over an optional backing store.
    pub fn with_store(store: Option<Arc<dyn ArtifactStore>>) -> Self {
        HistogramCache {
            inner: VerifiedCache::with_store(store),
        }
    }

    /// Returns the cached histogram for `key`, or simulates, caches and
    /// returns it.  `check` is the full (names + dims) key verified against
    /// the stored entry — see [`ScheduleCache::get_or_compute`].
    ///
    /// # Errors
    ///
    /// Propagates the compute closure's error without caching anything.
    pub fn get_or_compute(
        &self,
        key: HistogramKey,
        check: HistogramCheck,
        compute: impl FnOnce() -> Result<DepthHistogram, PipelineError>,
    ) -> Result<Arc<DepthHistogram>, PipelineError> {
        self.inner.get_or_compute(key, check, compute)
    }

    /// Current counters: (hits, misses, collisions, entries).
    pub fn counters(&self) -> (u64, u64, u64, usize) {
        self.inner.counters()
    }

    /// Drops every cached histogram and resets the counters.
    pub fn clear(&self) {
        self.inner.clear();
    }
}

/// A thread-safe memoized work-unit-result cache (see [`VerifiedCache`]).
///
/// Histogram units flow through the [`HistogramCache`] instead (their
/// payload *is* the histogram); this cache memoizes the remaining unit
/// classes — Monte-Carlo shards and accuracy points — so a rerun of any
/// [`crate::WorkPlan`] executes zero units fresh.
#[derive(Debug, Default)]
pub struct UnitCache {
    inner: VerifiedCache<UnitArtifact>,
}

impl UnitCache {
    /// Creates an empty cache with no backing store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty cache over an optional backing store.
    pub fn with_store(store: Option<Arc<dyn ArtifactStore>>) -> Self {
        UnitCache {
            inner: VerifiedCache::with_store(store),
        }
    }

    /// Returns the memoized result for `key`, or executes, caches and
    /// returns it — see [`ScheduleCache::get_or_compute`].
    ///
    /// # Errors
    ///
    /// Propagates the compute closure's error without caching anything.
    pub fn get_or_compute(
        &self,
        key: UnitKey,
        check: UnitCheck,
        compute: impl FnOnce() -> Result<UnitResult, PipelineError>,
    ) -> Result<Arc<UnitResult>, PipelineError> {
        self.inner.get_or_compute(key, check, compute)
    }

    /// Batched store prefetch into the memory layer — see
    /// [`VerifiedCache::prefetch`].
    pub fn prefetch(&self, entries: &[(UnitKey, UnitCheck)]) -> usize {
        self.inner.prefetch(entries)
    }

    /// Current counters: (hits, misses, collisions, entries).
    pub fn counters(&self) -> (u64, u64, u64, usize) {
        self.inner.counters()
    }

    /// Drops every memoized result and resets the counters.
    pub fn clear(&self) {
        self.inner.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{DiskStore, MemoryStore};

    fn key(n: u64) -> ScheduleKey {
        ScheduleKey {
            source: n,
            weights: 7,
            array_cols: 4,
        }
    }

    fn check(source: &str) -> KeyCheck {
        KeyCheck {
            source: source.to_string(),
            rows: 8,
            cols: 4,
        }
    }

    #[test]
    fn second_lookup_hits() {
        let cache = ScheduleCache::new();
        let make = || Ok(ComputeSchedule::baseline(8, 4, 2));
        let a = cache.get_or_compute(key(1), check("a"), make).unwrap();
        let b = cache.get_or_compute(key(1), check("a"), make).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.collisions, 0);
    }

    #[test]
    fn distinct_keys_compute_separately() {
        let cache = ScheduleCache::new();
        cache
            .get_or_compute(key(1), check("a"), || {
                Ok(ComputeSchedule::baseline(8, 4, 2))
            })
            .unwrap();
        cache
            .get_or_compute(key(2), check("a"), || {
                Ok(ComputeSchedule::baseline(8, 4, 4))
            })
            .unwrap();
        assert_eq!(cache.stats().entries, 2);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = ScheduleCache::new();
        let err = cache.get_or_compute(key(3), check("a"), || Err(PipelineError::builder("nope")));
        assert!(err.is_err());
        assert_eq!(cache.stats().entries, 0);
        // A later successful compute still works.
        cache
            .get_or_compute(key(3), check("a"), || {
                Ok(ComputeSchedule::baseline(8, 4, 2))
            })
            .unwrap();
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn fingerprint_collisions_are_detected_not_served() {
        let cache = ScheduleCache::new();
        // Same 64-bit key, different full keys: a simulated FNV collision.
        let first = cache
            .get_or_compute(key(1), check("a"), || {
                Ok(ComputeSchedule::baseline(8, 4, 2))
            })
            .unwrap();
        let collided = cache
            .get_or_compute(key(1), check("b"), || {
                Ok(ComputeSchedule::baseline(8, 4, 4))
            })
            .unwrap();
        // The colliding lookup got its own fresh schedule, not the cached one.
        assert!(!Arc::ptr_eq(&first, &collided));
        assert_eq!(*collided, ComputeSchedule::baseline(8, 4, 4));
        let stats = cache.stats();
        assert_eq!(stats.collisions, 1);
        assert_eq!(stats.entries, 1, "collisions never overwrite the entry");
        // The original full key still hits.
        cache
            .get_or_compute(key(1), check("a"), || {
                Ok(ComputeSchedule::baseline(8, 4, 2))
            })
            .unwrap();
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn weights_fingerprint_sees_dims_and_values() {
        let a = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as i8);
        let b = Matrix::from_fn(2, 8, |r, c| (r * 8 + c) as i8);
        let c = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as i8 + 1);
        assert_ne!(weights_fingerprint(&a), weights_fingerprint(&b));
        assert_ne!(weights_fingerprint(&a), weights_fingerprint(&c));
        assert_eq!(weights_fingerprint(&a), weights_fingerprint(&a.clone()));
    }

    #[test]
    fn workload_fingerprint_sees_weights_and_activations() {
        let weights = Matrix::from_fn(6, 3, |r, c| (r + c) as i8);
        let acts_a = Matrix::from_fn(6, 2, |r, c| (r * 2 + c) as i8);
        let acts_b = Matrix::from_fn(6, 2, |r, c| (r * 2 + c) as i8 + 1);
        let a = LayerWorkload::from_matrices("l", weights.clone(), acts_a.clone()).unwrap();
        let b = LayerWorkload::from_matrices("l", weights, acts_b).unwrap();
        assert_ne!(workload_fingerprint(&a), workload_fingerprint(&b));
        let again = LayerWorkload::from_matrices("renamed", a.weights.clone(), acts_a).unwrap();
        // The fingerprint covers contents, not the display name (the name is
        // verified by the HistogramCheck instead).
        assert_eq!(workload_fingerprint(&a), workload_fingerprint(&again));
    }

    #[test]
    fn model_and_dataset_fingerprints_see_contents() {
        let model_a = qnn::models::vgg11_cifar_scaled(8, 2, 1).unwrap();
        let model_b = qnn::models::vgg11_cifar_scaled(8, 2, 2).unwrap();
        assert_ne!(model_fingerprint(&model_a), model_fingerprint(&model_b));
        assert_eq!(
            model_fingerprint(&model_a),
            model_fingerprint(&qnn::models::vgg11_cifar_scaled(8, 2, 1).unwrap())
        );
        let data_a = qnn::SyntheticDatasetBuilder::new(2, [3, 8, 8])
            .samples_per_class(1)
            .seed(1)
            .build()
            .unwrap();
        let data_b = qnn::SyntheticDatasetBuilder::new(2, [3, 8, 8])
            .samples_per_class(1)
            .seed(2)
            .build()
            .unwrap();
        assert_ne!(dataset_fingerprint(&data_a), dataset_fingerprint(&data_b));
        assert_eq!(dataset_fingerprint(&data_a), dataset_fingerprint(&data_a));
    }

    #[test]
    fn histogram_cache_hits_and_detects_collisions() {
        let cache = HistogramCache::new();
        let key = HistogramKey {
            source: 1,
            workload: 2,
            context: 3,
        };
        let check_a = HistogramCheck {
            source: "a".into(),
            workload: "conv1".into(),
            rows: 8,
            cols: 4,
            pixels: 1,
        };
        let mut check_b = check_a.clone();
        check_b.workload = "conv2".into();
        let make = || Ok(DepthHistogram::from_parts(&[3, 1], 1, 4).unwrap());
        let first = cache.get_or_compute(key, check_a.clone(), make).unwrap();
        let again = cache.get_or_compute(key, check_a, make).unwrap();
        assert!(Arc::ptr_eq(&first, &again));
        let collided = cache.get_or_compute(key, check_b, make).unwrap();
        assert!(!Arc::ptr_eq(&first, &collided));
        let (hits, misses, collisions, entries) = cache.counters();
        assert_eq!((hits, misses, collisions, entries), (1, 1, 1, 1));
    }

    #[test]
    fn clear_resets_everything() {
        let cache = ScheduleCache::new();
        cache
            .get_or_compute(key(1), check("a"), || {
                Ok(ComputeSchedule::baseline(8, 4, 2))
            })
            .unwrap();
        cache
            .get_or_compute(key(1), check("b"), || {
                Ok(ComputeSchedule::baseline(8, 4, 4))
            })
            .unwrap();
        cache.clear();
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn store_backed_cache_serves_across_instances_without_recompute() {
        let store: Arc<dyn ArtifactStore> = Arc::new(MemoryStore::new());
        let first = ScheduleCache::with_store(Some(Arc::clone(&store)));
        first
            .get_or_compute(key(1), check("a"), || {
                Ok(ComputeSchedule::baseline(8, 4, 2))
            })
            .unwrap();
        assert_eq!(first.stats().misses, 1);
        assert_eq!(store.stats().writes, 1);

        // A second cache over the same store: no fresh computation at all.
        let second = ScheduleCache::with_store(Some(Arc::clone(&store)));
        let served = second
            .get_or_compute(key(1), check("a"), || {
                panic!("must be served from the store")
            })
            .unwrap();
        assert_eq!(*served, ComputeSchedule::baseline(8, 4, 2));
        let stats = second.stats();
        assert_eq!((stats.hits, stats.misses), (0, 0), "store hit, not a miss");
        assert_eq!(store.stats().hits, 1);
        // The store-served value is admitted to memory: a further lookup is
        // a plain memory hit.
        second
            .get_or_compute(key(1), check("a"), || panic!("must be served from memory"))
            .unwrap();
        assert_eq!(second.stats().hits, 1);
    }

    #[test]
    fn corrupt_store_payloads_recompute_and_rewrite() {
        let store = Arc::new(MemoryStore::new());
        store.put(
            "schedule",
            ScheduleArtifact::key_id(&key(9)),
            &ScheduleArtifact::check_line(&key(9), &check("a")),
            "not a schedule",
        );
        let cache = ScheduleCache::with_store(Some(Arc::clone(&store) as Arc<dyn ArtifactStore>));
        let value = cache
            .get_or_compute(key(9), check("a"), || {
                Ok(ComputeSchedule::baseline(8, 4, 2))
            })
            .unwrap();
        assert_eq!(*value, ComputeSchedule::baseline(8, 4, 2));
        assert_eq!(cache.stats().misses, 1, "corrupt payload → fresh compute");
        assert_eq!(store.stats().corrupt, 1);
        // The recomputed artifact was rewritten: a fresh cache now loads it.
        let fresh = ScheduleCache::with_store(Some(Arc::clone(&store) as Arc<dyn ArtifactStore>));
        fresh
            .get_or_compute(key(9), check("a"), || panic!("rewritten entry expected"))
            .unwrap();
    }

    #[test]
    fn disk_backed_cache_round_trips_all_three_kinds() {
        let dir = std::env::temp_dir().join(format!("read-cache-kinds-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store: Arc<dyn ArtifactStore> = Arc::new(DiskStore::new(&dir).unwrap());

        let schedules = ScheduleCache::with_store(Some(Arc::clone(&store)));
        let schedule = schedules
            .get_or_compute(key(1), check("a"), || {
                Ok(ComputeSchedule::baseline(8, 4, 2))
            })
            .unwrap();

        let hists = HistogramCache::with_store(Some(Arc::clone(&store)));
        let hkey = HistogramKey {
            source: 1,
            workload: 2,
            context: 3,
        };
        let hcheck = HistogramCheck {
            source: "a".into(),
            workload: "conv1".into(),
            rows: 8,
            cols: 4,
            pixels: 1,
        };
        let hist = hists
            .get_or_compute(hkey, hcheck.clone(), || {
                Ok(DepthHistogram::from_parts(&[3, 1], 1, 4).unwrap())
            })
            .unwrap();

        let units = UnitCache::with_store(Some(Arc::clone(&store)));
        let ukey = UnitKey { plan: 5, unit: 6 };
        let ucheck = UnitCheck {
            plan: "sig".into(),
            unit: "mc cell=0 trials=0..2".into(),
        };
        let unit = units
            .get_or_compute(ukey, ucheck.clone(), || {
                Ok(UnitResult::McShard {
                    cell: 0,
                    trial_range: 0..2,
                    ters: vec![vec![0.5, 0.25]],
                })
            })
            .unwrap();

        // Fresh caches over the same directory serve every kind bit-exactly
        // without recomputing.
        let store2: Arc<dyn ArtifactStore> = Arc::new(DiskStore::new(&dir).unwrap());
        let s2 = ScheduleCache::with_store(Some(Arc::clone(&store2)));
        assert_eq!(
            *s2.get_or_compute(key(1), check("a"), || panic!("persisted"))
                .unwrap(),
            *schedule
        );
        let h2 = HistogramCache::with_store(Some(Arc::clone(&store2)));
        assert_eq!(
            *h2.get_or_compute(hkey, hcheck, || panic!("persisted"))
                .unwrap(),
            *hist
        );
        let u2 = UnitCache::with_store(Some(Arc::clone(&store2)));
        assert_eq!(
            *u2.get_or_compute(ukey, ucheck, || panic!("persisted"))
                .unwrap(),
            *unit
        );
        assert_eq!(store2.stats().hits, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Check lines must disagree between keys that collide in `key_id` but
    /// differ in any key component — the shared-store analogue of the
    /// in-memory collision verification (array width for schedules, the
    /// simulation context for histograms).
    #[test]
    fn check_lines_cover_every_key_component() {
        let base = key(1);
        let narrower = ScheduleKey {
            array_cols: 8,
            ..base
        };
        assert_ne!(
            ScheduleArtifact::check_line(&base, &check("a")),
            ScheduleArtifact::check_line(&narrower, &check("a")),
            "array width must be part of the schedule check line"
        );
        let hkey = HistogramKey {
            source: 1,
            workload: 2,
            context: 3,
        };
        let other_context = HistogramKey { context: 4, ..hkey };
        let hcheck = HistogramCheck {
            source: "a".into(),
            workload: "conv1".into(),
            rows: 8,
            cols: 4,
            pixels: 1,
        };
        assert_ne!(
            HistogramArtifact::check_line(&hkey, &hcheck),
            HistogramArtifact::check_line(&other_context, &hcheck),
            "the simulation context must be part of the histogram check line"
        );
    }
}
