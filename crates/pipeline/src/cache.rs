//! Seed-keyed result caches: schedules and layer histograms.
//!
//! Optimizing a layer is the expensive part of a sweep (balanced k-means
//! plus per-cluster sorting), and experiment grids revisit the same
//! (source, layer, array) corner many times — e.g. every operating condition
//! of an accuracy sweep, or repeated runs over seeds.  The schedule cache
//! keys on the source fingerprint (which includes
//! [`read_core::ReadConfig::seed`]), a fingerprint of the weight matrix, and
//! the array column count, so a repeated corner reuses its schedule while
//! any configuration change recomputes it.  The histogram cache is keyed the
//! same way — source fingerprint plus a fingerprint of the full workload and
//! the simulation context (array geometry, dataflow, options) — and
//! amortizes the cycle simulation the same way the schedule cache amortizes
//! the optimization: a sweep simulates each (workload, source) pair once,
//! and every later corner, die or repeated run reuses the histogram.
//!
//! Because the fingerprints are 64-bit hashes, every entry also stores a
//! verification check (names + dimensions) that lookups verify — a hash
//! collision that differs in either is detected and bypassed rather than
//! served (see [`CacheStats::collisions`]).  The check deliberately stops
//! there: a collision between equal-dimension contents, or between
//! same-named sources with different configs, would additionally need the
//! 64-bit content/config hashes to collide (probability ~2^-64 per pair)
//! and is accepted as residual risk.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use accel_sim::{ComputeSchedule, Matrix};
use timing::DepthHistogram;

use crate::error::PipelineError;
use crate::stage::fnv1a;
use crate::workload::LayerWorkload;

/// Cache key: (source fingerprint, weights fingerprint, array columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScheduleKey {
    /// [`crate::ScheduleSource::fingerprint`] of the producing source.
    pub source: u64,
    /// Fingerprint of the weight matrix (dimensions + contents).
    pub weights: u64,
    /// Array columns the schedule was built for.
    pub array_cols: usize,
}

/// Full-key verification data stored beside every cache entry.
///
/// The `source`/`weights` components of a [`ScheduleKey`] are 64-bit FNV-1a
/// hashes, so two distinct (source, layer) pairs can — however improbably —
/// collide.  Serving a colliding entry would silently hand a layer the
/// wrong schedule; storing the source name and the weight dimensions makes
/// such a collision *detectable*: a lookup whose check disagrees with the
/// stored one bypasses the cache (counted in [`CacheStats::collisions`])
/// instead of returning a foreign schedule.  Collisions that agree on name
/// and dimensions but differ only in weight contents or source
/// configuration are not caught by the check — they require a simultaneous
/// 64-bit content/config hash collision and are accepted as residual risk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyCheck {
    /// [`crate::ScheduleSource::name`] of the producing source.
    pub source: String,
    /// Weight-matrix rows (reduction length).
    pub rows: usize,
    /// Weight-matrix columns (output channels).
    pub cols: usize,
}

/// Histogram-cache key: (source fingerprint, workload fingerprint,
/// simulation-context fingerprint).
///
/// A triggered-depth histogram depends on the schedule (determined by the
/// source and the weights), the activations, and the simulation context —
/// the array geometry, the dataflow and the simulation options — but *not*
/// on the operating corner, which is applied after the fact by the error
/// model.  The key therefore covers exactly those inputs, so one cached
/// histogram serves every corner, die and trial budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HistogramKey {
    /// [`crate::ScheduleSource::fingerprint`] of the producing source.
    pub source: u64,
    /// Fingerprint of the full workload (weights + activations, dims and
    /// contents) — see [`workload_fingerprint`].
    pub workload: u64,
    /// Fingerprint of the simulation context (array geometry, dataflow,
    /// simulation options).
    pub context: u64,
}

/// Full-key verification data of a histogram-cache entry (the
/// [`KeyCheck`] analogue: names + dimensions behind the 64-bit hashes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramCheck {
    /// [`crate::ScheduleSource::name`] of the producing source.
    pub source: String,
    /// [`LayerWorkload`] name.
    pub workload: String,
    /// Weight-matrix rows (reduction length).
    pub rows: usize,
    /// Weight-matrix columns (output channels).
    pub cols: usize,
    /// Activation-matrix columns (pixels).
    pub pixels: usize,
}

/// Fingerprint of a weight matrix: FNV-1a over its dimensions and bytes.
pub fn weights_fingerprint(weights: &Matrix<i8>) -> u64 {
    let dims = [weights.rows() as u64, weights.cols() as u64];
    let bytes = dims
        .iter()
        .flat_map(|d| d.to_le_bytes())
        .chain(weights.as_slice().iter().map(|&w| w as u8));
    fnv1a(bytes)
}

/// Fingerprint of a full workload: FNV-1a over the weight and activation
/// matrices (dimensions + contents).
pub fn workload_fingerprint(workload: &LayerWorkload) -> u64 {
    let dims = [
        workload.weights.rows() as u64,
        workload.weights.cols() as u64,
        workload.activations.rows() as u64,
        workload.activations.cols() as u64,
    ];
    let bytes = dims
        .iter()
        .flat_map(|d| d.to_le_bytes())
        .chain(workload.weights.as_slice().iter().map(|&w| w as u8))
        .chain(workload.activations.as_slice().iter().map(|&a| a as u8));
    fnv1a(bytes)
}

/// Cache effectiveness counters of a pipeline's caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Schedule lookups served from the cache.
    pub hits: u64,
    /// Schedule lookups that had to compute a schedule.
    pub misses: u64,
    /// Schedule lookups whose hash key matched a cached entry but whose
    /// full key ([`KeyCheck`]) did not — a fingerprint collision, served by
    /// a fresh computation instead of the cached schedule.
    pub collisions: u64,
    /// Schedules currently cached.
    pub entries: usize,
    /// Histogram lookups served from the cache (a simulation pass saved).
    pub hist_hits: u64,
    /// Histogram lookups that had to simulate.
    pub hist_misses: u64,
    /// Histogram lookups whose hash key collided (see
    /// [`CacheStats::collisions`]) — served by a fresh simulation.
    pub hist_collisions: u64,
    /// Histograms currently cached.
    pub hist_entries: usize,
}

/// A thread-safe, in-memory cache with full-key collision verification —
/// the shared machinery behind [`ScheduleCache`] and [`HistogramCache`].
#[derive(Debug)]
struct VerifiedCache<K, C, V> {
    map: Mutex<HashMap<K, (C, Arc<V>)>>,
    hits: AtomicU64,
    misses: AtomicU64,
    collisions: AtomicU64,
}

impl<K, C, V> Default for VerifiedCache<K, C, V> {
    fn default() -> Self {
        VerifiedCache {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            collisions: AtomicU64::new(0),
        }
    }
}

impl<K: Eq + Hash + Copy, C: Eq + Clone, V> VerifiedCache<K, C, V> {
    /// Returns the cached value for `key`, or computes, caches and returns
    /// it.  `check` is the full key verified against the stored entry: a
    /// hash collision is detected rather than served, and its lookup
    /// computes a fresh value without touching the cache.
    ///
    /// The compute closure runs outside the cache lock, so concurrent
    /// lookups of *different* keys never serialize on a slow computation;
    /// two racing computations of the same key are deterministic and
    /// idempotent, and the first insert wins.
    fn get_or_compute(
        &self,
        key: K,
        check: C,
        compute: impl FnOnce() -> Result<V, PipelineError>,
    ) -> Result<Arc<V>, PipelineError> {
        // Look up under the lock, but release it before any compute() call
        // (the if-let guard temporary would otherwise live to the end of the
        // branch and serialize unrelated lookups on a slow computation).
        let cached = {
            let map = self.map.lock().expect("cache lock");
            map.get(&key)
                .map(|(stored, found)| (*stored == check, Arc::clone(found)))
        };
        match cached {
            Some((true, found)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(found);
            }
            Some((false, _)) => {
                // Fingerprint collision: the 64-bit hashes matched but the
                // full keys differ.  Serve a fresh computation and leave the
                // cached entry alone (overwriting would just thrash both
                // parties).
                self.collisions.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::new(compute()?));
            }
            None => {}
        }
        let computed = Arc::new(compute()?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut map = self.map.lock().expect("cache lock");
        let entry = map
            .entry(key)
            .or_insert_with(|| (check.clone(), Arc::clone(&computed)));
        if entry.0 == check {
            Ok(Arc::clone(&entry.1))
        } else {
            // A racing thread inserted a colliding full key first.
            self.collisions.fetch_add(1, Ordering::Relaxed);
            Ok(computed)
        }
    }

    /// Current counters: (hits, misses, collisions, entries).
    fn counters(&self) -> (u64, u64, u64, usize) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.collisions.load(Ordering::Relaxed),
            self.map.lock().expect("cache lock").len(),
        )
    }

    /// Drops every cached value and resets the counters.
    fn clear(&self) {
        self.map.lock().expect("cache lock").clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.collisions.store(0, Ordering::Relaxed);
    }
}

/// A thread-safe, in-memory schedule cache.
#[derive(Debug, Default)]
pub struct ScheduleCache {
    inner: VerifiedCache<ScheduleKey, KeyCheck, ComputeSchedule>,
}

impl ScheduleCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached schedule for `key`, or computes, caches and
    /// returns it.  `check` is the full (name + dims) key verified against
    /// the stored entry: a hash collision is detected rather than served,
    /// and its lookup computes a fresh schedule without touching the cache.
    ///
    /// # Errors
    ///
    /// Propagates the compute closure's error without caching anything.
    pub fn get_or_compute(
        &self,
        key: ScheduleKey,
        check: KeyCheck,
        compute: impl FnOnce() -> Result<ComputeSchedule, PipelineError>,
    ) -> Result<Arc<ComputeSchedule>, PipelineError> {
        self.inner.get_or_compute(key, check, compute)
    }

    /// Current counters (schedule fields only; the histogram fields of the
    /// combined [`CacheStats`] are zero — [`crate::ReadPipeline::cache_stats`]
    /// fills them from its histogram cache).
    pub fn stats(&self) -> CacheStats {
        let (hits, misses, collisions, entries) = self.inner.counters();
        CacheStats {
            hits,
            misses,
            collisions,
            entries,
            ..CacheStats::default()
        }
    }

    /// Drops every cached schedule and resets the counters.
    pub fn clear(&self) {
        self.inner.clear();
    }
}

/// A thread-safe, in-memory triggered-depth-histogram cache.
///
/// Keyed like the schedule cache ([`HistogramKey`]), it amortizes the cycle
/// simulation across the corners, dies and repeated runs of a sweep: the
/// histogram of a (workload, source) pair is corner-independent, so one
/// simulation pass serves the whole grid.
#[derive(Debug, Default)]
pub struct HistogramCache {
    inner: VerifiedCache<HistogramKey, HistogramCheck, DepthHistogram>,
}

impl HistogramCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached histogram for `key`, or simulates, caches and
    /// returns it.  `check` is the full (names + dims) key verified against
    /// the stored entry — see [`ScheduleCache::get_or_compute`].
    ///
    /// # Errors
    ///
    /// Propagates the compute closure's error without caching anything.
    pub fn get_or_compute(
        &self,
        key: HistogramKey,
        check: HistogramCheck,
        compute: impl FnOnce() -> Result<DepthHistogram, PipelineError>,
    ) -> Result<Arc<DepthHistogram>, PipelineError> {
        self.inner.get_or_compute(key, check, compute)
    }

    /// Current counters: (hits, misses, collisions, entries).
    pub fn counters(&self) -> (u64, u64, u64, usize) {
        self.inner.counters()
    }

    /// Drops every cached histogram and resets the counters.
    pub fn clear(&self) {
        self.inner.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> ScheduleKey {
        ScheduleKey {
            source: n,
            weights: 7,
            array_cols: 4,
        }
    }

    fn check(source: &str) -> KeyCheck {
        KeyCheck {
            source: source.to_string(),
            rows: 8,
            cols: 4,
        }
    }

    #[test]
    fn second_lookup_hits() {
        let cache = ScheduleCache::new();
        let make = || Ok(ComputeSchedule::baseline(8, 4, 2));
        let a = cache.get_or_compute(key(1), check("a"), make).unwrap();
        let b = cache.get_or_compute(key(1), check("a"), make).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert_eq!(stats.collisions, 0);
    }

    #[test]
    fn distinct_keys_compute_separately() {
        let cache = ScheduleCache::new();
        cache
            .get_or_compute(key(1), check("a"), || {
                Ok(ComputeSchedule::baseline(8, 4, 2))
            })
            .unwrap();
        cache
            .get_or_compute(key(2), check("a"), || {
                Ok(ComputeSchedule::baseline(8, 4, 4))
            })
            .unwrap();
        assert_eq!(cache.stats().entries, 2);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = ScheduleCache::new();
        let err = cache.get_or_compute(key(3), check("a"), || Err(PipelineError::builder("nope")));
        assert!(err.is_err());
        assert_eq!(cache.stats().entries, 0);
        // A later successful compute still works.
        cache
            .get_or_compute(key(3), check("a"), || {
                Ok(ComputeSchedule::baseline(8, 4, 2))
            })
            .unwrap();
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn fingerprint_collisions_are_detected_not_served() {
        let cache = ScheduleCache::new();
        // Same 64-bit key, different full keys: a simulated FNV collision.
        let first = cache
            .get_or_compute(key(1), check("a"), || {
                Ok(ComputeSchedule::baseline(8, 4, 2))
            })
            .unwrap();
        let collided = cache
            .get_or_compute(key(1), check("b"), || {
                Ok(ComputeSchedule::baseline(8, 4, 4))
            })
            .unwrap();
        // The colliding lookup got its own fresh schedule, not the cached one.
        assert!(!Arc::ptr_eq(&first, &collided));
        assert_eq!(*collided, ComputeSchedule::baseline(8, 4, 4));
        let stats = cache.stats();
        assert_eq!(stats.collisions, 1);
        assert_eq!(stats.entries, 1, "collisions never overwrite the entry");
        // The original full key still hits.
        cache
            .get_or_compute(key(1), check("a"), || {
                Ok(ComputeSchedule::baseline(8, 4, 2))
            })
            .unwrap();
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn weights_fingerprint_sees_dims_and_values() {
        let a = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as i8);
        let b = Matrix::from_fn(2, 8, |r, c| (r * 8 + c) as i8);
        let c = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as i8 + 1);
        assert_ne!(weights_fingerprint(&a), weights_fingerprint(&b));
        assert_ne!(weights_fingerprint(&a), weights_fingerprint(&c));
        assert_eq!(weights_fingerprint(&a), weights_fingerprint(&a.clone()));
    }

    #[test]
    fn workload_fingerprint_sees_weights_and_activations() {
        let weights = Matrix::from_fn(6, 3, |r, c| (r + c) as i8);
        let acts_a = Matrix::from_fn(6, 2, |r, c| (r * 2 + c) as i8);
        let acts_b = Matrix::from_fn(6, 2, |r, c| (r * 2 + c) as i8 + 1);
        let a = LayerWorkload::from_matrices("l", weights.clone(), acts_a.clone()).unwrap();
        let b = LayerWorkload::from_matrices("l", weights, acts_b).unwrap();
        assert_ne!(workload_fingerprint(&a), workload_fingerprint(&b));
        let again = LayerWorkload::from_matrices("renamed", a.weights.clone(), acts_a).unwrap();
        // The fingerprint covers contents, not the display name (the name is
        // verified by the HistogramCheck instead).
        assert_eq!(workload_fingerprint(&a), workload_fingerprint(&again));
    }

    #[test]
    fn histogram_cache_hits_and_detects_collisions() {
        let cache = HistogramCache::new();
        let key = HistogramKey {
            source: 1,
            workload: 2,
            context: 3,
        };
        let check_a = HistogramCheck {
            source: "a".into(),
            workload: "conv1".into(),
            rows: 8,
            cols: 4,
            pixels: 1,
        };
        let mut check_b = check_a.clone();
        check_b.workload = "conv2".into();
        let make = || Ok(DepthHistogram::from_parts(&[3, 1], 1, 4).unwrap());
        let first = cache.get_or_compute(key, check_a.clone(), make).unwrap();
        let again = cache.get_or_compute(key, check_a, make).unwrap();
        assert!(Arc::ptr_eq(&first, &again));
        let collided = cache.get_or_compute(key, check_b, make).unwrap();
        assert!(!Arc::ptr_eq(&first, &collided));
        let (hits, misses, collisions, entries) = cache.counters();
        assert_eq!((hits, misses, collisions, entries), (1, 1, 1, 1));
    }

    #[test]
    fn clear_resets_everything() {
        let cache = ScheduleCache::new();
        cache
            .get_or_compute(key(1), check("a"), || {
                Ok(ComputeSchedule::baseline(8, 4, 2))
            })
            .unwrap();
        cache
            .get_or_compute(key(1), check("b"), || {
                Ok(ComputeSchedule::baseline(8, 4, 4))
            })
            .unwrap();
        cache.clear();
        assert_eq!(cache.stats(), CacheStats::default());
    }
}
