//! The [`ReadPipeline`]: one composable object for the paper's whole flow —
//! schedule sources × operating conditions × layers, through the simulator
//! and error model, into typed reports.

use std::sync::Arc;

use accel_sim::{
    ArrayConfig, ComputeSchedule, CycleObserver, Dataflow, Matrix, SimOptions, SimResult,
};
use qnn::{Dataset, Model};
use read_core::{ReadConfig, ReadOptimizer};
use timing::{DelayModel, DepthHistogram, OperatingCondition};

use crate::cache::{weights_fingerprint, CacheStats, KeyCheck, ScheduleCache, ScheduleKey};
use crate::error::PipelineError;
use crate::exec::{run_indexed, ExecMode};
use crate::report::{AccuracyPoint, AccuracyReport, LayerReport, NetworkReport};
use crate::stage::{
    DelayErrorModel, ErrorModel, Evaluator, MonteCarloErrorModel, ScheduleSource, TopKEvaluator,
    VariationErrorModel,
};
use crate::sweep::{SweepCell, SweepPlan, SweepReport, WorstCase};
use crate::workload::LayerWorkload;

/// Builder for a [`ReadPipeline`].  Obtain with [`ReadPipeline::builder`].
#[derive(Default)]
pub struct ReadPipelineBuilder {
    array: Option<ArrayConfig>,
    dataflow: Option<Dataflow>,
    sim_options: Option<SimOptions>,
    sources: Vec<Arc<dyn ScheduleSource>>,
    error_model: Option<Arc<dyn ErrorModel>>,
    pe_variation_seed: Option<u64>,
    conditions: Vec<OperatingCondition>,
    evaluator: Option<Arc<dyn Evaluator>>,
    top_k: Option<usize>,
    model: Option<Model>,
    exec: ExecMode,
    sweep_plan: Option<SweepPlan>,
}

impl ReadPipelineBuilder {
    /// Sets the systolic-array geometry (default:
    /// [`ArrayConfig::paper_default`], 16×4).
    pub fn array(mut self, array: ArrayConfig) -> Self {
        self.array = Some(array);
        self
    }

    /// Sets the dataflow (default: [`Dataflow::OutputStationary`]).
    pub fn dataflow(mut self, dataflow: Dataflow) -> Self {
        self.dataflow = Some(dataflow);
        self
    }

    /// Sets the simulation options (default: [`SimOptions::exhaustive`]).
    pub fn sim_options(mut self, options: SimOptions) -> Self {
        self.sim_options = Some(options);
        self
    }

    /// Adds a schedule source stage.  Sources run in insertion order and
    /// key the report rows by their [`ScheduleSource::name`].
    pub fn source(mut self, source: impl ScheduleSource + 'static) -> Self {
        self.sources.push(Arc::new(source));
        self
    }

    /// Adds an already-shared schedule source.
    pub fn source_arc(mut self, source: Arc<dyn ScheduleSource>) -> Self {
        self.sources.push(source);
        self
    }

    /// Adds the [`crate::Baseline`] source.
    pub fn baseline(self) -> Self {
        self.source(crate::stage::Baseline)
    }

    /// Adds a READ optimizer source with the given configuration.
    pub fn optimizer(self, config: ReadConfig) -> Self {
        self.source(ReadOptimizer::new(config))
    }

    /// Sets the error-model stage (default: [`DelayErrorModel`] with the
    /// Nangate-15nm-like delay model).
    pub fn error_model(mut self, model: impl ErrorModel + 'static) -> Self {
        self.error_model = Some(Arc::new(model));
        self
    }

    /// Shorthand: a [`DelayErrorModel`] wrapping `delay`.
    pub fn delay_model(self, delay: DelayModel) -> Self {
        self.error_model(DelayErrorModel::new(delay))
    }

    /// Shorthand: a [`MonteCarloErrorModel`] with the default delay model
    /// and the given trials/seed — reports carry `ter_stddev`.
    pub fn monte_carlo(self, trials: u32, seed: u64) -> Self {
        self.error_model(MonteCarloErrorModel::new(trials, seed))
    }

    /// Shorthand: a [`VariationErrorModel`] for this pipeline's array (the
    /// one configured with [`Self::array`], or the paper default) with the
    /// given per-PE offset seed.  Resolved at [`Self::build`] time, so it
    /// composes with `.array(..)` in any order.
    pub fn pe_variation(mut self, seed: u64) -> Self {
        self.pe_variation_seed = Some(seed);
        self
    }

    /// Adds one operating condition.
    pub fn condition(mut self, condition: OperatingCondition) -> Self {
        self.conditions.push(condition);
        self
    }

    /// Adds several operating conditions.
    pub fn conditions(mut self, conditions: impl IntoIterator<Item = OperatingCondition>) -> Self {
        self.conditions.extend(conditions);
        self
    }

    /// Configures the corner/die sweep [`ReadPipeline::run_sweep`] executes.
    /// The plan carries its own conditions (and error models per die), so a
    /// sweep-only pipeline needs no [`Self::condition`] call.
    pub fn sweep(mut self, plan: SweepPlan) -> Self {
        self.sweep_plan = Some(plan);
        self
    }

    /// Sets the evaluator stage (default: [`TopKEvaluator`] with `k = 3`).
    pub fn evaluator(mut self, evaluator: impl Evaluator + 'static) -> Self {
        self.evaluator = Some(Arc::new(evaluator));
        self
    }

    /// Shorthand: a [`TopKEvaluator`] with the given `k`.
    pub fn top_k(mut self, k: usize) -> Self {
        self.top_k = Some(k);
        self
    }

    /// Sets the executable model accuracy experiments evaluate.
    pub fn model(mut self, model: Model) -> Self {
        self.model = Some(model);
        self
    }

    /// Sets the execution mode (default: [`ExecMode::Serial`]).
    pub fn exec(mut self, mode: ExecMode) -> Self {
        self.exec = mode;
        self
    }

    /// Shorthand for [`ExecMode::parallel`] (worker count = machine).
    pub fn parallel(self) -> Self {
        self.exec(ExecMode::parallel())
    }

    /// Validates the configuration and builds the pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Builder`] when no schedule source is
    /// configured, when no operating condition is configured (unless a
    /// sweep plan — which carries its own conditions — is), when the sweep
    /// plan is invalid, when two sources share a name, when the array has
    /// no columns, or when `top_k(0)` was requested.
    pub fn build(self) -> Result<ReadPipeline, PipelineError> {
        if self.sources.is_empty() {
            return Err(PipelineError::builder(
                "at least one schedule source is required (use .baseline(), .optimizer(..) or .source(..))",
            ));
        }
        if let Some(plan) = &self.sweep_plan {
            plan.validate()?;
        }
        if self.conditions.is_empty() && self.sweep_plan.is_none() {
            return Err(PipelineError::builder(
                "at least one operating condition is required (use .condition(..) or .sweep(..))",
            ));
        }
        let mut names: Vec<String> = self.sources.iter().map(|s| s.name()).collect();
        names.sort();
        if let Some(dup) = names.windows(2).find(|w| w[0] == w[1]) {
            return Err(PipelineError::builder(format!(
                "duplicate schedule source name: {:?} (source names key report rows)",
                dup[0]
            )));
        }
        let array = self.array.unwrap_or_else(ArrayConfig::paper_default);
        if array.cols() == 0 || array.rows() == 0 {
            return Err(PipelineError::builder("array must have rows and columns"));
        }
        if self.top_k == Some(0) {
            return Err(PipelineError::builder("top-k requires k >= 1"));
        }
        let evaluator = match (self.evaluator, self.top_k) {
            (Some(e), None) => e,
            (Some(_), Some(_)) => {
                return Err(PipelineError::builder(
                    "set either .evaluator(..) or .top_k(..), not both",
                ))
            }
            (None, k) => Arc::new(TopKEvaluator::new(k.unwrap_or(3))),
        };
        let error_model = match (self.error_model, self.pe_variation_seed) {
            (Some(_), Some(_)) => {
                return Err(PipelineError::builder(
                    "set either .error_model(..)/.delay_model(..)/.monte_carlo(..) or \
                     .pe_variation(..), not both",
                ))
            }
            (Some(model), None) => model,
            (None, Some(seed)) => Arc::new(VariationErrorModel::new(&array, seed)),
            (None, None) => Arc::new(DelayErrorModel::default()),
        };
        Ok(ReadPipeline {
            array,
            dataflow: self.dataflow.unwrap_or(Dataflow::OutputStationary),
            sim_options: self.sim_options.unwrap_or_else(SimOptions::exhaustive),
            sources: self.sources,
            error_model,
            conditions: self.conditions,
            evaluator,
            model: self.model,
            exec: self.exec,
            sweep_plan: self.sweep_plan,
            cache: ScheduleCache::new(),
        })
    }
}

/// The composed pipeline: schedule sources → simulator → error model →
/// (optionally) fault-injection evaluation, over a set of operating
/// conditions, with a seed-keyed schedule cache and serial or parallel
/// per-layer execution.
///
/// # Example
///
/// ```
/// use read_pipeline::{Algorithm, ReadPipeline};
/// use read_pipeline::workload::{vgg16_workloads, WorkloadConfig};
/// use timing::OperatingCondition;
///
/// # fn main() -> Result<(), read_pipeline::PipelineError> {
/// let pipeline = ReadPipeline::builder()
///     .source(Algorithm::Baseline)
///     .source(Algorithm::ClusterThenReorder(Default::default()))
///     .condition(OperatingCondition::aging_vt(10.0, 0.05))
///     .build()?;
/// let config = WorkloadConfig { pixels_per_layer: 1, ..Default::default() };
/// let workloads: Vec<_> = vgg16_workloads(&config).into_iter().take(1).collect();
/// let report = pipeline.run_ter("vgg16-head", &workloads)?;
/// assert_eq!(report.rows.len(), 2);
/// # Ok(())
/// # }
/// ```
pub struct ReadPipeline {
    array: ArrayConfig,
    dataflow: Dataflow,
    sim_options: SimOptions,
    sources: Vec<Arc<dyn ScheduleSource>>,
    error_model: Arc<dyn ErrorModel>,
    conditions: Vec<OperatingCondition>,
    evaluator: Arc<dyn Evaluator>,
    model: Option<Model>,
    exec: ExecMode,
    sweep_plan: Option<SweepPlan>,
    cache: ScheduleCache,
}

impl std::fmt::Debug for ReadPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReadPipeline")
            .field("array", &self.array)
            .field("dataflow", &self.dataflow)
            .field(
                "sources",
                &self.sources.iter().map(|s| s.name()).collect::<Vec<_>>(),
            )
            .field("error_model", &self.error_model.name())
            .field(
                "conditions",
                &self.conditions.iter().map(|c| c.name).collect::<Vec<_>>(),
            )
            .field("evaluator", &self.evaluator.name())
            .field("has_model", &self.model.is_some())
            .field("exec", &self.exec)
            .field("has_sweep_plan", &self.sweep_plan.is_some())
            .finish_non_exhaustive()
    }
}

impl ReadPipeline {
    /// Starts a builder.
    pub fn builder() -> ReadPipelineBuilder {
        ReadPipelineBuilder::default()
    }

    /// The configured array geometry.
    pub fn array(&self) -> &ArrayConfig {
        &self.array
    }

    /// The configured dataflow.
    pub fn dataflow(&self) -> Dataflow {
        self.dataflow
    }

    /// The configured schedule sources, in report order.
    pub fn sources(&self) -> &[Arc<dyn ScheduleSource>] {
        &self.sources
    }

    /// The configured operating conditions, in report order.
    pub fn conditions(&self) -> &[OperatingCondition] {
        &self.conditions
    }

    /// The configured model, when accuracy evaluation is set up.
    pub fn model(&self) -> Option<&Model> {
        self.model.as_ref()
    }

    /// The configured sweep plan, when one is set up.
    pub fn sweep_plan(&self) -> Option<&SweepPlan> {
        self.sweep_plan.as_ref()
    }

    /// Schedule-cache effectiveness counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The (cached) schedule `source` produces for `weights` on this
    /// pipeline's array.
    ///
    /// # Errors
    ///
    /// Propagates the source's rejection of the matrix.
    pub fn schedule_for(
        &self,
        weights: &Matrix<i8>,
        source: &dyn ScheduleSource,
    ) -> Result<Arc<ComputeSchedule>, PipelineError> {
        let key = ScheduleKey {
            source: source.fingerprint(),
            weights: weights_fingerprint(weights),
            array_cols: self.array.cols(),
        };
        // Full-key verification data: a fingerprint collision must be
        // detected, never served as a foreign schedule.
        let check = KeyCheck {
            source: source.name(),
            rows: weights.rows(),
            cols: weights.cols(),
        };
        self.cache
            .get_or_compute(key, check, || source.schedule(weights, self.array.cols()))
    }

    /// Simulates `workload` under `source`'s schedule, feeding every cycle
    /// to `observer`.  This is the generic observation hook the specialised
    /// runs (`layer_histogram`, `layer_outputs`, psum traces, ...) build on.
    ///
    /// # Errors
    ///
    /// Propagates schedule and simulation failures.
    pub fn observe_layer(
        &self,
        workload: &LayerWorkload,
        source: &dyn ScheduleSource,
        observer: &mut (impl CycleObserver + ?Sized),
    ) -> Result<SimResult, PipelineError> {
        let schedule = self.schedule_for(&workload.weights, source)?;
        Ok(workload.problem().simulate_with_schedule(
            &self.array,
            self.dataflow,
            &schedule,
            &self.sim_options,
            observer,
        )?)
    }

    /// Simulates `workload` under `source` and returns the triggered-depth
    /// histogram (from which the TER at any corner follows without
    /// re-simulating).
    ///
    /// # Errors
    ///
    /// Propagates schedule and simulation failures.
    pub fn layer_histogram(
        &self,
        workload: &LayerWorkload,
        source: &dyn ScheduleSource,
    ) -> Result<DepthHistogram, PipelineError> {
        let mut hist = DepthHistogram::new();
        self.observe_layer(workload, source, &mut hist)?;
        Ok(hist)
    }

    /// Simulates `workload` under `source` and returns the layer outputs —
    /// the bit-exactness hook: a schedule must never change them.
    ///
    /// # Errors
    ///
    /// Propagates schedule and simulation failures.
    pub fn layer_outputs(
        &self,
        workload: &LayerWorkload,
        source: &dyn ScheduleSource,
    ) -> Result<Matrix<i32>, PipelineError> {
        let mut obs = accel_sim::NullObserver;
        Ok(self.observe_layer(workload, source, &mut obs)?.outputs)
    }

    /// TER of `workload` under `source` at `condition` (single-cell
    /// convenience over [`ReadPipeline::layer_histogram`]).
    ///
    /// # Errors
    ///
    /// Propagates schedule and simulation failures.
    pub fn layer_ter(
        &self,
        workload: &LayerWorkload,
        source: &dyn ScheduleSource,
        condition: &OperatingCondition,
    ) -> Result<f64, PipelineError> {
        Ok(self
            .error_model
            .ter(&self.layer_histogram(workload, source)?, condition))
    }

    /// Runs the layer-wise TER experiment (the paper's Figs. 7/8 shape):
    /// every workload under every source, evaluated at every condition from
    /// one simulation pass per (workload, source).
    ///
    /// Rows are ordered layer-major, then source, then condition,
    /// independent of execution mode — a parallel run returns a
    /// byte-identical report.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Missing`] on a sweep-only pipeline (one
    /// built without [`ReadPipelineBuilder::condition`] — its conditions
    /// live in the plan, so this experiment has nothing to evaluate at);
    /// otherwise propagates the first failure in (workload, source) order.
    pub fn run_ter(
        &self,
        network: &str,
        workloads: &[LayerWorkload],
    ) -> Result<NetworkReport, PipelineError> {
        if self.conditions.is_empty() {
            return Err(PipelineError::Missing {
                what: "operating conditions",
            });
        }
        let pairs = workloads.len() * self.sources.len();
        let histograms = run_indexed(self.exec, pairs, |index| {
            let workload = &workloads[index / self.sources.len()];
            let source = &self.sources[index % self.sources.len()];
            self.layer_histogram(workload, source.as_ref())
        })?;

        let mut rows = Vec::with_capacity(pairs * self.conditions.len());
        for (index, hist) in histograms.iter().enumerate() {
            let workload = &workloads[index / self.sources.len()];
            let source = &self.sources[index % self.sources.len()];
            for condition in &self.conditions {
                let estimate = self.error_model.estimate(hist, condition);
                rows.push(LayerReport {
                    layer: workload.name.clone(),
                    algorithm: source.name(),
                    condition: condition.name.to_string(),
                    corner: self.error_model.corner(),
                    ter: estimate.ter,
                    ter_stddev: estimate.stddev,
                    ber: self
                        .error_model
                        .ber(estimate.ter, workload.macs_per_output()),
                    sign_flip_rate: hist.sign_flip_rate(),
                    macs_per_output: workload.macs_per_output(),
                    total_cycles: hist.total(),
                    sign_flips: hist.sign_flips(),
                });
            }
        }
        Ok(NetworkReport {
            network: network.to_string(),
            rows,
        })
    }

    /// Runs the configured corner/die sweep (see
    /// [`ReadPipeline::run_sweep_with`]).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Missing`] when no sweep plan was configured
    /// (use [`ReadPipelineBuilder::sweep`]); otherwise see
    /// [`ReadPipeline::run_sweep_with`].
    pub fn run_sweep(
        &self,
        network: &str,
        workloads: &[LayerWorkload],
    ) -> Result<SweepReport, PipelineError> {
        let plan = self
            .sweep_plan
            .as_ref()
            .ok_or(PipelineError::Missing { what: "sweep plan" })?;
        self.run_sweep_with(network, workloads, plan)
    }

    /// Runs a corner/die sweep: every (die, condition) cell of `plan` over
    /// every (workload, source) pair, in one pipeline run.
    ///
    /// The plan — not the pipeline's configured conditions or error model —
    /// decides what each cell evaluates: typical-silicon cells use the
    /// analytic [`DelayErrorModel`] (or [`MonteCarloErrorModel`] under a
    /// trial budget, its trials sharded across work units and re-aggregated
    /// bit-identically), per-PE die cells use [`VariationErrorModel`].
    /// Each cell's rows are byte-identical to the report of an equivalent
    /// single-condition pipeline run with that cell's error model; see
    /// [`crate::sweep`] for the full contract.
    ///
    /// Every cell resolves its schedules through the shared cache, so the
    /// optimizer runs once per (source, layer) and the remaining cells hit
    /// ([`ReadPipeline::cache_stats`]); only the cycle simulation repeats
    /// per cell.  Cells, rows and shard aggregation are all ordered
    /// deterministically — a parallel sweep returns a byte-identical
    /// report.
    ///
    /// # Errors
    ///
    /// Propagates plan validation failures and the first simulation failure
    /// in (cell, workload, source) order.
    pub fn run_sweep_with(
        &self,
        network: &str,
        workloads: &[LayerWorkload],
        plan: &SweepPlan,
    ) -> Result<SweepReport, PipelineError> {
        plan.validate()?;
        // The grid is the single encoding of cell order (die-major); each
        // cell's error model derives from its corner's variation, so the
        // stage can never drift from the grid position.
        let corners = plan.corners(&self.array);
        let cell_models: Vec<crate::sweep::DieModel> = corners
            .iter()
            .map(|corner| plan.cell_model(corner))
            .collect();
        let cells = corners.len();
        let pairs = workloads.len() * self.sources.len();

        // Pass 1: one histogram per (cell, pair) work unit.  Histograms for
        // repeated pairs re-simulate (cheap), but their schedules come from
        // the shared cache (one optimization per pair, cells - 1 hits).
        let histograms = run_indexed(self.exec, cells * pairs, |index| {
            let pair = index % pairs;
            let workload = &workloads[pair / self.sources.len()];
            let source = &self.sources[pair % self.sources.len()];
            self.layer_histogram(workload, source.as_ref())
        })?;

        // Pass 2: error evaluation, expanded into shardable work units —
        // one unit per cell, except Monte-Carlo cells which split their
        // trial range into one unit per shard.
        struct Unit {
            cell: usize,
            trials: std::ops::Range<u32>,
        }
        enum Partial {
            Estimate(timing::TerEstimate),
            Trials(Vec<f64>),
        }
        let mut units = Vec::new();
        for (cell, model) in cell_models.iter().enumerate() {
            match model.monte_carlo() {
                Some((_, mc)) => units.extend((0..mc.shards()).map(|shard| Unit {
                    cell,
                    trials: mc.shard_range(shard),
                })),
                None => units.push(Unit { cell, trials: 0..0 }),
            }
        }
        let unit_results: Vec<Vec<Partial>> = run_indexed(self.exec, units.len(), |ui| {
            let unit = &units[ui];
            let condition = &corners[unit.cell].condition;
            let model = &cell_models[unit.cell];
            let partials = (0..pairs)
                .map(|pair| {
                    let hist = &histograms[unit.cell * pairs + pair];
                    match model.monte_carlo() {
                        Some((mc_model, _)) => Partial::Trials(mc_model.trial_ters(
                            hist,
                            condition,
                            unit.trials.clone(),
                        )),
                        None => Partial::Estimate(model.as_error_model().estimate(hist, condition)),
                    }
                })
                .collect();
            Ok::<_, PipelineError>(partials)
        })?;

        // Aggregation: concatenate each Monte-Carlo cell's per-shard trial
        // samples in trial order and reduce once — bit-identical to the
        // unsharded estimate — then assemble rows exactly as run_ter would.
        let mut unit_of_cell: Vec<Vec<usize>> = vec![Vec::new(); cells];
        for (ui, unit) in units.iter().enumerate() {
            unit_of_cell[unit.cell].push(ui);
        }
        let mut report_cells = Vec::with_capacity(cells);
        for (ci, cell_units) in unit_of_cell.iter().enumerate() {
            let corner = &corners[ci];
            let condition = &corner.condition;
            let model = &cell_models[ci];
            let error_model = model.as_error_model();
            let mut rows = Vec::with_capacity(pairs);
            for pair in 0..pairs {
                let workload = &workloads[pair / self.sources.len()];
                let source = &self.sources[pair % self.sources.len()];
                let hist = &histograms[ci * pairs + pair];
                let estimate = match &unit_results[cell_units[0]][pair] {
                    Partial::Estimate(estimate) => *estimate,
                    Partial::Trials(_) => {
                        let mut trials = Vec::new();
                        for &ui in cell_units {
                            match &unit_results[ui][pair] {
                                Partial::Trials(t) => trials.extend_from_slice(t),
                                Partial::Estimate(_) => unreachable!("mixed cell partials"),
                            }
                        }
                        timing::TerEstimate::from_trials(&trials)
                    }
                };
                rows.push(LayerReport {
                    layer: workload.name.clone(),
                    algorithm: source.name(),
                    condition: condition.name.to_string(),
                    corner: error_model.corner(),
                    ter: estimate.ter,
                    ter_stddev: estimate.stddev,
                    ber: error_model.ber(estimate.ter, workload.macs_per_output()),
                    sign_flip_rate: hist.sign_flip_rate(),
                    macs_per_output: workload.macs_per_output(),
                    total_cycles: hist.total(),
                    sign_flips: hist.sign_flips(),
                });
            }
            report_cells.push(SweepCell {
                die: corner.variation.label(),
                condition: condition.name.to_string(),
                error_model: error_model.name(),
                shards: model.shards(),
                rows,
            });
        }

        // Cross-corner summary: the worst row per algorithm, in source
        // order (first occurrence wins ties, so the summary is stable).
        let mut worst = Vec::with_capacity(self.sources.len());
        for source in &self.sources {
            let name = source.name();
            let mut best: Option<WorstCase> = None;
            for cell in &report_cells {
                for row in cell.rows.iter().filter(|r| r.algorithm == name) {
                    if best.as_ref().map(|b| row.ter > b.ter).unwrap_or(true) {
                        best = Some(WorstCase {
                            algorithm: name.clone(),
                            ter: row.ter,
                            layer: row.layer.clone(),
                            condition: row.condition.clone(),
                            die: cell.die.clone(),
                        });
                    }
                }
            }
            worst.extend(best);
        }

        Ok(SweepReport {
            network: network.to_string(),
            cells: report_cells,
            worst,
        })
    }

    /// Runs the accuracy-under-PVTA experiment (the paper's Figs. 10/11
    /// shape) with the pipeline's configured model.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Missing`] when no model was configured;
    /// otherwise see [`ReadPipeline::run_accuracy_for`].
    pub fn run_accuracy(
        &self,
        network: &str,
        dataset: &Dataset,
        workloads: &[LayerWorkload],
        seeds: u64,
    ) -> Result<AccuracyReport, PipelineError> {
        let model = self
            .model
            .as_ref()
            .ok_or(PipelineError::Missing { what: "model" })?;
        self.run_accuracy_for(model, network, dataset, workloads, seeds)
    }

    /// Runs the accuracy experiment against an externally-owned model.
    ///
    /// Per (source, workload) the layer TER comes from one cached
    /// simulation pass; per condition it is converted to an activation BER
    /// (Eq. (1)), matched to the model's convolution layers by name (layers
    /// without a matching workload receive zero BER), and the dataset is
    /// evaluated under error injection with `seeds` different seeds.
    ///
    /// Points are ordered condition-major, then source, independent of
    /// execution mode.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Missing`] on a sweep-only pipeline (see
    /// [`ReadPipeline::run_ter`]); otherwise propagates simulation and
    /// evaluation failures.
    pub fn run_accuracy_for(
        &self,
        model: &Model,
        network: &str,
        dataset: &Dataset,
        workloads: &[LayerWorkload],
        seeds: u64,
    ) -> Result<AccuracyReport, PipelineError> {
        if self.conditions.is_empty() {
            return Err(PipelineError::Missing {
                what: "operating conditions",
            });
        }
        // One simulation pass per (workload, source); corners reuse the
        // histograms.
        let pairs = workloads.len() * self.sources.len();
        let histograms = run_indexed(self.exec, pairs, |index| {
            let workload = &workloads[index / self.sources.len()];
            let source = &self.sources[index % self.sources.len()];
            self.layer_histogram(workload, source.as_ref())
        })?;

        let conv_names: Vec<String> = model
            .conv_layers()
            .iter()
            .map(|c| c.name().to_string())
            .collect();
        // BERs are matched to conv layers by name; a workload set from one
        // network evaluated against a model of another would silently inject
        // nothing, so refuse it outright.
        if !workloads.is_empty() && !workloads.iter().any(|w| conv_names.contains(&w.name)) {
            return Err(PipelineError::Input {
                reason: format!(
                    "no workload name matches any convolution layer of the model \
                     (workloads: {:?}..., model layers: {:?}...)",
                    workloads
                        .iter()
                        .map(|w| &w.name)
                        .take(3)
                        .collect::<Vec<_>>(),
                    conv_names.iter().take(3).collect::<Vec<_>>(),
                ),
            });
        }

        let cells = self.conditions.len() * self.sources.len();
        let points = run_indexed(self.exec, cells, |cell| {
            let condition = &self.conditions[cell / self.sources.len()];
            let si = cell % self.sources.len();
            let source = &self.sources[si];

            // Per-layer BERs for the model, matched by layer name.
            let mut bers = vec![0.0f64; conv_names.len()];
            let mut ber_sum = 0.0;
            let mut ber_count = 0usize;
            for (wi, workload) in workloads.iter().enumerate() {
                let hist = &histograms[wi * self.sources.len() + si];
                let ter = self.error_model.ter(hist, condition);
                let ber = self.error_model.ber(ter, workload.macs_per_output());
                ber_sum += ber;
                ber_count += 1;
                if let Some(idx) = conv_names.iter().position(|n| *n == workload.name) {
                    bers[idx] = ber;
                }
            }

            let runs = seeds.max(1);
            let mut top1 = 0.0;
            let mut topk = 0.0;
            let mut k = 0usize;
            for seed in 0..runs {
                let acc = self
                    .evaluator
                    .evaluate(model, dataset, &bers, seed * 977 + 13)?;
                top1 += acc.top1;
                topk += acc.topk;
                k = acc.k;
            }
            Ok::<_, PipelineError>(AccuracyPoint {
                condition: condition.name.to_string(),
                algorithm: source.name(),
                top1: top1 / runs as f64,
                topk: topk / runs as f64,
                k,
                mean_ber: if ber_count == 0 {
                    0.0
                } else {
                    ber_sum / ber_count as f64
                },
                seeds: runs,
            })
        })?;

        Ok(AccuracyReport {
            network: network.to_string(),
            points,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::{Algorithm, Baseline};
    use crate::workload::{vgg16_workloads, WorkloadConfig};
    use read_core::SortCriterion;

    fn tiny_workloads(n: usize) -> Vec<LayerWorkload> {
        let config = WorkloadConfig {
            pixels_per_layer: 1,
            ..WorkloadConfig::default()
        };
        vgg16_workloads(&config).into_iter().take(n).collect()
    }

    #[test]
    fn builder_rejects_missing_sources() {
        let err = ReadPipeline::builder()
            .condition(OperatingCondition::ideal())
            .build()
            .unwrap_err();
        assert!(matches!(err, PipelineError::Builder { .. }), "{err}");
    }

    #[test]
    fn builder_rejects_missing_conditions() {
        let err = ReadPipeline::builder().baseline().build().unwrap_err();
        assert!(err.to_string().contains("operating condition"));
    }

    #[test]
    fn builder_rejects_duplicate_source_names() {
        let err = ReadPipeline::builder()
            .baseline()
            .source(Baseline)
            .condition(OperatingCondition::ideal())
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
    }

    #[test]
    fn builder_rejects_zero_top_k() {
        let err = ReadPipeline::builder()
            .baseline()
            .condition(OperatingCondition::ideal())
            .top_k(0)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("top-k"), "{err}");
    }

    #[test]
    fn builder_rejects_conflicting_error_model_configuration() {
        let err = ReadPipeline::builder()
            .baseline()
            .condition(OperatingCondition::ideal())
            .monte_carlo(16, 0)
            .pe_variation(1)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("pe_variation"), "{err}");
    }

    #[test]
    fn error_model_shorthands_flow_into_reports() {
        let workloads = tiny_workloads(1);
        let condition = OperatingCondition::aging_vt(10.0, 0.05);
        let mc = ReadPipeline::builder()
            .baseline()
            .condition(condition)
            .monte_carlo(16, 5)
            .build()
            .unwrap()
            .run_ter("mc", &workloads)
            .unwrap();
        assert!(mc.rows[0].ter_stddev.is_some());
        assert_eq!(mc.rows[0].corner, None);
        let variation = ReadPipeline::builder()
            .baseline()
            .condition(condition)
            .pe_variation(5)
            .build()
            .unwrap()
            .run_ter("pe", &workloads)
            .unwrap();
        assert!(variation.rows[0].ter_stddev.is_some());
        assert_eq!(
            variation.rows[0].corner.as_deref(),
            Some("pe-var[16x4,seed=5]")
        );
        // The analytic default leaves both optional fields empty.
        let analytic = ReadPipeline::builder()
            .baseline()
            .condition(condition)
            .build()
            .unwrap()
            .run_ter("analytic", &workloads)
            .unwrap();
        assert_eq!(analytic.rows[0].ter_stddev, None);
        assert_eq!(analytic.rows[0].corner, None);
    }

    #[test]
    fn run_ter_shape_and_cache() {
        let pipeline = ReadPipeline::builder()
            .source(Algorithm::Baseline)
            .source(Algorithm::ClusterThenReorder(SortCriterion::SignFirst))
            .condition(OperatingCondition::ideal())
            .condition(OperatingCondition::aging_vt(10.0, 0.05))
            .build()
            .unwrap();
        let workloads = tiny_workloads(2);
        let report = pipeline.run_ter("tiny", &workloads).unwrap();
        // layers x sources x conditions
        assert_eq!(report.rows.len(), 2 * 2 * 2);
        assert_eq!(report.rows[0].layer, workloads[0].name);
        assert_eq!(report.rows[0].algorithm, "baseline");
        assert_eq!(report.rows[0].condition, "Ideal");
        let first_stats = pipeline.cache_stats();
        assert_eq!(first_stats.misses, 4);
        // Re-running hits the schedule cache for every (source, layer) pair.
        pipeline.run_ter("tiny", &workloads).unwrap();
        let second_stats = pipeline.cache_stats();
        assert_eq!(second_stats.misses, first_stats.misses);
        assert!(second_stats.hits >= first_stats.hits + 4);
    }

    #[test]
    fn accuracy_rejects_workloads_matching_no_model_layer() {
        let pipeline = ReadPipeline::builder()
            .baseline()
            .condition(OperatingCondition::ideal())
            .build()
            .unwrap();
        let model = qnn::models::vgg11_cifar_scaled(8, 2, 1).unwrap();
        let dataset = qnn::SyntheticDatasetBuilder::new(2, [3, 8, 8])
            .samples_per_class(1)
            .build()
            .unwrap();
        // ResNet workload names cannot match VGG conv layer names.
        let config = crate::workload::WorkloadConfig {
            pixels_per_layer: 1,
            ..Default::default()
        };
        let workloads: Vec<_> = crate::workload::resnet18_workloads(&config)
            .into_iter()
            .take(1)
            .collect();
        let err = pipeline
            .run_accuracy_for(&model, "mismatch", &dataset, &workloads, 1)
            .unwrap_err();
        assert!(matches!(err, PipelineError::Input { .. }), "{err}");
    }

    #[test]
    fn accuracy_requires_model() {
        let pipeline = ReadPipeline::builder()
            .baseline()
            .condition(OperatingCondition::ideal())
            .build()
            .unwrap();
        let dataset = qnn::SyntheticDatasetBuilder::new(2, [3, 8, 8])
            .samples_per_class(1)
            .build()
            .unwrap();
        let err = pipeline
            .run_accuracy("net", &dataset, &tiny_workloads(1), 1)
            .unwrap_err();
        assert!(matches!(err, PipelineError::Missing { what: "model" }));
    }
}
