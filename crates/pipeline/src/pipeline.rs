//! The [`ReadPipeline`]: one composable object for the paper's whole flow —
//! schedule sources × operating conditions × layers, through the simulator
//! and error model, into typed reports.

use std::sync::Arc;

use accel_sim::{
    ArrayConfig, ComputeSchedule, CycleObserver, Dataflow, Matrix, SimOptions, SimResult,
};
use qnn::{Dataset, Model};
use read_core::{ReadConfig, ReadOptimizer};
use timing::{DelayModel, DepthHistogram, OperatingCondition};

use crate::cache::{
    weights_fingerprint, workload_fingerprint, ArtifactKind, CacheStats, HistogramArtifact,
    HistogramCache, HistogramCheck, HistogramKey, KeyCheck, ScheduleCache, ScheduleKey, UnitCache,
};
use crate::error::PipelineError;
use crate::executor::{Executor, SerialExecutor, ThreadExecutor};
use crate::plan::{escape_wire, PlanOutput, WorkPlan};
use crate::report::{AccuracyReport, DataflowNetworkReport, NetworkReport};
use crate::stage::{
    fnv1a, DataflowProber, DelayErrorModel, ErrorModel, Evaluator, EventProber,
    MonteCarloErrorModel, ScheduleSource, TopKEvaluator, VariationErrorModel,
};
use crate::store::ArtifactStore;
use crate::sweep::{SweepPlan, SweepReport};
use crate::workload::LayerWorkload;

/// Builder for a [`ReadPipeline`].  Obtain with [`ReadPipeline::builder`].
#[derive(Default)]
pub struct ReadPipelineBuilder {
    array: Option<ArrayConfig>,
    dataflow: Option<Dataflow>,
    sim_options: Option<SimOptions>,
    sources: Vec<Arc<dyn ScheduleSource>>,
    error_model: Option<Arc<dyn ErrorModel>>,
    pe_variation_seed: Option<u64>,
    conditions: Vec<OperatingCondition>,
    evaluator: Option<Arc<dyn Evaluator>>,
    top_k: Option<usize>,
    model: Option<Model>,
    executor: Option<Arc<dyn Executor>>,
    sweep_plan: Option<SweepPlan>,
    store: Option<Arc<dyn ArtifactStore>>,
    prober: Option<Arc<dyn DataflowProber>>,
}

impl ReadPipelineBuilder {
    /// Sets the systolic-array geometry (default:
    /// [`ArrayConfig::paper_default`], 16×4).
    pub fn array(mut self, array: ArrayConfig) -> Self {
        self.array = Some(array);
        self
    }

    /// Sets the dataflow (default: [`Dataflow::OutputStationary`]).
    pub fn dataflow(mut self, dataflow: Dataflow) -> Self {
        self.dataflow = Some(dataflow);
        self
    }

    /// Sets the simulation options (default: [`SimOptions::exhaustive`]).
    pub fn sim_options(mut self, options: SimOptions) -> Self {
        self.sim_options = Some(options);
        self
    }

    /// Adds a schedule source stage.  Sources run in insertion order and
    /// key the report rows by their [`ScheduleSource::name`].
    pub fn source(mut self, source: impl ScheduleSource + 'static) -> Self {
        self.sources.push(Arc::new(source));
        self
    }

    /// Adds an already-shared schedule source.
    pub fn source_arc(mut self, source: Arc<dyn ScheduleSource>) -> Self {
        self.sources.push(source);
        self
    }

    /// Adds the [`crate::Baseline`] source.
    pub fn baseline(self) -> Self {
        self.source(crate::stage::Baseline)
    }

    /// Adds a READ optimizer source with the given configuration.
    pub fn optimizer(self, config: ReadConfig) -> Self {
        self.source(ReadOptimizer::new(config))
    }

    /// Sets the error-model stage (default: [`DelayErrorModel`] with the
    /// Nangate-15nm-like delay model).
    pub fn error_model(mut self, model: impl ErrorModel + 'static) -> Self {
        self.error_model = Some(Arc::new(model));
        self
    }

    /// Shorthand: a [`DelayErrorModel`] wrapping `delay`.
    pub fn delay_model(self, delay: DelayModel) -> Self {
        self.error_model(DelayErrorModel::new(delay))
    }

    /// Shorthand: a [`MonteCarloErrorModel`] with the default delay model
    /// and the given trials/seed — reports carry `ter_stddev`.
    pub fn monte_carlo(self, trials: u32, seed: u64) -> Self {
        self.error_model(MonteCarloErrorModel::new(trials, seed))
    }

    /// Shorthand: a [`VariationErrorModel`] for this pipeline's array (the
    /// one configured with [`Self::array`], or the paper default) with the
    /// given per-PE offset seed.  Resolved at [`Self::build`] time, so it
    /// composes with `.array(..)` in any order.
    pub fn pe_variation(mut self, seed: u64) -> Self {
        self.pe_variation_seed = Some(seed);
        self
    }

    /// Adds one operating condition.
    pub fn condition(mut self, condition: OperatingCondition) -> Self {
        self.conditions.push(condition);
        self
    }

    /// Adds several operating conditions.
    pub fn conditions(mut self, conditions: impl IntoIterator<Item = OperatingCondition>) -> Self {
        self.conditions.extend(conditions);
        self
    }

    /// Configures the corner/die sweep [`ReadPipeline::run_sweep`] executes.
    /// The plan carries its own conditions (and error models per die), so a
    /// sweep-only pipeline needs no [`Self::condition`] call.
    pub fn sweep(mut self, plan: SweepPlan) -> Self {
        self.sweep_plan = Some(plan);
        self
    }

    /// Sets the evaluator stage (default: [`TopKEvaluator`] with `k = 3`).
    pub fn evaluator(mut self, evaluator: impl Evaluator + 'static) -> Self {
        self.evaluator = Some(Arc::new(evaluator));
        self
    }

    /// Shorthand: a [`TopKEvaluator`] with the given `k`.
    pub fn top_k(mut self, k: usize) -> Self {
        self.top_k = Some(k);
        self
    }

    /// Sets the executable model accuracy experiments evaluate.
    pub fn model(mut self, model: Model) -> Self {
        self.model = Some(model);
        self
    }

    /// Sets the execution strategy every `run_*` experiment uses (default:
    /// [`SerialExecutor`]).  See [`crate::executor`] for the in-process and
    /// multi-process implementations.
    pub fn executor(mut self, executor: impl Executor + 'static) -> Self {
        self.executor = Some(Arc::new(executor));
        self
    }

    /// Sets an already-shared execution strategy.
    pub fn executor_arc(mut self, executor: Arc<dyn Executor>) -> Self {
        self.executor = Some(executor);
        self
    }

    /// Shorthand for a machine-sized [`ThreadExecutor`].
    pub fn parallel(self) -> Self {
        self.executor(ThreadExecutor::machine())
    }

    /// Attaches a content-addressed artifact store the pipeline's caches
    /// persist to and load from: schedules, histograms and memoized unit
    /// results.  Use a [`crate::MemoryStore`] to share artifacts between
    /// pipelines in one process, or a [`crate::DiskStore`] to persist them
    /// across processes and runs — worker processes pointed at the same
    /// store directory stop duplicating optimization and simulation
    /// entirely.  Reports are byte-identical whether an artifact comes from
    /// memory, disk or a fresh computation.
    pub fn store(self, store: impl ArtifactStore + 'static) -> Self {
        self.store_arc(Arc::new(store))
    }

    /// Attaches an already-shared artifact store (see
    /// [`ReadPipelineBuilder::store`]).
    pub fn store_arc(mut self, store: Arc<dyn ArtifactStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// Sets the dataflow-probe stage [`ReadPipeline::run_dataflow`] uses
    /// (default: an [`EventProber`] with the default
    /// [`dataflow_sim::EngineConfig`]).
    pub fn dataflow_prober(mut self, prober: impl DataflowProber + 'static) -> Self {
        self.prober = Some(Arc::new(prober));
        self
    }

    /// Validates the configuration and builds the pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Builder`] when no schedule source is
    /// configured, when no operating condition is configured (unless a
    /// sweep plan — which carries its own conditions — is), when the sweep
    /// plan is invalid, when two sources share a name, when the array has
    /// no columns, or when `top_k(0)` was requested.
    pub fn build(self) -> Result<ReadPipeline, PipelineError> {
        if self.sources.is_empty() {
            return Err(PipelineError::builder(
                "at least one schedule source is required (use .baseline(), .optimizer(..) or .source(..))",
            ));
        }
        if let Some(plan) = &self.sweep_plan {
            plan.validate()?;
        }
        if self.conditions.is_empty() && self.sweep_plan.is_none() {
            return Err(PipelineError::builder(
                "at least one operating condition is required (use .condition(..) or .sweep(..))",
            ));
        }
        let mut names: Vec<String> = self.sources.iter().map(|s| s.name()).collect();
        names.sort();
        if let Some(dup) = names.windows(2).find(|w| w[0] == w[1]) {
            return Err(PipelineError::builder(format!(
                "duplicate schedule source name: {:?} (source names key report rows)",
                dup[0]
            )));
        }
        let array = self.array.unwrap_or_else(ArrayConfig::paper_default);
        if array.cols() == 0 || array.rows() == 0 {
            return Err(PipelineError::builder("array must have rows and columns"));
        }
        if self.top_k == Some(0) {
            return Err(PipelineError::builder("top-k requires k >= 1"));
        }
        let evaluator = match (self.evaluator, self.top_k) {
            (Some(e), None) => e,
            (Some(_), Some(_)) => {
                return Err(PipelineError::builder(
                    "set either .evaluator(..) or .top_k(..), not both",
                ))
            }
            (None, k) => Arc::new(TopKEvaluator::new(k.unwrap_or(3))),
        };
        let error_model = match (self.error_model, self.pe_variation_seed) {
            (Some(_), Some(_)) => {
                return Err(PipelineError::builder(
                    "set either .error_model(..)/.delay_model(..)/.monte_carlo(..) or \
                     .pe_variation(..), not both",
                ))
            }
            (Some(model), None) => model,
            (None, Some(seed)) => Arc::new(VariationErrorModel::new(&array, seed)),
            (None, None) => Arc::new(DelayErrorModel::default()),
        };
        Ok(ReadPipeline {
            array,
            dataflow: self.dataflow.unwrap_or(Dataflow::OutputStationary),
            sim_options: self.sim_options.unwrap_or_else(SimOptions::exhaustive),
            sources: self.sources,
            error_model,
            conditions: self.conditions,
            evaluator,
            model: self.model,
            executor: self.executor.unwrap_or_else(|| Arc::new(SerialExecutor)),
            sweep_plan: self.sweep_plan,
            cache: ScheduleCache::with_store(self.store.clone()),
            hist_cache: HistogramCache::with_store(self.store.clone()),
            unit_cache: UnitCache::with_store(self.store.clone()),
            store: self.store,
            prober: self
                .prober
                .unwrap_or_else(|| Arc::new(EventProber::default())),
        })
    }
}

/// The composed pipeline: schedule sources → simulator → error model →
/// (optionally) fault-injection evaluation, over a set of operating
/// conditions, with seed-keyed schedule and histogram caches and a
/// pluggable [`Executor`] strategy (serial, threaded or worker
/// subprocesses — byte-identical reports either way).
///
/// Every experiment expands into a [`WorkPlan`] first
/// ([`ReadPipeline::plan_ter`] / [`ReadPipeline::plan_sweep`] /
/// [`ReadPipeline::plan_accuracy_for`]); the `run_*` methods are
/// plan-execute-aggregate conveniences over the configured executor.
///
/// # Example
///
/// ```
/// use read_pipeline::{Algorithm, ReadPipeline};
/// use read_pipeline::workload::{vgg16_workloads, WorkloadConfig};
/// use timing::OperatingCondition;
///
/// # fn main() -> Result<(), read_pipeline::PipelineError> {
/// let pipeline = ReadPipeline::builder()
///     .source(Algorithm::Baseline)
///     .source(Algorithm::ClusterThenReorder(Default::default()))
///     .condition(OperatingCondition::aging_vt(10.0, 0.05))
///     .build()?;
/// let config = WorkloadConfig { pixels_per_layer: 1, ..Default::default() };
/// let workloads: Vec<_> = vgg16_workloads(&config).into_iter().take(1).collect();
/// let report = pipeline.run_ter("vgg16-head", &workloads)?;
/// assert_eq!(report.rows.len(), 2);
/// # Ok(())
/// # }
/// ```
pub struct ReadPipeline {
    array: ArrayConfig,
    dataflow: Dataflow,
    sim_options: SimOptions,
    sources: Vec<Arc<dyn ScheduleSource>>,
    error_model: Arc<dyn ErrorModel>,
    conditions: Vec<OperatingCondition>,
    evaluator: Arc<dyn Evaluator>,
    model: Option<Model>,
    executor: Arc<dyn Executor>,
    sweep_plan: Option<SweepPlan>,
    cache: ScheduleCache,
    hist_cache: HistogramCache,
    unit_cache: UnitCache,
    store: Option<Arc<dyn ArtifactStore>>,
    prober: Arc<dyn DataflowProber>,
}

impl std::fmt::Debug for ReadPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReadPipeline")
            .field("array", &self.array)
            .field("dataflow", &self.dataflow)
            .field(
                "sources",
                &self.sources.iter().map(|s| s.name()).collect::<Vec<_>>(),
            )
            .field("error_model", &self.error_model.name())
            .field(
                "conditions",
                &self.conditions.iter().map(|c| c.name).collect::<Vec<_>>(),
            )
            .field("evaluator", &self.evaluator.name())
            .field("has_model", &self.model.is_some())
            .field("executor", &self.executor.name())
            .field("has_sweep_plan", &self.sweep_plan.is_some())
            .field("store", &self.store.as_ref().map(|s| s.name()))
            .finish_non_exhaustive()
    }
}

impl ReadPipeline {
    /// Starts a builder.
    pub fn builder() -> ReadPipelineBuilder {
        ReadPipelineBuilder::default()
    }

    /// The configured array geometry.
    pub fn array(&self) -> &ArrayConfig {
        &self.array
    }

    /// The configured dataflow.
    pub fn dataflow(&self) -> Dataflow {
        self.dataflow
    }

    /// The configured simulation options.
    pub fn sim_options(&self) -> &SimOptions {
        &self.sim_options
    }

    /// The configured dataflow-probe stage.
    pub fn dataflow_prober(&self) -> &dyn DataflowProber {
        self.prober.as_ref()
    }

    /// The configured schedule sources, in report order.
    pub fn sources(&self) -> &[Arc<dyn ScheduleSource>] {
        &self.sources
    }

    /// The configured operating conditions, in report order.
    pub fn conditions(&self) -> &[OperatingCondition] {
        &self.conditions
    }

    /// The configured error-model stage.
    pub fn error_model(&self) -> &dyn ErrorModel {
        self.error_model.as_ref()
    }

    /// The configured evaluator stage.
    pub fn evaluator(&self) -> &dyn Evaluator {
        self.evaluator.as_ref()
    }

    /// The configured execution strategy.
    pub fn executor(&self) -> &dyn Executor {
        self.executor.as_ref()
    }

    /// The configured model, when accuracy evaluation is set up.
    pub fn model(&self) -> Option<&Model> {
        self.model.as_ref()
    }

    /// The configured sweep plan, when one is set up.
    pub fn sweep_plan(&self) -> Option<&SweepPlan> {
        self.sweep_plan.as_ref()
    }

    /// The attached artifact store, when one is configured
    /// ([`ReadPipelineBuilder::store`]).
    pub fn artifact_store(&self) -> Option<&Arc<dyn ArtifactStore>> {
        self.store.as_ref()
    }

    /// The memoized unit-result cache (shared by every [`WorkPlan`] of this
    /// pipeline).
    pub(crate) fn unit_cache(&self) -> &UnitCache {
        &self.unit_cache
    }

    /// Cache-effectiveness counters of all three pipeline caches
    /// (schedules, histograms, memoized unit results) plus the attached
    /// artifact store's counters, when one is configured.
    pub fn cache_stats(&self) -> CacheStats {
        let mut stats = self.cache.stats();
        let (hits, misses, collisions, entries) = self.hist_cache.counters();
        stats.hist_hits = hits;
        stats.hist_misses = misses;
        stats.hist_collisions = collisions;
        stats.hist_entries = entries;
        let (hits, misses, collisions, entries) = self.unit_cache.counters();
        stats.unit_hits = hits;
        stats.unit_misses = misses;
        stats.unit_collisions = collisions;
        stats.unit_entries = entries;
        if let Some(store) = &self.store {
            let store_stats = store.stats();
            stats.disk_hits = store_stats.hits;
            stats.disk_misses = store_stats.misses;
            stats.corrupt_entries = store_stats.corrupt;
            stats.store_writes = store_stats.writes;
        }
        stats
    }

    /// Drops everything the pipeline's in-memory caches hold — schedules,
    /// histograms and memoized unit results — and resets their counters.
    /// An attached artifact store is untouched (its entries still serve
    /// later lookups), so this is the bound on in-process retention: a
    /// long-lived pipeline that has run many large Monte-Carlo sweeps can
    /// release their raw trial samples without losing store-backed reuse.
    pub fn clear_caches(&self) {
        self.cache.clear();
        self.hist_cache.clear();
        self.unit_cache.clear();
    }

    /// Deterministic signature of the pipeline's configured stages — the
    /// pipeline half of every [`WorkPlan`]'s memoization signature.
    pub(crate) fn stage_signature(&self) -> String {
        use std::fmt::Write as _;
        let mut sig = format!(
            "array={}x{} dataflow={:?} sim={:?} sources=",
            self.array.rows(),
            self.array.cols(),
            self.dataflow,
            self.sim_options
        );
        for (i, source) in self.sources.iter().enumerate() {
            if i > 0 {
                sig.push(';');
            }
            let _ = write!(
                sig,
                "{}:{:016x}",
                escape_wire(&source.name()),
                source.fingerprint()
            );
        }
        let _ = write!(
            sig,
            " error={}:{:016x} eval={}:{:016x}",
            escape_wire(&self.error_model.name()),
            self.error_model.fingerprint(),
            escape_wire(&self.evaluator.name()),
            self.evaluator.fingerprint()
        );
        sig
    }

    /// The (cached) schedule `source` produces for `weights` on this
    /// pipeline's array.
    ///
    /// # Errors
    ///
    /// Propagates the source's rejection of the matrix.
    pub fn schedule_for(
        &self,
        weights: &Matrix<i8>,
        source: &dyn ScheduleSource,
    ) -> Result<Arc<ComputeSchedule>, PipelineError> {
        let key = ScheduleKey {
            source: source.fingerprint(),
            weights: weights_fingerprint(weights),
            array_cols: self.array.cols(),
        };
        // Full-key verification data: a fingerprint collision must be
        // detected, never served as a foreign schedule.
        let check = KeyCheck {
            source: source.name(),
            rows: weights.rows(),
            cols: weights.cols(),
        };
        self.cache
            .get_or_compute(key, check, || source.schedule(weights, self.array.cols()))
    }

    /// Simulates `workload` under `source`'s schedule, feeding every cycle
    /// to `observer`.  This is the generic observation hook the specialised
    /// runs (`layer_histogram`, `layer_outputs`, psum traces, ...) build on.
    /// It always simulates — only [`ReadPipeline::layer_histogram`] caches.
    ///
    /// # Errors
    ///
    /// Propagates schedule and simulation failures.
    pub fn observe_layer(
        &self,
        workload: &LayerWorkload,
        source: &dyn ScheduleSource,
        observer: &mut (impl CycleObserver + ?Sized),
    ) -> Result<SimResult, PipelineError> {
        let schedule = self.schedule_for(&workload.weights, source)?;
        Ok(workload.problem().simulate_with_schedule(
            &self.array,
            self.dataflow,
            &schedule,
            &self.sim_options,
            observer,
        )?)
    }

    /// Fingerprint of the simulation context a cached histogram depends on
    /// (array geometry, dataflow, simulation options) — combined with the
    /// source and workload fingerprints in the [`HistogramKey`].
    fn sim_context_fingerprint(&self) -> u64 {
        fnv1a(
            format!(
                "{}x{}/{:?}/{:?}",
                self.array.rows(),
                self.array.cols(),
                self.dataflow,
                self.sim_options
            )
            .bytes(),
        )
    }

    /// The full cache key + verification check of `workload`'s histogram
    /// under `source` — shared by [`ReadPipeline::layer_histogram`] and the
    /// serve layer's content-addressed single-flight identity
    /// ([`ReadPipeline::histogram_check_line`]).
    fn histogram_key_check(
        &self,
        workload: &LayerWorkload,
        source: &dyn ScheduleSource,
    ) -> (HistogramKey, HistogramCheck) {
        let key = HistogramKey {
            source: source.fingerprint(),
            workload: workload_fingerprint(workload),
            context: self.sim_context_fingerprint(),
        };
        let check = HistogramCheck {
            source: source.name(),
            workload: workload.name.clone(),
            rows: workload.weights.rows(),
            cols: workload.weights.cols(),
            pixels: workload.activations.cols(),
        };
        (key, check)
    }

    /// The store check line of `workload`'s histogram under `source`: the
    /// complete content identity of the simulation (source and workload
    /// fingerprints, dimensions, simulation context).  Pipelines that would
    /// share this artifact through a common store render identical lines —
    /// the serve layer keys its cross-request single-flight dedup of
    /// histogram work on it (see [`crate::serve`]).
    pub(crate) fn histogram_check_line(
        &self,
        workload: &LayerWorkload,
        source: &dyn ScheduleSource,
    ) -> String {
        let (key, check) = self.histogram_key_check(workload, source);
        HistogramArtifact::check_line(&key, &check)
    }

    /// Simulates `workload` under `source` and returns the triggered-depth
    /// histogram (from which the TER at any corner follows without
    /// re-simulating).
    ///
    /// Histograms are cached like schedules: the key covers the source
    /// fingerprint, the workload contents and the simulation context — see
    /// [`HistogramCache`] — so a sweep simulates each (workload, source)
    /// pair once and every further corner, die or repeated run reuses it
    /// ([`CacheStats::hist_hits`]).
    ///
    /// # Errors
    ///
    /// Propagates schedule and simulation failures.
    pub fn layer_histogram(
        &self,
        workload: &LayerWorkload,
        source: &dyn ScheduleSource,
    ) -> Result<DepthHistogram, PipelineError> {
        let (key, check) = self.histogram_key_check(workload, source);
        let hist = self.hist_cache.get_or_compute(key, check, || {
            let mut hist = DepthHistogram::new();
            self.observe_layer(workload, source, &mut hist)?;
            Ok(hist)
        })?;
        Ok((*hist).clone())
    }

    /// Simulates `workload` under `source` and returns the layer outputs —
    /// the bit-exactness hook: a schedule must never change them.
    ///
    /// # Errors
    ///
    /// Propagates schedule and simulation failures.
    pub fn layer_outputs(
        &self,
        workload: &LayerWorkload,
        source: &dyn ScheduleSource,
    ) -> Result<Matrix<i32>, PipelineError> {
        let mut obs = accel_sim::NullObserver;
        Ok(self.observe_layer(workload, source, &mut obs)?.outputs)
    }

    /// TER of `workload` under `source` at `condition` (single-cell
    /// convenience over [`ReadPipeline::layer_histogram`]).
    ///
    /// # Errors
    ///
    /// Propagates schedule and simulation failures.
    pub fn layer_ter(
        &self,
        workload: &LayerWorkload,
        source: &dyn ScheduleSource,
        condition: &OperatingCondition,
    ) -> Result<f64, PipelineError> {
        Ok(self
            .error_model
            .ter(&self.layer_histogram(workload, source)?, condition))
    }

    // ---- plan construction ------------------------------------------------

    /// The [`WorkPlan`] of the layer-wise TER experiment
    /// ([`ReadPipeline::run_ter`]): one histogram unit per
    /// (workload, source) pair.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Missing`] on a sweep-only pipeline.
    pub fn plan_ter<'a>(
        &'a self,
        network: &str,
        workloads: &'a [LayerWorkload],
    ) -> Result<WorkPlan<'a>, PipelineError> {
        WorkPlan::ter(self, network, workloads)
    }

    /// The [`WorkPlan`] of the configured corner/die sweep.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Missing`] when no sweep plan was configured.
    pub fn plan_sweep<'a>(
        &'a self,
        network: &str,
        workloads: &'a [LayerWorkload],
    ) -> Result<WorkPlan<'a>, PipelineError> {
        let plan = self
            .sweep_plan
            .as_ref()
            .ok_or(PipelineError::Missing { what: "sweep plan" })?;
        self.plan_sweep_with(network, workloads, plan)
    }

    /// The [`WorkPlan`] of an explicit sweep plan: one histogram unit per
    /// pair (histograms are corner-independent) plus one unit per
    /// Monte-Carlo trial shard per sampling cell.
    ///
    /// # Errors
    ///
    /// Propagates plan validation failures.
    pub fn plan_sweep_with<'a>(
        &'a self,
        network: &str,
        workloads: &'a [LayerWorkload],
        plan: &SweepPlan,
    ) -> Result<WorkPlan<'a>, PipelineError> {
        WorkPlan::sweep(self, network, workloads, plan)
    }

    /// The [`WorkPlan`] of the accuracy experiment with the pipeline's
    /// configured model.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Missing`] when no model was configured; see
    /// [`ReadPipeline::plan_accuracy_for`].
    pub fn plan_accuracy<'a>(
        &'a self,
        network: &str,
        dataset: &'a Dataset,
        workloads: &'a [LayerWorkload],
        seeds: u64,
    ) -> Result<WorkPlan<'a>, PipelineError> {
        let model = self
            .model
            .as_ref()
            .ok_or(PipelineError::Missing { what: "model" })?;
        self.plan_accuracy_for(model, network, dataset, workloads, seeds)
    }

    /// The [`WorkPlan`] of the accuracy experiment against an
    /// externally-owned model: histogram units per pair plus one unit per
    /// (condition, source) accuracy cell.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Missing`] on a sweep-only pipeline and
    /// [`PipelineError::Input`] when no workload matches a model layer.
    pub fn plan_accuracy_for<'a>(
        &'a self,
        model: &'a Model,
        network: &str,
        dataset: &'a Dataset,
        workloads: &'a [LayerWorkload],
        seeds: u64,
    ) -> Result<WorkPlan<'a>, PipelineError> {
        WorkPlan::accuracy(self, model, network, dataset, workloads, seeds)
    }

    /// The [`WorkPlan`] of the dataflow-probe experiment
    /// ([`ReadPipeline::run_dataflow`]): one probe unit per
    /// (dataflow, workload, source) cell, over every registered
    /// [`Dataflow`] variant.
    ///
    /// # Errors
    ///
    /// See [`ReadPipeline::plan_dataflow_with`].
    pub fn plan_dataflow<'a>(
        &'a self,
        network: &str,
        workloads: &'a [LayerWorkload],
    ) -> Result<WorkPlan<'a>, PipelineError> {
        self.plan_dataflow_with(network, workloads, Dataflow::ALL.to_vec())
    }

    /// The [`WorkPlan`] of a dataflow-probe experiment over an explicit
    /// dataflow list (cells are dataflow-major in the given order).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Input`] when `dataflows` is empty.
    pub fn plan_dataflow_with<'a>(
        &'a self,
        network: &str,
        workloads: &'a [LayerWorkload],
        dataflows: Vec<Dataflow>,
    ) -> Result<WorkPlan<'a>, PipelineError> {
        WorkPlan::dataflow(self, network, workloads, dataflows)
    }

    /// Executes a [`WorkPlan`] on the configured executor and aggregates the
    /// results.  The typed `run_*` methods are conveniences over this.
    ///
    /// # Errors
    ///
    /// Propagates unit, executor and aggregation failures.
    pub fn run_plan(&self, plan: &WorkPlan<'_>) -> Result<PlanOutput, PipelineError> {
        let results = self.executor.execute(plan, 0..plan.len());
        // A run boundary: publish any write-behind store buffer (a
        // RemoteStore batches puts into mput lines) whether the run
        // succeeded or not, so everything computed is visible fleet-wide.
        if let Some(store) = &self.store {
            store.flush();
        }
        plan.aggregate(results?)
    }

    // ---- experiments ------------------------------------------------------

    /// Runs the layer-wise TER experiment (the paper's Figs. 7/8 shape):
    /// every workload under every source, evaluated at every condition from
    /// one simulation pass per (workload, source).
    ///
    /// Rows are ordered layer-major, then source, then condition,
    /// independent of the execution strategy — any [`Executor`] returns a
    /// byte-identical report.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Missing`] on a sweep-only pipeline (one
    /// built without [`ReadPipelineBuilder::condition`] — its conditions
    /// live in the plan, so this experiment has nothing to evaluate at);
    /// otherwise propagates the first failure in (workload, source) order.
    pub fn run_ter(
        &self,
        network: &str,
        workloads: &[LayerWorkload],
    ) -> Result<NetworkReport, PipelineError> {
        let plan = self.plan_ter(network, workloads)?;
        self.run_plan(&plan)?.into_ter()
    }

    /// Runs the dataflow-probe experiment: the event-driven engine
    /// ([`dataflow_sim::run_dataflow`], or whatever
    /// [`ReadPipelineBuilder::dataflow_prober`] configured) over every
    /// registered [`Dataflow`] for every (workload, source) pair, returning
    /// the dynamic-timing reports — cycles, utilization, per-context stall
    /// breakdown, peak psum-buffer occupancy — the analytic simulator
    /// cannot see.
    ///
    /// Rows are ordered dataflow-major, then layer, then source,
    /// independent of the execution strategy.  Probe units are memoized
    /// through the unit-result cache (and an attached artifact store), so
    /// reruns aggregate without re-simulating.
    ///
    /// # Errors
    ///
    /// Propagates schedule and engine failures in cell order.
    pub fn run_dataflow(
        &self,
        network: &str,
        workloads: &[LayerWorkload],
    ) -> Result<DataflowNetworkReport, PipelineError> {
        let plan = self.plan_dataflow(network, workloads)?;
        self.run_plan(&plan)?.into_dataflow()
    }

    /// Runs the configured corner/die sweep (see
    /// [`ReadPipeline::run_sweep_with`]).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Missing`] when no sweep plan was configured
    /// (use [`ReadPipelineBuilder::sweep`]); otherwise see
    /// [`ReadPipeline::run_sweep_with`].
    pub fn run_sweep(
        &self,
        network: &str,
        workloads: &[LayerWorkload],
    ) -> Result<SweepReport, PipelineError> {
        let plan = self.plan_sweep(network, workloads)?;
        self.run_plan(&plan)?.into_sweep()
    }

    /// Runs a corner/die sweep: every (die, condition) cell of `plan` over
    /// every (workload, source) pair, in one pipeline run.
    ///
    /// The plan — not the pipeline's configured conditions or error model —
    /// decides what each cell evaluates: typical-silicon cells use the
    /// analytic [`DelayErrorModel`] (or [`MonteCarloErrorModel`] under a
    /// trial budget, its trials sharded across work units and re-aggregated
    /// bit-identically), per-PE die cells use [`VariationErrorModel`].
    /// Each cell's rows are byte-identical to the report of an equivalent
    /// single-condition pipeline run with that cell's error model; see
    /// [`crate::sweep`] for the full contract.
    ///
    /// Every cell resolves its schedules through the shared schedule cache
    /// and its histograms through the histogram cache, so the optimizer and
    /// the cycle simulation each run once per (source, layer)
    /// ([`ReadPipeline::cache_stats`]).  Cells, rows and shard aggregation
    /// are all ordered deterministically — any [`Executor`] (including
    /// [`crate::SubprocessExecutor`] worker processes) returns a
    /// byte-identical report.
    ///
    /// # Errors
    ///
    /// Propagates plan validation failures and the first simulation failure
    /// in (cell, workload, source) order.
    pub fn run_sweep_with(
        &self,
        network: &str,
        workloads: &[LayerWorkload],
        plan: &SweepPlan,
    ) -> Result<SweepReport, PipelineError> {
        let plan = self.plan_sweep_with(network, workloads, plan)?;
        self.run_plan(&plan)?.into_sweep()
    }

    /// Runs the accuracy-under-PVTA experiment (the paper's Figs. 10/11
    /// shape) with the pipeline's configured model.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Missing`] when no model was configured;
    /// otherwise see [`ReadPipeline::run_accuracy_for`].
    pub fn run_accuracy(
        &self,
        network: &str,
        dataset: &Dataset,
        workloads: &[LayerWorkload],
        seeds: u64,
    ) -> Result<AccuracyReport, PipelineError> {
        let model = self
            .model
            .as_ref()
            .ok_or(PipelineError::Missing { what: "model" })?;
        self.run_accuracy_for(model, network, dataset, workloads, seeds)
    }

    /// Runs the accuracy experiment against an externally-owned model.
    ///
    /// Per (source, workload) the layer TER comes from one cached
    /// simulation pass; per condition it is converted to an activation BER
    /// (Eq. (1)), matched to the model's convolution layers by name (layers
    /// without a matching workload receive zero BER), and the dataset is
    /// evaluated under error injection with `seeds` different seeds.
    ///
    /// Points are ordered condition-major, then source, independent of the
    /// execution strategy.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Missing`] on a sweep-only pipeline (see
    /// [`ReadPipeline::run_ter`]); otherwise propagates simulation and
    /// evaluation failures.
    pub fn run_accuracy_for(
        &self,
        model: &Model,
        network: &str,
        dataset: &Dataset,
        workloads: &[LayerWorkload],
        seeds: u64,
    ) -> Result<AccuracyReport, PipelineError> {
        let plan = self.plan_accuracy_for(model, network, dataset, workloads, seeds)?;
        self.run_plan(&plan)?.into_accuracy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::{Algorithm, Baseline};
    use crate::workload::{vgg16_workloads, WorkloadConfig};
    use read_core::SortCriterion;

    fn tiny_workloads(n: usize) -> Vec<LayerWorkload> {
        let config = WorkloadConfig {
            pixels_per_layer: 1,
            ..WorkloadConfig::default()
        };
        vgg16_workloads(&config).into_iter().take(n).collect()
    }

    #[test]
    fn builder_rejects_missing_sources() {
        let err = ReadPipeline::builder()
            .condition(OperatingCondition::ideal())
            .build()
            .unwrap_err();
        assert!(matches!(err, PipelineError::Builder { .. }), "{err}");
    }

    #[test]
    fn builder_rejects_missing_conditions() {
        let err = ReadPipeline::builder().baseline().build().unwrap_err();
        assert!(err.to_string().contains("operating condition"));
    }

    #[test]
    fn builder_rejects_duplicate_source_names() {
        let err = ReadPipeline::builder()
            .baseline()
            .source(Baseline)
            .condition(OperatingCondition::ideal())
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
    }

    #[test]
    fn builder_rejects_zero_top_k() {
        let err = ReadPipeline::builder()
            .baseline()
            .condition(OperatingCondition::ideal())
            .top_k(0)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("top-k"), "{err}");
    }

    #[test]
    fn builder_rejects_conflicting_error_model_configuration() {
        let err = ReadPipeline::builder()
            .baseline()
            .condition(OperatingCondition::ideal())
            .monte_carlo(16, 0)
            .pe_variation(1)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("pe_variation"), "{err}");
    }

    #[test]
    fn error_model_shorthands_flow_into_reports() {
        let workloads = tiny_workloads(1);
        let condition = OperatingCondition::aging_vt(10.0, 0.05);
        let mc = ReadPipeline::builder()
            .baseline()
            .condition(condition)
            .monte_carlo(16, 5)
            .build()
            .unwrap()
            .run_ter("mc", &workloads)
            .unwrap();
        assert!(mc.rows[0].ter_stddev.is_some());
        assert_eq!(mc.rows[0].corner, None);
        let variation = ReadPipeline::builder()
            .baseline()
            .condition(condition)
            .pe_variation(5)
            .build()
            .unwrap()
            .run_ter("pe", &workloads)
            .unwrap();
        assert!(variation.rows[0].ter_stddev.is_some());
        assert_eq!(
            variation.rows[0].corner.as_deref(),
            Some("pe-var[16x4,seed=5]")
        );
        // The analytic default leaves both optional fields empty.
        let analytic = ReadPipeline::builder()
            .baseline()
            .condition(condition)
            .build()
            .unwrap()
            .run_ter("analytic", &workloads)
            .unwrap();
        assert_eq!(analytic.rows[0].ter_stddev, None);
        assert_eq!(analytic.rows[0].corner, None);
    }

    #[test]
    fn run_ter_shape_and_cache() {
        let pipeline = ReadPipeline::builder()
            .source(Algorithm::Baseline)
            .source(Algorithm::ClusterThenReorder(SortCriterion::SignFirst))
            .condition(OperatingCondition::ideal())
            .condition(OperatingCondition::aging_vt(10.0, 0.05))
            .build()
            .unwrap();
        let workloads = tiny_workloads(2);
        let report = pipeline.run_ter("tiny", &workloads).unwrap();
        // layers x sources x conditions
        assert_eq!(report.rows.len(), 2 * 2 * 2);
        assert_eq!(report.rows[0].layer, workloads[0].name);
        assert_eq!(report.rows[0].algorithm, "baseline");
        assert_eq!(report.rows[0].condition, "Ideal");
        let first_stats = pipeline.cache_stats();
        assert_eq!(first_stats.misses, 4);
        assert_eq!(first_stats.hist_misses, 4);
        // Re-running hits the histogram cache for every (source, layer)
        // pair — neither the optimizer nor the simulator runs again.
        pipeline.run_ter("tiny", &workloads).unwrap();
        let second_stats = pipeline.cache_stats();
        assert_eq!(second_stats.misses, first_stats.misses);
        assert_eq!(second_stats.hist_misses, first_stats.hist_misses);
        assert!(second_stats.hist_hits >= first_stats.hist_hits + 4);
    }

    #[test]
    fn accuracy_rejects_workloads_matching_no_model_layer() {
        let pipeline = ReadPipeline::builder()
            .baseline()
            .condition(OperatingCondition::ideal())
            .build()
            .unwrap();
        let model = qnn::models::vgg11_cifar_scaled(8, 2, 1).unwrap();
        let dataset = qnn::SyntheticDatasetBuilder::new(2, [3, 8, 8])
            .samples_per_class(1)
            .build()
            .unwrap();
        // ResNet workload names cannot match VGG conv layer names.
        let config = crate::workload::WorkloadConfig {
            pixels_per_layer: 1,
            ..Default::default()
        };
        let workloads: Vec<_> = crate::workload::resnet18_workloads(&config)
            .into_iter()
            .take(1)
            .collect();
        let err = pipeline
            .run_accuracy_for(&model, "mismatch", &dataset, &workloads, 1)
            .unwrap_err();
        assert!(matches!(err, PipelineError::Input { .. }), "{err}");
    }

    #[test]
    fn accuracy_requires_model() {
        let pipeline = ReadPipeline::builder()
            .baseline()
            .condition(OperatingCondition::ideal())
            .build()
            .unwrap();
        let dataset = qnn::SyntheticDatasetBuilder::new(2, [3, 8, 8])
            .samples_per_class(1)
            .build()
            .unwrap();
        let err = pipeline
            .run_accuracy("net", &dataset, &tiny_workloads(1), 1)
            .unwrap_err();
        assert!(matches!(err, PipelineError::Missing { what: "model" }));
    }

    #[test]
    fn run_dataflow_probes_every_dataflow_and_memoizes() {
        let pipeline = ReadPipeline::builder()
            .source(Algorithm::Baseline)
            .condition(OperatingCondition::ideal())
            .build()
            .unwrap();
        let workloads = tiny_workloads(1);
        let report = pipeline.run_dataflow("tiny", &workloads).unwrap();
        // One row per registered dataflow, dataflow-major in registry order.
        assert_eq!(report.rows.len(), Dataflow::ALL.len());
        for (row, df) in report.rows.iter().zip(Dataflow::ALL) {
            assert_eq!(row.report.dataflow, df.name());
            assert_eq!(row.layer, workloads[0].name);
            assert_eq!(row.algorithm, "baseline");
            assert!(row.report.macs > 0);
            assert!(row.report.cycles >= row.report.macs / 16);
        }
        // Output-stationary never spills psums; conv1_1 has 27 reduction
        // rows over a 16-row array, so weight-stationary must.
        let os = report
            .row("output-stationary", &workloads[0].name, "baseline")
            .unwrap();
        assert_eq!(os.report.peak_psum_buffer, 0);
        let ws = report
            .row("weight-stationary", &workloads[0].name, "baseline")
            .unwrap();
        assert!(ws.report.peak_psum_buffer > 0);
        // A rerun aggregates from the memoized unit results.
        let again = pipeline.run_dataflow("tiny", &workloads).unwrap();
        assert_eq!(again.to_json(), report.to_json());
        assert!(pipeline.cache_stats().unit_hits >= Dataflow::ALL.len() as u64);
    }

    #[test]
    fn threaded_executor_matches_serial_reports() {
        let build = |executor: Arc<dyn Executor>| {
            ReadPipeline::builder()
                .baseline()
                .condition(OperatingCondition::aging_vt(10.0, 0.05))
                .executor_arc(executor)
                .build()
                .unwrap()
        };
        let threaded = build(Arc::new(ThreadExecutor::new(2)));
        assert_eq!(threaded.executor().name(), "threads[2]");
        let serial = build(Arc::new(SerialExecutor));
        let workloads = tiny_workloads(1);
        assert_eq!(
            threaded.run_ter("exec", &workloads).unwrap().to_json(),
            serial.run_ter("exec", &workloads).unwrap().to_json()
        );
        assert_eq!(
            threaded.run_dataflow("exec", &workloads).unwrap().to_json(),
            serial.run_dataflow("exec", &workloads).unwrap().to_json()
        );
    }

    #[test]
    fn shared_memory_store_amortizes_across_pipelines() {
        use crate::store::MemoryStore;
        let store: Arc<dyn ArtifactStore> = Arc::new(MemoryStore::new());
        let build = || {
            ReadPipeline::builder()
                .baseline()
                .condition(OperatingCondition::aging_vt(10.0, 0.05))
                .store_arc(Arc::clone(&store))
                .build()
                .unwrap()
        };
        let workloads = tiny_workloads(1);
        let first = build();
        let cold = first.run_ter("stored", &workloads).unwrap();
        let cold_stats = first.cache_stats();
        assert_eq!(cold_stats.misses, 1);
        assert_eq!(cold_stats.hist_misses, 1);
        assert_eq!(cold_stats.store_writes, 2, "schedule + histogram");

        // A second pipeline over the same store computes nothing fresh.
        let second = build();
        let warm = second.run_ter("stored", &workloads).unwrap();
        let warm_stats = second.cache_stats();
        assert_eq!(warm_stats.misses, 0);
        assert_eq!(warm_stats.hist_misses, 0);
        assert!(warm_stats.disk_hits >= 1);
        assert_eq!(cold.to_json(), warm.to_json(), "byte-identical from store");
    }

    #[test]
    fn clear_caches_releases_memory_but_not_the_store() {
        use crate::store::MemoryStore;
        let store: Arc<dyn ArtifactStore> = Arc::new(MemoryStore::new());
        let pipeline = ReadPipeline::builder()
            .baseline()
            .condition(OperatingCondition::aging_vt(10.0, 0.05))
            .store_arc(Arc::clone(&store))
            .build()
            .unwrap();
        let workloads = tiny_workloads(1);
        let report = pipeline.run_ter("clear", &workloads).unwrap();
        assert!(pipeline.cache_stats().entries > 0);

        pipeline.clear_caches();
        let cleared = pipeline.cache_stats();
        assert_eq!(cleared.entries, 0);
        assert_eq!(cleared.hist_entries, 0);
        assert_eq!(cleared.unit_entries, 0);
        assert_eq!(cleared.misses, 0, "counters reset too");

        // The store survives: the rerun recomputes nothing and matches.
        let again = pipeline.run_ter("clear", &workloads).unwrap();
        let stats = pipeline.cache_stats();
        assert_eq!(stats.misses, 0);
        assert_eq!(stats.hist_misses, 0);
        assert_eq!(again.to_json(), report.to_json());
    }

    #[test]
    fn store_accessor_and_debug_expose_the_backend() {
        let pipeline = ReadPipeline::builder()
            .baseline()
            .condition(OperatingCondition::ideal())
            .store(crate::store::MemoryStore::new())
            .build()
            .unwrap();
        assert_eq!(
            pipeline.artifact_store().map(|s| s.name()).as_deref(),
            Some("memory")
        );
        assert!(format!("{pipeline:?}").contains("memory"));
        let bare = ReadPipeline::builder()
            .baseline()
            .condition(OperatingCondition::ideal())
            .build()
            .unwrap();
        assert!(bare.artifact_store().is_none());
    }
}
