//! Execution strategy: serial or multi-threaded fan-out over independent
//! work items.
//!
//! The build environment has no external crates, so the parallel path is a
//! small scoped-thread work queue with the same contract rayon's
//! `par_iter().map().collect()` would give: results come back in item order
//! and the first error (by item index) wins, so serial and parallel runs of
//! a deterministic job produce identical output.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How a pipeline fans out per-layer work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// One item after another on the calling thread.
    #[default]
    Serial,
    /// Scoped worker threads pulling items from a shared queue.
    Parallel {
        /// Worker count; `0` uses the machine's available parallelism.
        threads: usize,
    },
}

impl ExecMode {
    /// Parallel execution sized to the machine.
    pub fn parallel() -> Self {
        ExecMode::Parallel { threads: 0 }
    }

    fn resolved_threads(self, items: usize) -> usize {
        match self {
            ExecMode::Serial => 1,
            ExecMode::Parallel { threads: 0 } => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(items.max(1)),
            ExecMode::Parallel { threads } => threads.min(items.max(1)),
        }
    }
}

/// Runs `job(0..items)` under the given mode and returns the results in item
/// order.  On failure the error of the smallest failing index is returned,
/// independent of thread timing.
pub fn run_indexed<T, E, F>(mode: ExecMode, items: usize, job: F) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    if items == 0 {
        return Ok(Vec::new());
    }
    let threads = mode.resolved_threads(items);
    if threads <= 1 {
        return (0..items).map(job).collect();
    }

    let slots: Vec<Mutex<Option<Result<T, E>>>> = (0..items).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= items {
                    break;
                }
                let result = job(index);
                *slots[index].lock().expect("result slot") = Some(result);
            });
        }
    });

    let mut out = Vec::with_capacity(items);
    for slot in slots {
        match slot.into_inner().expect("result slot") {
            Some(Ok(value)) => out.push(Ok(value)),
            Some(Err(e)) => return Err(e),
            // A panicking worker would have propagated out of the scope
            // already; an empty slot is unreachable.
            None => unreachable!("work item skipped"),
        }
    }
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree() {
        let serial: Vec<usize> =
            run_indexed(ExecMode::Serial, 100, |i| Ok::<_, ()>(i * i)).unwrap();
        let parallel: Vec<usize> =
            run_indexed(ExecMode::parallel(), 100, |i| Ok::<_, ()>(i * i)).unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(serial[7], 49);
    }

    #[test]
    fn first_error_by_index_wins() {
        let result = run_indexed(ExecMode::Parallel { threads: 4 }, 50, |i| {
            if i % 10 == 3 {
                Err(i)
            } else {
                Ok(i)
            }
        });
        assert_eq!(result.unwrap_err(), 3);
    }

    #[test]
    fn zero_items_is_empty() {
        let out: Vec<u8> = run_indexed(ExecMode::parallel(), 0, |_| Ok::<_, ()>(0)).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn explicit_thread_count_is_respected() {
        // More threads than items must not deadlock or duplicate work.
        let out: Vec<usize> =
            run_indexed(ExecMode::Parallel { threads: 16 }, 3, Ok::<_, ()>).unwrap();
        assert_eq!(out, vec![0, 1, 2]);
    }
}
