//! Legacy execution-mode shim plus the scoped-thread fan-out primitive.
//!
//! The build environment has no external crates, so the parallel path is a
//! small scoped-thread work queue with the same contract rayon's
//! `par_iter().map().collect()` would give: results come back in item order
//! and the first error (by item index) wins, so serial and parallel runs of
//! a deterministic job produce identical output.
//!
//! [`ExecMode`] predates the [`crate::executor`] layer and is kept as a
//! deprecated back-compat shim, **confined to this module**: it is no
//! longer re-exported from the crate root or the preludes, and the one
//! `#[allow(deprecated)]` test module below pins its behavior (the
//! [`ExecMode::requested_threads`] mapping onto the equivalent
//! [`crate::SerialExecutor`] / [`crate::ThreadExecutor`], and
//! [`run_indexed`]'s contract).  New code should configure an
//! [`crate::Executor`] directly via [`crate::ReadPipelineBuilder::executor`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How a pipeline fans out per-layer work.
///
/// Deprecated: this enum predates the [`crate::Executor`] abstraction and
/// only covers in-process execution.  Use
/// [`crate::ReadPipelineBuilder::executor`] with [`crate::SerialExecutor`],
/// [`crate::ThreadExecutor`] or [`crate::SubprocessExecutor`] instead; the
/// shim maps `Serial` to `SerialExecutor` and `Parallel { threads }` to
/// `ThreadExecutor { threads }` with identical results.
#[deprecated(
    since = "0.2.0",
    note = "use the Executor trait (SerialExecutor / ThreadExecutor / SubprocessExecutor) via ReadPipelineBuilder::executor"
)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// One item after another on the calling thread.
    Serial,
    /// Scoped worker threads pulling items from a shared queue.
    Parallel {
        /// Worker count; `0` uses the machine's available parallelism.
        /// Whatever the request, the resolved worker count is clamped to at
        /// least one thread (and at most one per item), so
        /// `Parallel { threads: 0 }` can never resolve to zero workers —
        /// even when `available_parallelism` is unknown it degrades to a
        /// single worker, never to a stalled run.
        threads: usize,
    },
}

// Not derived: the derive would reference the deprecated variant without an
// `allow`, warning on every build.
#[allow(deprecated, clippy::derivable_impls)]
impl Default for ExecMode {
    fn default() -> Self {
        ExecMode::Serial
    }
}

#[allow(deprecated)]
impl ExecMode {
    /// Parallel execution sized to the machine.
    pub fn parallel() -> Self {
        ExecMode::Parallel { threads: 0 }
    }

    /// The worker-thread count this mode requests (`None` for serial,
    /// `Some(0)` for machine-sized) — the value the [`crate::ThreadExecutor`]
    /// shim is built with.
    pub fn requested_threads(self) -> Option<usize> {
        match self {
            ExecMode::Serial => None,
            ExecMode::Parallel { threads } => Some(threads),
        }
    }

    fn resolved_threads(self, items: usize) -> usize {
        match self {
            ExecMode::Serial => 1,
            ExecMode::Parallel { threads } => resolve_threads(threads, items),
        }
    }
}

/// Resolves a requested worker count against an item count: `0` means the
/// machine's available parallelism, and the result is clamped to
/// `1..=items.max(1)` — never zero workers, never more workers than items.
pub fn resolve_threads(requested: usize, items: usize) -> usize {
    let threads = if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    };
    threads.min(items.max(1)).max(1)
}

/// Runs `job(0..items)` under the given mode and returns the results in item
/// order.  On failure the error of the smallest failing index is returned,
/// independent of thread timing.
///
/// Deprecated alongside [`ExecMode`]; use [`run_indexed_threads`] (or an
/// [`crate::Executor`]) instead.
#[deprecated(
    since = "0.2.0",
    note = "use run_indexed_threads or an Executor implementation"
)]
#[allow(deprecated)]
pub fn run_indexed<T, E, F>(mode: ExecMode, items: usize, job: F) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    run_indexed_threads(mode.resolved_threads(items), items, job)
}

/// Runs `job(0..items)` on `threads` scoped worker threads (`0` = machine
/// parallelism; the count is clamped to `1..=items`) and returns the results
/// in item order.  On failure the error of the smallest failing index is
/// returned, independent of thread timing.
pub fn run_indexed_threads<T, E, F>(threads: usize, items: usize, job: F) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    if items == 0 {
        return Ok(Vec::new());
    }
    let threads = resolve_threads(threads, items);
    if threads <= 1 {
        return (0..items).map(job).collect();
    }

    let slots: Vec<Mutex<Option<Result<T, E>>>> = (0..items).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let index = next.fetch_add(1, Ordering::Relaxed);
                if index >= items {
                    break;
                }
                let result = job(index);
                *slots[index].lock().expect("result slot") = Some(result);
            });
        }
    });

    let mut out = Vec::with_capacity(items);
    for slot in slots {
        match slot.into_inner().expect("result slot") {
            Some(Ok(value)) => out.push(Ok(value)),
            Some(Err(e)) => return Err(e),
            // A panicking worker would have propagated out of the scope
            // already; an empty slot is unreachable.
            None => unreachable!("work item skipped"),
        }
    }
    out.into_iter().collect()
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree() {
        let serial: Vec<usize> =
            run_indexed(ExecMode::Serial, 100, |i| Ok::<_, ()>(i * i)).unwrap();
        let parallel: Vec<usize> =
            run_indexed(ExecMode::parallel(), 100, |i| Ok::<_, ()>(i * i)).unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(serial[7], 49);
    }

    #[test]
    fn first_error_by_index_wins() {
        let result = run_indexed(ExecMode::Parallel { threads: 4 }, 50, |i| {
            if i % 10 == 3 {
                Err(i)
            } else {
                Ok(i)
            }
        });
        assert_eq!(result.unwrap_err(), 3);
    }

    #[test]
    fn zero_items_is_empty() {
        let out: Vec<u8> = run_indexed(ExecMode::parallel(), 0, |_| Ok::<_, ()>(0)).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn explicit_thread_count_is_respected() {
        // More threads than items must not deadlock or duplicate work.
        let out: Vec<usize> =
            run_indexed(ExecMode::Parallel { threads: 16 }, 3, Ok::<_, ()>).unwrap();
        assert_eq!(out, vec![0, 1, 2]);
    }

    /// Regression: `Parallel { threads: 0 }` is the documented machine-sized
    /// request and must always resolve to at least one worker — it runs to
    /// completion with results identical to serial, never zero workers.
    #[test]
    fn zero_thread_request_clamps_to_at_least_one_worker() {
        assert!(resolve_threads(0, 8) >= 1);
        assert_eq!(resolve_threads(0, 0), 1);
        // The 0 sentinel means machine parallelism all the way down — it is
        // resolved, never silently collapsed to a single worker.
        let machine = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(resolve_threads(0, 100), machine.min(100));
        assert_eq!(resolve_threads(5, 2), 2);
        assert_eq!(resolve_threads(1, 100), 1);
        let zero: Vec<usize> =
            run_indexed(ExecMode::Parallel { threads: 0 }, 9, |i| Ok::<_, ()>(i + 1)).unwrap();
        let serial: Vec<usize> = run_indexed(ExecMode::Serial, 9, |i| Ok::<_, ()>(i + 1)).unwrap();
        assert_eq!(zero, serial);
        // The same request through run_indexed_threads directly.
        let direct: Vec<usize> = run_indexed_threads(0, 9, |i| Ok::<_, ()>(i + 1)).unwrap();
        assert_eq!(direct, serial);
    }

    #[test]
    fn requested_threads_reports_the_shim_mapping() {
        assert_eq!(ExecMode::Serial.requested_threads(), None);
        assert_eq!(ExecMode::parallel().requested_threads(), Some(0));
        assert_eq!(
            ExecMode::Parallel { threads: 3 }.requested_threads(),
            Some(3)
        );
    }

    /// Pins the shim's executor mapping: the mode a legacy caller held maps
    /// onto exactly one modern [`crate::Executor`] with the same observable
    /// configuration.
    #[test]
    fn exec_mode_maps_onto_equivalent_executors() {
        use crate::executor::{Executor, SerialExecutor, ThreadExecutor};
        let map = |mode: ExecMode| -> String {
            match mode.requested_threads() {
                None => SerialExecutor.name(),
                Some(threads) => ThreadExecutor::new(threads).name(),
            }
        };
        assert_eq!(map(ExecMode::Serial), "serial");
        assert_eq!(map(ExecMode::parallel()), "threads[machine]");
        assert_eq!(map(ExecMode::Parallel { threads: 2 }), "threads[2]");
    }
}
