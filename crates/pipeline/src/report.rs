//! Typed pipeline results with a stable, serde-friendly shape.
//!
//! The structs here are plain-old-data with public fields in a documented,
//! stable order; [`NetworkReport::to_json`] / [`AccuracyReport::to_json`]
//! emit that shape deterministically (same input ⇒ byte-identical output),
//! which the parallel-equals-serial tests rely on.  Optional fields
//! ([`LayerReport::corner`], [`LayerReport::ter_stddev`]) are emitted only
//! when present, in their documented position, so a given report value
//! always renders to the same bytes.  When a real serde becomes available
//! the same field layout can be derived.

/// One (layer, algorithm, condition) cell of a TER experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerReport {
    /// Layer name (e.g. `"conv3_2"`).
    pub layer: String,
    /// Schedule-source name (e.g. `"cluster-then-reorder[sign_first]"`).
    pub algorithm: String,
    /// Operating-condition name (e.g. `"Aging&VT-5%"`).
    pub condition: String,
    /// Silicon-variation corner of the producing error model (e.g.
    /// `"pe-var[16x4,seed=3]"`), or `None` at typical silicon.
    pub corner: Option<String>,
    /// MAC-level timing error rate at the condition (the error model's
    /// point estimate: expected value, Monte-Carlo trial mean, or per-PE
    /// population mean).
    pub ter: f64,
    /// Spread of the TER estimate when the error model produces one:
    /// trial-to-trial sample stddev for Monte-Carlo models, PE-to-PE
    /// spread for per-PE variation models, `None` for closed-form analytic
    /// estimates.
    pub ter_stddev: Option<f64>,
    /// Activation-level BER implied by the TER (Eq. (1)).
    pub ber: f64,
    /// Sign-flip rate of the schedule on this layer.
    pub sign_flip_rate: f64,
    /// MAC operations per output activation (the `N` of Eq. (1)).
    pub macs_per_output: usize,
    /// MAC cycles simulated for this cell.
    pub total_cycles: u64,
    /// Sign-flip cycles observed.
    pub sign_flips: u64,
}

/// A full layer-wise TER experiment: every (layer, source, condition) cell.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NetworkReport {
    /// Network / experiment label.
    pub network: String,
    /// Rows in deterministic order: layer-major, then source, then
    /// condition (the order the pipeline was configured with).
    pub rows: Vec<LayerReport>,
}

impl NetworkReport {
    /// Rows measured at the named condition, in layer-major order.
    ///
    /// Name-keyed: if the pipeline was configured with several conditions
    /// that share a display name (e.g. a sweep of generic
    /// `OperatingCondition::vt(..)` corners, most of which are named
    /// `"VT"`), the rows of all of them are returned interleaved — consume
    /// [`NetworkReport::rows`] positionally in that case.
    pub fn rows_at<'a>(&'a self, condition: &'a str) -> impl Iterator<Item = &'a LayerReport> {
        self.rows.iter().filter(move |r| r.condition == condition)
    }

    /// Geometric-mean and maximum per-layer TER reduction of `algorithm`
    /// relative to `baseline` rows at the same (layer, condition).
    ///
    /// Returns `(1.0, 1.0)` when no comparable pair exists.
    pub fn ter_reduction(&self, algorithm: &str, baseline: &str) -> (f64, f64) {
        let mut log_sum = 0.0;
        let mut count = 0usize;
        let mut max = 0.0f64;
        for row in self.rows.iter().filter(|r| r.algorithm == algorithm) {
            if let Some(base) = self.rows.iter().find(|r| {
                r.layer == row.layer && r.condition == row.condition && r.algorithm == baseline
            }) {
                if row.ter > 0.0 && base.ter > 0.0 {
                    let reduction = base.ter / row.ter;
                    log_sum += reduction.ln();
                    count += 1;
                    max = max.max(reduction);
                }
            }
        }
        if count == 0 {
            (1.0, 1.0)
        } else {
            ((log_sum / count as f64).exp(), max)
        }
    }

    /// Deterministic JSON rendering of the report (stable key order, shortest
    /// round-trip float formatting).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.rows.len() * 192);
        out.push_str("{\"network\":");
        push_json_str(&mut out, &self.network);
        out.push_str(",\"rows\":[");
        push_layer_rows(&mut out, &self.rows);
        out.push_str("]}");
        out
    }
}

/// Renders a slice of [`LayerReport`]s as the body of a JSON array — the
/// single row layout [`NetworkReport::to_json`] and
/// [`crate::SweepReport::to_json`] share, so a sweep cell's rows are
/// byte-identical to the equivalent single-condition run's rows.
pub(crate) fn push_layer_rows(out: &mut String, rows: &[LayerReport]) {
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"layer\":");
        push_json_str(out, &row.layer);
        out.push_str(",\"algorithm\":");
        push_json_str(out, &row.algorithm);
        out.push_str(",\"condition\":");
        push_json_str(out, &row.condition);
        if let Some(corner) = &row.corner {
            out.push_str(",\"corner\":");
            push_json_str(out, corner);
        }
        push_json_f64(out, ",\"ter\":", row.ter);
        if let Some(stddev) = row.ter_stddev {
            push_json_f64(out, ",\"ter_stddev\":", stddev);
        }
        push_json_f64(out, ",\"ber\":", row.ber);
        push_json_f64(out, ",\"sign_flip_rate\":", row.sign_flip_rate);
        out.push_str(",\"macs_per_output\":");
        out.push_str(&row.macs_per_output.to_string());
        out.push_str(",\"total_cycles\":");
        out.push_str(&row.total_cycles.to_string());
        out.push_str(",\"sign_flips\":");
        out.push_str(&row.sign_flips.to_string());
        out.push('}');
    }
}

/// One (condition, algorithm) point of an accuracy experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyPoint {
    /// Operating-condition name.
    pub condition: String,
    /// Schedule-source name.
    pub algorithm: String,
    /// Mean top-1 accuracy over the seeds.
    pub top1: f64,
    /// Mean top-k accuracy over the seeds.
    pub topk: f64,
    /// The `k` of the top-k figure.
    pub k: usize,
    /// Mean per-layer BER used for the injection (for the record).
    pub mean_ber: f64,
    /// Number of injection seeds averaged.
    pub seeds: u64,
}

/// A full accuracy-under-PVTA experiment.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AccuracyReport {
    /// Network / experiment label.
    pub network: String,
    /// Points in deterministic order: condition-major, then source.
    pub points: Vec<AccuracyPoint>,
}

impl AccuracyReport {
    /// The point for a (condition, algorithm) pair, if present.
    ///
    /// Name-keyed: with several same-named conditions configured (see
    /// [`NetworkReport::rows_at`]) this returns the first match — consume
    /// [`AccuracyReport::points`] positionally in that case.
    pub fn point(&self, condition: &str, algorithm: &str) -> Option<&AccuracyPoint> {
        self.points
            .iter()
            .find(|p| p.condition == condition && p.algorithm == algorithm)
    }

    /// Deterministic JSON rendering of the report.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.points.len() * 160);
        out.push_str("{\"network\":");
        push_json_str(&mut out, &self.network);
        out.push_str(",\"points\":[");
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"condition\":");
            push_json_str(&mut out, &p.condition);
            out.push_str(",\"algorithm\":");
            push_json_str(&mut out, &p.algorithm);
            push_json_f64(&mut out, ",\"top1\":", p.top1);
            push_json_f64(&mut out, ",\"topk\":", p.topk);
            out.push_str(",\"k\":");
            out.push_str(&p.k.to_string());
            push_json_f64(&mut out, ",\"mean_ber\":", p.mean_ber);
            out.push_str(",\"seeds\":");
            out.push_str(&p.seeds.to_string());
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// One (dataflow, layer, algorithm) cell of a dataflow-probe experiment:
/// the event-driven engine's dynamic-timing report for that combination.
#[derive(Debug, Clone, PartialEq)]
pub struct DataflowRow {
    /// Layer name (e.g. `"conv3_2"`).
    pub layer: String,
    /// Schedule-source name (e.g. `"cluster-then-reorder[sign_first]"`).
    pub algorithm: String,
    /// The probed dynamics: cycles, utilization, stall breakdown per
    /// context, peak buffer occupancy.  Carries the dataflow name.
    pub report: dataflow_sim::DataflowReport,
}

/// A full dataflow-probe experiment: every (dataflow, layer, source) cell,
/// produced by [`crate::ReadPipeline::run_dataflow`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DataflowNetworkReport {
    /// Network / experiment label.
    pub network: String,
    /// Rows in deterministic order: dataflow-major, then layer, then
    /// source (the order the pipeline was configured with).
    pub rows: Vec<DataflowRow>,
}

impl DataflowNetworkReport {
    /// The row for a (dataflow, layer, algorithm) triple, if present.
    pub fn row(&self, dataflow: &str, layer: &str, algorithm: &str) -> Option<&DataflowRow> {
        self.rows
            .iter()
            .find(|r| r.report.dataflow == dataflow && r.layer == layer && r.algorithm == algorithm)
    }

    /// Deterministic JSON rendering of the report (stable key order,
    /// shortest round-trip float formatting).  Each row embeds the engine's
    /// own [`dataflow_sim::DataflowReport::to_json`] object under
    /// `"report"`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.rows.len() * 512);
        out.push_str("{\"network\":");
        push_json_str(&mut out, &self.network);
        out.push_str(",\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"layer\":");
            push_json_str(&mut out, &row.layer);
            out.push_str(",\"algorithm\":");
            push_json_str(&mut out, &row.algorithm);
            out.push_str(",\"report\":");
            out.push_str(&row.report.to_json());
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

pub(crate) fn push_json_f64(out: &mut String, key_prefix: &str, v: f64) {
    out.push_str(key_prefix);
    if v.is_finite() {
        // Shortest round-trip formatting; always a valid JSON number.
        let s = format!("{v:?}");
        out.push_str(&s);
    } else {
        // TER/BER/accuracy values are finite by construction; render the
        // pathological case as null rather than invalid JSON.
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(layer: &str, algorithm: &str, condition: &str, ter: f64) -> LayerReport {
        LayerReport {
            layer: layer.into(),
            algorithm: algorithm.into(),
            condition: condition.into(),
            corner: None,
            ter,
            ter_stddev: None,
            ber: ter * 2.0,
            sign_flip_rate: 0.25,
            macs_per_output: 64,
            total_cycles: 1024,
            sign_flips: 256,
        }
    }

    #[test]
    fn ter_reduction_is_geometric_mean_and_max() {
        let report = NetworkReport {
            network: "net".into(),
            rows: vec![
                row("a", "baseline", "c", 1e-3),
                row("a", "read", "c", 1e-4),
                row("b", "baseline", "c", 1e-3),
                row("b", "read", "c", 2.5e-5),
            ],
        };
        let (geo, max) = report.ter_reduction("read", "baseline");
        assert!((geo - 20.0).abs() < 1e-9, "geo {geo}");
        assert!((max - 40.0).abs() < 1e-9, "max {max}");
        assert_eq!(report.ter_reduction("missing", "baseline"), (1.0, 1.0));
    }

    #[test]
    fn json_is_deterministic_and_parsable_shape() {
        let report = NetworkReport {
            network: "vgg\"16\"".into(),
            rows: vec![row("a", "baseline", "Ideal", 1.25e-7)],
        };
        let a = report.to_json();
        let b = report.clone().to_json();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"network\":\"vgg\\\"16\\\"\",\"rows\":[{"));
        assert!(a.contains("\"ter\":1.25e-7"));
        assert!(a.ends_with("}]}"));
    }

    #[test]
    fn accuracy_report_lookup_and_json() {
        let report = AccuracyReport {
            network: "net".into(),
            points: vec![AccuracyPoint {
                condition: "Ideal".into(),
                algorithm: "baseline".into(),
                top1: 0.75,
                topk: 0.9,
                k: 3,
                mean_ber: 0.0,
                seeds: 3,
            }],
        };
        assert!(report.point("Ideal", "baseline").is_some());
        assert!(report.point("Ideal", "read").is_none());
        let json = report.to_json();
        assert!(json.contains("\"top1\":0.75"));
        assert!(json.contains("\"seeds\":3"));
    }

    #[test]
    fn optional_fields_render_in_stable_positions() {
        let mut with_optional = row("a", "baseline", "Ideal", 1e-6);
        with_optional.corner = Some("pe-var[16x4,seed=3]".into());
        with_optional.ter_stddev = Some(2.5e-7);
        let report = NetworkReport {
            network: "n".into(),
            rows: vec![with_optional],
        };
        let json = report.to_json();
        assert!(json.contains(
            "\"condition\":\"Ideal\",\"corner\":\"pe-var[16x4,seed=3]\",\"ter\":1e-6,\"ter_stddev\":2.5e-7,\"ber\":"
        ));
        assert_eq!(json, report.clone().to_json());
        // Absent optional fields leave no trace.
        let plain = NetworkReport {
            network: "n".into(),
            rows: vec![row("a", "baseline", "Ideal", 1e-6)],
        };
        let plain_json = plain.to_json();
        assert!(!plain_json.contains("corner"));
        assert!(!plain_json.contains("ter_stddev"));
    }

    #[test]
    fn dataflow_report_lookup_and_json() {
        let report = DataflowNetworkReport {
            network: "net".into(),
            rows: vec![DataflowRow {
                layer: "conv1".into(),
                algorithm: "baseline".into(),
                report: dataflow_sim::DataflowReport {
                    dataflow: "output-stationary".into(),
                    cycles: 100,
                    macs: 64,
                    outputs: 8,
                    stalled: 12,
                    peak_psum_buffer: 0,
                    contexts: Vec::new(),
                    channels: Vec::new(),
                },
            }],
        };
        assert!(report
            .row("output-stationary", "conv1", "baseline")
            .is_some());
        assert!(report
            .row("weight-stationary", "conv1", "baseline")
            .is_none());
        let json = report.to_json();
        assert_eq!(json, report.clone().to_json());
        assert!(json.starts_with("{\"network\":\"net\",\"rows\":[{\"layer\":\"conv1\""));
        assert!(json.contains("\"report\":{\n  \"dataflow\": \"output-stationary\""));
        dataflow_sim::json::validate(&json).unwrap();
    }

    #[test]
    fn rows_at_filters_by_condition() {
        let report = NetworkReport {
            network: "n".into(),
            rows: vec![
                row("a", "baseline", "Ideal", 0.0),
                row("a", "baseline", "VT-5%", 1e-5),
            ],
        };
        assert_eq!(report.rows_at("VT-5%").count(), 1);
        assert_eq!(report.rows_at("nope").count(), 0);
    }
}
